pragma solidity ^0.4.26;

// Fig. 4 of the paper: strict msg.value gate and nested branches.
contract Game {
  mapping(address => uint256) balance;

  function guessNum(uint256 number) public payable {
    uint256 random = uint256(keccak256(block.timestamp, now)) % 200;
    require(msg.value == 88 finney);
    if (number < random) {
      uint256 luckyNum = number % 2;
      if (luckyNum == 0) {
        balance[msg.sender] += msg.value * 10;
      } else {
        balance[msg.sender] += msg.value * 5;
      }
    }
  }
}
