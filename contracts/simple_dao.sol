pragma solidity ^0.4.26;

// The classic DAO-style reentrancy pattern.
contract SimpleDAO {
  mapping(address => uint256) credit;

  function donate(address to) public payable {
    credit[to] += msg.value;
  }

  function withdraw(uint256 amount) public {
    if (credit[msg.sender] >= amount) {
      bool ok = msg.sender.call.value(amount)();
      credit[msg.sender] -= amount;
    }
  }

  function queryCredit(address to) public returns (uint256) {
    return credit[to];
  }
}
