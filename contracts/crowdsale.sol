pragma solidity ^0.4.26;

contract Crowdsale {
  uint256 phase = 0;
  uint256 goal;
  uint256 invested;
  address owner;
  mapping(address => uint256) invests;

  constructor() public {
    goal = 100 ether;
    invested = 0;
    owner = msg.sender;
  }

  function invest(uint256 donations) public payable {
    if (invested < goal) {
      invested += donations;
      invests[msg.sender] += donations;
      phase = 0;
    } else {
      phase = 1;
    }
  }

  function refund() public {
    if (phase == 0) {
      msg.sender.transfer(invests[msg.sender]);
      invests[msg.sender] = 0;
    }
  }

  function withdraw() public {
    if (phase == 1) {
      owner.transfer(invested);
    }
  }
}
