pragma solidity ^0.4.26;

// Magic-value gate for the input-prediction differential: the unlock
// code is computed at runtime (48271 * 65537 = 3163536527), so neither
// push-constant dictionaries nor random mutation find it — only
// comparison-operand tracing plus the magic-value solver does.
contract StrictGuard {
  uint256 unlocked;

  function open(uint256 code) public {
    require(code == 48271 * 65537);
    unlocked = unlocked + 1;
  }

  function poke(uint256 x) public {
    if (x > 1000) { unlocked = unlocked; }
  }
}
