pragma solidity ^0.4.26;

// ERC20-style token with unchecked arithmetic (solc 0.4, no SafeMath).
contract Token {
  mapping(address => uint256) balances;
  uint256 totalSupply;
  address owner;

  constructor() public {
    owner = msg.sender;
    totalSupply = 1000000;
    balances[msg.sender] = 1000000;
  }

  function transfer(address to, uint256 value) public {
    balances[msg.sender] -= value;
    balances[to] += value;
  }

  function batchMint(address to, uint256 count, uint256 each) public {
    require(msg.sender == owner);
    uint256 amount = count * each;
    totalSupply += amount;
    balances[to] += amount;
  }
}
