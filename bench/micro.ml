(* Bechamel micro-benchmarks of the substrate and the fuzzer's hot
   paths: Keccak-256, 256-bit arithmetic, a full transaction execution,
   one mutation, a mask computation and a whole mini-campaign. *)

open Bechamel
open Toolkit

let contract = lazy (Minisol.Contract.compile Corpus.Examples.crowdsale)

let keccak_bench =
  Test.make ~name:"keccak256 (136B block)" (Staged.stage (fun () ->
      ignore (Crypto.Keccak.hash (String.make 100 'x'))))

let u256_mul_bench =
  let a = Word.U256.of_decimal_string "123456789123456789123456789" in
  let b = Word.U256.of_decimal_string "987654321987654321987654321" in
  Test.make ~name:"u256 mul" (Staged.stage (fun () -> ignore (Word.U256.mul a b)))

let u256_divmod_bench =
  let a = Word.U256.max_value in
  let b = Word.U256.of_decimal_string "1000000000000000000" in
  Test.make ~name:"u256 divmod" (Staged.stage (fun () -> ignore (Word.U256.divmod a b)))

let tx_bench =
  Test.make ~name:"one transaction (invest)" (Staged.stage (fun () ->
      let c = Lazy.force contract in
      let st = Minisol.Contract.deploy Evm.State.empty Mufuzz.Accounts.contract_address c in
      let st = Evm.State.credit st Mufuzz.Accounts.deployer Word.U256.max_value in
      let invest = List.find (fun f -> f.Abi.name = "invest") c.abi in
      let msg =
        { Evm.Interp.caller = Mufuzz.Accounts.deployer;
          origin = Mufuzz.Accounts.deployer;
          callee = Mufuzz.Accounts.contract_address;
          value = Word.U256.zero;
          data = Abi.encode_call invest [ Abi.VUint (Word.U256.of_int 5) ];
          gas = 1_000_000 }
      in
      ignore (Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st msg)))

let mutation_bench =
  let rng = Util.Rng.create 7L in
  let stream = String.make 64 '\042' in
  Test.make ~name:"one mutation" (Staged.stage (fun () ->
      let m = Mufuzz.Mutation.random rng ~max_n:8 in
      ignore (Mufuzz.Mutation.apply rng m ~pos:(Util.Rng.int rng 64) stream)))

let campaign_bench =
  Test.make ~name:"campaign (100 execs)" (Staged.stage (fun () ->
      let config = { Mufuzz.Config.default with max_executions = 100 } in
      ignore (Mufuzz.Campaign.run ~config (Lazy.force contract))))

let benches =
  [ keccak_bench; u256_mul_bench; u256_divmod_bench; tx_bench; mutation_bench;
    campaign_bench ]

(* Parallel campaign throughput: same contract and budget at jobs=1,2,4,
   reported as execs/sec and dumped to bench_results/BENCH_parallel.json.
   Scaling tops out at the host's core count, so the JSON records
   [host_cores] alongside the measurements. *)
let parallel () =
  Exp.section "Parallel campaign throughput (jobs = 1, 2, 4)";
  let c = Lazy.force contract in
  let budget = Exp.scaled 3000 in
  let measure jobs =
    (* a fresh registry per measurement so the coordinator-probe gate
       reads this run's counters, not the cumulative session *)
    let metrics = Telemetry.Metrics.create () in
    let config =
      { Mufuzz.Config.default with max_executions = budget; jobs }
    in
    let t0 = Unix.gettimeofday () in
    let r = Mufuzz.Campaign.run_parallel ~config ~metrics c in
    let wall = Unix.gettimeofday () -. t0 in
    let coord_probes =
      Telemetry.Metrics.value
        (Telemetry.Metrics.counter metrics "mufuzz_mask_probes_coordinator_total"
           ~help:"")
    in
    (r, wall, coord_probes)
  in
  ignore (measure 1) (* warm-up: fault in code paths before timing *);
  let rows =
    List.map
      (fun jobs ->
        let r, wall, coord_probes = measure jobs in
        let execs = r.Mufuzz.Report.executions in
        let rate = float_of_int execs /. wall in
        Printf.printf "  jobs=%d  %6d execs  %6.2fs  %8.1f execs/sec\n%!"
          jobs execs wall rate;
        (jobs, r, wall, rate, coord_probes))
      [ 1; 2; 4 ]
  in
  let base = match rows with (_, _, _, r, _) :: _ -> r | [] -> 1.0 in
  let host_cores = Domain.recommended_domain_count () in
  (* speedup-per-core normalises by the cores a job count can actually
     use: jobs=4 on a 2-core host is judged against 2 cores, not 4 *)
  let per_core jobs speedup =
    speedup /. float_of_int (Stdlib.max 1 (Stdlib.min jobs host_cores))
  in
  List.iter
    (fun (jobs, _, _, rate, _) ->
      if jobs > 1 then
        Printf.printf "  jobs=%d  speedup %.2fx  (%.2fx per usable core)\n%!"
          jobs (rate /. base)
          (per_core jobs (rate /. base)))
    rows;
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"MuFuzz campaign on crowdsale.sol, budget %d, seed %Ld\",\n\
      \  \"host_cores\": %d,\n\
      \  \"round_batch\": %d,\n\
      \  \"note\": \"speedup is bounded by host_cores; on a single-core host all job counts time-slice one CPU. mask_probes_coordinator must be 0 for jobs > 1: probing is batched inside worker tasks\",\n\
      \  \"results\": [\n%s\n\
      \  ]\n\
       }\n"
      budget Mufuzz.Config.default.rng_seed host_cores
      Mufuzz.Config.default.round_batch
      (String.concat ",\n"
         (List.map
            (fun (jobs, (r : Mufuzz.Report.t), wall, rate, coord_probes) ->
              let mw, idle =
                match r.parallel with
                | Some p -> (p.merge_wait_seconds, p.worker_idle_seconds)
                | None -> (0.0, 0.0)
              in
              (* merge-wait as a fraction of the coordinator's wall
                 clock; idle as a fraction of the workers' summed wall
                 clock *)
              let mw_ratio = if wall > 0.0 then mw /. wall else 0.0 in
              let idle_ratio =
                if wall > 0.0 && jobs > 1 then
                  idle /. (float_of_int jobs *. wall)
                else 0.0
              in
              Printf.sprintf
                "    { \"jobs\": %d, \"execs\": %d, \"wall_seconds\": %.3f, \
                 \"execs_per_sec\": %.1f, \"speedup\": %.2f, \
                 \"speedup_per_core\": %.2f, \"mask_probes\": %d, \
                 \"mask_probes_coordinator\": %d, \
                 \"predict_proposals\": %d, \
                 \"merge_wait_seconds\": %.4f, \"merge_wait_ratio\": %.4f, \
                 \"worker_idle_seconds\": %.4f, \"worker_idle_ratio\": %.4f }"
                jobs r.executions wall rate (rate /. base)
                (per_core jobs (rate /. base))
                r.mask_probes coord_probes r.predict_proposals mw mw_ratio idle
                idle_ratio)
            rows))
  in
  Exp.write_file "BENCH_parallel.json" json

(* ---------------- interpreter hot-loop benchmark ----------------

   A fixed, deterministic seed workload per example contract, executed
   with no state cache so every transaction runs the interpreter end to
   end. The workload (contract set, RNG seed, seed count, execution
   budget) is frozen: any change invalidates comparisons against
   recorded baselines. Results go to bench_results/BENCH_interp.json;
   if bench_results/BENCH_interp_baseline.json exists (a recorded
   pre-optimisation run of the SAME workload on the same host), the
   report includes per-contract and total speedups against it. *)

let interp_contracts =
  [ ("crowdsale", Corpus.Examples.crowdsale);
    ("guess_number", Corpus.Examples.guess_number);
    ("simple_dao", Corpus.Examples.simple_dao);
    ("token_overflow", Corpus.Examples.token_overflow) ]

let interp_seeds_per_contract = 32

let interp_execs () = Exp.scaled 3000

(* steps executed by one run: the interpreter counts every opcode it
   dispatches, including the one that halts the frame *)
let steps_of_run (r : Mufuzz.Executor.run) =
  List.fold_left
    (fun acc (t : Mufuzz.Executor.tx_result) -> acc + t.trace.Evm.Trace.steps)
    0 r.tx_results

let interp_workload source =
  let c = Minisol.Contract.compile source in
  let gas = Mufuzz.Config.default.gas_per_tx in
  let n_senders = Mufuzz.Config.default.n_senders in
  let attacker = Mufuzz.Config.default.attacker_enabled in
  let rng = Util.Rng.create 42L in
  let seeds =
    Array.init interp_seeds_per_contract (fun _ ->
        Mufuzz.Seed.of_sequence rng ~n_senders c.abi
          ("constructor" :: Mufuzz.Campaign.derive_sequence c))
  in
  let execs = interp_execs () in
  let run_one i =
    Mufuzz.Executor.run_seed ~contract:c ~gas ~n_senders ~attacker
      seeds.(i mod Array.length seeds)
  in
  (* warm-up: fault in code paths and the contract artifact *)
  ignore (run_one 0);
  let txs = ref 0 and steps = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to execs - 1 do
    let r = run_one i in
    txs := !txs + List.length r.tx_results;
    steps := !steps + steps_of_run r
  done;
  let wall = Unix.gettimeofday () -. t0 in
  (execs, !txs, !steps, wall)

(* minimal parsing of the recorded baseline: we only need
   (name, wall_seconds) pairs, and we wrote the file ourselves *)
let read_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    let find_wall name =
      (* locate "name": "<name>" then the following "wall_seconds": X *)
      let needle = Printf.sprintf "\"name\": \"%s\"" name in
      match String.index_opt s '\000' with
      | Some _ -> None
      | None -> (
        let rec find_from i =
          if i + String.length needle > String.length s then None
          else if String.sub s i (String.length needle) = needle then Some i
          else find_from (i + 1)
        in
        match find_from 0 with
        | None -> None
        | Some i -> (
          let key = "\"wall_seconds\": " in
          let rec find_key j =
            if j + String.length key > String.length s then None
            else if String.sub s j (String.length key) = key then
              Some (j + String.length key)
            else find_key (j + 1)
          in
          match find_key i with
          | None -> None
          | Some j ->
            let k = ref j in
            while
              !k < String.length s
              && (match s.[!k] with '0' .. '9' | '.' | '-' | 'e' -> true | _ -> false)
            do
              incr k
            done;
            float_of_string_opt (String.sub s j (!k - j))))
    in
    Some find_wall
  end

let interp () =
  Exp.section "Interpreter hot-loop benchmark (fixed seed workload)";
  let baseline =
    read_baseline (Filename.concat Exp.results_dir "BENCH_interp_baseline.json")
  in
  let rows =
    List.map
      (fun (name, source) ->
        let execs, txs, steps, wall = interp_workload source in
        let sps = float_of_int steps /. wall in
        Printf.printf "  %-16s %6d execs %7d txs %9d steps  %6.2fs  %12.0f steps/sec\n%!"
          name execs txs steps wall sps;
        (name, execs, txs, steps, wall))
      interp_contracts
  in
  let tot_execs = List.fold_left (fun a (_, e, _, _, _) -> a + e) 0 rows in
  let tot_txs = List.fold_left (fun a (_, _, t, _, _) -> a + t) 0 rows in
  let tot_steps = List.fold_left (fun a (_, _, _, st, _) -> a + st) 0 rows in
  let tot_wall = List.fold_left (fun a (_, _, _, _, w) -> a +. w) 0.0 rows in
  let baseline_wall name =
    match baseline with None -> None | Some f -> f name
  in
  let contract_json (name, execs, txs, steps, wall) =
    let base =
      Printf.sprintf
        "    { \"name\": \"%s\", \"execs\": %d, \"txs\": %d, \"steps\": %d, \
         \"wall_seconds\": %.4f, \"steps_per_sec\": %.0f, \"txs_per_sec\": %.0f"
        name execs txs steps wall
        (float_of_int steps /. wall)
        (float_of_int txs /. wall)
    in
    match baseline_wall name with
    | Some bw when bw > 0.0 ->
      (* the workload is deterministic, so the baseline executed the
         same steps: baseline steps/sec = steps / baseline wall *)
      base
      ^ Printf.sprintf
          ", \"baseline_wall_seconds\": %.4f, \"baseline_steps_per_sec\": %.0f, \
           \"speedup\": %.2f }"
          bw
          (float_of_int steps /. bw)
          (bw /. wall)
    | _ -> base ^ " }"
  in
  let total_json =
    let base =
      Printf.sprintf
        "  \"total\": { \"execs\": %d, \"txs\": %d, \"steps\": %d, \
         \"wall_seconds\": %.4f, \"steps_per_sec\": %.0f"
        tot_execs tot_txs tot_steps tot_wall
        (float_of_int tot_steps /. tot_wall)
    in
    let tot_base =
      List.fold_left
        (fun acc (name, _, _, _, _) ->
          match (acc, baseline_wall name) with
          | Some a, Some w -> Some (a +. w)
          | _ -> None)
        (Some 0.0) rows
    in
    match tot_base with
    | Some bw when bw > 0.0 ->
      base
      ^ Printf.sprintf
          ", \"baseline_wall_seconds\": %.4f, \"baseline_steps_per_sec\": %.0f, \
           \"speedup\": %.2f }"
          bw
          (float_of_int tot_steps /. bw)
          (bw /. tot_wall)
    | _ -> base ^ " }"
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"EVM interpreter hot loop: %d seed executions per \
       contract, no state cache, seed 42\",\n\
      \  \"note\": \"steps = opcodes dispatched; baseline fields compare \
       against bench_results/BENCH_interp_baseline.json (pre-optimisation \
       run of the identical workload) when present\",\n\
      \  \"host_cores\": %d,\n\
      \  \"contracts\": [\n%s\n  ],\n%s\n}\n"
      (interp_execs ())
      (Domain.recommended_domain_count ())
      (String.concat ",\n" (List.map contract_json rows))
      total_json
  in
  Exp.write_file "BENCH_interp.json" json

let run () =
  Exp.section "Micro-benchmarks (bechamel, ns per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"mufuzz" benches) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "  %-40s %14.1f ns/run\n%!" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n%!" name)
    results
