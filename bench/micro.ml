(* Bechamel micro-benchmarks of the substrate and the fuzzer's hot
   paths: Keccak-256, 256-bit arithmetic, a full transaction execution,
   one mutation, a mask computation and a whole mini-campaign. *)

open Bechamel
open Toolkit

let contract = lazy (Minisol.Contract.compile Corpus.Examples.crowdsale)

let keccak_bench =
  Test.make ~name:"keccak256 (136B block)" (Staged.stage (fun () ->
      ignore (Crypto.Keccak.hash (String.make 100 'x'))))

let u256_mul_bench =
  let a = Word.U256.of_decimal_string "123456789123456789123456789" in
  let b = Word.U256.of_decimal_string "987654321987654321987654321" in
  Test.make ~name:"u256 mul" (Staged.stage (fun () -> ignore (Word.U256.mul a b)))

let u256_divmod_bench =
  let a = Word.U256.max_value in
  let b = Word.U256.of_decimal_string "1000000000000000000" in
  Test.make ~name:"u256 divmod" (Staged.stage (fun () -> ignore (Word.U256.divmod a b)))

let tx_bench =
  Test.make ~name:"one transaction (invest)" (Staged.stage (fun () ->
      let c = Lazy.force contract in
      let st = Minisol.Contract.deploy Evm.State.empty Mufuzz.Accounts.contract_address c in
      let st = Evm.State.credit st Mufuzz.Accounts.deployer Word.U256.max_value in
      let invest = List.find (fun f -> f.Abi.name = "invest") c.abi in
      let msg =
        { Evm.Interp.caller = Mufuzz.Accounts.deployer;
          origin = Mufuzz.Accounts.deployer;
          callee = Mufuzz.Accounts.contract_address;
          value = Word.U256.zero;
          data = Abi.encode_call invest [ Abi.VUint (Word.U256.of_int 5) ];
          gas = 1_000_000 }
      in
      ignore (Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st msg)))

let mutation_bench =
  let rng = Util.Rng.create 7L in
  let stream = String.make 64 '\042' in
  Test.make ~name:"one mutation" (Staged.stage (fun () ->
      let m = Mufuzz.Mutation.random rng ~max_n:8 in
      ignore (Mufuzz.Mutation.apply rng m ~pos:(Util.Rng.int rng 64) stream)))

let campaign_bench =
  Test.make ~name:"campaign (100 execs)" (Staged.stage (fun () ->
      let config = { Mufuzz.Config.default with max_executions = 100 } in
      ignore (Mufuzz.Campaign.run ~config (Lazy.force contract))))

let benches =
  [ keccak_bench; u256_mul_bench; u256_divmod_bench; tx_bench; mutation_bench;
    campaign_bench ]

(* Parallel campaign throughput: same contract and budget at jobs=1,2,4,
   reported as execs/sec and dumped to bench_results/BENCH_parallel.json.
   Scaling tops out at the host's core count, so the JSON records
   [host_cores] alongside the measurements. *)
let parallel () =
  Exp.section "Parallel campaign throughput (jobs = 1, 2, 4)";
  let c = Lazy.force contract in
  let budget = Exp.scaled 3000 in
  let measure jobs =
    let config =
      { Mufuzz.Config.default with max_executions = budget; jobs }
    in
    let t0 = Unix.gettimeofday () in
    let r = Mufuzz.Campaign.run_parallel ~config c in
    let wall = Unix.gettimeofday () -. t0 in
    (r.Mufuzz.Report.executions, wall)
  in
  ignore (measure 1) (* warm-up: fault in code paths before timing *);
  let rows =
    List.map
      (fun jobs ->
        let execs, wall = measure jobs in
        let rate = float_of_int execs /. wall in
        Printf.printf "  jobs=%d  %6d execs  %6.2fs  %8.1f execs/sec\n%!"
          jobs execs wall rate;
        (jobs, execs, wall, rate))
      [ 1; 2; 4 ]
  in
  let base = match rows with (_, _, _, r) :: _ -> r | [] -> 1.0 in
  let host_cores = Domain.recommended_domain_count () in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"MuFuzz campaign on crowdsale.sol, budget %d, seed %Ld\",\n\
      \  \"host_cores\": %d,\n\
      \  \"note\": \"speedup is bounded by host_cores; on a single-core host all job counts time-slice one CPU\",\n\
      \  \"results\": [\n%s\n\
      \  ]\n\
       }\n"
      budget Mufuzz.Config.default.rng_seed host_cores
      (String.concat ",\n"
         (List.map
            (fun (jobs, execs, wall, rate) ->
              Printf.sprintf
                "    { \"jobs\": %d, \"execs\": %d, \"wall_seconds\": %.3f, \
                 \"execs_per_sec\": %.1f, \"speedup\": %.2f }"
                jobs execs wall rate (rate /. base))
            rows))
  in
  Exp.write_file "BENCH_parallel.json" json

let run () =
  Exp.section "Micro-benchmarks (bechamel, ns per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"mufuzz" benches) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "  %-40s %14.1f ns/run\n%!" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n%!" name)
    results
