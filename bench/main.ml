(* Benchmark harness entry point: one target per table and figure of the
   paper's evaluation (§V). With no argument every experiment runs.

   Usage: main.exe [table1|table2|fig5|fig6|table3|fig7|table4|case_study|cache|throughput|micro|all]
                   [--scale S]   (S scales population sizes and budgets) *)

let usage () =
  print_endline
    "usage: main.exe [table1|table2|fig5|fig6|table3|fig7|table4|case_study|cache|throughput|micro|interp|parallel|all] [--scale S] [--jobs N]";
  exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse targets = function
    | [] -> List.rev targets
    | "--scale" :: s :: rest ->
      (try Exp.scale := float_of_string s with _ -> usage ());
      parse targets rest
    | "--jobs" :: n :: rest ->
      (try Exp.jobs := Stdlib.max 1 (int_of_string n) with _ -> usage ());
      parse targets rest
    | t :: rest -> parse (t :: targets) rest
  in
  let targets =
    match parse [] args with [] -> [ "all" ] | ts -> ts
  in
  let t0 = Unix.gettimeofday () in
  let coverage_results = ref None in
  let fig56 () =
    match !coverage_results with
    | Some r -> r
    | None ->
      let r = Coverage_exp.run () in
      coverage_results := Some r;
      r
  in
  let run_target = function
    | "table1" -> Tables.table1 ()
    | "table2" -> Tables.table2 ()
    | "fig5" | "fig6" -> ignore (fig56 ())
    | "table3" -> ignore (Bug_exp.run ())
    | "fig7" -> ignore (Ablation_exp.run ())
    | "table4" -> Realworld_exp.run ()
    | "case_study" -> Case_study.run ()
    | "micro" -> Micro.run ()
    | "interp" -> Micro.interp ()
    | "parallel" -> Micro.parallel ()
    | "cache" -> Cache_exp.run ()
    | "throughput" -> Throughput_exp.run ()
    | "all" ->
      Tables.table1 ();
      Tables.table2 ();
      Case_study.run ();
      ignore (fig56 ());
      ignore (Bug_exp.run ());
      ignore (Ablation_exp.run ());
      Realworld_exp.run ();
      Cache_exp.run ();
      Throughput_exp.run ();
      Micro.run ()
    | t ->
      Printf.printf "unknown target %s\n" t;
      usage ()
  in
  List.iter run_target targets;
  Printf.printf "\ntotal bench wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
