(* Shared experiment plumbing for the per-table / per-figure benches.

   Scale notes: the paper fuzzes 21k contracts for 10-20 minutes each on a
   32-core server. The reproduction uses deterministic generated
   populations and execution-count budgets instead of wall-clock budgets;
   [scale] multiplies both population sizes and budgets. *)

module Report = Mufuzz.Report
module Config = Mufuzz.Config

let scale = ref 1.0

let scaled n = Stdlib.max 1 (int_of_float (float_of_int n *. !scale))

(* Cross-contract sharding: with [--jobs N] the per-population maps run
   N contracts at a time on a shared domain pool (each contract's
   campaign stays sequential, so per-contract results are identical to a
   [--jobs 1] run — only wall time changes). *)
let jobs = ref 1

let shared_pool : Mufuzz.Pool.t option ref = ref None

let pool () =
  if !jobs <= 1 then None
  else
    match !shared_pool with
    | Some p -> Some p
    | None ->
      let p = Mufuzz.Pool.create ~jobs:!jobs () in
      shared_pool := Some p;
      at_exit (fun () -> Mufuzz.Pool.shutdown p);
      Some p

let map_contracts f contracts =
  match pool () with
  | Some p -> Mufuzz.Pool.map p f contracts
  | None -> List.map f contracts

(* deterministic per-contract seed so every tool sees the same draw *)
let seed_of_name name =
  let h = Hashtbl.hash name in
  Int64.of_int ((h * 2654435761) land 0x3FFFFFFFFFFF)

let budget_small () = scaled 1200
let budget_large () = scaled 2000
let budget_d2 () = scaled 2500
let budget_d3 () = scaled 3000

let n_d1_small () = scaled 36
let n_d1_large () = scaled 14
let n_fig7 () = scaled 12
let n_d3 () = scaled 12

(* D1: generated populations, filtered by the paper's 3632-instruction
   small/large threshold. *)
let d1_small () =
  Corpus.Generator.population ~seed:101L ~n:(n_d1_small ()) Corpus.Generator.Small
    ~bug_rate:0.1
  |> List.map Corpus.Generator.compile
  |> List.filter (fun c -> Minisol.Contract.instruction_count c <= 3632)

let d1_large () =
  Corpus.Generator.population ~seed:202L ~n:(n_d1_large ()) Corpus.Generator.Large
    ~bug_rate:0.1
  |> List.map Corpus.Generator.compile
  |> List.filter (fun c -> Minisol.Contract.instruction_count c > 3632)

(* D3: the "popular, >30k transactions" population — the large generator
   at higher complexity, keeping its injected ground truth. *)
let d3 () =
  Corpus.Generator.population ~seed:303L ~n:(n_d3 ()) Corpus.Generator.Large
    ~bug_rate:0.35

let run_tool (profile : Baselines.Fuzzers.profile) ?(budget = 1000) contract =
  let config =
    { Config.default with rng_seed = seed_of_name contract.Minisol.Contract.name;
      max_executions = budget }
  in
  Baselines.Fuzzers.run profile ~config contract

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let pct x = Printf.sprintf "%.1f%%" x

(* coverage of a report at an execution checkpoint (series for Fig 5) *)
let coverage_at (r : Report.t) execs =
  let covered =
    List.fold_left
      (fun acc (cp : Report.checkpoint) ->
        if cp.execs <= execs then Stdlib.max acc cp.covered else acc)
      0 r.over_time
  in
  if r.total_branch_sides = 0 then 0.0
  else 100.0 *. float_of_int covered /. float_of_int r.total_branch_sides

let classes_found (r : Report.t) =
  List.sort_uniq compare
    (List.map (fun (f : Oracles.Oracle.finding) -> f.cls) r.findings)

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

(* raw data export for plotting *)
let results_dir = "bench_results"

let write_csv name headers rows =
  (try Unix.mkdir results_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat results_dir name in
  let oc = open_out path in
  output_string oc (String.concat "," headers);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (String.concat "," row);
      output_char oc '\n')
    rows;
  close_out oc;
  Printf.printf "[data] wrote %s\n%!" path

let write_file name content =
  (try Unix.mkdir results_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat results_dir name in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  Printf.printf "[data] wrote %s\n%!" path
