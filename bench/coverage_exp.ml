(* Fig. 5 (branch coverage over time per fuzzer, small & large) and
   Fig. 6 (overall branch coverage per fuzzer, small & large).

   Time is measured in sequence executions (the substrate is
   deterministic, so executions are the faithful progress axis); the
   paper's x-axis is seconds on its testbed. *)

let fuzzers = Baselines.Fuzzers.all

let run_population name contracts budget =
  List.map
    (fun (p : Baselines.Fuzzers.profile) ->
      let reports =
        Exp.map_contracts (fun c -> Exp.run_tool p ~budget c) contracts
      in
      (p.name, reports))
    fuzzers
  |> fun results ->
  ignore name;
  results

let fig5_series budget results =
  (* average coverage across the population at 10 checkpoints *)
  let grid = List.init 10 (fun i -> (i + 1) * budget / 10) in
  List.map
    (fun (tool, reports) ->
      ( tool,
        List.map
          (fun execs ->
            (execs, Exp.mean (List.map (fun r -> Exp.coverage_at r execs) reports)))
          grid ))
    results

let print_fig5 ?csv title budget results =
  Exp.section title;
  let t =
    Util.Table.create
      ~headers:
        ("execs"
        :: List.map (fun (p : Baselines.Fuzzers.profile) -> p.name) fuzzers)
  in
  let series = fig5_series budget results in
  let grid = List.init 10 (fun i -> (i + 1) * budget / 10) in
  List.iter
    (fun execs ->
      Util.Table.add_row t
        (string_of_int execs
        :: List.map
             (fun (_, points) -> Exp.pct (List.assoc execs points))
             series))
    grid;
  Util.Table.print t;
  match csv with
  | Some name ->
    Exp.write_csv name
      ("execs" :: List.map (fun (p : Baselines.Fuzzers.profile) -> p.name) fuzzers)
      (List.map
         (fun execs ->
           string_of_int execs
           :: List.map
                (fun (_, points) -> Printf.sprintf "%.2f" (List.assoc execs points))
                (fig5_series budget results))
         grid)
  | None -> ()

let print_fig6 results_small results_large =
  Exp.section "Fig. 6 - overall branch coverage of each fuzzer";
  let t = Util.Table.create ~headers:[ "Fuzzer"; "small contracts"; "large contracts" ] in
  List.iter
    (fun (p : Baselines.Fuzzers.profile) ->
      let cov results =
        Exp.mean
          (List.map Mufuzz.Report.coverage_pct (List.assoc p.name results))
      in
      Util.Table.add_row t
        [ p.name; Exp.pct (cov results_small); Exp.pct (cov results_large) ])
    fuzzers;
  Util.Table.print t;
  Exp.write_csv "fig6.csv"
    [ "fuzzer"; "small"; "large" ]
    (List.map
       (fun (p : Baselines.Fuzzers.profile) ->
         let cov results =
           Exp.mean
             (List.map Mufuzz.Report.coverage_pct (List.assoc p.name results))
         in
         [ p.name; Printf.sprintf "%.2f" (cov results_small);
           Printf.sprintf "%.2f" (cov results_large) ])
       fuzzers)

let run () =
  let small = Exp.d1_small () and large = Exp.d1_large () in
  let bs = Exp.budget_small () and bl = Exp.budget_large () in
  Printf.printf "D1-small: %d contracts, budget %d execs each\n" (List.length small) bs;
  Printf.printf "D1-large: %d contracts, budget %d execs each\n%!" (List.length large) bl;
  let rs = run_population "small" small bs in
  let rl = run_population "large" large bl in
  print_fig5 ~csv:"fig5_small.csv" "Fig. 5a - coverage over time on D1-small" bs rs;
  print_fig5 ~csv:"fig5_large.csv" "Fig. 5b - coverage over time on D1-large" bl rl;
  print_fig6 rs rl;
  (rs, rl)
