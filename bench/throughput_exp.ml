(* Campaign throughput, measured through the machine-readable report.

   Each target contract is fuzzed once; the report is serialised with
   [Report.to_json_string] and parsed back with [Telemetry.Json.of_string]
   — the exact pipeline a consumer of [mufuzz fuzz --json] sees — and the
   execs/sec, coverage %% and wall-time figures are read out of the
   parsed tree, never out of the in-memory report. That makes this bench
   double as an end-to-end check that the JSON surface carries everything
   a dashboard needs. Results go to bench_results/BENCH_throughput.json. *)

module J = Telemetry.Json

let targets () =
  [
    ("crowdsale", Minisol.Contract.compile Corpus.Examples.crowdsale);
    ("shared_wallet", Minisol.Contract.compile Corpus.Examples.wallet);
    ( "generated_large",
      Corpus.Generator.compile
        (List.hd
           (Corpus.Generator.population ~seed:909L ~n:1 Corpus.Generator.Large
              ~bug_rate:0.1)) );
  ]

let field name json =
  match J.member name json with
  | Some v -> v
  | None -> failwith ("JSON report is missing field " ^ name)

let num name json =
  match J.to_float (field name json) with
  | Some f -> f
  | None -> failwith ("JSON report field is not a number: " ^ name)

let run () =
  Exp.section "Campaign throughput (figures read back from the JSON report)";
  let budget = Exp.scaled 1500 in
  let measure (name, contract) =
    let config =
      { Mufuzz.Config.default with max_executions = budget; rng_seed = 77L;
        predict = true; predict_attempts = 10 }
    in
    let report = Mufuzz.Campaign.run ~config contract in
    let json =
      match J.of_string (Mufuzz.Report.to_json_string report) with
      | Ok j -> j
      | Error e -> failwith ("report did not round-trip through JSON: " ^ e)
    in
    let execs_per_sec = num "execs_per_sec" json in
    let coverage_pct = num "coverage_pct" json in
    let wall_seconds = num "wall_seconds" json in
    let executions = num "executions" json in
    Printf.printf "  %-16s %6.0f execs  %6.2fs  %8.1f execs/sec  %5.1f%% coverage\n%!"
      name executions wall_seconds execs_per_sec coverage_pct;
    J.Obj
      [
        ("contract", J.String name);
        ("executions", J.Int (int_of_float executions));
        ("wall_seconds", J.Float wall_seconds);
        ("execs_per_sec", J.Float execs_per_sec);
        ("coverage_pct", J.Float coverage_pct);
      ]
  in
  let rows = List.map measure (targets ()) in
  let doc =
    J.Obj
      [
        ( "benchmark",
          J.String
            (Printf.sprintf
               "MuFuzz sequential campaign throughput, budget %d per contract"
               budget) );
        ("source", J.String "parsed back from Report.to_json_string");
        ("results", J.List rows);
      ]
  in
  Exp.write_file "BENCH_throughput.json" (J.to_string doc ^ "\n")
