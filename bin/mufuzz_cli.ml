(* The mufuzz command-line tool.

   Subcommands:
     fuzz <file.sol>      — fuzz a contract and report coverage + findings
     resume <dir>         — resume a campaign from its checkpoint directory
     analyze <file.sol>   — static front end: sequence, dependencies, CFG
     disasm <file.sol>    — compile and print the bytecode listing
     exec <file.sol> fn   — run a single transaction and dump the trace
     static <file.sol>    — run the reimplemented static analyzers
     shrink <repro.json>  — delta-debug a repro artifact to a minimal one
     repro <repro.json>…  — replay repro artifacts; exit 0 iff all fire *)

open Cmdliner

let read_source path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  match Minisol.Contract.compile (read_source path) with
  | c -> c
  | exception Minisol.Lexer.Lex_error (msg, line, col) ->
    Printf.eprintf "%s:%d:%d: lexical error: %s\n" path line col msg;
    exit 1
  | exception Minisol.Parser.Parse_error (msg, line, col) ->
    Printf.eprintf "%s:%d:%d: parse error: %s\n" path line col msg;
    exit 1
  | exception Minisol.Typecheck.Type_error msg ->
    Printf.eprintf "%s: type error: %s\n" path msg;
    exit 1

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Minisol contract source file.")

let budget_arg =
  Arg.(value & opt int 5000 & info [ "budget"; "n" ] ~docv:"N"
         ~doc:"Execution budget (transaction sequences).")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED"
         ~doc:"Campaign RNG seed (campaigns are deterministic per seed).")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains for the campaign. 1 (the default) runs the \
               sequential loop; N>1 shards seed-energy batches across N \
               cores, merging coverage at batch boundaries.")

(* [--round-batch] takes a positive integer or the literal "auto";
   0, negatives and garbage are structured parse errors (exit 124)
   rather than a silent clamp deep in the campaign *)
let round_batch_conv =
  let parse s =
    match String.lowercase_ascii (String.trim s) with
    | "auto" -> Ok `Auto
    | t -> (
      match int_of_string_opt t with
      | Some n when n >= 1 -> Ok (`Fixed n)
      | Some n ->
        Error
          (`Msg
             (Printf.sprintf
                "round-batch must be a positive integer or 'auto', got %d" n))
      | None ->
        Error
          (`Msg
             (Printf.sprintf
                "round-batch must be a positive integer or 'auto', got %S" s)))
  in
  let print ppf = function
    | `Auto -> Format.pp_print_string ppf "auto"
    | `Fixed n -> Format.pp_print_int ppf n
  in
  Arg.conv ~docv:"N|auto" (parse, print)

let round_batch_arg =
  Arg.(value & opt round_batch_conv (`Fixed Mufuzz.Config.default.round_batch)
       & info [ "round-batch" ] ~docv:"N|auto"
           ~doc:"Seeds each worker domain fuzzes per parallel round. Larger \
                 values amortise coordination (fewer merge barriers) at the \
                 cost of staler worker coverage snapshots; 'auto' starts at \
                 the default and lets a hysteretic controller widen or \
                 narrow the batch from the observed merge-stall ratio. \
                 Ignored at --jobs 1.")

let predict_arg =
  Arg.(value & flag & info [ "predict" ]
         ~doc:"Enable input prediction for hard branches: when a frontier \
               branch keeps being reached without flipping, solve candidate \
               values from the comparison operands recorded in its trace \
               (exact value for EQ, boundaries for orderings) and write them \
               into the seed through the mutation mask. Off by default, \
               keeping campaigns bit-for-bit identical to earlier builds.")

let predict_attempts_arg =
  Arg.(value & opt int Mufuzz.Config.default.predict_attempts
       & info [ "predict-attempts" ] ~docv:"N"
           ~doc:"Failed flips of a frontier branch before the prediction \
                 phase fires for it (with $(b,--predict)).")

let predict_candidates_arg =
  Arg.(value & opt int Mufuzz.Config.default.predict_max_candidates
       & info [ "predict-candidates" ] ~docv:"N"
           ~doc:"Proposal executions one prediction firing may spend (with \
                 $(b,--predict)).")

let tool_arg =
  Arg.(value & opt string "MuFuzz" & info [ "tool" ] ~docv:"TOOL"
         ~doc:"Fuzzer profile: MuFuzz, sFuzz, ConFuzzius, Smartian, IR-Fuzz.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
         ~doc:"Write the full report to a file.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log campaign events (new findings, coverage growth).")

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let corpus_in_arg =
  Arg.(value & opt (some file) None & info [ "corpus" ] ~docv:"FILE"
         ~doc:"Bootstrap the campaign from a saved seed corpus.")

let corpus_out_arg =
  Arg.(value & opt (some string) None & info [ "save-corpus" ] ~docv:"FILE"
         ~doc:"Save the final seed queue for a later run.")

let minimize_arg =
  Arg.(value & flag & info [ "minimize" ] ~doc:"Shrink each witness sequence to a minimal proof-of-concept (delta debugging).")

let ablation_arg =
  Arg.(value & opt_all string [] & info [ "disable" ] ~docv:"COMPONENT"
         ~doc:"Disable a MuFuzz component: sequence, mask, energy. Repeatable.")

let json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the campaign report as a JSON object on stdout and \
               suppress the human-readable output. With $(b,--out), the \
               file also receives JSON instead of text.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Stream campaign events to FILE as JSON Lines (one event \
               object per line, tagged by its \"event\" field).")

let status_interval_arg =
  Arg.(value & opt float 0.0 & info [ "status-interval" ] ~docv:"SECS"
         ~doc:"Print a live status line (execs, coverage, findings, \
               execs/sec) to stderr every SECS seconds. 0 disables.")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the final metrics registry to FILE in Prometheus \
               text exposition format.")

let strict_corpus_arg =
  Arg.(value & flag & info [ "strict-corpus" ]
         ~doc:"Treat corrupt seed blocks in $(b,--corpus) as fatal: report \
               each skipped block and exit nonzero instead of fuzzing a \
               silently smaller corpus.")

let artifacts_arg =
  Arg.(value & opt (some string) None & info [ "artifacts" ] ~docv:"DIR"
         ~doc:"After the campaign, shrink each unique finding's witness \
               and write one deterministic repro artifact (JSON) per \
               finding into DIR (created if missing). Replay them later \
               with $(b,mufuzz repro).")

let max_seconds_arg =
  Arg.(value & opt float 0.0 & info [ "max-seconds" ] ~docv:"SECS"
         ~doc:"Wall-clock budget: stop the campaign after SECS seconds even \
               if executions remain. 0 (the default) disables the time \
               budget, keeping campaigns deterministic per seed.")

let checkpoint_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR"
         ~doc:"Persist crash-safe campaign checkpoints into DIR (created if \
               missing). Each write is atomic (temp file + rename) and the \
               directory keeps the newest $(b,--checkpoint-keep) files. \
               Resume later with $(b,mufuzz resume) DIR.")

let checkpoint_every_arg =
  Arg.(value & opt int 500 & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Write a checkpoint every N executions (at the next safe \
               point). 0 disables the execution cadence.")

let checkpoint_seconds_arg =
  Arg.(value & opt float 0.0 & info [ "checkpoint-seconds" ] ~docv:"SECS"
         ~doc:"Also write a checkpoint when SECS seconds have passed since \
               the last one. 0 (the default) disables the time cadence.")

let checkpoint_keep_arg =
  Arg.(value & opt int 3 & info [ "checkpoint-keep" ] ~docv:"K"
         ~doc:"How many rotated checkpoint files to keep (oldest pruned).")

let write_report_file ~json path report =
  let content =
    if json then Mufuzz.Report.to_json_string report ^ "\n"
    else Mufuzz.Report.to_text report
  in
  Util.Fileio.write_atomic path content

let write_metrics_file metrics = function
  | Some path -> Util.Fileio.write_atomic path (Telemetry.Metrics.dump metrics)
  | None -> ()

(* ---------------- fuzz ---------------- *)

let fuzz_cmd =
  let run file budget seed jobs round_batch predict predict_attempts
      predict_candidates tool disabled out do_minimize
      corpus_in corpus_out json trace status_interval metrics_out
      strict_corpus artifacts_dir max_seconds checkpoint_dir checkpoint_every
      checkpoint_seconds checkpoint_keep verbose =
    setup_logs verbose;
    let contract = load file in
    let profile =
      match Baselines.Fuzzers.find tool with
      | Some p -> p
      | None ->
        Printf.eprintf "unknown tool %s\n" tool;
        exit 1
    in
    let config =
      { Mufuzz.Config.default with max_executions = budget; rng_seed = seed;
        jobs = Stdlib.max 1 jobs;
        round_batch =
          (match round_batch with
          | `Fixed n -> n
          | `Auto -> Mufuzz.Config.default.round_batch);
        round_batch_auto = (round_batch = `Auto);
        trace_path = trace;
        predict;
        predict_attempts = Stdlib.max 1 predict_attempts;
        predict_max_candidates = Stdlib.max 1 predict_candidates;
        strict_corpus;
        status_interval = Stdlib.max 0.0 status_interval;
        max_seconds = Stdlib.max 0.0 max_seconds;
        checkpoint_dir;
        checkpoint_every_execs = Stdlib.max 0 checkpoint_every;
        checkpoint_every_seconds = Stdlib.max 0.0 checkpoint_seconds;
        checkpoint_keep = Stdlib.max 1 checkpoint_keep }
    in
    let config =
      List.fold_left
        (fun config component ->
          match component with
          | "sequence" -> Mufuzz.Config.ablation_no_sequence config
          | "mask" -> Mufuzz.Config.ablation_no_mask config
          | "energy" -> Mufuzz.Config.ablation_no_energy config
          | other ->
            Printf.eprintf "unknown component %s\n" other;
            exit 1)
        config disabled
    in
    let config, corpus_skipped =
      match corpus_in with
      | Some path ->
        let seeds, skipped =
          Mufuzz.Replay.load_corpus ~abi:contract.Minisol.Contract.abi path
        in
        List.iter
          (fun (i, reason) ->
            Printf.eprintf "%s: %s: skipped corrupt seed block %d: %s\n"
              (if config.strict_corpus then "error" else "warning")
              path i reason)
          skipped;
        if config.strict_corpus && skipped <> [] then begin
          Printf.eprintf
            "%s: %d corrupt seed block(s) with --strict-corpus; aborting\n"
            path (List.length skipped);
          exit 2
        end;
        if not json then
          Printf.printf "loaded %d corpus seeds from %s\n" (List.length seeds)
            path;
        ({ config with initial_corpus = seeds }, skipped)
      | None -> (config, [])
    in
    if not json then begin
      Printf.printf "fuzzing %s with %s (budget %d, seed %Ld, jobs %d)\n"
        contract.Minisol.Contract.name profile.name budget seed config.jobs;
      Printf.printf "sequence: [%s]\n\n"
        (String.concat " -> " (Mufuzz.Campaign.derive_sequence contract))
    end;
    (* apply the profile up front (configure is idempotent) so the
       checkpoint driver persists the effective config, not the raw
       CLI one — a resumed baseline campaign must re-run under the
       same policy *)
    let config = profile.configure config in
    let metrics = Telemetry.Metrics.create () in
    let driver =
      Persist.Driver.of_config ~metrics ~tool:profile.name ~contract config
    in
    let report =
      Baselines.Fuzzers.run profile ~config ~metrics
        ?on_safe_point:(Option.map Persist.Driver.hook driver)
        contract
    in
    let report = { report with Mufuzz.Report.corpus_skipped } in
    (match artifacts_dir with
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let target = Triage.Shrink.target_of_config config contract in
      List.iter
        (fun ((f : Oracles.Oracle.finding), seed) ->
          let r = Triage.Shrink.shrink ~target f seed in
          match Triage.Shrink.reraise ~target f r.seed with
          | None ->
            Printf.eprintf "warning: finding [%s] pc=%d did not reproduce; no artifact written\n"
              (Oracles.Oracle.class_to_string f.cls) f.pc
          | Some finding ->
            let a =
              Triage.Artifact.make ~contract ~gas_per_tx:config.gas_per_tx
                ~n_senders:config.n_senders ~attacker:config.attacker_enabled
                ~finding ~seed:r.seed
            in
            let path = Filename.concat dir (Triage.Artifact.file_name a) in
            Triage.Artifact.save path a;
            if not json then
              Printf.printf "artifact: %s (%d txs, %d shrink execs)\n" path
                (List.length r.seed.txs) r.execs)
        report.witness_seeds
    | None -> ());
    write_metrics_file metrics metrics_out;
    if json then begin
      print_endline (Mufuzz.Report.to_json_string report);
      Option.iter (fun path -> write_report_file ~json:true path report) out
    end
    else begin
      Format.printf "%a@." Mufuzz.Report.pp_summary report;
      (match report.parallel with
      | Some p ->
        Printf.printf
          "parallel: %d domains, %d rounds, %.2fs merging, %.2fs merge-wait, \
           %d steals%s\n"
          p.jobs p.rounds p.merge_seconds p.merge_wait_seconds p.steals
          (if p.round_batch_auto then
             Printf.sprintf " (round-batch auto: %d->%d)" p.round_batch
               p.round_batch_final
           else "");
        List.iter
          (fun (d : Mufuzz.Report.domain_stat) ->
            Printf.printf "  domain %d: %d execs, %.1f execs/sec, %.2fs stall\n"
              d.domain d.d_execs (Mufuzz.Report.execs_per_sec d) d.stall_seconds)
          p.domains
      | None -> ());
      List.iter
        (fun ((f : Oracles.Oracle.finding), witness) ->
          Format.printf "@.%a@.  %s@.  witness: %s@." Oracles.Oracle.pp_finding f
            (Oracles.Oracle.class_description f.cls)
            witness)
        report.witnesses;
      if do_minimize && report.witness_seeds <> [] then begin
        print_endline "\nminimized witnesses:";
        List.iter
          (fun ((f : Oracles.Oracle.finding), seed) ->
            let shrunk, spent =
              Mufuzz.Minimize.minimize ~contract ~gas:config.gas_per_tx
                ~n_senders:config.n_senders ~attacker:config.attacker_enabled f
                seed
            in
            Format.printf "  [%s] (%d extra execs) %s@."
              (Oracles.Oracle.class_to_string f.cls)
              spent (Mufuzz.Seed.show shrunk))
          report.witness_seeds
      end;
      (match corpus_out with
      | Some path ->
        Mufuzz.Replay.save_corpus path report.corpus;
        Printf.printf "\nsaved %d corpus seeds to %s\n" (List.length report.corpus)
          path
      | None -> ());
      match out with
      | Some path ->
        write_report_file ~json:false path report;
        Printf.printf "\nfull report written to %s\n" path
      | None -> ()
    end;
    (* --save-corpus still works in JSON mode, silently *)
    if json then
      match corpus_out with
      | Some path -> Mufuzz.Replay.save_corpus path report.corpus
      | None -> ()
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Fuzz a contract and report coverage and findings.")
    Term.(const run $ file_arg $ budget_arg $ seed_arg $ jobs_arg
          $ round_batch_arg $ predict_arg $ predict_attempts_arg
          $ predict_candidates_arg $ tool_arg
          $ ablation_arg $ out_arg $ minimize_arg $ corpus_in_arg $ corpus_out_arg
          $ json_arg $ trace_arg $ status_interval_arg $ metrics_arg
          $ strict_corpus_arg $ artifacts_arg $ max_seconds_arg
          $ checkpoint_arg $ checkpoint_every_arg $ checkpoint_seconds_arg
          $ checkpoint_keep_arg $ verbose_arg)

(* ---------------- resume ---------------- *)

let resume_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Checkpoint directory written by $(b,mufuzz fuzz --checkpoint).")
  in
  let budget_override_arg =
    Arg.(value & opt (some int) None & info [ "budget"; "n" ] ~docv:"N"
           ~doc:"Override the execution budget (e.g. to extend a finished \
                 campaign). Default: the budget recorded in the checkpoint.")
  in
  let max_seconds_override_arg =
    Arg.(value & opt (some float) None & info [ "max-seconds" ] ~docv:"SECS"
           ~doc:"Override the wall-clock budget recorded in the checkpoint.")
  in
  let run dir budget_override max_seconds_override out json trace
      status_interval metrics_out verbose =
    setup_logs verbose;
    match Persist.Store.load_latest dir with
    | Error msg ->
      Printf.eprintf "%s: %s\n" dir msg;
      exit 1
    | Ok (path, ckpt) ->
      let contract = ckpt.Persist.Checkpoint.contract in
      let profile =
        match Baselines.Fuzzers.find ckpt.tool with
        | Some p -> p
        | None ->
          Printf.eprintf "%s: unknown tool %S in checkpoint\n" path ckpt.tool;
          exit 1
      in
      let config =
        { ckpt.config with
          (* keep writing into the directory we resumed from, wherever
             the original campaign's --checkpoint pointed *)
          Mufuzz.Config.checkpoint_dir = Some dir;
          max_executions =
            Option.value budget_override ~default:ckpt.config.max_executions;
          max_seconds =
            Option.value max_seconds_override ~default:ckpt.config.max_seconds;
          trace_path = (match trace with Some _ -> trace | None -> ckpt.config.trace_path);
          status_interval =
            (if status_interval > 0.0 then status_interval
             else ckpt.config.status_interval) }
      in
      if not json then
        Printf.printf
          "resuming %s with %s from %s (%d/%d executions done, %d queue seeds)\n"
          contract.Minisol.Contract.name profile.name path
          ckpt.snapshot.Mufuzz.Campaign.sn_execs config.max_executions
          (List.length ckpt.snapshot.sn_queue);
      let metrics = Telemetry.Metrics.create () in
      let driver =
        Persist.Driver.of_config ~metrics ~start_execs:ckpt.snapshot.sn_execs
          ~tool:profile.name ~contract config
      in
      let report =
        Baselines.Fuzzers.run profile ~config ~metrics
          ~resume:(path, ckpt.snapshot)
          ?on_safe_point:(Option.map Persist.Driver.hook driver)
          contract
      in
      write_metrics_file metrics metrics_out;
      if json then begin
        print_endline (Mufuzz.Report.to_json_string report);
        Option.iter (fun p -> write_report_file ~json:true p report) out
      end
      else begin
        Format.printf "%a@." Mufuzz.Report.pp_summary report;
        List.iter
          (fun ((f : Oracles.Oracle.finding), witness) ->
            Format.printf "@.%a@.  %s@.  witness: %s@."
              Oracles.Oracle.pp_finding f
              (Oracles.Oracle.class_description f.cls)
              witness)
          report.witnesses;
        match out with
        | Some p ->
          write_report_file ~json:false p report;
          Printf.printf "\nfull report written to %s\n" p
        | None -> ()
      end
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"Resume a fuzzing campaign from its checkpoint directory. At \
             jobs 1 the resumed campaign replays the exact run the \
             uninterrupted campaign would have produced (same RNG stream, \
             same coverage, same findings); at jobs N the merged coverage \
             and findings are equivalent.")
    Term.(const run $ dir_arg $ budget_override_arg $ max_seconds_override_arg
          $ out_arg $ json_arg $ trace_arg $ status_interval_arg $ metrics_arg
          $ verbose_arg)

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let run file =
    let contract = load file in
    let info = Analysis.Statevars.analyze contract.ast in
    Format.printf "%a@." Analysis.Statevars.pp info;
    Printf.printf "dependency edges:\n";
    List.iter
      (fun (w, r, v) -> Printf.printf "  %s -[%s]-> %s\n" w v r)
      (Analysis.Sequence.dependency_edges info);
    Printf.printf "base sequence   : [%s]\n"
      (String.concat " -> " (Analysis.Sequence.derive_base info));
    Printf.printf "mutated sequence: [%s]\n"
      (String.concat " -> " (Analysis.Sequence.derive info));
    let cfg = Analysis.Cfg.build contract.bytecode in
    Printf.printf "branches: %d JUMPIs; vulnerable instructions: %d\n"
      (List.length (Analysis.Cfg.branch_points cfg))
      (List.length (Analysis.Cfg.vulnerable_pcs cfg))
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the static front end on a contract.")
    Term.(const run $ file_arg)

(* ---------------- disasm ---------------- *)

let disasm_cmd =
  let run file =
    let contract = load file in
    print_string (Evm.Bytecode.to_listing contract.bytecode)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Compile and print the bytecode listing.")
    Term.(const run $ file_arg)

(* ---------------- exec ---------------- *)

let exec_cmd =
  let fn_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FUNCTION"
           ~doc:"Function name to call (constructor runs first).")
  in
  let args_arg =
    Arg.(value & opt_all string [] & info [ "arg" ] ~docv:"VALUE"
           ~doc:"Decimal argument value. Repeatable, in order.")
  in
  let value_arg =
    Arg.(value & opt string "0" & info [ "value" ] ~docv:"WEI"
           ~doc:"msg.value in wei.")
  in
  let run file fn_name args value =
    let contract = load file in
    let addr = Mufuzz.Accounts.contract_address in
    let caller = Mufuzz.Accounts.deployer in
    let st = Minisol.Contract.deploy Evm.State.empty addr contract in
    let st = Evm.State.credit st caller (Word.U256.shift_left Word.U256.one 200) in
    let call st name vals value =
      let f =
        match List.find_opt (fun (f : Abi.func) -> f.Abi.name = name) contract.abi with
        | Some f -> f
        | None ->
          Printf.eprintf "no function %s\n" name;
          exit 1
      in
      Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st
        { caller; origin = caller; callee = addr; value;
          data = Abi.encode_call f vals; gas = 5_000_000 }
    in
    let st, _ = call st "constructor" [] Word.U256.zero in
    let vals = List.map (fun s -> Abi.VUint (Word.U256.of_decimal_string s)) args in
    let st, trace = call st fn_name vals (Word.U256.of_decimal_string value) in
    Printf.printf "status: %s, gas used: %d\n" (Evm.Trace.status_to_string trace.status)
      trace.gas_used;
    List.iter (fun e -> Format.printf "  %a@." Evm.Trace.pp_event e) trace.events;
    Printf.printf "storage after:\n";
    List.iter
      (fun (k, v) ->
        Printf.printf "  %s = %s\n" (Word.U256.to_hex_string k)
          (Word.U256.to_decimal_string v))
      (Evm.State.storage_dump st addr)
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Execute one transaction and dump the trace.")
    Term.(const run $ file_arg $ fn_arg $ args_arg $ value_arg)

(* ---------------- corpus ---------------- *)

let corpus_cmd =
  let dir_arg =
    Arg.(value & opt string "d2_suite" & info [ "dir" ] ~docv:"DIR"
           ~doc:"Output directory for the labelled suite.")
  in
  let run dir =
    Corpus.Vuln.write_to_dir dir;
    Printf.printf "wrote %d contracts (+LABELS.txt) to %s/\n"
      (List.length Corpus.Vuln.suite) dir
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"Export the labelled D2 vulnerability suite as .sol files.")
    Term.(const run $ dir_arg)

(* ---------------- shrink ---------------- *)

let load_artifact path =
  match Triage.Artifact.load path with
  | Ok a -> a
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 1

let shrink_cmd =
  let artifact_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"REPRO"
           ~doc:"Repro artifact (JSON) to minimise.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write the shrunk artifact to FILE (default: overwrite the \
                 input in place).")
  in
  let max_execs_arg =
    Arg.(value & opt int 4000 & info [ "max-execs" ] ~docv:"N"
           ~doc:"Execution budget for the shrink.")
  in
  let run path out max_execs =
    let a = load_artifact path in
    match Triage.Repro.shrink ~max_execs a with
    | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 1
    | Ok (shrunk, execs) ->
      let dest = Option.value out ~default:path in
      Triage.Artifact.save dest shrunk;
      Printf.printf "%s: %d -> %d txs (%d execs), wrote %s\n" path
        (List.length a.seed.txs)
        (List.length shrunk.seed.txs)
        execs dest
  in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:"Delta-debug a repro artifact to a minimal, still-failing one.")
    Term.(const run $ artifact_arg $ out_arg $ max_execs_arg)

(* ---------------- repro ---------------- *)

let repro_cmd =
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"REPRO"
           ~doc:"Repro artifacts (JSON) to replay.")
  in
  let run files =
    let failures =
      List.fold_left
        (fun failures path ->
          let a = load_artifact path in
          let o = Triage.Repro.replay a in
          Printf.printf "%s %s: %s\n"
            (if o.ok then "ok  " else "FAIL")
            path (Triage.Repro.describe a o);
          if o.ok then failures else failures + 1)
        0 files
    in
    if failures > 0 then begin
      Printf.eprintf "%d of %d artifact(s) failed to reproduce\n" failures
        (List.length files);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "repro"
       ~doc:"Replay repro artifacts; exit 0 iff every recorded oracle fires.")
    Term.(const run $ files_arg)

(* ---------------- static ---------------- *)

let static_cmd =
  let run file =
    let contract = load file in
    List.iter
      (fun (p : Baselines.Staticdet.profile) ->
        match Baselines.Staticdet.analyze p contract with
        | Baselines.Staticdet.Findings fs ->
          Printf.printf "%-10s:" p.name;
          if fs = [] then print_endline " clean"
          else begin
            print_newline ();
            List.iter
              (fun (f : Oracles.Oracle.finding) ->
                Printf.printf "  [%s] %s\n"
                  (Oracles.Oracle.class_to_string f.cls)
                  f.detail)
              fs
          end
        | Baselines.Staticdet.Timeout -> Printf.printf "%-10s: timeout\n" p.name
        | Baselines.Staticdet.Error e -> Printf.printf "%-10s: error (%s)\n" p.name e)
      Baselines.Staticdet.all
  in
  Cmd.v
    (Cmd.info "static" ~doc:"Run the reimplemented static analyzers.")
    Term.(const run $ file_arg)

(* ---------------- serve ---------------- *)

let serve_cmd =
  let state_arg =
    Arg.(value & opt string "mufuzz-state" & info [ "state" ] ~docv:"DIR"
           ~doc:"Service state directory (created if missing). Each campaign \
                 owns DIR/<id>/ with its source, metadata, event trace, \
                 checkpoints, final report and repro artifacts; a restarted \
                 daemon rescans DIR and resumes unfinished campaigns.")
  in
  let socket_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix socket to listen on. Default: DIR/serve.sock.")
  in
  let port_arg =
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
           ~doc:"Also listen on 127.0.0.1:PORT (TCP).")
  in
  let slice_arg =
    Arg.(value & opt int 500 & info [ "slice-execs" ] ~docv:"N"
           ~doc:"Scheduler time slice in executions. A running campaign is \
                 preempted at its next safe point once the slice is spent \
                 (its snapshot checkpointed, the next campaign scheduled); \
                 smaller slices interleave campaigns more finely at the \
                 cost of more checkpoint writes.")
  in
  let pool_jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains in the shared pool. Campaigns submitted with \
                 \"jobs\" > 1 shard across it; the default 1 runs every \
                 campaign sequentially (and deterministically).")
  in
  let run state socket port slice_execs jobs checkpoint_keep verbose =
    setup_logs verbose;
    if not verbose then Logs.set_level (Some Logs.Info);
    let metrics = Telemetry.Metrics.create () in
    let engine =
      Serve.Engine.create ~slice_execs ~checkpoint_keep ~jobs ~state_dir:state
        ~metrics ()
    in
    let socket =
      Some (Option.value socket ~default:(Filename.concat state "serve.sock"))
    in
    Serve.Server.run ?socket ?port engine
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the multi-campaign fuzzing service daemon. Clients submit \
             contracts over a line-delimited JSON protocol (see \
             PROTOCOL.md); campaigns run concurrently via safe-point \
             preemption, each preserving the exact report an uninterrupted \
             $(b,mufuzz fuzz) would produce.")
    Term.(const run $ state_arg $ socket_arg $ port_arg $ slice_arg
          $ pool_jobs_arg $ checkpoint_keep_arg $ verbose_arg)

(* ---------------- client ---------------- *)

let client_cmd =
  let socket_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Daemon Unix socket to connect to.")
  in
  let port_arg =
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
           ~doc:"Connect to 127.0.0.1:PORT instead of a Unix socket.")
  in
  let requests_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"REQUEST"
           ~doc:"Raw JSON request lines, sent in order (see PROTOCOL.md), \
                 e.g. '{\"op\":\"status\",\"id\":\"c0001\"}'.")
  in
  let structured_error msg =
    print_endline
      (Serve.Protocol.error ~code:Serve.Protocol.Internal msg)
  in
  let run socket port requests =
    let addr =
      match (socket, port) with
      | Some p, None -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX p)
      | None, Some p ->
        Ok (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, p))
      | None, None -> Error "one of --socket or --port is required"
      | Some _, Some _ -> Error "give --socket or --port, not both"
    in
    match addr with
    | Error msg ->
      structured_error msg;
      exit 2
    | Ok (domain, addr) -> (
      match
        let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
        Unix.connect fd addr;
        fd
      with
      | exception Unix.Unix_error (e, _, _) ->
        structured_error
          (Printf.sprintf "cannot connect: %s" (Unix.error_message e));
        exit 2
      | fd ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let read_line_or_die () =
          match input_line ic with
          | line -> line
          | exception End_of_file ->
            structured_error "server closed the connection";
            exit 2
        in
        ignore (read_line_or_die ());  (* the greeting *)
        let all_ok =
          List.fold_left
            (fun all_ok request ->
              output_string oc request;
              output_char oc '\n';
              flush oc;
              let response = read_line_or_die () in
              print_endline response;
              let ok =
                match Telemetry.Json.of_string response with
                | Ok j -> (
                  match
                    Option.bind (Telemetry.Json.member "ok" j)
                      Telemetry.Json.to_bool
                  with
                  | Some b -> b
                  | None -> false)
                | Error _ -> false
              in
              all_ok && ok)
            true requests
        in
        close_out_noerr oc;
        if not all_ok then exit 1)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send raw protocol requests to a running $(b,mufuzz serve) \
             daemon, one response line per request on stdout. Exits 0 iff \
             every response has \"ok\": true, 1 on a protocol-level error \
             response, 2 when the daemon is unreachable.")
    Term.(const run $ socket_arg $ port_arg $ requests_arg)

(* ---------------- fleet ---------------- *)

let fleet_state_arg =
  Arg.(required & opt (some string) None & info [ "state" ] ~docv:"DIR"
         ~doc:"Fleet state directory: the ledger, the pinned fleet config, \
               per-shard progress and summaries. Re-running with the same \
               DIR resumes the fleet.")

let fleet_corpus_arg =
  Arg.(required & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
         ~doc:"Sharded corpus directory (from $(b,mufuzz fleet shard)).")

let fleet_config_term =
  let tools_arg =
    Arg.(value & opt (some string) None & info [ "tools" ] ~docv:"T1,T2"
           ~doc:"Comma-separated fuzzer profiles. Default: the paper's five \
                 baselines (sFuzz, ConFuzzius, Smartian, IR-Fuzz, MuFuzz).")
  in
  let budget_small_arg =
    Arg.(value & opt int 1200 & info [ "budget-small" ] ~docv:"N"
           ~doc:"Execution budget per campaign on small contracts.")
  in
  let budget_large_arg =
    Arg.(value & opt int 2000 & info [ "budget-large" ] ~docv:"N"
           ~doc:"Execution budget per campaign on large contracts.")
  in
  let fleet_seed_arg =
    Arg.(value & opt int64 0L & info [ "seed" ] ~docv:"SEED"
           ~doc:"Fleet base seed, xor-folded into each contract's \
                 deterministic campaign seed. 0 (the default) reproduces \
                 the bench harness's draws.")
  in
  let ckpt_every_arg =
    Arg.(value & opt int 500 & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Campaign checkpoint cadence inside workers (executions) — \
                 the replay granularity after a kill.")
  in
  let buckets_arg =
    Arg.(value & opt int 10 & info [ "buckets" ] ~docv:"N"
           ~doc:"Coverage-over-time curve resolution (Fig. 5 grid points).")
  in
  let build tools budget_small budget_large seed checkpoint_every buckets =
    let config =
      {
        Fleet.Config.tools =
          (match tools with
          | None -> Fleet.Config.default.tools
          | Some s ->
            List.filter_map
              (fun t ->
                let t = String.trim t in
                if t = "" then None else Some t)
              (String.split_on_char ',' s));
        budget_small;
        budget_large;
        seed;
        checkpoint_every;
        buckets;
      }
    in
    match Fleet.Config.validate_tools config with
    | Ok () when config.buckets >= 1 -> `Ok config
    | Ok () -> `Error (false, "--buckets must be >= 1")
    | Error e -> `Error (false, e)
  in
  Term.(ret
          (const build $ tools_arg $ budget_small_arg $ budget_large_arg
           $ fleet_seed_arg $ ckpt_every_arg $ buckets_arg))

let fleet_shard_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory to write the shard files and manifest into.")
  in
  let shards_arg =
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"K"
           ~doc:"Number of shards to slice the corpus into.")
  in
  let d1_scale_arg =
    Arg.(value & opt (some int) None & info [ "d1-scale" ] ~docv:"S"
           ~doc:"Generate the bench harness's D1 populations at S times \
                 the base size (36 small + 14 large contracts per unit, \
                 seeds 101/202, filtered at the paper's 3632-instruction \
                 small/large threshold) instead of reading source files.")
  in
  let files_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"Minisol contract source files to shard.")
  in
  let run out shards d1_scale files =
    let entries =
      match (d1_scale, files) with
      | Some s, [] ->
        if s < 1 then (Printf.eprintf "mufuzz: --d1-scale must be >= 1\n"; exit 124);
        let keep small (spec : Corpus.Generator.spec) =
          let c = Corpus.Generator.compile spec in
          let n = Minisol.Contract.instruction_count c in
          if small then n <= 3632 else n > 3632
        in
        let small =
          Corpus.Generator.population ~seed:101L ~n:(36 * s)
            Corpus.Generator.Small ~bug_rate:0.1
          |> List.filter (keep true)
        in
        let large =
          Corpus.Generator.population ~seed:202L ~n:(14 * s)
            Corpus.Generator.Large ~bug_rate:0.1
          |> List.filter (keep false)
        in
        List.map
          (fun (spec : Corpus.Generator.spec) ->
            { Fleet.Shard.name = spec.name; source = spec.source })
          (small @ large)
      | None, (_ :: _ as files) ->
        List.map
          (fun path ->
            { Fleet.Shard.name =
                Filename.remove_extension (Filename.basename path);
              source = read_source path })
          files
      | Some _, _ :: _ ->
        Printf.eprintf "mufuzz: give --d1-scale or source files, not both\n";
        exit 124
      | None, [] ->
        Printf.eprintf "mufuzz: nothing to shard (give --d1-scale or files)\n";
        exit 124
    in
    let manifest = Fleet.Shard.write_list ~dir:out ~shards entries in
    Printf.printf "wrote %d contracts into %d shards under %s\n"
      manifest.Fleet.Shard.m_total
      (Fleet.Shard.shards manifest)
      out;
    List.iteri
      (fun k (info : Fleet.Shard.shard_info) ->
        Printf.printf "  shard %d: %s (%d contracts)\n" k info.si_file
          info.si_count)
      manifest.Fleet.Shard.m_shards
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:"Slice a contract corpus into hash-verified fleet shards plus a \
             manifest. Workers later stream these files one contract at a \
             time.")
    Term.(const run $ out_arg $ shards_arg $ d1_scale_arg $ files_arg)

let fleet_run_cmd =
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers"; "j" ] ~docv:"N"
           ~doc:"Local worker processes to fork (ignored with --daemon).")
  in
  let daemon_arg =
    Arg.(value & opt_all string [] & info [ "daemon" ] ~docv:"SOCKET"
           ~doc:"Instead of forking workers, submit campaigns to the \
                 $(b,mufuzz serve) daemon at this Unix socket (repeatable; \
                 campaigns round-robin across daemons).")
  in
  let daemon_port_arg =
    Arg.(value & opt_all int [] & info [ "daemon-port" ] ~docv:"PORT"
           ~doc:"Like --daemon, for a TCP daemon on 127.0.0.1:PORT.")
  in
  let heartbeat_arg =
    Arg.(value & opt float 60.0 & info [ "heartbeat-timeout" ] ~docv:"SECS"
           ~doc:"Declare a worker hung after this many seconds of heartbeat \
                 silence, kill it and reassign its shard lease. 0 disables.")
  in
  let status_arg =
    Arg.(value & opt float 0.0 & info [ "status" ] ~docv:"SECS"
           ~doc:"Print a fleet progress line to stderr every SECS seconds.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Also write fig5_small.csv, fig5_large.csv, fig6.csv and \
                 findings.csv (bench-harness formats) into DIR.")
  in
  let run state corpus config workers daemons daemon_ports heartbeat status
      out metrics_out verbose =
    setup_logs verbose;
    let dispatch =
      match
        List.map (fun p -> Fleet.Client.Unix_socket p) daemons
        @ List.map (fun p -> Fleet.Client.Tcp p) daemon_ports
      with
      | [] -> Fleet.Driver.Processes workers
      | addrs -> Fleet.Driver.Daemons addrs
    in
    let options =
      { (Fleet.Driver.default_options ~state ~corpus ~config ~dispatch) with
        heartbeat_timeout = heartbeat;
        status_interval = status }
    in
    let metrics = Telemetry.Metrics.create () in
    match Fleet.Driver.run ~metrics options with
    | Error e ->
      Printf.eprintf "mufuzz: fleet: %s\n" e;
      exit 1
    | Ok summary ->
      write_metrics_file metrics metrics_out;
      Option.iter (fun dir -> Fleet.Driver.write_csvs ~dir ~config summary) out;
      Printf.printf
        "fleet complete: %d contracts, %d campaigns failed, %d executions, \
         %d EVM steps\n"
        summary.Fleet.Summary.s_contracts
        (List.length summary.Fleet.Summary.s_failed)
        summary.Fleet.Summary.s_execs summary.Fleet.Summary.s_steps;
      List.iter
        (fun ((tool, size), (cell : Fleet.Summary.cell)) ->
          Printf.printf "  %-12s %-5s n=%-4d final coverage %.2f%%\n" tool size
            cell.c_n
            (if cell.c_n = 0 then 0.0
             else
               float_of_int cell.c_final_upct /. float_of_int cell.c_n /. 1e6))
        summary.Fleet.Summary.s_cells
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Drive a fleet over a sharded corpus: lease shards to worker \
             processes (or serve daemons), survive worker deaths by lease \
             reassignment, and merge per-shard summaries into the fleet \
             aggregate. SIGKILL the coordinator at any point and re-run \
             with the same arguments to resume; the final aggregate is \
             identical to an uninterrupted run's.")
    Term.(const run $ fleet_state_arg $ fleet_corpus_arg $ fleet_config_term
          $ workers_arg $ daemon_arg $ daemon_port_arg $ heartbeat_arg
          $ status_arg $ out_arg $ metrics_arg $ verbose_arg)

let fleet_worker_cmd =
  let shard_arg =
    Arg.(required & opt (some int) None & info [ "shard" ] ~docv:"K"
           ~doc:"Shard index to process.")
  in
  let run state corpus shard verbose =
    setup_logs verbose;
    let config_path = Filename.concat state Fleet.Driver.config_file in
    match
      Fleet.Config.of_string (String.trim (Util.Fileio.read_file config_path))
    with
    | exception Sys_error e ->
      Printf.eprintf "mufuzz: fleet worker: %s\n" e;
      exit 3
    | Error e ->
      Printf.eprintf "mufuzz: fleet worker: %s: %s\n" config_path e;
      exit 3
    | Ok config -> (
      match Fleet.Worker.run_shard ~state ~corpus ~shard ~config () with
      | Ok summary ->
        Printf.printf "shard %d done: %d contracts, %d campaign failures\n"
          shard summary.Fleet.Summary.s_contracts
          (List.length summary.Fleet.Summary.s_failed)
      | Error e ->
        Printf.eprintf "mufuzz: fleet worker: shard %d: %s\n" shard e;
        exit 3)
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"Process one corpus shard (normally spawned by $(b,fleet run), \
             which passes --state/--corpus/--shard). Reads the fleet config \
             pinned in the state directory, streams the shard, and \
             publishes progress and the final shard summary.")
    Term.(const run $ fleet_state_arg $ fleet_corpus_arg $ shard_arg
          $ verbose_arg)

let fleet_status_cmd =
  let run state =
    match Fleet.Ledger.load ~dir:state with
    | Error e ->
      Printf.eprintf "mufuzz: fleet status: %s\n" e;
      exit 1
    | Ok None ->
      Printf.printf "%s: no fleet ledger (nothing started yet)\n" state
    | Ok (Some ledger) ->
      Array.iteri
        (fun k st ->
          match (st : Fleet.Ledger.state) with
          | Fleet.Ledger.Pending -> Printf.printf "  shard %d: pending\n" k
          | Fleet.Ledger.Leased { l_worker } ->
            Printf.printf "  shard %d: leased to worker %d\n" k l_worker
          | Fleet.Ledger.Done { d_contracts; d_failed } ->
            Printf.printf "  shard %d: done (%d contracts, %d failures)\n" k
              d_contracts d_failed)
        ledger.Fleet.Ledger.lg_states;
      Printf.printf "%d/%d shards done, %d lease reassignments\n"
        (Fleet.Ledger.done_count ledger)
        (Fleet.Ledger.shards ledger)
        ledger.Fleet.Ledger.lg_reassignments
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Print the fleet ledger's per-shard state.")
    Term.(const run $ fleet_state_arg)

let fleet_cmd =
  Cmd.group
    (Cmd.info "fleet"
       ~doc:"D1-scale fleet orchestration: shard a corpus, drive it across \
             worker processes or serve daemons with crash-safe lease \
             accounting, aggregate results in bounded memory.")
    [ fleet_shard_cmd; fleet_run_cmd; fleet_worker_cmd; fleet_status_cmd ]

let () =
  let info =
    Cmd.info "mufuzz" ~version:"1.0.0"
      ~doc:"Sequence-aware smart contract fuzzing (MuFuzz, ICDE 2024 reproduction)."
  in
  let group =
    Cmd.group info
      [ fuzz_cmd; resume_cmd; analyze_cmd; disasm_cmd; exec_cmd; static_cmd;
        corpus_cmd; shrink_cmd; repro_cmd; serve_cmd; client_cmd; fleet_cmd ]
  in
  (* [~catch:false] so a stray exception becomes one structured error
     line and a distinct exit code, not a backtrace dump *)
  let code =
    try Cmd.eval ~catch:false group with
    | Failure msg | Sys_error msg ->
      Printf.eprintf "mufuzz: error: %s\n" msg;
      125
    | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "mufuzz: error: %s: %s%s\n" fn (Unix.error_message e)
        (if arg = "" then "" else " (" ^ arg ^ ")");
      125
    | e ->
      Printf.eprintf "mufuzz: internal error: %s\n" (Printexc.to_string e);
      125
  in
  exit code
