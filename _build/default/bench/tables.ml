(* Table I (tool x bug-class support matrix, for the tools implemented in
   this reproduction) and Table II (dataset inventory). *)

module O = Oracles.Oracle

(* The remaining rows of the paper's Table I (tools surveyed but not
   reimplemented here), reproduced as literature data; '?' marks cells
   whose value is ambiguous in the source material. *)
let literature_rows =
  [ (* name, type, BD UD EF IO RE US SE TO UE *)
    ("ContraMaster", "Fuzzer", [ "-"; "-"; "-"; "Y"; "Y"; "-"; "-"; "-"; "Y" ]);
    ("Echidna", "Fuzzer", [ "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "Y" ]);
    ("Reguard", "Fuzzer", [ "-"; "-"; "-"; "-"; "Y"; "-"; "-"; "-"; "-" ]);
    ("Harvey", "Fuzzer", [ "-"; "-"; "-"; "Y"; "Y"; "-"; "-"; "-"; "Y" ]);
    ("ILF", "Fuzzer", [ "Y"; "Y"; "Y"; "-"; "-"; "Y"; "-"; "-"; "Y" ]);
    ("xFuzz", "Fuzzer", [ "-"; "Y"; "-"; "-"; "Y"; "-"; "-"; "Y"; "-" ]);
    ("RLF", "Fuzzer", [ "Y"; "Y"; "?"; "-"; "-"; "?"; "-"; "-"; "Y" ]);
    ("Manticore", "Static", [ "Y"; "Y"; "-"; "?"; "?"; "?"; "-"; "?"; "Y" ]);
    ("Maian", "Static", [ "-"; "-"; "Y"; "-"; "-"; "Y"; "-"; "-"; "-" ]);
    ("SmartCheck", "Static", [ "Y"; "-"; "?"; "?"; "?"; "-"; "-"; "?"; "Y" ]);
    ("Zeus", "Static", [ "Y"; "-"; "-"; "Y"; "Y"; "-"; "-"; "?"; "Y" ]);
    ("VeriSmart", "Static", [ "-"; "-"; "-"; "Y"; "-"; "-"; "-"; "-"; "-" ]);
    ("Vandal", "Static", [ "-"; "-"; "-"; "-"; "Y"; "Y"; "-"; "?"; "Y" ]);
    ("Sereum", "Static", [ "-"; "-"; "-"; "-"; "Y"; "-"; "-"; "-"; "-" ]);
    ("teEther", "Static", [ "-"; "Y"; "-"; "-"; "-"; "Y"; "-"; "-"; "-" ]);
    ("Sailfish", "Static", [ "-"; "-"; "-"; "-"; "Y"; "-"; "-"; "-"; "-" ]);
    ("DefectChecker", "Static", [ "Y"; "-"; "Y"; "-"; "Y"; "-"; "-"; "Y"; "Y" ]);
  ]

let table1_literature () =
  Printf.printf "\nRemaining Table I rows (literature data, not reimplemented):\n";
  let t =
    Util.Table.create
      ~headers:([ "Tool"; "Type" ] @ List.map O.class_to_string O.all_classes)
  in
  List.iter
    (fun (name, ty, cells) -> Util.Table.add_row t (name :: ty :: cells))
    literature_rows;
  Util.Table.print t

let table1 () =
  Exp.section "Table I - bug classes supported by each implemented tool";
  let t =
    Util.Table.create
      ~headers:
        ([ "Tool"; "Type" ]
        @ List.map O.class_to_string O.all_classes)
  in
  let dot supported cls = if List.mem cls supported then "Y" else "-" in
  List.iter
    (fun (p : Baselines.Fuzzers.profile) ->
      Util.Table.add_row t
        ([ p.name; "Fuzzer" ] @ List.map (dot p.supports) O.all_classes))
    Baselines.Fuzzers.all;
  Util.Table.add_separator t;
  List.iter
    (fun (p : Baselines.Staticdet.profile) ->
      Util.Table.add_row t
        ([ p.name; "Static" ] @ List.map (dot p.supports) O.all_classes))
    Baselines.Staticdet.all;
  Util.Table.print t;
  table1_literature ()

let table2 () =
  Exp.section "Table II - benchmark datasets (reproduction scale)";
  let small = Exp.d1_small () and large = Exp.d1_large () in
  let d3 = Exp.d3 () in
  let labels =
    List.fold_left
      (fun acc c -> acc + List.length c.Corpus.Vuln.labels)
      0 Corpus.Vuln.suite
  in
  let t = Util.Table.create ~headers:[ "#"; "Source"; "Used for"; "Contents" ] in
  Util.Table.add_row t
    [ "D1"; "generated population (Corpus.Generator)"; "RQ1, RQ3";
      Printf.sprintf "%d small + %d large contracts" (List.length small)
        (List.length large) ];
  Util.Table.add_row t
    [ "D2"; "labelled vulnerability suite (Corpus.Vuln)"; "RQ2";
      Printf.sprintf "%d contracts, %d annotated bugs"
        (List.length Corpus.Vuln.suite) labels ];
  Util.Table.add_row t
    [ "D3"; "generated 'popular' population"; "RQ4";
      Printf.sprintf "%d complex contracts" (List.length d3) ];
  Util.Table.print t;
  Printf.printf "\nD2 labels per class: %s\n"
    (String.concat ", "
       (List.map
          (fun cls ->
            Printf.sprintf "%s=%d" (O.class_to_string cls)
              (Corpus.Vuln.label_count cls))
          O.all_classes))
