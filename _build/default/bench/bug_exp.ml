(* Table III: true positives / false negatives / timeout-or-error cases
   per bug class, for five static analyzers and five fuzzers on the
   labelled D2 suite. *)

module O = Oracles.Oracle

type counts = { mutable tp : int; mutable fn : int; mutable te : int }

let new_counts () =
  List.map (fun cls -> (cls, { tp = 0; fn = 0; te = 0 })) O.all_classes

let count_for counts cls = List.assoc cls counts

(* also track false positives: findings whose class is not a label *)
type tool_result = {
  tool : string;
  counts : (O.bug_class * counts) list;
  mutable fp : int;
}

let eval_fuzzer (p : Baselines.Fuzzers.profile) budget suite =
  let counts = new_counts () in
  let res = { tool = p.name; counts; fp = 0 } in
  List.iter
    (fun (l : Corpus.Vuln.labelled) ->
      let contract = Corpus.Vuln.compile l in
      let report = Exp.run_tool p ~budget contract in
      let found = Exp.classes_found report in
      List.iter
        (fun cls ->
          let c = count_for counts cls in
          if List.mem cls found then c.tp <- c.tp + 1 else c.fn <- c.fn + 1)
        (List.sort_uniq compare l.labels);
      List.iter
        (fun cls -> if not (List.mem cls l.labels) then res.fp <- res.fp + 1)
        found)
    suite;
  res

let eval_static (p : Baselines.Staticdet.profile) suite =
  let counts = new_counts () in
  let res = { tool = p.name; counts; fp = 0 } in
  List.iter
    (fun (l : Corpus.Vuln.labelled) ->
      let contract = Corpus.Vuln.compile l in
      match Baselines.Staticdet.analyze p contract with
      | Baselines.Staticdet.Timeout | Baselines.Staticdet.Error _ ->
        List.iter
          (fun cls -> (count_for counts cls).te <- (count_for counts cls).te + 1)
          (List.sort_uniq compare l.labels)
      | Baselines.Staticdet.Findings fs ->
        let found =
          List.sort_uniq compare (List.map (fun (f : O.finding) -> f.cls) fs)
        in
        List.iter
          (fun cls ->
            let c = count_for counts cls in
            if List.mem cls found then c.tp <- c.tp + 1 else c.fn <- c.fn + 1)
          (List.sort_uniq compare l.labels);
        List.iter
          (fun cls -> if not (List.mem cls l.labels) then res.fp <- res.fp + 1)
          found)
    suite;
  res

let supports_of tool =
  match Baselines.Fuzzers.find tool with
  | Some p -> p.Baselines.Fuzzers.supports
  | None -> (
    match Baselines.Staticdet.find tool with
    | Some p -> p.Baselines.Staticdet.supports
    | None -> O.all_classes)

let print_results results =
  let t =
    Util.Table.create
      ~headers:("Type" :: List.map (fun r -> r.tool) results)
  in
  List.iter
    (fun cls ->
      Util.Table.add_row t
        (O.class_to_string cls
        :: List.map
             (fun r ->
               let c = count_for r.counts cls in
               if not (List.mem cls (supports_of r.tool)) then "n/a"
               else Printf.sprintf "%d / %d / %d" c.tp c.fn c.te)
             results))
    O.all_classes;
  Util.Table.add_separator t;
  Util.Table.add_row t
    ("Total"
    :: List.map
         (fun r ->
           let tp, fn, te =
             List.fold_left
               (fun (a, b, c) (cls, cnt) ->
                 if List.mem cls (supports_of r.tool) then
                   (a + cnt.tp, b + cnt.fn, c + cnt.te)
                 else (a, b, c))
               (0, 0, 0) r.counts
           in
           Printf.sprintf "%d / %d / %d" tp fn te)
         results);
  Util.Table.add_row t
    ("FP (unlabelled)" :: List.map (fun r -> string_of_int r.fp) results);
  Util.Table.print t

let run ?(suite = Corpus.Vuln.suite) () =
  Exp.section "Table III - TP / FN / timeout-or-error per bug class (D2)";
  let budget = Exp.budget_d2 () in
  Printf.printf "suite: %d contracts, fuzzer budget %d execs each\n%!"
    (List.length suite) budget;
  let statics = List.map (fun p -> eval_static p suite) Baselines.Staticdet.all in
  let fuzzers =
    List.map
      (fun p ->
        let r = eval_fuzzer p budget suite in
        Printf.printf "  %s done\n%!" p.Baselines.Fuzzers.name;
        r)
      Baselines.Fuzzers.all
  in
  print_results (statics @ fuzzers);
  Exp.write_csv "table3.csv"
    ("class" :: List.concat_map (fun r -> [ r.tool ^ "_tp"; r.tool ^ "_fn"; r.tool ^ "_te" ])
                  (statics @ fuzzers))
    (List.map
       (fun cls ->
         O.class_to_string cls
         :: List.concat_map
              (fun r ->
                let c = count_for r.counts cls in
                [ string_of_int c.tp; string_of_int c.fn; string_of_int c.te ])
              (statics @ fuzzers))
       O.all_classes);
  statics @ fuzzers
