(* §III-B / §V-E: the Crowdsale motivating example. sFuzz and ConFuzzius
   cannot produce a sequence that runs invest twice, so they never cover
   the withdraw branch guarded by phase == 1; MuFuzz's sequence-aware
   mutation reaches it almost immediately.

   The "deep sides" are computed exactly: branch sides exercised by the
   paper's exploit sequence [invest(100 ether) -> refund -> invest(50) ->
   withdraw] but not by the single-invest sequence. *)

module U = Word.U256

let branches_of_seed contract seed =
  let run =
    Mufuzz.Executor.run_seed ~contract ~gas:1_000_000 ~n_senders:3 ~attacker:false
      seed
  in
  List.concat_map
    (fun (r : Mufuzz.Executor.tx_result) -> Evm.Trace.branches r.trace)
    run.tx_results
  |> List.sort_uniq compare

let deep_sides contract =
  let fn name = List.find (fun f -> f.Abi.name = name) contract.Minisol.Contract.abi in
  let ether n = U.mul (U.of_int n) (U.of_decimal_string "1000000000000000000") in
  let tx ?(value = U.zero) name args =
    Mufuzz.Seed.make_tx (fn name) ~sender:1
      ~args:(String.concat "" (List.map U.to_bytes_be args))
      ~value
  in
  let ctor = tx "constructor" [] in
  let shallow =
    { Mufuzz.Seed.txs =
        [ ctor; tx ~value:(ether 100) "invest" [ ether 100 ]; tx "refund" [];
          tx "withdraw" [] ] }
  in
  let exploit =
    { Mufuzz.Seed.txs =
        [ ctor; tx ~value:(ether 100) "invest" [ ether 100 ]; tx "refund" [];
          tx ~value:(ether 1) "invest" [ ether 1 ]; tx "withdraw" [] ] }
  in
  let s = branches_of_seed contract shallow in
  let e = branches_of_seed contract exploit in
  List.filter (fun br -> not (List.mem br s)) e

let run () =
  Exp.section "Case study - Fig. 1 Crowdsale (motivating example)";
  let contract = Minisol.Contract.compile Corpus.Examples.crowdsale in
  let info = Analysis.Statevars.analyze contract.ast in
  Format.printf "%a" Analysis.Statevars.pp info;
  Printf.printf "dependency edges: %s\n"
    (String.concat ", "
       (List.map
          (fun (w, r, v) -> Printf.sprintf "%s -[%s]-> %s" w v r)
          (Analysis.Sequence.dependency_edges info)));
  Printf.printf "base sequence   : [%s]\n"
    (String.concat " -> " (Analysis.Sequence.derive_base info));
  Printf.printf "mutated sequence: [%s]\n\n"
    (String.concat " -> " (Analysis.Sequence.derive info));
  let deep = deep_sides contract in
  Printf.printf
    "deep branch sides (exploit sequence only): %s\n\n"
    (String.concat ", "
       (List.map (fun (pc, t) -> Printf.sprintf "(%d,%b)" pc t) deep));
  let budget = Exp.scaled 600 in
  let t =
    Util.Table.create
      ~headers:[ "Fuzzer"; "coverage"; "deep state reached"; "findings" ]
  in
  List.iter
    (fun (p : Baselines.Fuzzers.profile) ->
      let r = Exp.run_tool p ~budget contract in
      let reached =
        deep <> [] && List.for_all (fun br -> List.mem br r.covered) deep
      in
      Util.Table.add_row t
        [ p.name; Exp.pct (Mufuzz.Report.coverage_pct r);
          (if reached then "yes" else "no");
          string_of_int (List.length r.findings) ])
    Baselines.Fuzzers.all;
  Util.Table.print t
