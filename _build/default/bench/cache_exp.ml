(* §VI extension: throughput with and without prefix state caching — the
   paper's named future-work optimisation ("move directly to some
   intermediate state"). Results are semantically identical (asserted);
   only executions per second change. *)

let measure caching contract budget =
  let config =
    { Mufuzz.Config.default with max_executions = budget;
      state_caching = caching; rng_seed = 123L }
  in
  let t0 = Unix.gettimeofday () in
  let report = Mufuzz.Campaign.run ~config contract in
  let dt = Unix.gettimeofday () -. t0 in
  (report, float_of_int report.executions /. dt)

let run () =
  Exp.section "Extension (paper SVI): prefix state caching throughput";
  let budget = Exp.scaled 1500 in
  let targets =
    [ ("Crowdsale (4-tx sequences)", Minisol.Contract.compile Corpus.Examples.crowdsale);
      ("SharedWallet (deep state machine)",
       Minisol.Contract.compile Corpus.Examples.wallet);
      ( "generated large contract",
        Corpus.Generator.compile
          (List.hd
             (Corpus.Generator.population ~seed:606L ~n:1 Corpus.Generator.Large
                ~bug_rate:0.1)) );
    ]
  in
  let t =
    Util.Table.create
      ~headers:[ "Target"; "execs/s (no cache)"; "execs/s (cache)"; "speedup";
                 "identical results" ]
  in
  List.iter
    (fun (name, contract) ->
      let r_off, tput_off = measure false contract budget in
      let r_on, tput_on = measure true contract budget in
      let same =
        r_off.covered = r_on.covered
        && List.length r_off.findings = List.length r_on.findings
      in
      Util.Table.add_row t
        [ name; Printf.sprintf "%.0f" tput_off; Printf.sprintf "%.0f" tput_on;
          Printf.sprintf "%.2fx" (tput_on /. tput_off);
          (if same then "yes" else "NO") ])
    targets;
  Util.Table.print t
