(* Table IV: the RQ4 real-world case study — MuFuzz on the D3 population:
   reported bugs per class, TP/FP via verification against ground truth
   (injected bug patterns) backed by a static confirmation pass that
   stands in for the paper's manual audit, plus average coverage. *)

module O = Oracles.Oracle

(* permissive static confirmer used to adjudicate findings that don't
   match an injected label, approximating the paper's manual check *)
let confirmer =
  {
    Baselines.Staticdet.name = "confirmer";
    supports = O.all_classes;
    over_approximate = true;
    timeout_instruction_limit = None;
    rejects_modern_syntax = false;
  }

let run () =
  Exp.section "Table IV - real-world case study (D3)";
  let specs = Exp.d3 () in
  let budget = Exp.budget_d3 () in
  Printf.printf "%d contracts, budget %d execs each\n%!" (List.length specs) budget;
  let tp = Hashtbl.create 9 and fp = Hashtbl.create 9 in
  let bump tbl cls =
    Hashtbl.replace tbl cls (1 + Option.value ~default:0 (Hashtbl.find_opt tbl cls))
  in
  let coverages = ref [] in
  let flagged = ref 0 in
  List.iter
    (fun (spec : Corpus.Generator.spec) ->
      let contract = Corpus.Generator.compile spec in
      let report = Exp.run_tool Baselines.Fuzzers.mufuzz ~budget contract in
      coverages := Mufuzz.Report.coverage_pct report :: !coverages;
      let found = Exp.classes_found report in
      if found <> [] then incr flagged;
      let confirmed_static =
        match Baselines.Staticdet.analyze confirmer contract with
        | Baselines.Staticdet.Findings fs ->
          List.sort_uniq compare (List.map (fun (f : O.finding) -> f.cls) fs)
        | _ -> []
      in
      List.iter
        (fun cls ->
          if List.mem cls spec.injected || List.mem cls confirmed_static then
            bump tp cls
          else bump fp cls)
        found)
    specs;
  let t = Util.Table.create ~headers:[ "Bug ID"; "Reported"; "TP"; "FP" ] in
  let total_r = ref 0 and total_tp = ref 0 and total_fp = ref 0 in
  List.iter
    (fun cls ->
      let g tbl = Option.value ~default:0 (Hashtbl.find_opt tbl cls) in
      let tpc = g tp and fpc = g fp in
      total_r := !total_r + tpc + fpc;
      total_tp := !total_tp + tpc;
      total_fp := !total_fp + fpc;
      Util.Table.add_row t
        [ O.class_to_string cls; string_of_int (tpc + fpc); string_of_int tpc;
          string_of_int fpc ])
    O.all_classes;
  Util.Table.add_separator t;
  Util.Table.add_row t
    [ "Total"; string_of_int !total_r; string_of_int !total_tp;
      string_of_int !total_fp ];
  Util.Table.print t;
  Printf.printf "Contracts with at least one alarm: %d / %d\n" !flagged
    (List.length specs);
  Printf.printf "Average branch coverage: %s\n" (Exp.pct (Exp.mean !coverages))
