bench/bug_exp.ml: Baselines Corpus Exp List Oracles Printf Util
