bench/cache_exp.ml: Corpus Exp List Minisol Mufuzz Printf Unix Util
