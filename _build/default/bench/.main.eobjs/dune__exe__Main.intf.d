bench/main.mli:
