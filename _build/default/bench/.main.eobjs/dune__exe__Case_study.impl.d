bench/case_study.ml: Abi Analysis Baselines Corpus Evm Exp Format List Minisol Mufuzz Printf String Util Word
