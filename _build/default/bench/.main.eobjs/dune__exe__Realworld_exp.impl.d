bench/realworld_exp.ml: Baselines Corpus Exp Hashtbl List Mufuzz Option Oracles Printf Util
