bench/micro.ml: Abi Analyze Bechamel Benchmark Corpus Crypto Evm Exp Hashtbl Instance Lazy List Measure Minisol Mufuzz Printf Staged String Test Time Toolkit Util Word
