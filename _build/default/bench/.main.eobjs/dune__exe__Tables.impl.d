bench/tables.ml: Baselines Corpus Exp List Oracles Printf String Util
