bench/exp.ml: Baselines Corpus Filename Hashtbl Int64 List Minisol Mufuzz Oracles Printf Stdlib String Unix
