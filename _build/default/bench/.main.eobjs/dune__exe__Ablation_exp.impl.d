bench/ablation_exp.ml: Corpus Exp List Minisol Mufuzz Printf Stdlib Util
