bench/main.ml: Ablation_exp Array Bug_exp Cache_exp Case_study Coverage_exp Exp List Micro Printf Realworld_exp Sys Tables Unix
