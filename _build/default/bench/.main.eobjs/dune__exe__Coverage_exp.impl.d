bench/coverage_exp.ml: Baselines Exp List Mufuzz Printf Util
