(* Fig. 7: ablation of the three MuFuzz components on sampled small and
   large contracts — relative coverage and relative bugs found when one
   component is disabled, against the full system. *)

module Config = Mufuzz.Config

let variants =
  [
    ("MuFuzz (full)", fun c -> c);
    ("w/o sequence-aware mutation", Config.ablation_no_sequence);
    ("w/o mask-guided seed mutation", Config.ablation_no_mask);
    ("w/o dynamic energy adjustment", Config.ablation_no_energy);
  ]

let run_variant configure contracts budget =
  let reports =
    List.map
      (fun (c : Minisol.Contract.t) ->
        let config =
          configure
            { Config.default with rng_seed = Exp.seed_of_name c.name;
              max_executions = budget }
        in
        Mufuzz.Campaign.run ~config c)
      contracts
  in
  let cov = Exp.mean (List.map Mufuzz.Report.coverage_pct reports) in
  let bugs =
    List.fold_left
      (fun acc (r : Mufuzz.Report.t) -> acc + List.length r.findings)
      0 reports
  in
  (cov, bugs)

let run () =
  Exp.section "Fig. 7 - component ablation (relative to full MuFuzz = 100%)";
  let n = Exp.n_fig7 () in
  let small =
    Corpus.Generator.population ~seed:404L ~n Corpus.Generator.Small ~bug_rate:0.3
    |> List.map Corpus.Generator.compile
  in
  let large =
    Corpus.Generator.population ~seed:505L ~n:(Stdlib.max 1 (n / 2))
      Corpus.Generator.Large ~bug_rate:0.3
    |> List.map Corpus.Generator.compile
  in
  let bs = Exp.budget_small () and bl = Exp.budget_large () in
  Printf.printf "%d small (budget %d) + %d large (budget %d) contracts per variant\n%!"
    (List.length small) bs (List.length large) bl;
  let results =
    List.map
      (fun (name, configure) ->
        let cov_s, bugs_s = run_variant configure small bs in
        let cov_l, bugs_l = run_variant configure large bl in
        Printf.printf "  %s done\n%!" name;
        (name, (cov_s, bugs_s, cov_l, bugs_l)))
      variants
  in
  let _, (full_cov_s, full_bugs_s, full_cov_l, full_bugs_l) = List.hd results in
  let rel x full = if full = 0.0 then 0.0 else 100.0 *. x /. full in
  let t =
    Util.Table.create
      ~headers:
        [ "Variant"; "cov small"; "cov large"; "bugs small"; "bugs large";
          "rel cov small"; "rel cov large"; "rel bugs small"; "rel bugs large" ]
  in
  List.iter
    (fun (name, (cs, bs_, cl, bl_)) ->
      Util.Table.add_row t
        [ name; Exp.pct cs; Exp.pct cl; string_of_int bs_; string_of_int bl_;
          Exp.pct (rel cs full_cov_s);
          Exp.pct (rel cl full_cov_l);
          Exp.pct (rel (float_of_int bs_) (float_of_int full_bugs_s));
          Exp.pct (rel (float_of_int bl_) (float_of_int full_bugs_l)) ])
    results;
  Util.Table.print t;
  Exp.write_csv "fig7.csv"
    [ "variant"; "cov_small"; "cov_large"; "bugs_small"; "bugs_large" ]
    (List.map
       (fun (name, (cs, bs_, cl, bl_)) ->
         [ name; Printf.sprintf "%.2f" cs; Printf.sprintf "%.2f" cl;
           string_of_int bs_; string_of_int bl_ ])
       results);
  results
