(* Comparing the five fuzzing policies on a slice of the generated corpus
   plus two classic bug patterns — a miniature of the paper's RQ1/RQ2.

   Run with:  dune exec examples/campaign_compare.exe *)

let () =
  let budget = 1000 in
  let targets =
    List.map
      (fun (s : Corpus.Generator.spec) -> Corpus.Generator.compile s)
      (Corpus.Generator.population ~seed:2024L ~n:6 Corpus.Generator.Small
         ~bug_rate:0.4)
    @ [ Minisol.Contract.compile Corpus.Examples.simple_dao;
        Minisol.Contract.compile Corpus.Examples.crowdsale ]
  in
  Printf.printf "%d targets, %d executions per campaign\n\n" (List.length targets)
    budget;
  let t = Util.Table.create ~headers:[ "Fuzzer"; "avg coverage"; "bugs"; "wall s" ] in
  List.iter
    (fun (p : Baselines.Fuzzers.profile) ->
      let t0 = Sys.time () in
      let reports =
        List.map
          (fun c ->
            let config =
              { Mufuzz.Config.default with max_executions = budget;
                rng_seed = Int64.of_int (Hashtbl.hash c.Minisol.Contract.name) }
            in
            (* Fuzzers.run applies the profile's configure itself *)
            Baselines.Fuzzers.run p ~config c)
          targets
      in
      let cov =
        List.fold_left (fun acc r -> acc +. Mufuzz.Report.coverage_pct r) 0.0 reports
        /. float_of_int (List.length reports)
      in
      let bugs =
        List.fold_left
          (fun acc (r : Mufuzz.Report.t) -> acc + List.length r.findings)
          0 reports
      in
      Util.Table.add_row t
        [ p.name; Printf.sprintf "%.1f%%" cov; string_of_int bugs;
          Printf.sprintf "%.1f" (Sys.time () -. t0) ])
    Baselines.Fuzzers.all;
  Util.Table.print t;
  print_endline
    "\nExpected shape (paper Fig. 6 / Table III): MuFuzz >= IR-Fuzz >\n\
     ConFuzzius ~ Smartian > sFuzz on coverage, and MuFuzz finds the most bugs."
