(* Quickstart: compile a contract from source and fuzz it with MuFuzz.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
contract Piggy {
  mapping(address => uint256) savings;
  uint256 total;
  address owner;

  constructor() public {
    owner = msg.sender;
  }

  function save() public payable {
    savings[msg.sender] += msg.value;
    total += msg.value;
  }

  function spend(uint256 amount) public {
    require(savings[msg.sender] >= amount);
    savings[msg.sender] -= amount;
    total -= amount;
    msg.sender.transfer(amount);
  }

  function sweep() public {
    require(tx.origin == owner);
    msg.sender.transfer(this.balance);
  }
}
|}

let () =
  (* 1. Compile: source -> bytecode + ABI + AST (the paper's front end). *)
  let contract = Minisol.Contract.compile source in
  Printf.printf "compiled %s: %d instructions, %d public functions\n\n"
    contract.name
    (Array.length contract.bytecode)
    (List.length (Minisol.Contract.callable_functions contract));

  (* 2. The derived transaction sequence (§IV-A). *)
  Printf.printf "derived sequence: [%s]\n\n"
    (String.concat " -> " (Mufuzz.Campaign.derive_sequence contract));

  (* 3. Fuzz. Everything is deterministic given the rng seed. *)
  let config =
    { Mufuzz.Config.default with max_executions = 2000; rng_seed = 7L }
  in
  let report = Mufuzz.Campaign.run ~config contract in

  (* 4. Results. *)
  Format.printf "%a@." Mufuzz.Report.pp_summary report;
  List.iter
    (fun ((f : Oracles.Oracle.finding), witness) ->
      Format.printf "finding: %a@.  description: %s@.  witness: %s@.@."
        Oracles.Oracle.pp_finding f
        (Oracles.Oracle.class_description f.cls)
        witness)
    report.witnesses
