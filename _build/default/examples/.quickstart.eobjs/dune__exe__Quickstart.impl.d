examples/quickstart.ml: Array Format List Minisol Mufuzz Oracles Printf String
