examples/token_audit.mli:
