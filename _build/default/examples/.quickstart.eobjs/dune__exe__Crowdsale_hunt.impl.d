examples/crowdsale_hunt.ml: Abi Analysis Array Corpus Evm Format List Minisol Mufuzz Printf String Word
