examples/campaign_compare.mli:
