examples/crowdsale_hunt.mli:
