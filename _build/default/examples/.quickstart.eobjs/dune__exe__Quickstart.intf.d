examples/quickstart.mli:
