examples/campaign_compare.ml: Baselines Corpus Hashtbl Int64 List Minisol Mufuzz Printf Sys Util
