examples/token_audit.ml: Array Baselines Format List Minisol Mufuzz Oracles Printf String
