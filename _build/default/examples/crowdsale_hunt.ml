(* The paper's motivating example (Fig. 1), step by step: data-flow
   analysis, sequence derivation with the RAW repetition rule, and the
   fuzzing campaign reaching the deep state that hides the bug.

   Run with:  dune exec examples/crowdsale_hunt.exe *)

module U = Word.U256

let () =
  let contract = Minisol.Contract.compile Corpus.Examples.crowdsale in
  print_endline "=== 1. Front end: source -> bytecode / ABI / AST ===";
  Printf.printf "%d instructions; ABI: %s\n\n"
    (Array.length contract.bytecode)
    (String.concat ", "
       (List.map
          (fun (f : Abi.func) ->
            Printf.sprintf "%s/%d%s" f.name (List.length f.inputs)
              (if f.payable then " payable" else ""))
          contract.abi));

  print_endline "=== 2. State-variable data-flow analysis (Fig. 3) ===";
  let info = Analysis.Statevars.analyze contract.ast in
  Format.printf "%a@." Analysis.Statevars.pp info;
  List.iter
    (fun (w, r, v) -> Printf.printf "  %s writes '%s' read by %s\n" w v r)
    (Analysis.Sequence.dependency_edges info);

  print_endline "\n=== 3. Sequence derivation and RAW repetition (S -> Sm) ===";
  Printf.printf "S : [%s]\n" (String.concat " -> " (Analysis.Sequence.derive_base info));
  Printf.printf "Sm: [%s]\n\n" (String.concat " -> " (Analysis.Sequence.derive info));

  print_endline "=== 4. Replaying the paper's exploit sequence by hand ===";
  let addr = Mufuzz.Accounts.contract_address in
  let attacker = Mufuzz.Accounts.attacker in
  let user = List.nth (Mufuzz.Accounts.sender_pool 3) 1 in
  let st = Minisol.Contract.deploy Evm.State.empty addr contract in
  let fund st who = Evm.State.credit st who (U.shift_left U.one 200) in
  let st = fund (fund (fund st user) attacker) Mufuzz.Accounts.deployer in
  let block = ref Evm.Interp.default_block in
  let state = ref st in
  let call who name args value =
    let f = List.find (fun (f : Abi.func) -> f.Abi.name = name) contract.abi in
    let st', trace =
      Evm.Interp.execute ~block:!block ~state:!state
        { caller = who; origin = who; callee = addr; value;
          data = Abi.encode_call f args; gas = 1_000_000 }
    in
    state := st';
    block := Evm.Interp.advance_block !block;
    Printf.printf "  %-32s -> %s (phase = %s)\n"
      (Printf.sprintf "%s(%s)" name
         (String.concat "," (List.map Abi.value_to_string args)))
      (Evm.Trace.status_to_string trace.status)
      (U.to_decimal_string (Evm.State.storage_get !state addr U.zero))
  in
  let ether n = U.mul (U.of_int n) (U.of_decimal_string "1000000000000000000") in
  call Mufuzz.Accounts.deployer "constructor" [] U.zero;
  call user "invest" [ Abi.VUint (ether 100) ] (ether 100);
  call user "refund" [] U.zero;
  call attacker "invest" [ Abi.VUint (ether 1) ] (ether 1);
  call attacker "withdraw" [] U.zero;
  Printf.printf "  contract balance after withdraw: %s wei\n"
    (U.to_decimal_string (Evm.State.balance !state addr));
  print_endline
    "  withdraw REVERTS: it tries to transfer the full 'invested' total\n\
    \  (101 ether) but refund already drained 100 ether - the paper's\n\
    \  Fig. 1 bug, reachable only through the phase == 1 deep state.\n";

  print_endline "=== 5. The fuzzer finds the same path on its own ===";
  let report =
    Mufuzz.Campaign.run
      ~config:{ Mufuzz.Config.default with max_executions = 800 } contract
  in
  Format.printf "%a@." Mufuzz.Report.pp_summary report;
  Printf.printf
    "covered %d branch sides; the withdraw-success side is only reachable\n\
     after invest runs twice — the sequence-aware mutation found it.\n"
    report.covered_branches
