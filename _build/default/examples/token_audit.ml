(* Auditing an ERC20-style token: MuFuzz (dynamic) side by side with the
   reimplemented static analyzers on the same target.

   Run with:  dune exec examples/token_audit.exe *)

let source =
  {|
contract VendingToken {
  mapping(address => uint256) balances;
  mapping(address => uint256) deposits;
  uint256 totalSupply;
  uint256 price;
  address owner;

  constructor() public {
    owner = msg.sender;
    totalSupply = 1000000;
    balances[msg.sender] = 1000000;
    price = 2 finney;
  }

  // IO: no SafeMath — transfer amount is unchecked against the sender.
  function transfer(address to, uint256 value) public {
    balances[msg.sender] -= value;
    balances[to] += value;
  }

  // IO (mul): tokens = count * price can wrap.
  function buy(uint256 count) public payable {
    require(msg.value >= count * price);
    balances[msg.sender] += count;
    deposits[msg.sender] += msg.value;
  }

  // RE: refund pays out before clearing the deposit.
  function refund(uint256 amount) public {
    if (deposits[msg.sender] >= amount) {
      bool ok = msg.sender.call.value(amount)();
      deposits[msg.sender] -= amount;
    }
  }

  // BD: a timestamp-gated bonus round.
  function bonus() public {
    if (block.timestamp % 7 == 3) {
      balances[msg.sender] += 1000;
    }
  }
}
|}

let () =
  let contract = Minisol.Contract.compile source in
  Printf.printf "auditing %s (%d instructions)\n\n" contract.name
    (Array.length contract.bytecode);

  print_endline "--- static analyzers ---";
  List.iter
    (fun (p : Baselines.Staticdet.profile) ->
      match Baselines.Staticdet.analyze p contract with
      | Baselines.Staticdet.Findings fs ->
        Printf.printf "%-10s: %s\n" p.name
          (if fs = [] then "clean"
           else
             String.concat ", "
               (List.sort_uniq compare
                  (List.map
                     (fun (f : Oracles.Oracle.finding) ->
                       Oracles.Oracle.class_to_string f.cls)
                     fs)))
      | Baselines.Staticdet.Timeout -> Printf.printf "%-10s: timeout\n" p.name
      | Baselines.Staticdet.Error e -> Printf.printf "%-10s: error (%s)\n" p.name e)
    Baselines.Staticdet.all;

  print_endline "\n--- MuFuzz (dynamic, 4000 executions) ---";
  let report =
    Mufuzz.Campaign.run
      ~config:{ Mufuzz.Config.default with max_executions = 4000; rng_seed = 11L }
      contract
  in
  Format.printf "%a@." Mufuzz.Report.pp_summary report;
  List.iter
    (fun ((f : Oracles.Oracle.finding), witness) ->
      Format.printf "@.%a@.  %s@.  witness sequence: %s@."
        Oracles.Oracle.pp_finding f
        (Oracles.Oracle.class_description f.cls)
        witness)
    report.witnesses
