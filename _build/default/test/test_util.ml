(* RNG determinism/distribution sanity, hex codec, table rendering. *)

let unit name f = Alcotest.test_case name `Quick f

let rng_tests =
  [
    unit "same seed same stream" (fun () ->
        let a = Util.Rng.create 7L and b = Util.Rng.create 7L in
        for _ = 1 to 100 do
          Alcotest.(check int64) "step" (Util.Rng.next_int64 a) (Util.Rng.next_int64 b)
        done);
    unit "different seeds differ" (fun () ->
        let a = Util.Rng.create 1L and b = Util.Rng.create 2L in
        Alcotest.(check bool) "neq" true
          (Util.Rng.next_int64 a <> Util.Rng.next_int64 b));
    unit "int respects bound" (fun () ->
        let rng = Util.Rng.create 3L in
        for _ = 1 to 1000 do
          let v = Util.Rng.int rng 17 in
          if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
        done);
    unit "int_in inclusive bounds" (fun () ->
        let rng = Util.Rng.create 4L in
        let seen_lo = ref false and seen_hi = ref false in
        for _ = 1 to 2000 do
          let v = Util.Rng.int_in rng 3 5 in
          if v = 3 then seen_lo := true;
          if v = 5 then seen_hi := true;
          if v < 3 || v > 5 then Alcotest.fail "out of range"
        done;
        Alcotest.(check bool) "both endpoints hit" true (!seen_lo && !seen_hi));
    unit "split streams are independent" (fun () ->
        let parent = Util.Rng.create 9L in
        let c1 = Util.Rng.split parent in
        let c2 = Util.Rng.split parent in
        Alcotest.(check bool) "children differ" true
          (Util.Rng.next_int64 c1 <> Util.Rng.next_int64 c2));
    unit "copy preserves state" (fun () ->
        let a = Util.Rng.create 11L in
        ignore (Util.Rng.next_int64 a);
        let b = Util.Rng.copy a in
        Alcotest.(check int64) "same next" (Util.Rng.next_int64 a)
          (Util.Rng.next_int64 b));
    unit "float in unit interval" (fun () ->
        let rng = Util.Rng.create 5L in
        for _ = 1 to 1000 do
          let f = Util.Rng.float rng in
          if f < 0.0 || f >= 1.0 then Alcotest.fail "out of [0,1)"
        done);
    unit "shuffle permutes" (fun () ->
        let rng = Util.Rng.create 6L in
        let l = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
        let s = Util.Rng.shuffle_list rng l in
        Alcotest.(check (list int)) "same multiset" l (List.sort compare s));
    unit "bytes length" (fun () ->
        let rng = Util.Rng.create 8L in
        Alcotest.(check int) "len" 40 (Bytes.length (Util.Rng.bytes rng 40)));
  ]

let hex_tests =
  [
    unit "encode" (fun () ->
        Alcotest.(check string) "hex" "00ff10" (Util.Hex.encode "\x00\xff\x10"));
    unit "decode" (fun () ->
        Alcotest.(check string) "bytes" "\x00\xff\x10" (Util.Hex.decode "00ff10"));
    unit "decode 0x prefix" (fun () ->
        Alcotest.(check string) "bytes" "\xab" (Util.Hex.decode "0xAB"));
    unit "decode odd length rejected" (fun () ->
        Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd length")
          (fun () -> ignore (Util.Hex.decode "abc")));
    unit "roundtrip" (fun () ->
        let s = String.init 64 (fun i -> Char.chr ((i * 37) mod 256)) in
        Alcotest.(check string) "rt" s (Util.Hex.decode (Util.Hex.encode s)));
  ]

let table_tests =
  [
    unit "renders all cells" (fun () ->
        let t = Util.Table.create ~headers:[ "a"; "b" ] in
        Util.Table.add_row t [ "hello"; "world" ];
        Util.Table.add_row t [ "x" ];
        let s = Util.Table.render t in
        List.iter
          (fun needle ->
            if not (String.length s > 0 && String.length needle > 0) then ()
            else
              let found =
                let rec go i =
                  i + String.length needle <= String.length s
                  && (String.sub s i (String.length needle) = needle || go (i + 1))
                in
                go 0
              in
              Alcotest.(check bool) needle true found)
          [ "hello"; "world"; "a"; "b"; "x" ]);
    unit "ragged rows pad" (fun () ->
        let t = Util.Table.create ~headers:[ "one" ] in
        Util.Table.add_row t [ "1"; "2"; "3" ];
        Alcotest.(check bool) "renders" true (String.length (Util.Table.render t) > 0));
  ]

let suite =
  [ ("util: rng", rng_tests); ("util: hex", hex_tests); ("util: table", table_tests) ]

let stats_tests =
  [
    unit "mean" (fun () ->
        Alcotest.(check (float 0.0001)) "mean" 2.0 (Util.Stats.mean [ 1.0; 2.0; 3.0 ]);
        Alcotest.(check (float 0.0001)) "empty" 0.0 (Util.Stats.mean []));
    unit "stddev" (fun () ->
        Alcotest.(check (float 0.0001)) "uniform" 0.0 (Util.Stats.stddev [ 5.0; 5.0 ]);
        Alcotest.(check (float 0.01)) "spread" 2.0
          (Util.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]));
    unit "median" (fun () ->
        Alcotest.(check (float 0.0001)) "odd" 3.0 (Util.Stats.median [ 5.0; 1.0; 3.0 ]);
        Alcotest.(check (float 0.0001)) "even" 2.5
          (Util.Stats.median [ 4.0; 1.0; 2.0; 3.0 ]));
    unit "min_max" (fun () ->
        Alcotest.(check (pair (float 0.0) (float 0.0))) "range" (1.0, 9.0)
          (Util.Stats.min_max [ 3.0; 9.0; 1.0 ]));
  ]

let suite = suite @ [ ("util: stats", stats_tests) ]
