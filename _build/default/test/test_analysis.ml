(* State-variable analysis, sequence derivation, CFG reachability and
   Algorithm 3 branch weighting. *)

module SV = Analysis.Statevars
module SS = Analysis.Statevars.StringSet

let unit name f = Alcotest.test_case name `Quick f

let info_of src = SV.analyze (Minisol.Parser.parse src)

let set_list s = SS.elements s

let statevars_tests =
  [
    unit "crowdsale read/write sets match the paper's Fig. 3" (fun () ->
        let info = info_of Corpus.Examples.crowdsale in
        let invest = Option.get (SV.info info "invest") in
        Alcotest.(check (list string)) "invest writes"
          [ "invested"; "invests"; "phase" ] (set_list invest.writes);
        Alcotest.(check (list string)) "invest reads"
          [ "goal"; "invested"; "invests" ] (set_list invest.reads);
        Alcotest.(check (list string)) "invest RAW"
          [ "invested"; "invests" ] (set_list invest.raw_vars);
        let refund = Option.get (SV.info info "refund") in
        Alcotest.(check (list string)) "refund reads"
          [ "invests"; "phase" ] (set_list refund.reads);
        let withdraw = Option.get (SV.info info "withdraw") in
        Alcotest.(check (list string)) "withdraw writes" [] (set_list withdraw.writes));
    unit "locals and params shadow state vars" (fun () ->
        let info =
          info_of
            {|contract S { uint256 x; uint256 y;
               function f(uint256 x) public { uint256 y = 1; y = x + y; } }|}
        in
        let f = Option.get (SV.info info "f") in
        Alcotest.(check (list string)) "no state reads" [] (set_list f.reads);
        Alcotest.(check (list string)) "no state writes" [] (set_list f.writes));
    unit "branch reads recorded from all condition forms" (fun () ->
        let info =
          info_of
            {|contract B { uint256 a; uint256 b; uint256 c; uint256 d;
               function f() public {
                 if (a > 0) { a = 1; }
                 while (b > 0) { b = 0; }
                 require(c == 1);
                 for (uint256 i = 0; i < d; i += 1) { a = i; }
               } }|}
        in
        let f = Option.get (SV.info info "f") in
        Alcotest.(check (list string)) "branch reads" [ "a"; "b"; "c"; "d" ]
          (set_list f.branch_reads));
    unit "modifier body counts toward the function" (fun () ->
        let info =
          info_of
            {|contract M { address owner; uint256 x;
               modifier onlyOwner() { require(msg.sender == owner); _; }
               function f() public onlyOwner { x = 1; } }|}
        in
        let f = Option.get (SV.info info "f") in
        Alcotest.(check bool) "reads owner" true (SS.mem "owner" f.reads));
    unit "should_repeat requires RAW + branch read" (fun () ->
        let info = info_of Corpus.Examples.crowdsale in
        let invest = Option.get (SV.info info "invest") in
        let refund = Option.get (SV.info info "refund") in
        let withdraw = Option.get (SV.info info "withdraw") in
        Alcotest.(check bool) "invest repeats" true (SV.should_repeat info invest);
        (* refund has RAW on invests but invests is never a branch read *)
        Alcotest.(check bool) "refund does not" false (SV.should_repeat info refund);
        Alcotest.(check bool) "withdraw does not" false
          (SV.should_repeat info withdraw));
  ]

let sequence_tests =
  [
    unit "crowdsale base sequence is writer-before-reader" (fun () ->
        let info = info_of Corpus.Examples.crowdsale in
        Alcotest.(check (list string)) "base" [ "invest"; "refund"; "withdraw" ]
          (Analysis.Sequence.derive_base info));
    unit "crowdsale mutated sequence repeats invest before withdraw" (fun () ->
        let info = info_of Corpus.Examples.crowdsale in
        Alcotest.(check (list string)) "mutated"
          [ "invest"; "refund"; "invest"; "withdraw" ]
          (Analysis.Sequence.derive info));
    unit "repeat_mutation is idempotent" (fun () ->
        let info = info_of Corpus.Examples.crowdsale in
        let once = Analysis.Sequence.derive info in
        Alcotest.(check (list string)) "stable" once
          (Analysis.Sequence.repeat_mutation info once));
    unit "stateless functions keep declaration order at the tail" (fun () ->
        let info =
          info_of
            {|contract T { uint256 x;
               function pure1(uint256 a) public returns (uint256) { return a; }
               function writer() public { x = 1; }
               function reader() public { require(x == 1); x = x + 1; } }|}
        in
        let seq = Analysis.Sequence.derive_base info in
        Alcotest.(check (list string)) "order" [ "writer"; "reader"; "pure1" ] seq);
    unit "cyclic dependencies still terminate" (fun () ->
        let info =
          info_of
            {|contract C { uint256 a; uint256 b;
               function f() public { a = b; }
               function g() public { b = a; } }|}
        in
        Alcotest.(check int) "both present" 2
          (List.length (Analysis.Sequence.derive_base info)));
    unit "random sequence is a permutation" (fun () ->
        let info = info_of Corpus.Examples.crowdsale in
        let rng = Util.Rng.create 5L in
        let seq = Analysis.Sequence.random_sequence rng info in
        Alcotest.(check (list string)) "same names"
          [ "invest"; "refund"; "withdraw" ]
          (List.sort compare seq));
    unit "dependency edges include phase write->read" (fun () ->
        let info = info_of Corpus.Examples.crowdsale in
        let edges = Analysis.Sequence.dependency_edges info in
        Alcotest.(check bool) "invest->withdraw via phase" true
          (List.mem ("invest", "withdraw", "phase") edges));
  ]

let cfg_tests =
  [
    unit "branch points found" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let cfg = Analysis.Cfg.build c.bytecode in
        Alcotest.(check bool) "has branches" true
          (List.length (Analysis.Cfg.branch_points cfg) > 0));
    unit "branch successors resolve statically" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let cfg = Analysis.Cfg.build c.bytecode in
        List.iter
          (fun pc ->
            (match Analysis.Cfg.branch_successor cfg pc ~taken:false with
            | Some f -> Alcotest.(check int) "fallthrough" (pc + 1) f
            | None -> Alcotest.fail "no fallthrough");
            match Analysis.Cfg.branch_successor cfg pc ~taken:true with
            | Some t ->
              Alcotest.(check bool) "target is JUMPDEST" true
                (c.bytecode.(t) = Evm.Opcode.JUMPDEST)
            | None -> Alcotest.fail "compiler always pushes the target")
          (Analysis.Cfg.branch_points cfg));
    unit "vulnerable pcs include CALL and TIMESTAMP" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.timed_vault in
        let cfg = Analysis.Cfg.build c.bytecode in
        let classes = List.map snd (Analysis.Cfg.vulnerable_pcs cfg) in
        Alcotest.(check bool) "call" true (List.mem "call" classes);
        Alcotest.(check bool) "block-state" true (List.mem "block-state" classes));
    unit "reachability includes self and successors" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let cfg = Analysis.Cfg.build c.bytecode in
        let r = Analysis.Cfg.reachable cfg 0 in
        Alcotest.(check bool) "entry" true (Hashtbl.mem r 0);
        Alcotest.(check bool) "more than entry" true (Hashtbl.length r > 10));
  ]

let prefix_tests =
  [
    unit "nested scores increase along the path" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let cfg = Analysis.Cfg.build c.bytecode in
        let addr = Word.U256.of_int 0xC0 in
        let st = Minisol.Contract.deploy Evm.State.empty addr c in
        let invest = List.find (fun f -> f.Abi.name = "invest") c.abi in
        let _, trace =
          Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st
            { caller = Word.U256.of_int 0xEE; origin = Word.U256.of_int 0xEE;
              callee = addr; value = Word.U256.zero;
              data = Abi.encode_call invest [ Abi.VUint (Word.U256.of_int 5) ];
              gas = 1_000_000 }
        in
        let weighted = Analysis.Prefix.analyze_trace cfg trace in
        Alcotest.(check bool) "non-empty" true (weighted <> []);
        List.iteri
          (fun i (wb : Analysis.Prefix.weighted_branch) ->
            Alcotest.(check int) "score = position" (i + 1) wb.nested_score)
          weighted);
    unit "vulnerable bonus raises the weight" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let cfg = Analysis.Cfg.build c.bytecode in
        let params = { Analysis.Prefix.nested_coeff = 1.0; vuln_bonus = 100.0 } in
        let addr = Word.U256.of_int 0xC0 in
        let st = Minisol.Contract.deploy Evm.State.empty addr c in
        let invest = List.find (fun f -> f.Abi.name = "invest") c.abi in
        let _, trace =
          Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st
            { caller = Word.U256.of_int 0xEE; origin = Word.U256.of_int 0xEE;
              callee = addr; value = Word.U256.zero;
              data = Abi.encode_call invest [ Abi.VUint (Word.U256.of_int 5) ];
              gas = 1_000_000 }
        in
        let weighted = Analysis.Prefix.analyze_trace ~params cfg trace in
        Alcotest.(check bool) "some branch gets the bonus" true
          (List.exists
             (fun (wb : Analysis.Prefix.weighted_branch) -> wb.weight >= 100.0)
             weighted));
    unit "weight table keeps the max" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let cfg = Analysis.Cfg.build c.bytecode in
        let addr = Word.U256.of_int 0xC0 in
        let st = Minisol.Contract.deploy Evm.State.empty addr c in
        let invest = List.find (fun f -> f.Abi.name = "invest") c.abi in
        let run () =
          snd
            (Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st
               { caller = Word.U256.of_int 0xEE; origin = Word.U256.of_int 0xEE;
                 callee = addr; value = Word.U256.zero;
                 data = Abi.encode_call invest [ Abi.VUint (Word.U256.of_int 5) ];
                 gas = 1_000_000 })
        in
        let tbl = Analysis.Prefix.weight_table cfg [ run (); run () ] in
        Alcotest.(check bool) "has entries" true (Hashtbl.length tbl > 0));
  ]

let suite =
  [
    ("analysis: state variables", statevars_tests);
    ("analysis: sequences", sequence_tests);
    ("analysis: cfg", cfg_tests);
    ("analysis: prefix weighting", prefix_tests);
  ]

let realistic_tests =
  [
    unit "auction: bid precedes close in the derived order" (fun () ->
        let info = info_of Corpus.Examples.auction in
        let seq = Analysis.Sequence.derive_base info in
        let idx name =
          let rec go i = function
            | [] -> Alcotest.failf "%s missing from %s" name (String.concat "," seq)
            | x :: _ when x = name -> i
            | _ :: rest -> go (i + 1) rest
          in
          go 0 seq
        in
        Alcotest.(check bool) "bid < close" true (idx "bid" < idx "close");
        Alcotest.(check bool) "bid < withdrawRefund" true
          (idx "bid" < idx "withdrawRefund"));
    unit "shared wallet: enroll precedes propose precedes approve" (fun () ->
        let info = info_of Corpus.Examples.wallet in
        let seq = Analysis.Sequence.derive_base info in
        let idx name =
          let rec go i = function
            | [] -> Alcotest.failf "%s missing" name
            | x :: _ when x = name -> i
            | _ :: rest -> go (i + 1) rest
          in
          go 0 seq
        in
        Alcotest.(check bool) "enroll < approve" true (idx "enroll" < idx "approve");
        Alcotest.(check bool) "propose < approve" true (idx "propose" < idx "approve"));
    unit "casino: buyChips precedes spin and cashOut" (fun () ->
        let info = info_of Corpus.Examples.casino in
        let seq = Analysis.Sequence.derive_base info in
        let idx name =
          let rec go i = function
            | [] -> Alcotest.failf "%s missing" name
            | x :: _ when x = name -> i
            | _ :: rest -> go (i + 1) rest
          in
          go 0 seq
        in
        Alcotest.(check bool) "buy < spin" true (idx "buyChips" < idx "spin");
        Alcotest.(check bool) "buy < cashOut" true (idx "buyChips" < idx "cashOut"));
    unit "vesting: fund precedes release" (fun () ->
        let info = info_of Corpus.Examples.vesting in
        match Analysis.Sequence.derive_base info with
        | "fund" :: rest ->
          Alcotest.(check bool) "release follows" true (List.mem "release" rest)
        | seq -> Alcotest.failf "unexpected order: %s" (String.concat "," seq));
  ]

let suite = suite @ [ ("analysis: realistic contracts", realistic_tests) ]
