(* Interpreter semantics: direct bytecode programs exercising arithmetic,
   control flow, storage, value transfer, calls, failure modes and the
   instrumentation events the fuzzer depends on. *)

module U = Word.U256
module Op = Evm.Opcode

let u256 = Alcotest.testable U.pp U.equal

let unit name f = Alcotest.test_case name `Quick f

let addr_a = U.of_int 0xA
let addr_b = U.of_int 0xB

(* Run [code] installed at [addr_a]; returns (state, trace). *)
let run ?(state = Evm.State.empty) ?(value = U.zero) ?(data = "")
    ?(caller = addr_b) ?(gas = 1_000_000) ?config code =
  let state = Evm.State.set_code state addr_a (Array.of_list code) in
  let state = Evm.State.credit state caller (U.of_decimal_string "1000000000000000000000") in
  Evm.Interp.execute ?config ~block:Evm.Interp.default_block ~state
    { caller; origin = caller; callee = addr_a; value; data; gas }

(* PUSH v; PUSH 0; MSTORE; PUSH 32; PUSH 0; RETURN — return top word *)
let return_value compute =
  compute
  @ [ Op.PUSH U.zero; Op.MSTORE; Op.PUSH (U.of_int 32); Op.PUSH U.zero; Op.RETURN ]

let returned_word (trace : Evm.Trace.t) = U.of_bytes_be trace.return_data

let check_compute name expected compute =
  unit name (fun () ->
      let _, trace = run (return_value compute) in
      Alcotest.(check string) "status" "success"
        (Evm.Trace.status_to_string trace.status);
      Alcotest.check u256 "value" expected (returned_word trace))

let arithmetic =
  [
    check_compute "ADD" (U.of_int 5) [ Op.PUSH (U.of_int 2); Op.PUSH (U.of_int 3); Op.ADD ];
    check_compute "SUB pops top as minuend" (U.of_int 7)
      [ Op.PUSH (U.of_int 3); Op.PUSH (U.of_int 10); Op.SUB ];
    check_compute "MUL" (U.of_int 42) [ Op.PUSH (U.of_int 6); Op.PUSH (U.of_int 7); Op.MUL ];
    check_compute "DIV" (U.of_int 4) [ Op.PUSH (U.of_int 3); Op.PUSH (U.of_int 12); Op.DIV ];
    check_compute "DIV by zero" U.zero [ Op.PUSH U.zero; Op.PUSH (U.of_int 12); Op.DIV ];
    check_compute "MOD" (U.of_int 2) [ Op.PUSH (U.of_int 5); Op.PUSH (U.of_int 12); Op.MOD ];
    check_compute "EXP" (U.of_int 81) [ Op.PUSH (U.of_int 4); Op.PUSH (U.of_int 3); Op.EXP ];
    check_compute "LT true" U.one [ Op.PUSH (U.of_int 5); Op.PUSH (U.of_int 3); Op.LT ];
    check_compute "GT false" U.zero [ Op.PUSH (U.of_int 5); Op.PUSH (U.of_int 3); Op.GT ];
    check_compute "EQ" U.one [ Op.PUSH (U.of_int 9); Op.PUSH (U.of_int 9); Op.EQ ];
    check_compute "ISZERO" U.one [ Op.PUSH U.zero; Op.ISZERO ];
    check_compute "NOT" U.max_value [ Op.PUSH U.zero; Op.NOT ];
    check_compute "SHL" (U.of_int 8) [ Op.PUSH U.one; Op.PUSH (U.of_int 3); Op.SHL ];
    check_compute "SHR" (U.of_int 2) [ Op.PUSH (U.of_int 8); Op.PUSH (U.of_int 2); Op.SHR ];
    check_compute "BYTE" (U.of_int 0xff)
      [ Op.PUSH (U.of_int 0xff); Op.PUSH (U.of_int 31); Op.BYTE ];
    check_compute "ADDMOD" (U.of_int 1)
      [ Op.PUSH (U.of_int 3); Op.PUSH (U.of_int 5); Op.PUSH (U.of_int 5); Op.ADDMOD ];
    check_compute "DUP1" (U.of_int 14)
      [ Op.PUSH (U.of_int 7); Op.DUP 1; Op.ADD ];
    check_compute "SWAP1" (U.of_int 3)
      [ Op.PUSH (U.of_int 4); Op.PUSH (U.of_int 1); Op.SWAP 1; Op.SUB ];
  ]

let control_flow =
  [
    unit "JUMP to dest" (fun () ->
        (* 0:PUSH 3, 1:JUMP, 2:INVALID, 3:JUMPDEST, 4:STOP *)
        let _, trace =
          run [ Op.PUSH (U.of_int 3); Op.JUMP; Op.INVALID; Op.JUMPDEST; Op.STOP ]
        in
        Alcotest.(check string) "ok" "success" (Evm.Trace.status_to_string trace.status));
    unit "JUMP to non-JUMPDEST fails" (fun () ->
        let _, trace = run [ Op.PUSH (U.of_int 2); Op.JUMP; Op.STOP ] in
        Alcotest.(check string) "bad" "bad-jump" (Evm.Trace.status_to_string trace.status));
    unit "JUMPI taken and not taken emit branch events" (fun () ->
        let code cond =
          [ Op.PUSH (U.of_int cond); Op.PUSH (U.of_int 5); Op.SWAP 1;
            (* stack: [cond; dest] -> want [dest; cond] on top: dest top *) ]
        in
        ignore code;
        (* simpler: PUSH cond; PUSH dest; JUMPI *)
        let prog cond =
          [ Op.PUSH (U.of_int cond); Op.PUSH (U.of_int 4); Op.JUMPI; Op.STOP;
            Op.JUMPDEST; Op.STOP ]
        in
        let _, t1 = run (prog 1) in
        let _, t0 = run (prog 0) in
        Alcotest.(check (list (pair int bool))) "taken" [ (2, true) ] (Evm.Trace.branches t1);
        Alcotest.(check (list (pair int bool))) "not taken" [ (2, false) ]
          (Evm.Trace.branches t0));
    unit "branch distance from comparison" (fun () ->
        (* LT pops its first operand from the top: 3 < 5 is true, and the
           distance to flip (make it false) is 5 - 3 = 2 *)
        let prog =
          [ Op.PUSH (U.of_int 5); Op.PUSH (U.of_int 3); Op.LT;
            Op.PUSH (U.of_int 6); Op.JUMPI; Op.STOP; Op.JUMPDEST; Op.STOP ]
        in
        let _, trace = run prog in
        match Evm.Trace.branch_events trace with
        | [ Evm.Trace.Branch { taken; dist_to_flip; _ } ] ->
          Alcotest.(check bool) "taken" true taken;
          Alcotest.(check (float 0.001)) "distance" 2.0 dist_to_flip
        | _ -> Alcotest.fail "expected one branch event");
    unit "branch distance on the false side" (fun () ->
        (* 5 < 3 is false; distance to make it true is 5 - 3 + 1 = 3 *)
        let prog =
          [ Op.PUSH (U.of_int 3); Op.PUSH (U.of_int 5); Op.LT;
            Op.PUSH (U.of_int 6); Op.JUMPI; Op.STOP; Op.JUMPDEST; Op.STOP ]
        in
        let _, trace = run prog in
        match Evm.Trace.branch_events trace with
        | [ Evm.Trace.Branch { taken; dist_to_flip; _ } ] ->
          Alcotest.(check bool) "not taken" false taken;
          Alcotest.(check (float 0.001)) "distance" 3.0 dist_to_flip
        | _ -> Alcotest.fail "expected one branch event");
    unit "ISZERO flips distance sides" (fun () ->
        (* 3 < 5 true; ISZERO makes cond false; flipping = making 3<5 false,
           distance 5-3 = 2 *)
        let prog =
          [ Op.PUSH (U.of_int 5); Op.PUSH (U.of_int 3); Op.LT; Op.ISZERO;
            Op.PUSH (U.of_int 7); Op.JUMPI; Op.STOP; Op.JUMPDEST; Op.STOP ]
        in
        let _, trace = run prog in
        match Evm.Trace.branch_events trace with
        | [ Evm.Trace.Branch { taken; dist_to_flip; _ } ] ->
          Alcotest.(check bool) "not taken" false taken;
          Alcotest.(check (float 0.001)) "distance" 2.0 dist_to_flip
        | _ -> Alcotest.fail "expected one branch event");
    unit "out of gas on infinite loop" (fun () ->
        let prog = [ Op.JUMPDEST; Op.PUSH U.zero; Op.JUMP ] in
        let _, trace = run ~gas:10_000 prog in
        Alcotest.(check string) "oog" "out-of-gas"
          (Evm.Trace.status_to_string trace.status));
    unit "stack underflow reported" (fun () ->
        let _, trace = run [ Op.ADD ] in
        Alcotest.(check string) "stackerr" "stack-error"
          (Evm.Trace.status_to_string trace.status));
  ]

let storage_and_state =
  [
    unit "SSTORE persists on success" (fun () ->
        let prog =
          [ Op.PUSH (U.of_int 99); Op.PUSH (U.of_int 1); Op.SSTORE; Op.STOP ]
        in
        let st, trace = run prog in
        Alcotest.(check string) "ok" "success" (Evm.Trace.status_to_string trace.status);
        Alcotest.check u256 "slot1" (U.of_int 99)
          (Evm.State.storage_get st addr_a U.one));
    unit "REVERT rolls back storage" (fun () ->
        let prog =
          [ Op.PUSH (U.of_int 99); Op.PUSH (U.of_int 1); Op.SSTORE;
            Op.PUSH U.zero; Op.PUSH U.zero; Op.REVERT ]
        in
        let st, trace = run prog in
        Alcotest.(check string) "reverted" "reverted"
          (Evm.Trace.status_to_string trace.status);
        Alcotest.check u256 "slot1 untouched" U.zero
          (Evm.State.storage_get st addr_a U.one));
    unit "value transfer credited on success" (fun () ->
        let st, trace = run ~value:(U.of_int 1234) [ Op.STOP ] in
        Alcotest.(check string) "ok" "success" (Evm.Trace.status_to_string trace.status);
        Alcotest.check u256 "balance" (U.of_int 1234) (Evm.State.balance st addr_a));
    unit "value transfer rolled back on revert" (fun () ->
        let st, _ =
          run ~value:(U.of_int 1234) [ Op.PUSH U.zero; Op.PUSH U.zero; Op.REVERT ]
        in
        Alcotest.check u256 "no balance" U.zero (Evm.State.balance st addr_a));
    unit "CALLVALUE visible" (fun () ->
        let _, trace = run ~value:(U.of_int 88) (return_value [ Op.CALLVALUE ]) in
        Alcotest.check u256 "cv" (U.of_int 88) (returned_word trace));
    unit "CALLDATALOAD zero-pads" (fun () ->
        let data = "\x01\x02" in
        let _, trace =
          run ~data (return_value [ Op.PUSH U.zero; Op.CALLDATALOAD ])
        in
        let expect = U.of_bytes_be (data ^ String.make 30 '\000') in
        Alcotest.check u256 "word" expect (returned_word trace));
    unit "SELFDESTRUCT moves balance and deletes code" (fun () ->
        let st, trace =
          run ~value:(U.of_int 500) [ Op.PUSH addr_b; Op.SELFDESTRUCT ]
        in
        Alcotest.(check string) "ok" "success" (Evm.Trace.status_to_string trace.status);
        Alcotest.(check int) "code gone" 0 (Array.length (Evm.State.code st addr_a));
        (* caller had 10^21, sent 500, got 500 back as beneficiary *)
        Alcotest.check u256 "balance back"
          (U.of_decimal_string "1000000000000000000000")
          (Evm.State.balance st addr_b));
  ]

let events =
  [
    unit "TIMESTAMP into JUMPI raises block-state event" (fun () ->
        let prog =
          [ Op.TIMESTAMP; Op.PUSH (U.of_int 4); Op.JUMPI; Op.STOP; Op.JUMPDEST;
            Op.STOP ]
        in
        let _, trace = run prog in
        let has =
          List.exists
            (function Evm.Trace.Block_state_use { sink = "jumpi"; _ } -> true | _ -> false)
            trace.events
        in
        Alcotest.(check bool) "event" true has);
    unit "ORIGIN in compare raises origin event" (fun () ->
        let prog = return_value [ Op.ORIGIN; Op.PUSH (U.of_int 1); Op.EQ ] in
        let _, trace = run prog in
        let has =
          List.exists
            (function Evm.Trace.Origin_use _ -> true | _ -> false)
            trace.events
        in
        Alcotest.(check bool) "event" true has);
    unit "BALANCE + EQ raises strict balance compare" (fun () ->
        let prog =
          return_value [ Op.ADDRESS; Op.BALANCE; Op.PUSH (U.of_int 5); Op.EQ ]
        in
        let _, trace = run prog in
        let has =
          List.exists
            (function Evm.Trace.Balance_compare { strict_eq = true; _ } -> true | _ -> false)
            trace.events
        in
        Alcotest.(check bool) "event" true has);
    unit "ADD overflow emits event" (fun () ->
        let prog = return_value [ Op.PUSH U.max_value; Op.PUSH (U.of_int 2); Op.ADD ] in
        let _, trace = run prog in
        let has =
          List.exists
            (function Evm.Trace.Arith_overflow { op = "ADD"; _ } -> true | _ -> false)
            trace.events
        in
        Alcotest.(check bool) "event" true has);
    unit "no overflow event for in-range ADD" (fun () ->
        let prog = return_value [ Op.PUSH (U.of_int 1); Op.PUSH (U.of_int 2); Op.ADD ] in
        let _, trace = run prog in
        let has =
          List.exists
            (function Evm.Trace.Arith_overflow _ -> true | _ -> false)
            trace.events
        in
        Alcotest.(check bool) "no event" false has);
    unit "memory preserves taint (param-style roundtrip)" (fun () ->
        (* CALLDATALOAD -> MSTORE -> MLOAD -> EQ should still count as a
           calldata-tainted comparison feeding JUMPI *)
        let prog =
          [ Op.PUSH U.zero; Op.CALLDATALOAD;
            Op.PUSH (U.of_int 64); Op.MSTORE;
            Op.PUSH (U.of_int 64); Op.MLOAD;
            Op.PUSH (U.of_int 5); Op.EQ;
            Op.PUSH (U.of_int 10); Op.JUMPI; Op.STOP; Op.JUMPDEST; Op.STOP ]
        in
        let _, trace = run ~data:(String.make 32 '\001') prog in
        match Evm.Trace.branch_events trace with
        | [ Evm.Trace.Branch { cond_taint; _ } ] ->
          Alcotest.(check bool) "calldata taint survives memory" true
            (Evm.Trace.Taint.has cond_taint Evm.Trace.Taint.calldata)
        | _ -> Alcotest.fail "expected one branch");
  ]

let calls =
  [
    unit "CALL executes callee and returns status 1" (fun () ->
        let callee = [| Op.STOP |] in
        let state = Evm.State.set_code Evm.State.empty addr_b callee in
        let prog =
          return_value
            [ Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero;
              Op.PUSH U.zero; Op.PUSH addr_b; Op.PUSH (U.of_int 50_000); Op.CALL ]
        in
        let _, trace = run ~state prog in
        Alcotest.check u256 "status" U.one (returned_word trace));
    unit "CALL to reverting callee returns 0" (fun () ->
        let callee = [| Op.PUSH U.zero; Op.PUSH U.zero; Op.REVERT |] in
        let state = Evm.State.set_code Evm.State.empty addr_b callee in
        let prog =
          return_value
            [ Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero;
              Op.PUSH U.zero; Op.PUSH addr_b; Op.PUSH (U.of_int 50_000); Op.CALL ]
        in
        let _, trace = run ~state prog in
        Alcotest.check u256 "status" U.zero (returned_word trace));
    unit "CALL with value moves balance" (fun () ->
        let prog =
          return_value
            [ Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero;
              Op.PUSH (U.of_int 77); Op.PUSH addr_b; Op.PUSH (U.of_int 50_000);
              Op.CALL ]
        in
        (* fund the contract first via tx value *)
        let st, trace = run ~value:(U.of_int 100) prog in
        Alcotest.check u256 "status" U.one (returned_word trace);
        Alcotest.check u256 "contract keeps 23" (U.of_int 23)
          (Evm.State.balance st addr_a));
    unit "DELEGATECALL writes caller's storage" (fun () ->
        (* callee stores 42 at slot 7; via delegatecall the write lands in
           the caller's storage *)
        let callee = [| Op.PUSH (U.of_int 42); Op.PUSH (U.of_int 7); Op.SSTORE; Op.STOP |] in
        let state = Evm.State.set_code Evm.State.empty addr_b callee in
        let prog =
          [ Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero;
            Op.PUSH addr_b; Op.PUSH (U.of_int 50_000); Op.DELEGATECALL; Op.POP;
            Op.STOP ]
        in
        let st, _ = run ~state prog in
        Alcotest.check u256 "caller storage" (U.of_int 42)
          (Evm.State.storage_get st addr_a (U.of_int 7));
        Alcotest.check u256 "callee storage untouched" U.zero
          (Evm.State.storage_get st addr_b (U.of_int 7)));
    unit "call depth bounded" (fun () ->
        (* contract calls itself recursively; must terminate *)
        let prog =
          [ Op.JUMPDEST;
            Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero;
            Op.PUSH U.zero; Op.PUSH addr_a; Op.PUSH (U.of_int 500_000); Op.CALL;
            Op.POP; Op.STOP ]
        in
        let _, trace = run ~gas:2_000_000 prog in
        (* success or OOG are both acceptable terminations *)
        Alcotest.(check bool) "terminates" true
          (trace.status = Evm.Trace.Success || trace.status = Evm.Trace.Out_of_gas));
    unit "attacker account triggers reentry event" (fun () ->
        let prog =
          [ Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero;
            Op.PUSH (U.of_int 10); Op.PUSH Evm.Interp.attacker_address;
            Op.PUSH (U.of_int 100_000); Op.CALL; Op.POP; Op.STOP ]
        in
        let _, trace = run ~value:(U.of_int 100) prog in
        let has =
          List.exists
            (function Evm.Trace.Reentrant_call _ -> true | _ -> false)
            trace.events
        in
        Alcotest.(check bool) "reentry" true has);
  ]

let suite =
  [
    ("evm: arithmetic", arithmetic);
    ("evm: control flow", control_flow);
    ("evm: storage & state", storage_and_state);
    ("evm: instrumentation events", events);
    ("evm: calls", calls);
  ]

let encoding_tests =
  let unit = unit in
  [
    unit "encode/decode roundtrip on compiled contracts" (fun () ->
        List.iter
          (fun (_, src) ->
            let c = Minisol.Contract.compile src in
            let rt = Evm.Encoding.decode (Evm.Encoding.encode c.bytecode) in
            if rt <> c.bytecode then Alcotest.fail "roundtrip mismatch")
          Corpus.Examples.all);
    unit "byte size matches Bytecode.byte_size" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        Alcotest.(check int) "sizes agree"
          (Evm.Bytecode.byte_size c.bytecode)
          (String.length (Evm.Encoding.encode c.bytecode)));
    unit "PUSH widths are minimal" (fun () ->
        Alcotest.(check int) "PUSH1" 0x60 (Evm.Encoding.opcode_byte (Op.PUSH U.one));
        Alcotest.(check int) "PUSH32" 0x7f (Evm.Encoding.opcode_byte (Op.PUSH U.max_value)));
    unit "decode rejects unknown opcodes" (fun () ->
        match Evm.Encoding.decode "\x0c" with
        | exception Evm.Encoding.Decode_error (_, 0) -> ()
        | _ -> Alcotest.fail "expected decode error");
    unit "decode rejects truncated push" (fun () ->
        match Evm.Encoding.decode "\x61\x01" with
        | exception Evm.Encoding.Decode_error (_, 0) -> ()
        | _ -> Alcotest.fail "expected decode error");
    unit "canonical bytes: selector dispatch prologue" (fun () ->
        let c = Minisol.Contract.compile "contract E { uint256 x; }" in
        let hex = Evm.Encoding.encode_hex c.bytecode in
        (* starts with PUSH1 0 CALLDATALOAD PUSH1 224 SHR *)
        Alcotest.(check string) "prologue" "60003560e01c"
          (String.sub hex 0 12));
  ]

let suite = suite @ [ ("evm: byte encoding", encoding_tests) ]

let log_tests =
  [
    unit "LOG captures topics in the trace" (fun () ->
        let prog =
          [ Op.PUSH (U.of_int 7); Op.PUSH (U.of_int 9); Op.PUSH U.zero;
            Op.PUSH U.zero; Op.LOG 2; Op.STOP ]
        in
        let _, trace = run prog in
        match
          List.find_opt (function Evm.Trace.Log _ -> true | _ -> false)
            trace.events
        with
        | Some (Evm.Trace.Log { topics; _ }) ->
          Alcotest.(check (list string)) "topics" [ "9"; "7" ]
            (List.map U.to_decimal_string topics)
        | _ -> Alcotest.fail "no log event");
    unit "Minisol emit compiles to LOG" (fun () ->
        let c =
          Minisol.Contract.compile
            {|contract L { event Ping(uint256 a);
               function f() public { emit Ping(42); } }|}
        in
        let addr = U.of_int 0xC0 in
        let st = Minisol.Contract.deploy Evm.State.empty addr c in
        let f = List.find (fun (f : Abi.func) -> f.Abi.name = "f") c.abi in
        let _, trace =
          Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st
            { caller = addr_b; origin = addr_b; callee = addr; value = U.zero;
              data = Abi.encode_call f []; gas = 1_000_000 }
        in
        Alcotest.(check bool) "log present" true
          (List.exists (function Evm.Trace.Log _ -> true | _ -> false)
             trace.events));
  ]

let suite = suite @ [ ("evm: logs", log_tests) ]

(* Robustness: the interpreter must classify ANY instruction sequence with
   a status — never raise, never hang (gas bounds loops). *)
let random_ops_gen =
  let open QCheck2.Gen in
  let op =
    oneof
      [
        oneofl
          [ Op.STOP; Op.ADD; Op.MUL; Op.SUB; Op.DIV; Op.SDIV; Op.MOD; Op.SMOD;
            Op.ADDMOD; Op.MULMOD; Op.EXP; Op.SIGNEXTEND; Op.LT; Op.GT; Op.SLT;
            Op.SGT; Op.EQ; Op.ISZERO; Op.AND; Op.OR; Op.XOR; Op.NOT; Op.BYTE;
            Op.SHL; Op.SHR; Op.SAR; Op.SHA3; Op.ADDRESS; Op.BALANCE; Op.ORIGIN;
            Op.CALLER; Op.CALLVALUE; Op.CALLDATALOAD; Op.CALLDATASIZE;
            Op.CALLDATACOPY; Op.CODESIZE; Op.BLOCKHASH; Op.COINBASE;
            Op.TIMESTAMP; Op.NUMBER; Op.DIFFICULTY; Op.GASLIMIT;
            Op.SELFBALANCE; Op.POP; Op.MLOAD; Op.MSTORE; Op.MSTORE8; Op.SLOAD;
            Op.SSTORE; Op.JUMP; Op.JUMPI; Op.PC; Op.MSIZE; Op.GAS; Op.JUMPDEST;
            Op.CALL; Op.DELEGATECALL; Op.STATICCALL; Op.RETURN; Op.REVERT;
            Op.INVALID; Op.SELFDESTRUCT ];
        map (fun n -> Op.PUSH (U.of_int (abs n mod 64))) small_int;
        map (fun n -> Op.DUP (1 + (abs n mod 16))) small_int;
        map (fun n -> Op.SWAP (1 + (abs n mod 16))) small_int;
        map (fun n -> Op.LOG (abs n mod 5)) small_int;
      ]
  in
  list_size (int_range 1 60) op

let robustness =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"random bytecode always terminates cleanly"
         ~count:300
         ~print:(fun ops ->
           String.concat "; " (List.map Op.to_string ops))
         random_ops_gen
         (fun ops ->
           let _, trace = run ~gas:50_000 ops in
           (* any status is fine; reaching here means no exception *)
           ignore trace.status;
           true));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"random bytecode with random calldata"
         ~count:150
         ~print:(fun (ops, _) -> String.concat "; " (List.map Op.to_string ops))
         QCheck2.Gen.(pair random_ops_gen (string_size (int_bound 96)))
         (fun (ops, data) ->
           let _, trace = run ~gas:50_000 ~data ops in
           ignore trace.status;
           true));
  ]

let suite = suite @ [ ("evm: robustness", robustness) ]

let encoding_property =
  [
    unit "byte encoding round-trips on a generated population" (fun () ->
        List.iter
          (fun (s : Corpus.Generator.spec) ->
            let c = Corpus.Generator.compile s in
            let rt = Evm.Encoding.decode (Evm.Encoding.encode c.bytecode) in
            if rt <> c.bytecode then Alcotest.failf "%s: roundtrip mismatch" s.name)
          (Corpus.Generator.population ~seed:55L ~n:12 Corpus.Generator.Small
             ~bug_rate:0.5));
  ]

let suite = suite @ [ ("evm: encoding property", encoding_property) ]

let config_tests =
  [
    unit "attacker disabled means no reentry events" (fun () ->
        let prog =
          [ Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero;
            Op.PUSH (U.of_int 10); Op.PUSH Evm.Interp.attacker_address;
            Op.PUSH (U.of_int 100_000); Op.CALL; Op.POP; Op.STOP ]
        in
        let config = { Evm.Interp.default_config with attacker = None } in
        let _, trace = run ~config ~value:(U.of_int 100) prog in
        Alcotest.(check bool) "no reentry" false
          (List.exists
             (function Evm.Trace.Reentrant_call _ -> true | _ -> false)
             trace.events));
    unit "reentry budget limits nesting" (fun () ->
        let prog =
          [ Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero; Op.PUSH U.zero;
            Op.PUSH (U.of_int 10); Op.PUSH Evm.Interp.attacker_address;
            Op.PUSH (U.of_int 200_000); Op.CALL; Op.POP; Op.STOP ]
        in
        let config = { Evm.Interp.default_config with max_reentries = 1 } in
        let _, trace = run ~config ~value:(U.of_int 100) prog in
        let reentries =
          List.length
            (List.filter
               (function Evm.Trace.Reentrant_call _ -> true | _ -> false)
               trace.events)
        in
        Alcotest.(check int) "exactly one reentry" 1 reentries);
    unit "gas accounting reported" (fun () ->
        let _, trace = run [ Op.PUSH U.one; Op.POP; Op.STOP ] in
        Alcotest.(check bool) "positive gas" true (trace.gas_used > 0);
        Alcotest.(check bool) "bounded" true (trace.gas_used < 100));
    unit "advance_block moves time forward" (fun () ->
        let b = Evm.Interp.default_block in
        let b' = Evm.Interp.advance_block b in
        Alcotest.(check bool) "number+1" true
          (U.equal b'.number (U.add b.number U.one));
        Alcotest.(check bool) "timestamp+13" true
          (U.equal b'.timestamp (U.add b.timestamp (U.of_int 13))));
  ]

let suite = suite @ [ ("evm: interpreter config", config_tests) ]
