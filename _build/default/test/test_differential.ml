(* Differential testing: random arithmetic expressions are compiled by
   Minisol and executed on the EVM; the returned word must equal the
   reference evaluation with U256 operations. This pins the compiler's
   operand ordering and the interpreter's arithmetic to each other. *)

module U = Word.U256

(* A random expression over one uint256 parameter [x]: its source text and
   its reference denotation. *)
type expr = { src : string; sem : U.t -> U.t }

let gen_expr =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        return { src = "x"; sem = (fun x -> x) };
        map
          (fun n ->
            let n = abs n in
            { src = string_of_int n; sem = (fun _ -> U.of_int n) })
          small_int;
      ]
  in
  let node sub =
    let* a = sub and* b = sub in
    let* op = oneofl [ `Add; `Sub; `Mul; `Div; `Mod ] in
    return
      (match op with
      | `Add -> { src = Printf.sprintf "(%s + %s)" a.src b.src;
                  sem = (fun x -> U.add (a.sem x) (b.sem x)) }
      | `Sub -> { src = Printf.sprintf "(%s - %s)" a.src b.src;
                  sem = (fun x -> U.sub (a.sem x) (b.sem x)) }
      | `Mul -> { src = Printf.sprintf "(%s * %s)" a.src b.src;
                  sem = (fun x -> U.mul (a.sem x) (b.sem x)) }
      | `Div -> { src = Printf.sprintf "(%s / %s)" a.src b.src;
                  sem = (fun x -> U.div (a.sem x) (b.sem x)) }
      | `Mod -> { src = Printf.sprintf "(%s %% %s)" a.src b.src;
                  sem = (fun x -> U.rem (a.sem x) (b.sem x)) })
  in
  let rec build depth = if depth = 0 then leaf else node (build (depth - 1)) in
  build 3

let gen_input =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> U.of_int (abs n)) int;
        return U.zero;
        return U.max_value;
        return (U.shift_left U.one 128);
        map (fun n -> U.sub U.max_value (U.of_int (abs n land 0xffff))) int;
      ])

let run_compiled src_expr x =
  let source =
    Printf.sprintf
      "contract D { function f(uint256 x) public returns (uint256) { return %s; } }"
      src_expr
  in
  let c = Minisol.Contract.compile source in
  let addr = U.of_int 0xD1 in
  let st = Minisol.Contract.deploy Evm.State.empty addr c in
  let f = List.find (fun (f : Abi.func) -> f.Abi.name = "f") c.abi in
  let _, trace =
    Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st
      { caller = U.of_int 0xEE; origin = U.of_int 0xEE; callee = addr;
        value = U.zero; data = Abi.encode_call f [ Abi.VUint x ];
        gas = 5_000_000 }
  in
  match trace.status with
  | Evm.Trace.Success -> U.of_bytes_be trace.return_data
  | s -> Alcotest.failf "execution failed: %s" (Evm.Trace.status_to_string s)

let differential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"compiled arithmetic = reference semantics" ~count:60
       ~print:(fun (e, x) -> Printf.sprintf "%s @ x=%s" e.src (U.to_decimal_string x))
       QCheck2.Gen.(pair gen_expr gen_input)
       (fun (e, x) -> U.equal (run_compiled e.src x) (e.sem x)))

let comparison_differential =
  (* comparisons run through if/else so the JUMPI path is also checked *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"compiled comparisons = reference" ~count:40
       ~print:(fun (op, (a, b)) ->
         Printf.sprintf "%s on %s, %s" op (U.to_decimal_string a) (U.to_decimal_string b))
       QCheck2.Gen.(
         pair (oneofl [ "<"; ">"; "<="; ">="; "=="; "!=" ]) (pair gen_input gen_input))
       (fun (op, (a, b)) ->
         let source =
           Printf.sprintf
             "contract C { function f(uint256 a, uint256 b) public returns (uint256) {\n\
             \  if (a %s b) { return 1; }\n  return 0; } }"
             op
         in
         let c = Minisol.Contract.compile source in
         let addr = U.of_int 0xD2 in
         let st = Minisol.Contract.deploy Evm.State.empty addr c in
         let f = List.find (fun (f : Abi.func) -> f.Abi.name = "f") c.abi in
         let _, trace =
           Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st
             { caller = U.of_int 0xEE; origin = U.of_int 0xEE; callee = addr;
               value = U.zero;
               data = Abi.encode_call f [ Abi.VUint a; Abi.VUint b ];
               gas = 5_000_000 }
         in
         let got = U.of_bytes_be trace.return_data in
         let expect =
           match op with
           | "<" -> U.lt a b
           | ">" -> U.gt a b
           | "<=" -> U.le a b
           | ">=" -> U.ge a b
           | "==" -> U.equal a b
           | _ -> not (U.equal a b)
         in
         U.equal got (if expect then U.one else U.zero)))

let suite = [ ("differential: compiler vs evm", [ differential; comparison_differential ]) ]
