(* The compiler pipeline: lexer, parser, typechecker, code generation and
   end-to-end execution semantics of compiled contracts. *)

module U = Word.U256
module A = Minisol.Ast

let u256 = Alcotest.testable U.pp U.equal

let unit name f = Alcotest.test_case name `Quick f

(* ---------------- lexer ---------------- *)

let lexer_tests =
  [
    unit "number with ether unit" (fun () ->
        match Minisol.Lexer.tokenize "100 ether" with
        | [ { tok = Minisol.Lexer.NUMBER n; _ }; { tok = Minisol.Lexer.EOF; _ } ] ->
          Alcotest.check u256 "scaled"
            (U.of_decimal_string "100000000000000000000") n
        | _ -> Alcotest.fail "expected single scaled number");
    unit "number followed by identifier is not a unit" (fun () ->
        match Minisol.Lexer.tokenize "5 apples" with
        | [ { tok = NUMBER n; _ }; { tok = IDENT "apples"; _ }; { tok = EOF; _ } ] ->
          Alcotest.check u256 "unscaled" (U.of_int 5) n
        | toks ->
          Alcotest.failf "got %s"
            (String.concat " "
               (List.map (fun (p : Minisol.Lexer.positioned) ->
                    Minisol.Lexer.token_to_string p.tok) toks)));
    unit "hex literal" (fun () ->
        match Minisol.Lexer.tokenize "0xff" with
        | [ { tok = NUMBER n; _ }; _ ] -> Alcotest.check u256 "255" (U.of_int 255) n
        | _ -> Alcotest.fail "hex");
    unit "comments skipped" (fun () ->
        let toks = Minisol.Lexer.tokenize "a // line\n /* block \n */ b" in
        Alcotest.(check int) "two idents + eof" 3 (List.length toks));
    unit "operators" (fun () ->
        let toks = Minisol.Lexer.tokenize "== != <= >= && || += -= =>" in
        Alcotest.(check int) "count" 10 (List.length toks));
    unit "line/column tracking" (fun () ->
        match Minisol.Lexer.tokenize "a\n  b" with
        | [ _; { tok = IDENT "b"; line; col }; _ ] ->
          Alcotest.(check (pair int int)) "pos" (2, 3) (line, col)
        | _ -> Alcotest.fail "expected two idents");
    unit "unterminated comment rejected" (fun () ->
        match Minisol.Lexer.tokenize "/* nope" with
        | exception Minisol.Lexer.Lex_error _ -> ()
        | _ -> Alcotest.fail "should raise");
    unit "underscore separator in numbers" (fun () ->
        match Minisol.Lexer.tokenize "1_000_000" with
        | [ { tok = NUMBER n; _ }; _ ] ->
          Alcotest.check u256 "million" (U.of_int 1_000_000) n
        | _ -> Alcotest.fail "number");
  ]

(* ---------------- parser ---------------- *)

let parse = Minisol.Parser.parse

let parser_tests =
  [
    unit "crowdsale structure" (fun () ->
        let c = parse Corpus.Examples.crowdsale in
        Alcotest.(check string) "name" "Crowdsale" c.A.c_name;
        Alcotest.(check int) "state vars" 5 (List.length c.A.state_vars);
        Alcotest.(check (list string)) "functions"
          [ "constructor"; "invest"; "refund"; "withdraw" ]
          (List.map (fun (f : A.func) -> f.A.name) c.A.functions));
    unit "pragma skipped" (fun () ->
        let c = parse "pragma solidity ^0.4.26; contract X { }" in
        Alcotest.(check string) "name" "X" c.A.c_name);
    unit "old-style constructor recognised" (fun () ->
        let c = parse "contract Y { function Y() public { } }" in
        Alcotest.(check bool) "ctor" true
          (match A.constructor c with Some _ -> true | None -> false));
    unit "modifier declaration and use" (fun () ->
        let c =
          parse
            {|contract M {
               address owner;
               modifier onlyOwner() { require(msg.sender == owner); _; }
               function f() public onlyOwner { owner = msg.sender; }
             }|}
        in
        Alcotest.(check int) "modifiers" 1 (List.length c.A.modifiers_decls);
        match A.find_function c "f" with
        | Some f -> Alcotest.(check (list string)) "applied" [ "onlyOwner" ] f.A.modifiers
        | None -> Alcotest.fail "f missing");
    unit "precedence: 1 + 2 * 3 parses as 1 + (2*3)" (fun () ->
        let c = parse "contract P { uint256 x; function f() public { x = 1 + 2 * 3; } }" in
        match A.find_function c "f" with
        | Some { body = [ A.Assign (_, A.Binop (A.Add, A.Number _, A.Binop (A.Mul, _, _))) ]; _ } ->
          ()
        | _ -> Alcotest.fail "wrong precedence");
    unit "else-if chains" (fun () ->
        let c =
          parse
            {|contract E { uint256 x;
               function f(uint256 a) public {
                 if (a < 1) { x = 1; } else if (a < 2) { x = 2; } else { x = 3; }
               } }|}
        in
        match A.find_function c "f" with
        | Some { body = [ A.If (_, _, [ A.If (_, _, [ _ ]) ]) ]; _ } -> ()
        | _ -> Alcotest.fail "else-if shape");
    unit "x++ sugar" (fun () ->
        let c = parse "contract I { uint256 x; function f() public { x++; } }" in
        match A.find_function c "f" with
        | Some { body = [ A.Aug_assign (A.L_var "x", A.Add, A.Number n) ]; _ } ->
          Alcotest.check u256 "one" U.one n
        | _ -> Alcotest.fail "x++ shape");
    unit "call.value parses" (fun () ->
        let c =
          parse
            "contract C { function f() public { bool ok = msg.sender.call.value(1)(); } }"
        in
        match A.find_function c "f" with
        | Some { body = [ A.Local (_, _, Some (A.Call_value _)) ]; _ } -> ()
        | _ -> Alcotest.fail "call.value shape");
    unit "parse error has position" (fun () ->
        match parse "contract Z { function f() public { x = ; } }" with
        | exception Minisol.Parser.Parse_error (_, line, _) ->
          Alcotest.(check bool) "line >= 1" true (line >= 1)
        | _ -> Alcotest.fail "should fail");
    unit "trailing garbage rejected" (fun () ->
        match parse "contract A { } contract B { }" with
        | exception Minisol.Parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "should fail");
  ]

(* ---------------- typechecker ---------------- *)

let expect_type_error src =
  match Minisol.Contract.compile src with
  | exception Minisol.Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail "expected Type_error"

let typecheck_tests =
  [
    unit "unknown identifier" (fun () ->
        expect_type_error "contract T { function f() public { nope = 1; } }");
    unit "boolean condition required" (fun () ->
        expect_type_error
          "contract T { uint256 x; function f() public { if (x) { x = 1; } } }");
    unit "arity mismatch on internal call" (fun () ->
        expect_type_error
          {|contract T { uint256 x;
             function g(uint256 a) internal { x = a; }
             function f() public { g(); } }|});
    unit "assign to whole mapping" (fun () ->
        expect_type_error
          "contract T { mapping(address => uint256) m; function f() public { m = 1; } }");
    unit "undeclared modifier" (fun () ->
        expect_type_error "contract T { uint256 x; function f() public nope { x = 1; } }");
    unit "duplicate state variable" (fun () ->
        expect_type_error "contract T { uint256 x; uint256 x; }");
    unit "return from void function" (fun () ->
        expect_type_error "contract T { function f() public { return 1; } }");
    unit "missing return value" (fun () ->
        expect_type_error
          "contract T { function f() public returns (uint256) { return; } }");
    unit "locals shadow state variables" (fun () ->
        (* must compile: x here is the local *)
        ignore
          (Minisol.Contract.compile
             {|contract T { uint256 x;
                function f() public { uint256 x = 5; x = x + 1; } }|}));
  ]

(* ---------------- codegen & execution ---------------- *)

let deploy_and_call ?(value = U.zero) ?(caller = U.of_int 0xEE) ?ctor_caller src
    fn_name args =
  let ctor_caller = Option.value ~default:caller ctor_caller in
  let c = Minisol.Contract.compile src in
  let addr = U.of_int 0xC0 in
  let st = Minisol.Contract.deploy Evm.State.empty addr c in
  let fund st who =
    Evm.State.credit st who (U.of_decimal_string "1000000000000000000000000")
  in
  let st = fund (fund st caller) ctor_caller in
  let call st who name args value =
    let f = List.find (fun (f : Abi.func) -> f.Abi.name = name) c.abi in
    Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st
      { caller = who; origin = who; callee = addr; value;
        data = Abi.encode_call f args; gas = 5_000_000 }
  in
  let st, _ = call st ctor_caller "constructor" [] U.zero in
  let st, trace = call st caller fn_name args value in
  (c, addr, st, trace)

let ret_word (trace : Evm.Trace.t) = U.of_bytes_be trace.return_data

let codegen_tests =
  [
    unit "return value plumbing" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            {|contract R { function f(uint256 a) public returns (uint256) {
               return a * 2 + 1; } }|}
            "f" [ Abi.VUint (U.of_int 20) ]
        in
        Alcotest.check u256 "41" (U.of_int 41) (ret_word trace));
    unit "state variable initializers run once" (fun () ->
        let _, addr, st, _ =
          deploy_and_call
            "contract S { uint256 a = 7; uint256 b; function f() public { b = a; } }"
            "f" []
        in
        Alcotest.check u256 "slot0" (U.of_int 7) (Evm.State.storage_get st addr U.zero);
        Alcotest.check u256 "slot1" (U.of_int 7) (Evm.State.storage_get st addr U.one));
    unit "constructor runs only once" (fun () ->
        let c = Minisol.Contract.compile "contract O { uint256 n; constructor() public { n = n + 1; } }" in
        let addr = U.of_int 0xC0 in
        let st = Minisol.Contract.deploy Evm.State.empty addr c in
        let ctor = Minisol.Contract.constructor_abi c in
        let caller = U.of_int 0xEE in
        let call st =
          Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st
            { caller; origin = caller; callee = addr; value = U.zero;
              data = Abi.encode_call ctor []; gas = 1_000_000 }
        in
        let st, t1 = call st in
        let st, t2 = call st in
        Alcotest.(check string) "first ok" "success" (Evm.Trace.status_to_string t1.status);
        Alcotest.(check string) "second reverts" "reverted"
          (Evm.Trace.status_to_string t2.status);
        Alcotest.check u256 "n is 1" U.one (Evm.State.storage_get st addr U.zero));
    unit "non-payable rejects value" (fun () ->
        let _, _, _, trace =
          deploy_and_call ~value:(U.of_int 5)
            "contract N { uint256 x; function f() public { x = 1; } }" "f" []
        in
        Alcotest.(check string) "reverted" "reverted"
          (Evm.Trace.status_to_string trace.status));
    unit "payable accepts value" (fun () ->
        let _, addr, st, trace =
          deploy_and_call ~value:(U.of_int 5)
            "contract P { uint256 x; function f() public payable { x = msg.value; } }"
            "f" []
        in
        Alcotest.(check string) "ok" "success" (Evm.Trace.status_to_string trace.status);
        Alcotest.check u256 "x" (U.of_int 5) (Evm.State.storage_get st addr U.zero);
        Alcotest.check u256 "balance" (U.of_int 5) (Evm.State.balance st addr));
    unit "mapping layout is keccak(key ++ slot)" (fun () ->
        let _, addr, st, _ =
          deploy_and_call
            {|contract M { mapping(address => uint256) m;
               function f() public { m[msg.sender] = 99; } }|}
            "f" []
        in
        let caller = U.of_int 0xEE in
        let slot =
          Crypto.Keccak.hash_word (U.to_bytes_be caller ^ U.to_bytes_be U.zero)
        in
        Alcotest.check u256 "m[caller]" (U.of_int 99)
          (Evm.State.storage_get st addr slot));
    unit "internal call convention" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            {|contract I {
               function helper(uint256 a, uint256 b) internal returns (uint256) {
                 return a - b;
               }
               function f() public returns (uint256) {
                 return helper(10, 4) + helper(3, 1);
               } }|}
            "f" []
        in
        Alcotest.check u256 "6+2" (U.of_int 8) (ret_word trace));
    unit "while loop" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            {|contract W { function f(uint256 n) public returns (uint256) {
               uint256 acc = 0;
               uint256 i = 0;
               while (i < n) { acc += i; i += 1; }
               return acc; } }|}
            "f" [ Abi.VUint (U.of_int 10) ]
        in
        Alcotest.check u256 "sum 0..9" (U.of_int 45) (ret_word trace));
    unit "for loop" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            {|contract F { function f() public returns (uint256) {
               uint256 acc = 0;
               for (uint256 i = 0; i < 5; i += 1) { acc += 2; }
               return acc; } }|}
            "f" []
        in
        Alcotest.check u256 "10" (U.of_int 10) (ret_word trace));
    unit "require reverts on false" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            "contract Q { uint256 x; function f(uint256 a) public { require(a > 10); x = a; } }"
            "f" [ Abi.VUint (U.of_int 3) ]
        in
        Alcotest.(check string) "reverted" "reverted"
          (Evm.Trace.status_to_string trace.status));
    unit "assert hits INVALID" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            "contract Q { uint256 x; function f() public { assert(x == 1); } }" "f" []
        in
        Alcotest.(check string) "invalid" "invalid-opcode"
          (Evm.Trace.status_to_string trace.status));
    unit "transfer moves ether and reverts on failure" (fun () ->
        (* sending more than the contract holds must revert the tx *)
        let _, _, _, trace =
          deploy_and_call
            {|contract X { function f() public { msg.sender.transfer(1 ether); } }|}
            "f" []
        in
        Alcotest.(check string) "reverted" "reverted"
          (Evm.Trace.status_to_string trace.status));
    unit "send returns false without reverting" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            {|contract X { function f() public returns (uint256) {
               bool ok = msg.sender.send(1 ether);
               if (ok) { return 1; }
               return 0; } }|}
            "f" []
        in
        Alcotest.(check string) "success" "success"
          (Evm.Trace.status_to_string trace.status);
        Alcotest.check u256 "false" U.zero (ret_word trace));
    unit "modifier wraps body" (fun () ->
        let _, _, _, trace =
          deploy_and_call ~caller:(U.of_int 0xBAD) ~ctor_caller:(U.of_int 0xEE)
            {|contract G { address owner; uint256 x;
               constructor() public { owner = msg.sender; }
               modifier onlyOwner() { require(msg.sender == owner); _; }
               function f() public onlyOwner { x = 1; } }|}
            "f" []
        in
        Alcotest.(check string) "reverted for non-owner" "reverted"
          (Evm.Trace.status_to_string trace.status));
    unit "arithmetic wraps (solc 0.4 semantics)" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            {|contract V { function f(uint256 a) public returns (uint256) {
               return a - 1; } }|}
            "f" [ Abi.VUint U.zero ]
        in
        Alcotest.check u256 "underflow wraps" U.max_value (ret_word trace));
    unit "keccak256 builtin matches library" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            {|contract K { function f(uint256 a) public returns (uint256) {
               return uint256(keccak256(a)); } }|}
            "f" [ Abi.VUint (U.of_int 5) ]
        in
        Alcotest.check u256 "hash"
          (Crypto.Keccak.hash_word (U.to_bytes_be (U.of_int 5)))
          (ret_word trace));
    unit "this.balance via selfbalance" (fun () ->
        let _, _, _, trace =
          deploy_and_call ~value:(U.of_int 42)
            {|contract B { function f() public payable returns (uint256) {
               return this.balance; } }|}
            "f" []
        in
        Alcotest.check u256 "42" (U.of_int 42) (ret_word trace));
  ]

let modifier_caller_fix =
  (* the "modifier wraps body" test needs the ctor run by a different
     caller; verify positive case separately with matching callers *)
  [
    unit "modifier passes for owner" (fun () ->
        let _, addr, st, trace =
          deploy_and_call
            {|contract G { address owner; uint256 x;
               constructor() public { owner = msg.sender; }
               modifier onlyOwner() { require(msg.sender == owner); _; }
               function f() public onlyOwner { x = 1; } }|}
            "f" []
        in
        Alcotest.(check string) "ok" "success" (Evm.Trace.status_to_string trace.status);
        Alcotest.check u256 "x set" U.one (Evm.State.storage_get st addr U.one));
  ]

let suite =
  [
    ("minisol: lexer", lexer_tests);
    ("minisol: parser", parser_tests);
    ("minisol: typecheck", typecheck_tests);
    ("minisol: codegen", codegen_tests @ modifier_caller_fix);
  ]

let array_tests =
  [
    unit "push / length / index roundtrip" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            {|contract A { uint256[] xs;
               function f() public returns (uint256) {
                 xs.push(10);
                 xs.push(20);
                 xs.push(30);
                 return xs[0] + xs[2] + xs.length; } }|}
            "f" []
        in
        Alcotest.check u256 "10+30+3" (U.of_int 43) (ret_word trace));
    unit "push returns the new length" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            {|contract A { uint256[] xs;
               function f() public returns (uint256) {
                 uint256 n = xs.push(7);
                 return n; } }|}
            "f" []
        in
        Alcotest.check u256 "1" U.one (ret_word trace));
    unit "element assignment" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            {|contract A { uint256[] xs;
               function f() public returns (uint256) {
                 xs.push(1);
                 xs[0] = 99;
                 return xs[0]; } }|}
            "f" []
        in
        Alcotest.check u256 "99" (U.of_int 99) (ret_word trace));
    unit "out-of-bounds read hits INVALID" (fun () ->
        let _, _, _, trace =
          deploy_and_call
            {|contract A { uint256[] xs;
               function f() public returns (uint256) { return xs[0]; } }|}
            "f" []
        in
        Alcotest.(check string) "invalid" "invalid-opcode"
          (Evm.Trace.status_to_string trace.status));
    unit "length persists across transactions" (fun () ->
        let c =
          Minisol.Contract.compile
            {|contract A { uint256[] xs;
               function add(uint256 v) public { xs.push(v); }
               function len() public returns (uint256) { return xs.length; } }|}
        in
        let addr = U.of_int 0xC0 in
        let caller = U.of_int 0xEE in
        let st = Minisol.Contract.deploy Evm.State.empty addr c in
        let call st name args =
          let f = List.find (fun (f : Abi.func) -> f.Abi.name = name) c.abi in
          Evm.Interp.execute ~block:Evm.Interp.default_block ~state:st
            { caller; origin = caller; callee = addr; value = U.zero;
              data = Abi.encode_call f args; gas = 1_000_000 }
        in
        let st, _ = call st "constructor" [] in
        let st, _ = call st "add" [ Abi.VUint (U.of_int 5) ] in
        let st, _ = call st "add" [ Abi.VUint (U.of_int 6) ] in
        let _, trace = call st "len" [] in
        Alcotest.check u256 "2" (U.of_int 2) (ret_word trace));
    unit "array layout matches Solidity (keccak(slot) + i)" (fun () ->
        let _, addr, st, _ =
          deploy_and_call
            {|contract A { uint256[] xs; function f() public { xs.push(42); } }|}
            "f" []
        in
        let base = Crypto.Keccak.hash_word (U.to_bytes_be U.zero) in
        Alcotest.check u256 "elem 0" (U.of_int 42)
          (Evm.State.storage_get st addr base);
        Alcotest.check u256 "length at slot" U.one
          (Evm.State.storage_get st addr U.zero));
    unit "array params rejected" (fun () ->
        expect_type_error
          "contract A { function f(uint256[] xs) public { } }");
    unit "arrays count as state in dependency analysis" (fun () ->
        let info =
          Analysis.Statevars.analyze
            (Minisol.Parser.parse
               {|contract A { uint256[] xs;
                  function add(uint256 v) public { xs.push(v); }
                  function total() public returns (uint256) {
                    uint256 acc = 0;
                    for (uint256 i = 0; i < xs.length; i += 1) { acc += xs[i]; }
                    return acc; } }|})
        in
        let seq = Analysis.Sequence.derive_base info in
        Alcotest.(check (list string)) "writer first" [ "add"; "total" ] seq);
  ]

let suite = suite @ [ ("minisol: arrays", array_tests) ]

let pretty_tests =
  [
    unit "parse-print-parse round trip on every example" (fun () ->
        List.iter
          (fun (name, src) ->
            let ast1 = Minisol.Parser.parse src in
            let printed = Minisol.Pretty.to_source ast1 in
            match Minisol.Parser.parse printed with
            | ast2 ->
              if ast1 <> ast2 then
                Alcotest.failf "%s: AST changed across round trip\n%s" name printed
            | exception e ->
              Alcotest.failf "%s: printed source does not parse: %s\n%s" name
                (Printexc.to_string e) printed)
          Corpus.Examples.all);
    unit "round trip on a vulnerability-suite sample" (fun () ->
        List.iteri
          (fun i (l : Corpus.Vuln.labelled) ->
            if i mod 13 = 0 then begin
              let ast1 = Minisol.Parser.parse l.source in
              let ast2 = Minisol.Parser.parse (Minisol.Pretty.to_source ast1) in
              if ast1 <> ast2 then Alcotest.failf "%s changed" l.name
            end)
          Corpus.Vuln.suite);
    unit "round trip on generated contracts" (fun () ->
        List.iter
          (fun (s : Corpus.Generator.spec) ->
            let ast1 = Minisol.Parser.parse s.source in
            let ast2 = Minisol.Parser.parse (Minisol.Pretty.to_source ast1) in
            if ast1 <> ast2 then Alcotest.failf "%s changed" s.name)
          (Corpus.Generator.population ~seed:31L ~n:10 Corpus.Generator.Small
             ~bug_rate:0.4));
    unit "printed source compiles identically" (fun () ->
        let c1 = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let printed = Minisol.Pretty.to_source c1.ast in
        let c2 = Minisol.Contract.compile printed in
        Alcotest.(check bool) "same bytecode" true (c1.bytecode = c2.bytecode));
  ]

let suite = suite @ [ ("minisol: pretty printer", pretty_tests) ]

let array_error_tests =
  [
    unit "length on a non-array rejected" (fun () ->
        expect_type_error
          "contract T { uint256 x; function f() public { x = x.length; } }");
    unit "push on a mapping rejected" (fun () ->
        expect_type_error
          {|contract T { mapping(address => uint256) m;
             function f() public { uint256 n = m.push(1); } }|});
    unit "indexing a scalar rejected" (fun () ->
        expect_type_error
          "contract T { uint256 x; function f() public { x = x[0]; } }");
    unit "whole-array assignment rejected" (fun () ->
        expect_type_error
          "contract T { uint256[] xs; function f() public { xs = 1; } }");
  ]

let suite = suite @ [ ("minisol: array errors", array_error_tests) ]
