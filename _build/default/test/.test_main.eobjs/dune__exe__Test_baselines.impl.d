test/test_baselines.ml: Alcotest Baselines Corpus List Minisol Mufuzz Option Oracles
