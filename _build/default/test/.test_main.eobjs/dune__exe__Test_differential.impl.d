test/test_differential.ml: Abi Alcotest Evm List Minisol Printf QCheck2 QCheck_alcotest Word
