test/test_util.ml: Alcotest Bytes Char List String Util
