test/test_mufuzz.ml: Abi Alcotest Array Corpus Evm Filename Hashtbl Int64 List Minisol Mufuzz Oracles Printf QCheck2 QCheck_alcotest String Sys Util Word
