test/test_oracles.ml: Alcotest Corpus Evm List Minisol Mufuzz Oracles Printf String Word
