test/test_evm.ml: Abi Alcotest Array Corpus Evm List Minisol QCheck2 QCheck_alcotest String Word
