test/test_minisol.ml: Abi Alcotest Analysis Corpus Crypto Evm List Minisol Option Printexc String Word
