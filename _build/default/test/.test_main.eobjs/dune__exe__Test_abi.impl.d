test/test_abi.ml: Abi Alcotest List String Util Word
