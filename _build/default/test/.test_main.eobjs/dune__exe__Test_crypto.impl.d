test/test_crypto.ml: Alcotest Bytes Char Crypto QCheck2 QCheck_alcotest String Util Word
