test/test_u256.ml: Alcotest List QCheck2 QCheck_alcotest String Word
