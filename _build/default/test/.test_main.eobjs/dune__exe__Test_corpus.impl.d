test/test_corpus.ml: Alcotest Corpus Evm Filename List Minisol Mufuzz Oracles Printexc String Sys
