test/test_analysis.ml: Abi Alcotest Analysis Array Corpus Evm Hashtbl List Minisol Option String Util Word
