(* Corpus integrity: every example and suite contract compiles, labels
   are consistent, and the generator produces deterministic well-typed
   populations with the advertised size split. *)

let unit name f = Alcotest.test_case name `Quick f

let example_tests =
  [
    unit "all examples compile" (fun () ->
        List.iter
          (fun (name, src) ->
            match Minisol.Contract.compile src with
            | c -> Alcotest.(check string) "name matches" name c.name
            | exception e ->
              Alcotest.failf "%s: %s" name (Printexc.to_string e))
          Corpus.Examples.all);
    unit "examples have callable functions" (fun () ->
        List.iter
          (fun (name, src) ->
            let c = Minisol.Contract.compile src in
            if Minisol.Contract.callable_functions c = [] then
              Alcotest.failf "%s has no public functions" name)
          Corpus.Examples.all);
  ]

let vuln_tests =
  [
    unit "every suite contract compiles" (fun () ->
        List.iter
          (fun (l : Corpus.Vuln.labelled) ->
            match Corpus.Vuln.compile l with
            | _ -> ()
            | exception e -> Alcotest.failf "%s: %s" l.name (Printexc.to_string e))
          Corpus.Vuln.suite);
    unit "label totals match Table III positives" (fun () ->
        let expected =
          [ (Oracles.Oracle.BD, 20); (UD, 17); (EF, 22); (IO, 65); (RE, 16);
            (US, 23); (SE, 19); (TO, 2); (UE, 31) ]
        in
        List.iter
          (fun (cls, n) ->
            Alcotest.(check int)
              (Oracles.Oracle.class_to_string cls)
              n (Corpus.Vuln.label_count cls))
          expected);
    unit "positives exclude safe controls" (fun () ->
        Alcotest.(check bool) "fewer positives" true
          (List.length Corpus.Vuln.positives < List.length Corpus.Vuln.suite);
        List.iter
          (fun (l : Corpus.Vuln.labelled) ->
            if l.labels = [] then Alcotest.failf "%s in positives" l.name)
          Corpus.Vuln.positives);
    unit "by_class returns only matching contracts" (fun () ->
        List.iter
          (fun (l : Corpus.Vuln.labelled) ->
            if not (List.mem Oracles.Oracle.RE l.labels) then
              Alcotest.failf "%s lacks RE" l.name)
          (Corpus.Vuln.by_class Oracles.Oracle.RE));
    unit "contract names are unique" (fun () ->
        let names = List.map (fun (l : Corpus.Vuln.labelled) -> l.name) Corpus.Vuln.suite in
        Alcotest.(check int) "no duplicates" (List.length names)
          (List.length (List.sort_uniq compare names)));
  ]

let generator_tests =
  [
    unit "population is deterministic" (fun () ->
        let a = Corpus.Generator.population ~seed:5L ~n:5 Corpus.Generator.Small ~bug_rate:0.2 in
        let b = Corpus.Generator.population ~seed:5L ~n:5 Corpus.Generator.Small ~bug_rate:0.2 in
        List.iter2
          (fun (x : Corpus.Generator.spec) (y : Corpus.Generator.spec) ->
            Alcotest.(check string) "same source" x.source y.source)
          a b);
    unit "different seeds differ" (fun () ->
        let a = List.hd (Corpus.Generator.population ~seed:5L ~n:1 Corpus.Generator.Small ~bug_rate:0.0) in
        let b = List.hd (Corpus.Generator.population ~seed:6L ~n:1 Corpus.Generator.Small ~bug_rate:0.0) in
        Alcotest.(check bool) "differ" true (a.source <> b.source));
    unit "every generated contract compiles (small and large)" (fun () ->
        List.iter
          (fun size ->
            List.iter
              (fun (s : Corpus.Generator.spec) ->
                match Corpus.Generator.compile s with
                | _ -> ()
                | exception e ->
                  Alcotest.failf "%s: %s\n%s" s.name (Printexc.to_string e) s.source)
              (Corpus.Generator.population ~seed:77L ~n:15 size ~bug_rate:0.3))
          [ Corpus.Generator.Small; Corpus.Generator.Large ]);
    unit "size classes straddle the 3632 threshold" (fun () ->
        let small =
          Corpus.Generator.population ~seed:8L ~n:10 Corpus.Generator.Small ~bug_rate:0.0
          |> List.map Corpus.Generator.compile
        in
        let large =
          Corpus.Generator.population ~seed:9L ~n:10 Corpus.Generator.Large ~bug_rate:0.0
          |> List.map Corpus.Generator.compile
        in
        List.iter
          (fun c ->
            Alcotest.(check bool) "small <= 3632" true
              (Minisol.Contract.instruction_count c <= 3632))
          small;
        let over =
          List.length
            (List.filter (fun c -> Minisol.Contract.instruction_count c > 3632) large)
        in
        Alcotest.(check bool) "most large > 3632" true (over >= 8));
    unit "bug_rate zero injects nothing" (fun () ->
        List.iter
          (fun (s : Corpus.Generator.spec) ->
            Alcotest.(check (list string)) "no injection" []
              (List.map Oracles.Oracle.class_to_string s.injected))
          (Corpus.Generator.population ~seed:10L ~n:10 Corpus.Generator.Small ~bug_rate:0.0));
    unit "bug_rate one injects in every contract" (fun () ->
        let pop =
          Corpus.Generator.population ~seed:11L ~n:10 Corpus.Generator.Small ~bug_rate:1.0
        in
        List.iter
          (fun (s : Corpus.Generator.spec) ->
            Alcotest.(check bool) "has injection" true (s.injected <> []))
          pop);
    unit "generated contracts are fuzzable" (fun () ->
        let spec =
          List.hd
            (Corpus.Generator.population ~seed:12L ~n:1 Corpus.Generator.Small
               ~bug_rate:0.5)
        in
        let c = Corpus.Generator.compile spec in
        let r =
          Mufuzz.Campaign.run
            ~config:{ Mufuzz.Config.default with max_executions = 150 } c
        in
        Alcotest.(check bool) "covers something" true (r.covered_branches > 0));
  ]

let suite =
  [
    ("corpus: examples", example_tests);
    ("corpus: vulnerability suite", vuln_tests);
    ("corpus: generator", generator_tests);
  ]

let flavor_tests =
  [
    unit "RE flavors carry correct co-labels" (fun () ->
        (* classic DAO (flavor 0) and cross-function (flavor 2) also
           underflow; withdraw-all (flavor 1) does not *)
        List.iter
          (fun (l : Corpus.Vuln.labelled) ->
            let n = int_of_string (String.sub l.name 3 2) in
            let expect_io = n mod 3 <> 1 in
            Alcotest.(check bool)
              (l.name ^ " IO label")
              expect_io
              (List.mem Oracles.Oracle.IO l.labels))
          (Corpus.Vuln.by_class Oracles.Oracle.RE));
    unit "suite export writes files" (fun () ->
        let dir = Filename.temp_file "d2" "" in
        Sys.remove dir;
        Corpus.Vuln.write_to_dir dir;
        Alcotest.(check bool) "labels file" true
          (Sys.file_exists (Filename.concat dir "LABELS.txt"));
        Alcotest.(check bool) "a contract file" true
          (Sys.file_exists (Filename.concat dir "BDv00.sol"));
        (* exported sources re-parse *)
        let ic = open_in (Filename.concat dir "REv00.sol") in
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        ignore (Minisol.Contract.compile src));
    unit "every BD variant mentions block state" (fun () ->
        List.iter
          (fun (l : Corpus.Vuln.labelled) ->
            let has needle =
              let m = String.length needle and n = String.length l.source in
              let rec go i =
                i + m <= n && (String.sub l.source i m = needle || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool) l.name true
              (has "block.timestamp" || has "block.number" || has "blockhash"))
          (Corpus.Vuln.by_class Oracles.Oracle.BD));
    unit "US magic-kill variants carry a strict constant" (fun () ->
        let magic =
          List.filter
            (fun (l : Corpus.Vuln.labelled) ->
              let n = int_of_string (String.sub l.name 3 2) in
              n mod 4 = 3)
            (Corpus.Vuln.by_class Oracles.Oracle.US)
        in
        Alcotest.(check bool) "some exist" true (magic <> []);
        List.iter
          (fun (l : Corpus.Vuln.labelled) ->
            let c = Corpus.Vuln.compile l in
            (* the kill-switch constant must appear in the dictionary *)
            let dict = Evm.Bytecode.push_constants c.bytecode in
            Alcotest.(check bool) (l.name ^ " dict") true (List.length dict > 0))
          magic);
  ]

let suite = suite @ [ ("corpus: flavors", flavor_tests) ]
