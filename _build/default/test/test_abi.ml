(* ABI encoding: selectors, argument round-trips, canonicalisation. *)

module U = Word.U256

let unit name f = Alcotest.test_case name `Quick f

let fn name inputs = { Abi.name; inputs; payable = false; is_constructor = false }

let tests =
  [
    unit "signature rendering" (fun () ->
        Alcotest.(check string) "sig" "transfer(address,uint256)"
          (Abi.signature (fn "transfer" [ Abi.Address; Abi.Uint256 ])));
    unit "selector is canonical keccak prefix" (fun () ->
        Alcotest.(check string) "sel" "a9059cbb"
          (Util.Hex.encode (Abi.selector (fn "transfer" [ Abi.Address; Abi.Uint256 ]))));
    unit "encode_call layout" (fun () ->
        let f = fn "f" [ Abi.Uint256; Abi.Bool ] in
        let data = Abi.encode_call f [ Abi.VUint (U.of_int 7); Abi.VBool true ] in
        Alcotest.(check int) "len" (4 + 64) (String.length data);
        Alcotest.(check string) "arg1 tail byte" "\x07"
          (String.sub data 35 1);
        Alcotest.(check string) "bool" "\x01" (String.sub data 67 1));
    unit "encode_call arity mismatch" (fun () ->
        Alcotest.check_raises "arity"
          (Invalid_argument "Abi.encode_call: arity mismatch") (fun () ->
            ignore (Abi.encode_call (fn "f" [ Abi.Uint256 ]) [])));
    unit "decode_args inverts encode" (fun () ->
        let f = fn "g" [ Abi.Uint256; Abi.Address; Abi.Bool ] in
        let vals =
          [ Abi.VUint (U.of_int 123456789); Abi.VAddress (U.of_int 0xabcdef);
            Abi.VBool false ]
        in
        let data = Abi.encode_call f vals in
        let args_part = String.sub data 4 (String.length data - 4) in
        Alcotest.(check (list string)) "roundtrip"
          (List.map Abi.value_to_string vals)
          (List.map Abi.value_to_string (Abi.decode_args f args_part)));
    unit "canonicalize uint8 masks to low byte" (fun () ->
        Alcotest.(check string) "low byte" "255"
          (U.to_decimal_string (Abi.canonicalize_word Abi.Uint8 (U.of_int 0xFFF))));
    unit "canonicalize address keeps low 160 bits" (fun () ->
        let w = U.max_value in
        let a = Abi.canonicalize_word Abi.Address w in
        Alcotest.(check int) "bits" 160 (U.bit_length a));
    unit "canonicalize bool is 0/1" (fun () ->
        Alcotest.(check string) "1" "1"
          (U.to_decimal_string (Abi.canonicalize_word Abi.Bool (U.of_int 77)));
        Alcotest.(check string) "0" "0"
          (U.to_decimal_string (Abi.canonicalize_word Abi.Bool U.zero)));
    unit "encode_args_raw pads short streams" (fun () ->
        let f = fn "h" [ Abi.Uint256; Abi.Uint256 ] in
        let data = Abi.encode_args_raw f "\x01" in
        Alcotest.(check int) "len" (4 + 64) (String.length data);
        (* the single byte becomes the high byte of the first word *)
        Alcotest.(check char) "first" '\x01' data.[4]);
    unit "encode_args_raw canonicalises each word" (fun () ->
        let f = fn "h" [ Abi.Bool ] in
        let data = Abi.encode_args_raw f (String.make 32 '\xff') in
        (* bool word must canonicalise to exactly one *)
        Alcotest.(check string) "word is one" (U.to_decimal_string U.one)
          (U.to_decimal_string (U.of_bytes_be (String.sub data 4 32))));
    unit "args_byte_length" (fun () ->
        Alcotest.(check int) "2 args" 64
          (Abi.args_byte_length (fn "f" [ Abi.Uint256; Abi.Address ])));
  ]

let suite = [ ("abi", tests) ]
