(* Baseline fuzzers (policy profiles) and static analyzers. *)

module O = Oracles.Oracle
module B = Baselines.Fuzzers
module S = Baselines.Staticdet

let unit name f = Alcotest.test_case name `Quick f

let fuzzer_tests =
  [
    unit "five fuzzers in presentation order" (fun () ->
        Alcotest.(check (list string)) "names"
          [ "sFuzz"; "ConFuzzius"; "Smartian"; "IR-Fuzz"; "MuFuzz" ]
          (List.map (fun (p : B.profile) -> p.name) B.all));
    unit "find resolves by name" (fun () ->
        Alcotest.(check bool) "sFuzz" true (B.find "sFuzz" <> None);
        Alcotest.(check bool) "unknown" true (B.find "AFL" = None));
    unit "supported classes match Table I" (fun () ->
        let sup name = (Option.get (B.find name)).B.supports in
        Alcotest.(check bool) "sFuzz no SE" true (not (List.mem O.SE (sup "sFuzz")));
        Alcotest.(check bool) "sFuzz no US" true (not (List.mem O.US (sup "sFuzz")));
        Alcotest.(check bool) "Smartian has TO" true (List.mem O.TO (sup "Smartian"));
        Alcotest.(check bool) "IR-Fuzz has SE" true (List.mem O.SE (sup "IR-Fuzz"));
        Alcotest.(check int) "MuFuzz supports all 9" 9 (List.length (sup "MuFuzz")));
    unit "profile configs differ from MuFuzz" (fun () ->
        let base = Mufuzz.Config.default in
        let sfuzz = (Option.get (B.find "sFuzz")).B.configure base in
        Alcotest.(check bool) "random order" true
          (sfuzz.sequence_mode = Mufuzz.Config.Seq_random);
        Alcotest.(check bool) "no mask" true (not sfuzz.mask_guided);
        let smartian = (Option.get (B.find "Smartian")).B.configure base in
        Alcotest.(check bool) "no distance feedback" true
          (not smartian.distance_feedback);
        let irfuzz = (Option.get (B.find "IR-Fuzz")).B.configure base in
        Alcotest.(check bool) "prolongation" true irfuzz.prolongation);
    unit "findings filtered to supported classes" (fun () ->
        (* sFuzz cannot report US even when the oracle fires *)
        let c = Minisol.Contract.compile Corpus.Examples.suicidal in
        let config = { Mufuzz.Config.default with max_executions = 400 } in
        let r = B.run (Option.get (B.find "sFuzz")) ~config c in
        Alcotest.(check bool) "no US finding" true
          (not (List.exists (fun (f : O.finding) -> f.cls = O.US) r.findings));
        let rm = B.run B.mufuzz ~config c in
        Alcotest.(check bool) "MuFuzz reports US" true
          (List.exists (fun (f : O.finding) -> f.cls = O.US) rm.findings));
  ]

let static_findings p src =
  match S.analyze p (Minisol.Contract.compile src) with
  | S.Findings fs -> List.sort_uniq compare (List.map (fun (f : O.finding) -> f.cls) fs)
  | S.Timeout -> Alcotest.fail "unexpected timeout"
  | S.Error e -> Alcotest.failf "unexpected error: %s" e

let static_tests =
  [
    unit "slither finds US on suicidal" (fun () ->
        Alcotest.(check bool) "US" true
          (List.mem O.US (static_findings S.slither Corpus.Examples.suicidal)));
    unit "slither discounts guarded selfdestruct" (fun () ->
        let src =
          {|contract Safe { address owner;
             function close() public { require(msg.sender == owner); selfdestruct(owner); } }|}
        in
        Alcotest.(check bool) "no US" true
          (not (List.mem O.US (static_findings S.slither src))));
    unit "oyente over-approximates reentrancy" (fun () ->
        (* a checked call still gets flagged by the over-approximating tool *)
        let src =
          {|contract C { uint256 x;
             function f() public { bool ok = msg.sender.call.value(1)(); require(ok); } }|}
        in
        Alcotest.(check bool) "RE flagged" true
          (List.mem O.RE (static_findings S.oyente src)));
    unit "oyente errors on constructor keyword" (fun () ->
        match S.analyze S.oyente (Minisol.Contract.compile Corpus.Examples.crowdsale) with
        | S.Error _ -> ()
        | _ -> Alcotest.fail "expected version error");
    unit "mythril times out on large programs" (fun () ->
        let spec =
          List.hd
            (Corpus.Generator.population ~seed:42L ~n:1 Corpus.Generator.Large
               ~bug_rate:0.0)
        in
        match S.analyze S.mythril (Corpus.Generator.compile spec) with
        | S.Timeout -> ()
        | _ -> Alcotest.fail "expected timeout");
    unit "securify only reports its two classes" (fun () ->
        let found = static_findings S.securify Corpus.Examples.simple_dao in
        Alcotest.(check bool) "subset" true
          (List.for_all (fun c -> List.mem c S.securify.supports) found));
    unit "slither finds EF on piggy bank" (fun () ->
        Alcotest.(check bool) "EF" true
          (List.mem O.EF (static_findings S.slither Corpus.Examples.piggy_bank)));
    unit "mythril finds TO on origin auth" (fun () ->
        Alcotest.(check bool) "TO" true
          (List.mem O.TO (static_findings S.mythril Corpus.Examples.origin_auth)));
    unit "static tools cannot see dynamic-only sequence bugs" (fun () ->
        (* the crowdsale deep-state bug has no syntactic signature *)
        let found = static_findings S.slither Corpus.Examples.crowdsale in
        Alcotest.(check bool) "no RE claim" true (not (List.mem O.RE found)));
  ]

let suite =
  [ ("baselines: fuzzers", fuzzer_tests); ("baselines: static analyzers", static_tests) ]

let extended_tests =
  [
    unit "extended list adds ContractFuzzer and Echidna" (fun () ->
        Alcotest.(check int) "seven tools" 7 (List.length B.extended);
        Alcotest.(check bool) "find ContractFuzzer" true (B.find "ContractFuzzer" <> None));
    unit "ContractFuzzer is black-box" (fun () ->
        let cfg = B.contractfuzzer.B.configure Mufuzz.Config.default in
        Alcotest.(check bool) "blackbox" true cfg.blackbox;
        Alcotest.(check bool) "no distance" true (not cfg.distance_feedback));
    unit "black-box campaign respects budget and runs" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let config = { Mufuzz.Config.default with max_executions = 200 } in
        let r = B.run B.contractfuzzer ~config c in
        Alcotest.(check int) "budget" 200 r.executions;
        Alcotest.(check bool) "coverage recorded" true (r.covered_branches > 0));
    unit "black-box is weaker than MuFuzz on the deep-state target" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let config = { Mufuzz.Config.default with max_executions = 400 } in
        let bb = B.run B.contractfuzzer ~config c in
        let mf = B.run B.mufuzz ~config c in
        Alcotest.(check bool) "mufuzz >= blackbox" true
          (mf.covered_branches >= bb.covered_branches));
  ]

let suite = suite @ [ ("baselines: extended profiles", extended_tests) ]
