open Ast
module U = Word.U256
module Op = Evm.Opcode

let constructor_guard_slot = U.shift_left U.one 255

(* Pseudo-instructions: labels become JUMPDESTs, label pushes are patched
   to the label's instruction index during assembly. *)
type pinstr =
  | I of Op.t
  | Push_label of string
  | Label of string

type cg = {
  contract : contract;
  mutable out : pinstr list;  (* reversed *)
  mutable label_counter : int;
  var_slots : (string, int) Hashtbl.t;  (* "<func>.<var>" -> memory offset *)
  mutable next_mem : int;
}

let emit cg op = cg.out <- I op :: cg.out
let emit_push cg v = emit cg (Op.PUSH v)
let emit_push_int cg n = emit_push cg (U.of_int n)
let push_label cg l = cg.out <- Push_label l :: cg.out
let place_label cg l = cg.out <- Label l :: cg.out

let fresh_label cg prefix =
  cg.label_counter <- cg.label_counter + 1;
  Printf.sprintf "%s_%d" prefix cg.label_counter

let mem_slot cg func_name var =
  let key = func_name ^ "." ^ var in
  match Hashtbl.find_opt cg.var_slots key with
  | Some off -> off
  | None ->
    let off = cg.next_mem in
    cg.next_mem <- cg.next_mem + 32;
    Hashtbl.add cg.var_slots key off;
    off

(* Variable resolution: locals and params shadow state variables. *)
type var_kind =
  | Local_mem of int
  | State_slot of int
  | Mapping_slot of int
  | Array_slot of int

let resolve cg (func : func) name =
  let key = func.name ^ "." ^ name in
  if Hashtbl.mem cg.var_slots key then Local_mem (Hashtbl.find cg.var_slots key)
  else
    match find_state_var cg.contract name with
    | Some v -> begin
      match v.v_ty with
      | T_mapping _ -> Mapping_slot v.v_slot
      | T_array _ -> Array_slot v.v_slot
      | _ -> State_slot v.v_slot
    end
    | None -> Local_mem (mem_slot cg func.name name)

(* Scratch memory for SHA3-based slot derivation; locals start above it. *)
let scratch = 0x00
let locals_base = 0x200

let rec compile_expr cg (func : func) (e : expr) =
  match e with
  | Number n -> emit_push cg n
  | Bool_lit b -> emit_push cg (if b then U.one else U.zero)
  | Ident "this" -> emit cg Op.ADDRESS
  | Ident name -> begin
    match resolve cg func name with
    | Local_mem off ->
      emit_push_int cg off;
      emit cg Op.MLOAD
    | State_slot slot ->
      emit_push_int cg slot;
      emit cg Op.SLOAD
    | Mapping_slot _ | Array_slot _ ->
      raise (Typecheck.Type_error ("aggregate used as value: " ^ name))
  end
  | Index (name, key) ->
    compile_element_slot cg func name key;
    emit cg Op.SLOAD
  | Array_length name -> begin
    match resolve cg func name with
    | Array_slot slot ->
      emit_push_int cg slot;
      emit cg Op.SLOAD
    | _ -> raise (Typecheck.Type_error (name ^ " is not an array"))
  end
  | Array_push (name, e) -> begin
    match resolve cg func name with
    | Array_slot slot ->
      (* elem slot = keccak256(slot) + len; store, then bump the length;
         the push expression evaluates to the new length (solc 0.4) *)
      emit_push_int cg slot;
      emit cg Op.SLOAD;
      emit cg (Op.DUP 1);
      emit_push_int cg slot;
      emit_push_int cg scratch;
      emit cg Op.MSTORE;
      emit_push_int cg 32;
      emit_push_int cg scratch;
      emit cg Op.SHA3;
      emit cg Op.ADD;
      compile_expr cg func e;
      emit cg (Op.SWAP 1);
      emit cg Op.SSTORE;
      emit_push cg U.one;
      emit cg Op.ADD;
      emit cg (Op.DUP 1);
      emit_push_int cg slot;
      emit cg Op.SSTORE
    | _ -> raise (Typecheck.Type_error (name ^ " is not an array"))
  end
  | Unop (Neg, e) ->
    compile_expr cg func e;
    emit_push cg U.zero;
    emit cg Op.SUB
  | Unop (Not, e) ->
    compile_expr cg func e;
    emit cg Op.ISZERO
  | Binop (op, a, b) -> begin
    compile_expr cg func a;
    compile_expr cg func b;
    (* stack: [b (top); a]. EVM binops take their first operand from the
       top, so non-commutative operations need a swap. *)
    match op with
    | Add -> emit cg Op.ADD
    | Mul -> emit cg Op.MUL
    | Sub ->
      emit cg (Op.SWAP 1);
      emit cg Op.SUB
    | Div ->
      emit cg (Op.SWAP 1);
      emit cg Op.DIV
    | Mod ->
      emit cg (Op.SWAP 1);
      emit cg Op.MOD
    | Lt ->
      emit cg (Op.SWAP 1);
      emit cg Op.LT
    | Gt ->
      emit cg (Op.SWAP 1);
      emit cg Op.GT
    | Le ->
      emit cg (Op.SWAP 1);
      emit cg Op.GT;
      emit cg Op.ISZERO
    | Ge ->
      emit cg (Op.SWAP 1);
      emit cg Op.LT;
      emit cg Op.ISZERO
    | Eq -> emit cg Op.EQ
    | Neq ->
      emit cg Op.EQ;
      emit cg Op.ISZERO
    | And -> emit cg Op.AND
    | Or -> emit cg Op.OR
  end
  | Msg_sender -> emit cg Op.CALLER
  | Msg_value -> emit cg Op.CALLVALUE
  | Tx_origin -> emit cg Op.ORIGIN
  | Block_timestamp -> emit cg Op.TIMESTAMP
  | Block_number -> emit cg Op.NUMBER
  | Block_difficulty -> emit cg Op.DIFFICULTY
  | Block_coinbase -> emit cg Op.COINBASE
  | This_balance -> emit cg Op.SELFBALANCE
  | Balance_of e ->
    compile_expr cg func e;
    emit cg Op.BALANCE
  | Keccak args ->
    let n = List.length args in
    List.iter (compile_expr cg func) args;
    (* last argument is on top; store back-to-front *)
    for i = n - 1 downto 0 do
      emit_push_int cg (scratch + (32 * i));
      emit cg Op.MSTORE
    done;
    emit_push_int cg (32 * n);
    emit_push_int cg scratch;
    emit cg Op.SHA3
  | Blockhash e ->
    compile_expr cg func e;
    emit cg Op.BLOCKHASH
  | Send (target, v) ->
    (* CALL pops: gas, to, value, in_off, in_len, out_off, out_len *)
    emit_push cg U.zero;
    emit_push cg U.zero;
    emit_push cg U.zero;
    emit_push cg U.zero;
    compile_expr cg func v;
    compile_expr cg func target;
    emit_push_int cg 2300;
    emit cg Op.CALL
  | Transfer_call (target, v) ->
    compile_expr cg func (Send (target, v));
    let ok = fresh_label cg "xfer_ok" in
    push_label cg ok;
    emit cg Op.JUMPI;
    emit_push cg U.zero;
    emit_push cg U.zero;
    emit cg Op.REVERT;
    place_label cg ok;
    (* leave a unit value so expression positions stay uniform *)
    emit_push cg U.one
  | Call_value (target, v) ->
    emit_push cg U.zero;
    emit_push cg U.zero;
    emit_push cg U.zero;
    emit_push cg U.zero;
    compile_expr cg func v;
    compile_expr cg func target;
    emit cg Op.GAS;
    emit cg Op.CALL
  | Delegatecall (target, data) ->
    (* DELEGATECALL pops: gas, to, in_off, in_len, out_off, out_len *)
    compile_expr cg func data;
    emit_push_int cg scratch;
    emit cg Op.MSTORE;
    emit_push cg U.zero;
    emit_push cg U.zero;
    emit_push_int cg 32;
    emit_push_int cg scratch;
    compile_expr cg func target;
    emit cg Op.GAS;
    emit cg Op.DELEGATECALL
  | Internal_call (name, args) ->
    let callee =
      match find_function cg.contract name with
      | Some f -> f
      | None -> raise (Typecheck.Type_error ("unknown function " ^ name))
    in
    List.iter (compile_expr cg func) args;
    (* store arguments into the callee's parameter slots, last first *)
    List.iter
      (fun (_, pname) ->
        emit_push_int cg (mem_slot cg callee.name pname);
        emit cg Op.MSTORE)
      (List.rev callee.params);
    let ret = fresh_label cg "ret" in
    push_label cg ret;
    push_label cg ("fn_" ^ name);
    emit cg Op.JUMP;
    place_label cg ret

(* Leaves the derived storage slot for m[key] / xs[i] on the stack:
   mappings use keccak256(key ++ slot); arrays use keccak256(slot) + i
   with a bounds check against the stored length (OOB hits INVALID, as
   solc compiles it). *)
and compile_element_slot cg func name key =
  match resolve cg func name with
  | Mapping_slot slot ->
    compile_expr cg func key;
    emit_push_int cg scratch;
    emit cg Op.MSTORE;
    emit_push_int cg slot;
    emit_push_int cg (scratch + 32);
    emit cg Op.MSTORE;
    emit_push_int cg 64;
    emit_push_int cg scratch;
    emit cg Op.SHA3
  | Array_slot slot ->
    let ok = fresh_label cg "idx_ok" in
    compile_expr cg func key;
    emit cg (Op.DUP 1);
    emit_push_int cg slot;
    emit cg Op.SLOAD;
    emit cg Op.GT;
    push_label cg ok;
    emit cg Op.JUMPI;
    emit cg Op.INVALID;
    place_label cg ok;
    emit_push_int cg slot;
    emit_push_int cg scratch;
    emit cg Op.MSTORE;
    emit_push_int cg 32;
    emit_push_int cg scratch;
    emit cg Op.SHA3;
    emit cg Op.ADD
  | Local_mem _ | State_slot _ ->
    raise (Typecheck.Type_error (name ^ " is not indexable"))

let rec compile_stmt cg (func : func) (s : stmt) =
  match s with
  | Local (_, name, init) -> begin
    let off = mem_slot cg func.name name in
    match init with
    | Some e ->
      compile_expr cg func e;
      emit_push_int cg off;
      emit cg Op.MSTORE
    | None -> ()
  end
  | Assign (L_var name, e) -> begin
    compile_expr cg func e;
    match resolve cg func name with
    | Local_mem off ->
      emit_push_int cg off;
      emit cg Op.MSTORE
    | State_slot slot ->
      emit_push_int cg slot;
      emit cg Op.SSTORE
    | Mapping_slot _ | Array_slot _ ->
      raise (Typecheck.Type_error ("cannot assign to aggregate " ^ name))
  end
  | Assign (L_index (name, key), e) ->
    compile_expr cg func e;
    compile_element_slot cg func name key;
    emit cg Op.SSTORE
  | Aug_assign (lv, op, e) ->
    let lhs_expr =
      match lv with L_var n -> Ident n | L_index (n, k) -> Index (n, k)
    in
    compile_stmt cg func (Assign (lv, Binop (op, lhs_expr, e)))
  | If (cond, then_b, []) ->
    let end_l = fresh_label cg "endif" in
    compile_expr cg func cond;
    emit cg Op.ISZERO;
    push_label cg end_l;
    emit cg Op.JUMPI;
    List.iter (compile_stmt cg func) then_b;
    place_label cg end_l
  | If (cond, then_b, else_b) ->
    let else_l = fresh_label cg "else" in
    let end_l = fresh_label cg "endif" in
    compile_expr cg func cond;
    emit cg Op.ISZERO;
    push_label cg else_l;
    emit cg Op.JUMPI;
    List.iter (compile_stmt cg func) then_b;
    push_label cg end_l;
    emit cg Op.JUMP;
    place_label cg else_l;
    List.iter (compile_stmt cg func) else_b;
    place_label cg end_l
  | While (cond, body) ->
    let start = fresh_label cg "while" in
    let end_l = fresh_label cg "wend" in
    place_label cg start;
    compile_expr cg func cond;
    emit cg Op.ISZERO;
    push_label cg end_l;
    emit cg Op.JUMPI;
    List.iter (compile_stmt cg func) body;
    push_label cg start;
    emit cg Op.JUMP;
    place_label cg end_l
  | For (init, cond, post, body) ->
    (match init with Some i -> compile_stmt cg func i | None -> ());
    let start = fresh_label cg "for" in
    let end_l = fresh_label cg "fend" in
    place_label cg start;
    compile_expr cg func cond;
    emit cg Op.ISZERO;
    push_label cg end_l;
    emit cg Op.JUMPI;
    List.iter (compile_stmt cg func) body;
    (match post with Some p -> compile_stmt cg func p | None -> ());
    push_label cg start;
    emit cg Op.JUMP;
    place_label cg end_l
  | Require e ->
    let ok = fresh_label cg "req_ok" in
    compile_expr cg func e;
    push_label cg ok;
    emit cg Op.JUMPI;
    emit_push cg U.zero;
    emit_push cg U.zero;
    emit cg Op.REVERT;
    place_label cg ok
  | Assert e ->
    let ok = fresh_label cg "asrt_ok" in
    compile_expr cg func e;
    push_label cg ok;
    emit cg Op.JUMPI;
    emit cg Op.INVALID;
    place_label cg ok
  | Revert ->
    emit_push cg U.zero;
    emit_push cg U.zero;
    emit cg Op.REVERT
  | Return None ->
    emit_push cg U.zero;
    emit cg (Op.SWAP 1);
    emit cg Op.JUMP
  | Return (Some e) ->
    compile_expr cg func e;
    emit cg (Op.SWAP 1);
    emit cg Op.JUMP
  | Expr_stmt (Transfer_call _ as e) ->
    compile_expr cg func e;
    emit cg Op.POP
  | Expr_stmt e ->
    compile_expr cg func e;
    emit cg Op.POP
  | Selfdestruct e ->
    compile_expr cg func e;
    emit cg Op.SELFDESTRUCT
  | Emit (_, args) ->
    let n = List.length args in
    List.iter (compile_expr cg func) args;
    emit_push cg U.zero;
    emit_push cg U.zero;
    emit cg (Op.LOG n)

(* Wrap a function body in its modifiers, outermost first. *)
let expand_modifiers (c : contract) (f : func) =
  List.fold_right
    (fun mname body ->
      match List.find_opt (fun d -> d.m_name = mname) c.modifiers_decls with
      | Some d -> d.m_body_pre @ body @ d.m_body_post
      | None -> body)
    f.modifiers f.body

let compile_function cg (f : func) =
  (* Calling convention: stack on entry is [return-label]; the body ends
     by pushing one result word and jumping back. *)
  place_label cg ("fn_" ^ f.name);
  if f.is_constructor then begin
    (* run-once guard *)
    let ok = fresh_label cg "ctor_ok" in
    emit_push cg constructor_guard_slot;
    emit cg Op.SLOAD;
    emit cg Op.ISZERO;
    push_label cg ok;
    emit cg Op.JUMPI;
    emit_push cg U.zero;
    emit_push cg U.zero;
    emit cg Op.REVERT;
    place_label cg ok;
    emit_push cg U.one;
    emit_push cg constructor_guard_slot;
    emit cg Op.SSTORE;
    (* state-variable initializers *)
    List.iter
      (fun v ->
        match v.v_init with
        | Some e ->
          compile_expr cg f e;
          emit_push_int cg v.v_slot;
          emit cg Op.SSTORE
        | None -> ())
      cg.contract.state_vars
  end;
  List.iter (compile_stmt cg f) (expand_modifiers cg.contract f);
  (* implicit return 0 *)
  emit_push cg U.zero;
  emit cg (Op.SWAP 1);
  emit cg Op.JUMP

let abi_ty = function
  | T_uint256 -> Abi.Uint256
  | T_uint8 -> Abi.Uint8
  | T_address -> Abi.Address
  | T_bool -> Abi.Bool
  | T_mapping _ | T_array _ ->
    raise (Typecheck.Type_error "aggregate in ABI position")

let abi_of_func (f : func) =
  {
    Abi.name = (if f.is_constructor then "constructor" else f.name);
    inputs = List.map (fun (ty, _) -> abi_ty ty) f.params;
    payable = f.payable || f.is_constructor;
    is_constructor = f.is_constructor;
  }

let synth_constructor =
  {
    name = "constructor";
    params = [];
    ret = None;
    visibility = Public;
    payable = true;
    modifiers = [];
    body = [];
    is_constructor = true;
  }

let assemble (pinstrs : pinstr list) : Evm.Bytecode.t =
  (* First pass: assign instruction indices; labels become JUMPDESTs. *)
  let targets = Hashtbl.create 64 in
  let idx = ref 0 in
  List.iter
    (fun p ->
      (match p with Label name -> Hashtbl.replace targets name !idx | _ -> ());
      incr idx)
    pinstrs;
  let resolve name =
    match Hashtbl.find_opt targets name with
    | Some i -> U.of_int i
    | None -> raise (Typecheck.Type_error ("unresolved label " ^ name))
  in
  Array.of_list
    (List.map
       (function
         | I op -> op
         | Label _ -> Op.JUMPDEST
         | Push_label name -> Op.PUSH (resolve name))
       pinstrs)

let compile (c : contract) =
  Typecheck.check c;
  let c =
    if constructor c = None then { c with functions = synth_constructor :: c.functions }
    else c
  in
  let cg =
    {
      contract = c;
      out = [];
      label_counter = 0;
      var_slots = Hashtbl.create 64;
      next_mem = locals_base;
    }
  in
  let externally_callable =
    (match constructor c with Some f -> [ f ] | None -> [])
    @ public_functions c
  in
  let abi = List.map abi_of_func externally_callable in
  (* Pre-allocate parameter slots so the dispatcher can fill them. *)
  List.iter
    (fun (f : func) ->
      List.iter (fun (_, pname) -> ignore (mem_slot cg f.name pname)) f.params)
    c.functions;
  (* Dispatcher. *)
  emit_push cg U.zero;
  emit cg Op.CALLDATALOAD;
  emit_push_int cg 224;
  emit cg Op.SHR;
  List.iter
    (fun (f : func) ->
      let sel = Abi.selector (abi_of_func f) in
      emit cg (Op.DUP 1);
      emit_push cg (U.of_bytes_be sel);
      emit cg Op.EQ;
      push_label cg ("disp_" ^ f.name);
      emit cg Op.JUMPI)
    externally_callable;
  (* Fallback: accept plain value transfers. *)
  emit cg Op.STOP;
  (* Per-function dispatch stubs. *)
  List.iter
    (fun (f : func) ->
      place_label cg ("disp_" ^ f.name);
      emit cg Op.POP;
      (* reject value sent to non-payable functions *)
      if not (f.payable || f.is_constructor) then begin
        let ok = fresh_label cg "nonpay_ok" in
        emit cg Op.CALLVALUE;
        emit cg Op.ISZERO;
        push_label cg ok;
        emit cg Op.JUMPI;
        emit_push cg U.zero;
        emit_push cg U.zero;
        emit cg Op.REVERT;
        place_label cg ok
      end;
      (* copy arguments from calldata into the parameter slots *)
      List.iteri
        (fun i (_, pname) ->
          emit_push_int cg (4 + (32 * i));
          emit cg Op.CALLDATALOAD;
          emit_push_int cg (mem_slot cg f.name pname);
          emit cg Op.MSTORE)
        f.params;
      push_label cg ("finish_" ^ f.name);
      push_label cg ("fn_" ^ f.name);
      emit cg Op.JUMP;
      place_label cg ("finish_" ^ f.name);
      match f.ret with
      | Some _ ->
        emit_push cg U.zero;
        emit cg Op.MSTORE;
        emit_push_int cg 32;
        emit_push cg U.zero;
        emit cg Op.RETURN
      | None -> emit cg Op.STOP)
    externally_callable;
  (* Function bodies (all functions, including internal ones). *)
  List.iter (compile_function cg) c.functions;
  (assemble (List.rev cg.out), abi)
