lib/minisol/contract.ml: Abi Ast Codegen Evm List Parser
