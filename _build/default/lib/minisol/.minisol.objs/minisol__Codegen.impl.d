lib/minisol/codegen.ml: Abi Array Ast Evm Hashtbl List Printf Typecheck Word
