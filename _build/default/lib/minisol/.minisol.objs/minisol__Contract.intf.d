lib/minisol/contract.mli: Abi Ast Evm
