lib/minisol/lexer.ml: List Printf String Word
