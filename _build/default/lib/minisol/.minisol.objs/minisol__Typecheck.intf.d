lib/minisol/typecheck.mli: Ast
