lib/minisol/parser.ml: Array Ast Lexer List Printf Stdlib Word
