lib/minisol/ast.mli: Word
