lib/minisol/parser.mli: Ast
