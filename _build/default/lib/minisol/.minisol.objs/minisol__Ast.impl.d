lib/minisol/ast.ml: List Printf Word
