lib/minisol/pretty.ml: Ast List Printf String Word
