lib/minisol/lexer.mli: Word
