lib/minisol/codegen.mli: Abi Ast Evm Word
