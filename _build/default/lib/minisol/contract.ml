type t = {
  name : string;
  source : string;
  ast : Ast.contract;
  bytecode : Evm.Bytecode.t;
  abi : Abi.func list;
}

let compile_ast ast ~source =
  let bytecode, abi = Codegen.compile ast in
  { name = ast.Ast.c_name; source; ast; bytecode; abi }

let compile source = compile_ast (Parser.parse source) ~source

let constructor_abi t =
  match List.find_opt (fun f -> f.Abi.is_constructor) t.abi with
  | Some f -> f
  | None -> assert false (* Codegen synthesises one *)

let callable_functions t = List.filter (fun f -> not f.Abi.is_constructor) t.abi

let instruction_count t = Evm.Bytecode.byte_size t.bytecode

let deploy state addr t = Evm.State.set_code state addr t.bytecode
