(** AST pretty-printer: renders a contract back to parseable Minisol
    source. [Parser.parse (to_source c)] yields an AST equal to [c]
    (round-trip tests enforce this), which makes the printer usable for
    corpus normalisation and debugging generated contracts. *)

val expr_to_string : Ast.expr -> string

val stmt_to_lines : indent:int -> Ast.stmt -> string list

val to_source : Ast.contract -> string
