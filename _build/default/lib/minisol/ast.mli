(** Abstract syntax of Minisol, the Solidity subset compiled by this
    reproduction.

    The subset covers everything the paper's motivating examples and bug
    classes exercise: persistent state variables (including mappings),
    payable functions, require/assert, ether transfer primitives
    ([transfer] / [send] / [call.value]), [delegatecall], [selfdestruct],
    block and transaction context, modifiers, and wrapping 256-bit
    arithmetic (solc 0.4 semantics, no SafeMath). *)

type ty =
  | T_uint256
  | T_uint8
  | T_address
  | T_bool
  | T_mapping of ty * ty  (** key type, value type *)
  | T_array of ty  (** dynamic storage array *)

val ty_to_string : ty -> string

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Gt | Le | Ge | Eq | Neq
  | And | Or

val binop_to_string : binop -> string

type expr =
  | Number of Word.U256.t
  | Bool_lit of bool
  | Ident of string  (** state variable, local, or parameter *)
  | Index of string * expr  (** [m\[k\]] mapping or array access *)
  | Array_length of string  (** [xs.length] *)
  | Array_push of string * expr
      (** [xs.push(e)]; evaluates to the new length (solc 0.4) *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Msg_sender
  | Msg_value
  | Tx_origin
  | Block_timestamp
  | Block_number
  | Block_difficulty
  | Block_coinbase
  | This_balance  (** [address(this).balance] *)
  | Balance_of of expr  (** [addr.balance] *)
  | Keccak of expr list  (** [keccak256(...)], arguments hashed together *)
  | Blockhash of expr
  | Send of expr * expr  (** [addr.send(v)]; evaluates to bool *)
  | Call_value of expr * expr  (** [addr.call.value(v)()]; forwards all gas *)
  | Transfer_call of expr * expr
      (** [addr.transfer(v)]: 2300-gas CALL that reverts on failure;
          statement-position only *)
  | Delegatecall of expr * expr  (** [addr.delegatecall(word)] *)
  | Internal_call of string * expr list  (** call to an [internal] function *)

type lvalue =
  | L_var of string
  | L_index of string * expr

type stmt =
  | Local of ty * string * expr option  (** [uint256 x = e;] *)
  | Assign of lvalue * expr
  | Aug_assign of lvalue * binop * expr  (** [x += e] etc. *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr * stmt option * stmt list
  | Require of expr
  | Assert of expr
  | Revert
  | Return of expr option
  | Expr_stmt of expr  (** e.g. a [send] whose result is dropped *)
  | Selfdestruct of expr
  | Emit of string * expr list  (** events; compiled to LOG *)

type visibility = Public | Internal

type func = {
  name : string;
  params : (ty * string) list;
  ret : ty option;
  visibility : visibility;
  payable : bool;
  modifiers : string list;
  body : stmt list;
  is_constructor : bool;
}

type modifier_decl = {
  m_name : string;
  m_body_pre : stmt list;  (** statements before the [_;] placeholder *)
  m_body_post : stmt list;  (** statements after it *)
}

type state_var = {
  v_name : string;
  v_ty : ty;
  v_init : expr option;
  v_slot : int;  (** assigned in declaration order *)
}

type contract = {
  c_name : string;
  state_vars : state_var list;
  modifiers_decls : modifier_decl list;
  functions : func list;  (** constructor included, if any *)
}

val find_function : contract -> string -> func option
val find_state_var : contract -> string -> state_var option
val public_functions : contract -> func list
(** Public non-constructor functions, in declaration order. *)

val constructor : contract -> func option
