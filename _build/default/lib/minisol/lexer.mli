(** Tokenizer for Minisol source. *)

type token =
  | IDENT of string
  | NUMBER of Word.U256.t
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW  (** [=>] *)
  | ASSIGN | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN
  | EQ | NEQ | LE | GE | LT | GT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ANDAND | OROR | BANG
  | UNDERSCORE
  | EOF

type positioned = { tok : token; line : int; col : int }

exception Lex_error of string * int * int
(** message, line, column *)

val tokenize : string -> positioned list
(** Tokenizes a full source text. Comments ([//] and [/* */]) and
    whitespace are skipped. Number literals accept [_] separators, [0x]
    hex, and the suffixes [wei] / [finney] / [ether] / [days] / [hours] /
    [minutes] / [seconds] which scale the value. *)

val token_to_string : token -> string
