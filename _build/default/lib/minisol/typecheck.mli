(** Static checks over a parsed contract.

    Deliberately permissive in the style of solc 0.4 (uints of different
    widths unify; addresses convert to uint256) but strict about the
    things the compiler and the fuzzer rely on: every identifier resolves,
    mapping accesses go to declared mappings, internal calls match a
    declared internal function's arity, modifiers exist, and value
    expressions are not used where booleans are required (and vice
    versa). *)

exception Type_error of string

val check : Ast.contract -> unit
(** @raise Type_error describing the first problem found. *)

val expr_type : Ast.contract -> Ast.func -> Ast.expr -> Ast.ty
(** Type of an expression in the scope of [func] (params, locals of the
    whole body, state variables). Booleans are [T_bool]; everything
    numeric is [T_uint256] unless declared narrower.
    @raise Type_error on unresolvable expressions. *)
