module U = Word.U256

type token =
  | IDENT of string
  | NUMBER of U.t
  | LBRACE | RBRACE | LPAREN | RPAREN | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW
  | ASSIGN | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN
  | EQ | NEQ | LE | GE | LT | GT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ANDAND | OROR | BANG
  | UNDERSCORE
  | EOF

type positioned = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

let token_to_string = function
  | IDENT s -> s
  | NUMBER n -> U.to_decimal_string n
  | LBRACE -> "{" | RBRACE -> "}" | LPAREN -> "(" | RPAREN -> ")"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | DOT -> "." | ARROW -> "=>"
  | ASSIGN -> "=" | PLUS_ASSIGN -> "+=" | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*=" | SLASH_ASSIGN -> "/="
  | EQ -> "==" | NEQ -> "!=" | LE -> "<=" | GE -> ">=" | LT -> "<" | GT -> ">"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | UNDERSCORE -> "_"
  | EOF -> "<eof>"

let unit_scale = function
  | "wei" -> Some "1"
  | "finney" -> Some "1000000000000000"
  | "ether" -> Some "1000000000000000000"
  | "seconds" -> Some "1"
  | "minutes" -> Some "60"
  | "hours" -> Some "3600"
  | "days" -> Some "86400"
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let out = ref [] in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let cur () = peek 0 in
  let advance () =
    (match cur () with
    | Some '\n' ->
      incr line;
      col := 1
    | Some _ -> incr col
    | None -> ());
    incr pos
  in
  let error msg = raise (Lex_error (msg, !line, !col)) in
  let add tok l c = out := { tok; line = l; col = c } :: !out in
  let read_ident () =
    let start = !pos in
    while (match cur () with Some c -> is_ident_char c | None -> false) do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  let skip_ws_and_comments () =
    let continue = ref true in
    while !continue do
      match cur () with
      | Some (' ' | '\t' | '\r' | '\n') -> advance ()
      | Some '/' when peek 1 = Some '/' ->
        while cur () <> None && cur () <> Some '\n' do
          advance ()
        done
      | Some '/' when peek 1 = Some '*' ->
        advance ();
        advance ();
        let closed = ref false in
        while not !closed do
          match cur () with
          | None -> error "unterminated comment"
          | Some '*' when peek 1 = Some '/' ->
            advance ();
            advance ();
            closed := true
          | Some _ -> advance ()
        done
      | _ -> continue := false
    done
  in
  let read_number () =
    let l = !line and c = !col in
    let value =
      if cur () = Some '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        advance ();
        advance ();
        let start = !pos in
        while (match cur () with Some ch -> is_hex_digit ch || ch = '_' | None -> false) do
          advance ()
        done;
        let digits =
          String.concat ""
            (String.split_on_char '_' (String.sub src start (!pos - start)))
        in
        if digits = "" then error "empty hex literal";
        U.of_hex_string digits
      end
      else begin
        let start = !pos in
        while (match cur () with Some ch -> is_digit ch || ch = '_' | None -> false) do
          advance ()
        done;
        U.of_decimal_string (String.sub src start (!pos - start))
      end
    in
    (* Optional unit suffix: "100 ether", "88 finney", "3 days". *)
    let saved_pos = !pos and saved_line = !line and saved_col = !col in
    skip_ws_and_comments ();
    let value =
      match cur () with
      | Some ch when is_ident_start ch -> begin
        let word_start = !pos in
        let word = read_ident () in
        match unit_scale word with
        | Some scale -> U.mul value (U.of_decimal_string scale)
        | None ->
          (* Not a unit: rewind the identifier (but keep skipped ws). *)
          pos := word_start;
          col := saved_col + (word_start - saved_pos);
          value
      end
      | _ ->
        pos := saved_pos;
        line := saved_line;
        col := saved_col;
        value
    in
    add (NUMBER value) l c
  in
  while !pos < n do
    skip_ws_and_comments ();
    if !pos < n then begin
      let l = !line and c = !col in
      match cur () with
      | None -> ()
      | Some ch when is_digit ch -> read_number ()
      | Some ch when is_ident_start ch ->
        let word = read_ident () in
        if word = "pragma" then begin
          (* pragma directives may contain version operators the language
             has no tokens for; skip the whole directive here *)
          while cur () <> None && cur () <> Some ';' do
            advance ()
          done;
          if cur () = Some ';' then advance ()
        end
        else if word = "_" then add UNDERSCORE l c
        else add (IDENT word) l c
      | Some '{' -> advance (); add LBRACE l c
      | Some '}' -> advance (); add RBRACE l c
      | Some '(' -> advance (); add LPAREN l c
      | Some ')' -> advance (); add RPAREN l c
      | Some '[' -> advance (); add LBRACKET l c
      | Some ']' -> advance (); add RBRACKET l c
      | Some ';' -> advance (); add SEMI l c
      | Some ',' -> advance (); add COMMA l c
      | Some '.' -> advance (); add DOT l c
      | Some '=' ->
        advance ();
        if cur () = Some '=' then (advance (); add EQ l c)
        else if cur () = Some '>' then (advance (); add ARROW l c)
        else add ASSIGN l c
      | Some '!' ->
        advance ();
        if cur () = Some '=' then (advance (); add NEQ l c) else add BANG l c
      | Some '<' ->
        advance ();
        if cur () = Some '=' then (advance (); add LE l c) else add LT l c
      | Some '>' ->
        advance ();
        if cur () = Some '=' then (advance (); add GE l c) else add GT l c
      | Some '+' ->
        advance ();
        if cur () = Some '=' then (advance (); add PLUS_ASSIGN l c)
        else if cur () = Some '+' then (advance (); add PLUS_ASSIGN l c)
          (* x++ is sugar for x += (handled in the parser via a 1 literal) *)
        else add PLUS l c
      | Some '-' ->
        advance ();
        if cur () = Some '=' then (advance (); add MINUS_ASSIGN l c)
        else if cur () = Some '-' then (advance (); add MINUS_ASSIGN l c)
        else add MINUS l c
      | Some '*' ->
        advance ();
        if cur () = Some '=' then (advance (); add STAR_ASSIGN l c) else add STAR l c
      | Some '/' ->
        advance ();
        if cur () = Some '=' then (advance (); add SLASH_ASSIGN l c) else add SLASH l c
      | Some '%' -> advance (); add PERCENT l c
      | Some '&' ->
        advance ();
        if cur () = Some '&' then (advance (); add ANDAND l c)
        else error "single '&' is not supported"
      | Some '|' ->
        advance ();
        if cur () = Some '|' then (advance (); add OROR l c)
        else error "single '|' is not supported"
      | Some ch -> error (Printf.sprintf "unexpected character %C" ch)
    end
  done;
  add EOF !line !col;
  List.rev !out
