(** Compilation of a checked Minisol AST to EVM bytecode.

    Layout of the generated program:
    - a selector dispatcher at instruction 0 ([CALLDATALOAD 0 >> 224]
      compared against each public function's selector);
    - a per-function "finish" stub that returns or stops;
    - one body per function (public and internal share the same calling
      convention: the caller pushes a return label, the callee leaves a
      single result word and jumps back).

    Locals and parameters live in EVM memory at statically allocated,
    contract-unique offsets (no recursion). Mappings use the Solidity
    slot derivation [keccak256(key ++ slot)]. The constructor is exposed
    as an ordinary selector guarded by a one-shot storage flag, so
    deployment reuses the transaction machinery. *)

val constructor_guard_slot : Word.U256.t
(** Storage slot of the constructor's run-once flag (2^255). *)

val compile : Ast.contract -> Evm.Bytecode.t * Abi.func list
(** Compiles the contract; the ABI list contains the (possibly
    synthesised) constructor first, then the public functions in
    declaration order.
    @raise Typecheck.Type_error if the contract is malformed. *)
