open Ast
module L = Lexer

exception Parse_error of string * int * int

type st = { toks : L.positioned array; mutable i : int }

let cur st = st.toks.(st.i)

let error st msg =
  let p = cur st in
  raise (Parse_error (Printf.sprintf "%s (got %s)" msg (L.token_to_string p.tok), p.line, p.col))

let advance st = if st.i < Array.length st.toks - 1 then st.i <- st.i + 1

let expect st tok msg =
  if (cur st).tok = tok then advance st else error st msg

let accept st tok =
  if (cur st).tok = tok then begin
    advance st;
    true
  end
  else false

let accept_ident st name =
  match (cur st).tok with
  | L.IDENT s when s = name ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match (cur st).tok with
  | L.IDENT s ->
    advance st;
    s
  | _ -> error st "expected identifier"

let peek_tok st k =
  let j = Stdlib.min (st.i + k) (Array.length st.toks - 1) in
  st.toks.(j).tok

let is_type_name = function
  | "uint256" | "uint" | "uint8" | "address" | "bool" | "mapping" -> true
  | _ -> false

let rec parse_type st =
  let base = parse_base_type st in
  if (cur st).tok = L.LBRACKET && peek_tok st 1 = L.RBRACKET then begin
    advance st;
    advance st;
    T_array base
  end
  else base

and parse_base_type st =
  match (cur st).tok with
  | L.IDENT "uint256" | L.IDENT "uint" ->
    advance st;
    T_uint256
  | L.IDENT "uint8" ->
    advance st;
    T_uint8
  | L.IDENT "address" ->
    advance st;
    T_address
  | L.IDENT "bool" ->
    advance st;
    T_bool
  | L.IDENT "mapping" ->
    advance st;
    expect st L.LPAREN "expected '(' after mapping";
    let k = parse_type st in
    expect st L.ARROW "expected '=>' in mapping type";
    let v = parse_type st in
    expect st L.RPAREN "expected ')' closing mapping type";
    T_mapping (k, v)
  | _ -> error st "expected a type"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while accept st L.OROR do
    let rhs = parse_and st in
    lhs := Binop (Or, !lhs, rhs)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_equality st) in
  while accept st L.ANDAND do
    let rhs = parse_equality st in
    lhs := Binop (And, !lhs, rhs)
  done;
  !lhs

and parse_equality st =
  let lhs = ref (parse_relational st) in
  let continue = ref true in
  while !continue do
    if accept st L.EQ then lhs := Binop (Eq, !lhs, parse_relational st)
    else if accept st L.NEQ then lhs := Binop (Neq, !lhs, parse_relational st)
    else continue := false
  done;
  !lhs

and parse_relational st =
  let lhs = ref (parse_additive st) in
  let continue = ref true in
  while !continue do
    if accept st L.LT then lhs := Binop (Lt, !lhs, parse_additive st)
    else if accept st L.GT then lhs := Binop (Gt, !lhs, parse_additive st)
    else if accept st L.LE then lhs := Binop (Le, !lhs, parse_additive st)
    else if accept st L.GE then lhs := Binop (Ge, !lhs, parse_additive st)
    else continue := false
  done;
  !lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    if accept st L.PLUS then lhs := Binop (Add, !lhs, parse_multiplicative st)
    else if accept st L.MINUS then lhs := Binop (Sub, !lhs, parse_multiplicative st)
    else continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    if accept st L.STAR then lhs := Binop (Mul, !lhs, parse_unary st)
    else if accept st L.SLASH then lhs := Binop (Div, !lhs, parse_unary st)
    else if accept st L.PERCENT then lhs := Binop (Mod, !lhs, parse_unary st)
    else continue := false
  done;
  !lhs

and parse_unary st =
  if accept st L.BANG then Unop (Not, parse_unary st)
  else if accept st L.MINUS then Unop (Neg, parse_unary st)
  else parse_postfix st

and parse_args st =
  expect st L.LPAREN "expected '('";
  let args = ref [] in
  if (cur st).tok <> L.RPAREN then begin
    args := [ parse_expr st ];
    while accept st L.COMMA do
      args := parse_expr st :: !args
    done
  end;
  expect st L.RPAREN "expected ')'";
  List.rev !args

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match (cur st).tok with
    | L.LBRACKET -> begin
      advance st;
      let idx = parse_expr st in
      expect st L.RBRACKET "expected ']'";
      match !e with
      | Ident name -> e := Index (name, idx)
      | _ -> error st "indexing is only supported on named mappings"
    end
    | L.DOT -> begin
      advance st;
      let member = expect_ident st in
      match member with
      | "balance" ->
        e := (match !e with Ident "this" -> This_balance | b -> Balance_of b)
      | "length" ->
        e := (match !e with
             | Ident name -> Array_length name
             | _ -> error st ".length is only supported on named arrays")
      | "push" -> begin
        match (!e, parse_args st) with
        | Ident name, [ v ] -> e := Array_push (name, v)
        | Ident _, _ -> error st "push takes one argument"
        | _ -> error st ".push is only supported on named arrays"
      end
      | "transfer" -> begin
        match parse_args st with
        | [ v ] -> e := Transfer_call (!e, v)
        | _ -> error st "transfer takes one argument"
      end
      | "send" -> begin
        match parse_args st with
        | [ v ] -> e := Send (!e, v)
        | _ -> error st "send takes one argument"
      end
      | "call" ->
        (* addr.call.value(v)() / addr.call.value(v)(arg) / addr.call() *)
        if accept st L.DOT then begin
          let sub = expect_ident st in
          if sub <> "value" then error st "only .call.value(...) is supported";
          let v =
            match parse_args st with
            | [ v ] -> v
            | _ -> error st "call.value takes one argument"
          in
          ignore (parse_args st);
          e := Call_value (!e, v)
        end
        else begin
          ignore (parse_args st);
          e := Call_value (!e, Number Word.U256.zero)
        end
      | "delegatecall" -> begin
        match parse_args st with
        | [ d ] -> e := Delegatecall (!e, d)
        | _ -> error st "delegatecall takes one argument"
      end
      | "gas" ->
        (* addr.call.gas(g).value(v)() style is folded into call.value *)
        ignore (parse_args st)
      | _ -> error st (Printf.sprintf "unsupported member '%s'" member)
    end
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  match (cur st).tok with
  | L.NUMBER n ->
    advance st;
    Number n
  | L.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st L.RPAREN "expected ')'";
    e
  | L.IDENT "true" ->
    advance st;
    Bool_lit true
  | L.IDENT "false" ->
    advance st;
    Bool_lit false
  | L.IDENT "now" ->
    advance st;
    Block_timestamp
  | L.IDENT "msg" ->
    advance st;
    expect st L.DOT "expected '.' after msg";
    let m = expect_ident st in
    if m = "sender" then Msg_sender
    else if m = "value" then Msg_value
    else error st "only msg.sender / msg.value are supported"
  | L.IDENT "tx" ->
    advance st;
    expect st L.DOT "expected '.' after tx";
    let m = expect_ident st in
    if m = "origin" then Tx_origin else error st "only tx.origin is supported"
  | L.IDENT "block" ->
    advance st;
    expect st L.DOT "expected '.' after block";
    let m = expect_ident st in
    (match m with
    | "timestamp" -> Block_timestamp
    | "number" -> Block_number
    | "difficulty" -> Block_difficulty
    | "coinbase" -> Block_coinbase
    | "blockhash" -> Blockhash (List.hd (parse_args st))
    | _ -> error st "unsupported block member")
  | L.IDENT "blockhash" ->
    advance st;
    (match parse_args st with
    | [ e ] -> Blockhash e
    | _ -> error st "blockhash takes one argument")
  | L.IDENT ("keccak256" | "sha3") ->
    advance st;
    Keccak (parse_args st)
  | L.IDENT "this" ->
    advance st;
    Ident "this"
  | L.IDENT ("address" | "uint256" | "uint" | "uint8") when peek_tok st 1 = L.LPAREN ->
    (* Type casts are value-preserving here; canonicalisation happens at
       the ABI / typecheck layer. *)
    advance st;
    (match parse_args st with
    | [ e ] -> e
    | _ -> error st "cast takes one argument")
  | L.IDENT name ->
    advance st;
    if (cur st).tok = L.LPAREN then Internal_call (name, parse_args st)
    else Ident name
  | _ -> error st "expected an expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_lvalue_from_expr st e =
  match e with
  | Ident name -> L_var name
  | Index (name, idx) -> L_index (name, idx)
  | _ -> error st "left-hand side must be a variable or mapping element"

let rec parse_block st =
  expect st L.LBRACE "expected '{'";
  let stmts = ref [] in
  while (cur st).tok <> L.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  advance st;
  List.rev !stmts

and parse_stmt st =
  match (cur st).tok with
  | L.IDENT t when is_type_name t && (match peek_tok st 1 with L.IDENT _ -> true | _ -> false)
    ->
    let ty = parse_type st in
    let name = expect_ident st in
    let init = if accept st L.ASSIGN then Some (parse_expr st) else None in
    expect st L.SEMI "expected ';' after local declaration";
    Local (ty, name, init)
  | L.IDENT "if" ->
    advance st;
    expect st L.LPAREN "expected '(' after if";
    let cond = parse_expr st in
    expect st L.RPAREN "expected ')' after condition";
    let then_b = parse_block_or_single st in
    let else_b =
      if accept_ident st "else" then
        if (cur st).tok = L.IDENT "if" then [ parse_stmt st ]
        else parse_block_or_single st
      else []
    in
    If (cond, then_b, else_b)
  | L.IDENT "while" ->
    advance st;
    expect st L.LPAREN "expected '(' after while";
    let cond = parse_expr st in
    expect st L.RPAREN "expected ')' after condition";
    While (cond, parse_block_or_single st)
  | L.IDENT "for" ->
    advance st;
    expect st L.LPAREN "expected '(' after for";
    let init =
      if (cur st).tok = L.SEMI then None
      else
        Some
          (match (cur st).tok with
          | L.IDENT t when is_type_name t ->
            let ty = parse_type st in
            let name = expect_ident st in
            let e = if accept st L.ASSIGN then Some (parse_expr st) else None in
            Local (ty, name, e)
          | _ -> parse_simple_stmt st)
    in
    expect st L.SEMI "expected ';' in for";
    let cond = if (cur st).tok = L.SEMI then Bool_lit true else parse_expr st in
    expect st L.SEMI "expected second ';' in for";
    let post = if (cur st).tok = L.RPAREN then None else Some (parse_simple_stmt st) in
    expect st L.RPAREN "expected ')' closing for";
    For (init, cond, post, parse_block_or_single st)
  | L.IDENT "require" ->
    advance st;
    expect st L.LPAREN "expected '(' after require";
    let e = parse_expr st in
    if accept st L.COMMA then ignore (expect_ident st);
    expect st L.RPAREN "expected ')'";
    expect st L.SEMI "expected ';'";
    Require e
  | L.IDENT "assert" ->
    advance st;
    expect st L.LPAREN "expected '(' after assert";
    let e = parse_expr st in
    expect st L.RPAREN "expected ')'";
    expect st L.SEMI "expected ';'";
    Assert e
  | L.IDENT "revert" ->
    advance st;
    if accept st L.LPAREN then expect st L.RPAREN "expected ')'";
    expect st L.SEMI "expected ';'";
    Revert
  | L.IDENT "return" ->
    advance st;
    if accept st L.SEMI then Return None
    else begin
      let e = parse_expr st in
      expect st L.SEMI "expected ';' after return";
      Return (Some e)
    end
  | L.IDENT "emit" ->
    advance st;
    let name = expect_ident st in
    let args = parse_args st in
    expect st L.SEMI "expected ';' after emit";
    Emit (name, args)
  | L.IDENT "selfdestruct" | L.IDENT "suicide" ->
    advance st;
    let args = parse_args st in
    expect st L.SEMI "expected ';'";
    (match args with
    | [ e ] -> Selfdestruct e
    | _ -> error st "selfdestruct takes one argument")
  | _ ->
    let s = parse_simple_stmt st in
    expect st L.SEMI "expected ';'";
    s

and parse_block_or_single st =
  if (cur st).tok = L.LBRACE then parse_block st else [ parse_stmt st ]

(* assignment / augmented assignment / bare expression, without the
   trailing ';' so it can also serve as a for-loop clause. *)
and parse_simple_stmt st =
  let e = parse_expr st in
  match (cur st).tok with
  | L.ASSIGN ->
    advance st;
    Assign (parse_lvalue_from_expr st e, parse_expr st)
  | L.PLUS_ASSIGN ->
    advance st;
    let lv = parse_lvalue_from_expr st e in
    (* x++ lexes as PLUS_ASSIGN with no following expression *)
    if (cur st).tok = L.SEMI || (cur st).tok = L.RPAREN then
      Aug_assign (lv, Add, Number Word.U256.one)
    else Aug_assign (lv, Add, parse_expr st)
  | L.MINUS_ASSIGN ->
    advance st;
    let lv = parse_lvalue_from_expr st e in
    if (cur st).tok = L.SEMI || (cur st).tok = L.RPAREN then
      Aug_assign (lv, Sub, Number Word.U256.one)
    else Aug_assign (lv, Sub, parse_expr st)
  | L.STAR_ASSIGN ->
    advance st;
    Aug_assign (parse_lvalue_from_expr st e, Mul, parse_expr st)
  | L.SLASH_ASSIGN ->
    advance st;
    Aug_assign (parse_lvalue_from_expr st e, Div, parse_expr st)
  | _ -> Expr_stmt e

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_params st =
  expect st L.LPAREN "expected '('";
  let params = ref [] in
  if (cur st).tok <> L.RPAREN then begin
    let one () =
      let ty = parse_type st in
      (* allow un-named params and memory/calldata qualifiers *)
      let _ = accept_ident st "memory" in
      let name =
        match (cur st).tok with
        | L.IDENT n when not (is_type_name n) ->
          advance st;
          n
        | _ -> ""
      in
      (ty, name)
    in
    params := [ one () ];
    while accept st L.COMMA do
      params := one () :: !params
    done
  end;
  expect st L.RPAREN "expected ')'";
  List.rev !params

type attrs = {
  mutable a_visibility : visibility;
  mutable a_payable : bool;
  mutable a_modifiers : string list;
  mutable a_ret : ty option;
}

let parse_attrs st =
  let a = { a_visibility = Public; a_payable = false; a_modifiers = []; a_ret = None } in
  let continue = ref true in
  while !continue do
    match (cur st).tok with
    | L.IDENT ("public" | "external") ->
      advance st;
      a.a_visibility <- Public
    | L.IDENT ("private" | "internal") ->
      advance st;
      a.a_visibility <- Internal
    | L.IDENT "payable" ->
      advance st;
      a.a_payable <- true
    | L.IDENT ("view" | "pure" | "constant") -> advance st
    | L.IDENT "returns" ->
      advance st;
      expect st L.LPAREN "expected '(' after returns";
      let ty = parse_type st in
      (match (cur st).tok with
      | L.IDENT n when not (is_type_name n) -> advance st
      | _ -> ());
      expect st L.RPAREN "expected ')' after return type";
      a.a_ret <- Some ty
    | L.IDENT name when (cur st).tok <> L.LBRACE ->
      advance st;
      if accept st L.LPAREN then expect st L.RPAREN "expected ')' after modifier";
      a.a_modifiers <- a.a_modifiers @ [ name ]
    | _ -> continue := false
  done;
  a

let parse_contract st =
  (* pragma directives are consumed by the lexer *)
  if not (accept_ident st "contract") then error st "expected 'contract'";
  let c_name = expect_ident st in
  (* ignore inheritance clause: contract X is Y, Z *)
  if accept_ident st "is" then begin
    ignore (expect_ident st);
    while accept st L.COMMA do
      ignore (expect_ident st)
    done
  end;
  expect st L.LBRACE "expected '{'";
  let state_vars = ref [] and functions = ref [] and modifiers = ref [] in
  let next_slot = ref 0 in
  while (cur st).tok <> L.RBRACE do
    match (cur st).tok with
    | L.IDENT "function" | L.IDENT "constructor" -> begin
      let is_ctor_kw = (cur st).tok = L.IDENT "constructor" in
      advance st;
      let name =
        if is_ctor_kw then "constructor"
        else
          match (cur st).tok with
          | L.IDENT n when not (is_type_name n) ->
            advance st;
            n
          | L.LPAREN -> "" (* fallback function *)
          | _ -> error st "expected function name"
      in
      let params = parse_params st in
      let a = parse_attrs st in
      let is_constructor = is_ctor_kw || name = c_name in
      let body = parse_block st in
      let f =
        {
          name = (if is_constructor then "constructor" else name);
          params;
          ret = a.a_ret;
          visibility = a.a_visibility;
          payable = a.a_payable;
          modifiers = a.a_modifiers;
          body;
          is_constructor;
        }
      in
      functions := f :: !functions
    end
    | L.IDENT "modifier" -> begin
      advance st;
      let m_name = expect_ident st in
      if accept st L.LPAREN then expect st L.RPAREN "expected ')'";
      expect st L.LBRACE "expected '{' opening modifier body";
      let pre = ref [] and post = ref [] and seen_hole = ref false in
      while (cur st).tok <> L.RBRACE do
        if (cur st).tok = L.UNDERSCORE then begin
          advance st;
          expect st L.SEMI "expected ';' after '_'";
          seen_hole := true
        end
        else begin
          let s = parse_stmt st in
          if !seen_hole then post := s :: !post else pre := s :: !pre
        end
      done;
      advance st;
      modifiers :=
        { m_name; m_body_pre = List.rev !pre; m_body_post = List.rev !post } :: !modifiers
    end
    | L.IDENT "event" ->
      (* declaration recorded nowhere; emits compile to LOG generically *)
      advance st;
      ignore (expect_ident st);
      ignore (parse_params st);
      expect st L.SEMI "expected ';' after event declaration"
    | L.IDENT t when is_type_name t -> begin
      let ty = parse_type st in
      (* optional visibility on state vars *)
      (match (cur st).tok with
      | L.IDENT ("public" | "private" | "internal" | "constant") -> advance st
      | _ -> ());
      let v_name = expect_ident st in
      let v_init = if accept st L.ASSIGN then Some (parse_expr st) else None in
      expect st L.SEMI "expected ';' after state variable";
      state_vars := { v_name; v_ty = ty; v_init; v_slot = !next_slot } :: !state_vars;
      incr next_slot
    end
    | _ -> error st "expected a contract member"
  done;
  advance st;
  {
    c_name;
    state_vars = List.rev !state_vars;
    modifiers_decls = List.rev !modifiers;
    functions = List.rev !functions;
  }

let parse source =
  let toks = Array.of_list (Lexer.tokenize source) in
  let st = { toks; i = 0 } in
  let c = parse_contract st in
  (match (cur st).tok with
  | L.EOF -> ()
  | _ -> error st "trailing tokens after contract");
  c
