open Ast

(* Expressions are printed fully parenthesised, so operator precedence
   never changes across a round-trip. *)
let rec expr_to_string = function
  | Number n -> Word.U256.to_decimal_string n
  | Bool_lit b -> string_of_bool b
  | Ident s -> s
  | Index (m, k) -> Printf.sprintf "%s[%s]" m (expr_to_string k)
  | Array_length a -> a ^ ".length"
  | Array_push (a, e) -> Printf.sprintf "%s.push(%s)" a (expr_to_string e)
  | Unop (Neg, e) -> Printf.sprintf "(-%s)" (expr_to_string e)
  | Unop (Not, e) -> Printf.sprintf "(!%s)" (expr_to_string e)
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
      (expr_to_string b)
  | Msg_sender -> "msg.sender"
  | Msg_value -> "msg.value"
  | Tx_origin -> "tx.origin"
  | Block_timestamp -> "block.timestamp"
  | Block_number -> "block.number"
  | Block_difficulty -> "block.difficulty"
  | Block_coinbase -> "block.coinbase"
  | This_balance -> "this.balance"
  | Balance_of e -> Printf.sprintf "%s.balance" (expr_to_string e)
  | Keccak es ->
    Printf.sprintf "keccak256(%s)" (String.concat ", " (List.map expr_to_string es))
  | Blockhash e -> Printf.sprintf "blockhash(%s)" (expr_to_string e)
  | Send (t, v) -> Printf.sprintf "%s.send(%s)" (expr_to_string t) (expr_to_string v)
  | Call_value (t, v) ->
    Printf.sprintf "%s.call.value(%s)()" (expr_to_string t) (expr_to_string v)
  | Transfer_call (t, v) ->
    Printf.sprintf "%s.transfer(%s)" (expr_to_string t) (expr_to_string v)
  | Delegatecall (t, d) ->
    Printf.sprintf "%s.delegatecall(%s)" (expr_to_string t) (expr_to_string d)
  | Internal_call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))

let lvalue_to_string = function
  | L_var v -> v
  | L_index (m, k) -> Printf.sprintf "%s[%s]" m (expr_to_string k)

let rec stmt_to_lines ~indent s =
  let pad = String.make indent ' ' in
  let block b = List.concat_map (stmt_to_lines ~indent:(indent + 2)) b in
  match s with
  | Local (ty, name, init) ->
    [ pad ^ ty_to_string ty ^ " " ^ name
      ^ (match init with Some e -> " = " ^ expr_to_string e | None -> "")
      ^ ";" ]
  | Assign (lv, e) ->
    [ Printf.sprintf "%s%s = %s;" pad (lvalue_to_string lv) (expr_to_string e) ]
  | Aug_assign (lv, op, e) ->
    [ Printf.sprintf "%s%s %s= %s;" pad (lvalue_to_string lv) (binop_to_string op)
        (expr_to_string e) ]
  | If (c, t, []) ->
    [ Printf.sprintf "%sif (%s) {" pad (expr_to_string c) ]
    @ block t @ [ pad ^ "}" ]
  | If (c, t, e) ->
    [ Printf.sprintf "%sif (%s) {" pad (expr_to_string c) ]
    @ block t
    @ [ pad ^ "} else {" ]
    @ block e @ [ pad ^ "}" ]
  | While (c, b) ->
    [ Printf.sprintf "%swhile (%s) {" pad (expr_to_string c) ]
    @ block b @ [ pad ^ "}" ]
  | For (init, cond, post, b) ->
    let clause_of_stmt st =
      match stmt_to_lines ~indent:0 st with
      | [ line ] -> String.sub line 0 (String.length line - 1) (* drop ';' *)
      | _ -> invalid_arg "Pretty: compound for clause"
    in
    [ Printf.sprintf "%sfor (%s; %s; %s) {" pad
        (match init with Some i -> clause_of_stmt i | None -> "")
        (expr_to_string cond)
        (match post with Some p -> clause_of_stmt p | None -> "") ]
    @ block b @ [ pad ^ "}" ]
  | Require e -> [ Printf.sprintf "%srequire(%s);" pad (expr_to_string e) ]
  | Assert e -> [ Printf.sprintf "%sassert(%s);" pad (expr_to_string e) ]
  | Revert -> [ pad ^ "revert();" ]
  | Return None -> [ pad ^ "return;" ]
  | Return (Some e) -> [ Printf.sprintf "%sreturn %s;" pad (expr_to_string e) ]
  | Expr_stmt e -> [ pad ^ expr_to_string e ^ ";" ]
  | Selfdestruct e -> [ Printf.sprintf "%sselfdestruct(%s);" pad (expr_to_string e) ]
  | Emit (name, args) ->
    [ Printf.sprintf "%semit %s(%s);" pad name
        (String.concat ", " (List.map expr_to_string args)) ]

let func_to_lines (f : func) =
  let params =
    String.concat ", "
      (List.map (fun (ty, name) -> ty_to_string ty ^ " " ^ name) f.params)
  in
  let attrs =
    (match f.visibility with Public -> " public" | Internal -> " internal")
    ^ (if f.payable then " payable" else "")
    ^ String.concat "" (List.map (fun m -> " " ^ m) f.modifiers)
    ^ (match f.ret with Some ty -> " returns (" ^ ty_to_string ty ^ ")" | None -> "")
  in
  let header =
    if f.is_constructor then Printf.sprintf "  constructor(%s)%s {" params attrs
    else Printf.sprintf "  function %s(%s)%s {" f.name params attrs
  in
  (header :: List.concat_map (stmt_to_lines ~indent:4) f.body) @ [ "  }" ]

let modifier_to_lines (m : modifier_decl) =
  (Printf.sprintf "  modifier %s() {" m.m_name
  :: List.concat_map (stmt_to_lines ~indent:4) m.m_body_pre)
  @ [ "    _;" ]
  @ List.concat_map (stmt_to_lines ~indent:4) m.m_body_post
  @ [ "  }" ]

let to_source (c : contract) =
  let lines =
    [ Printf.sprintf "contract %s {" c.c_name ]
    @ List.map
        (fun v ->
          Printf.sprintf "  %s %s%s;" (ty_to_string v.v_ty) v.v_name
            (match v.v_init with
            | Some e -> " = " ^ expr_to_string e
            | None -> ""))
        c.state_vars
    @ List.concat_map modifier_to_lines c.modifiers_decls
    @ List.concat_map func_to_lines c.functions
    @ [ "}" ]
  in
  String.concat "\n" lines ^ "\n"
