(** The source → (bytecode, ABI, AST) pipeline of §IV-A.

    Mirrors the paper's front end: MuFuzz "takes the contract source code
    as inputs, which is then compiled into three types of representations,
    i.e., bytecode, application binary interface (ABI), and abstract
    syntax tree (AST)". *)

type t = {
  name : string;
  source : string;
  ast : Ast.contract;
  bytecode : Evm.Bytecode.t;
  abi : Abi.func list;  (** constructor first, then public functions *)
}

val compile : string -> t
(** Parse, check and compile a contract from source.
    @raise Parser.Parse_error, Lexer.Lex_error or Typecheck.Type_error. *)

val compile_ast : Ast.contract -> source:string -> t

val constructor_abi : t -> Abi.func

val callable_functions : t -> Abi.func list
(** Public functions, constructor excluded — what the fuzzer mutates. *)

val instruction_count : t -> int
(** Encoded byte size of the program; the paper's D1 small/large split
    uses a threshold of 3632 on this measure. *)

val deploy : Evm.State.t -> Evm.State.address -> t -> Evm.State.t
(** Install the compiled code at an address (constructor not yet run —
    the fuzzer places the constructor transaction at the head of every
    sequence, as the paper prescribes). *)
