(** Recursive-descent parser for Minisol. *)

exception Parse_error of string * int * int
(** message, line, column of the offending token *)

val parse : string -> Ast.contract
(** [parse source] lexes and parses a single contract. An optional
    [pragma] line is skipped; old-style constructors ([function Name])
    are recognised.
    @raise Parse_error or {!Lexer.Lex_error} on malformed input. *)
