type ty =
  | T_uint256
  | T_uint8
  | T_address
  | T_bool
  | T_mapping of ty * ty
  | T_array of ty

let rec ty_to_string = function
  | T_uint256 -> "uint256"
  | T_uint8 -> "uint8"
  | T_address -> "address"
  | T_bool -> "bool"
  | T_mapping (k, v) ->
    Printf.sprintf "mapping(%s => %s)" (ty_to_string k) (ty_to_string v)
  | T_array t -> ty_to_string t ^ "[]" 

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Gt | Le | Ge | Eq | Neq
  | And | Or

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">=" | Eq -> "==" | Neq -> "!="
  | And -> "&&" | Or -> "||"

type expr =
  | Number of Word.U256.t
  | Bool_lit of bool
  | Ident of string
  | Index of string * expr
  | Array_length of string
  | Array_push of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Msg_sender
  | Msg_value
  | Tx_origin
  | Block_timestamp
  | Block_number
  | Block_difficulty
  | Block_coinbase
  | This_balance
  | Balance_of of expr
  | Keccak of expr list
  | Blockhash of expr
  | Send of expr * expr
  | Call_value of expr * expr
  | Transfer_call of expr * expr
  | Delegatecall of expr * expr
  | Internal_call of string * expr list

type lvalue = L_var of string | L_index of string * expr

type stmt =
  | Local of ty * string * expr option
  | Assign of lvalue * expr
  | Aug_assign of lvalue * binop * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr * stmt option * stmt list
  | Require of expr
  | Assert of expr
  | Revert
  | Return of expr option
  | Expr_stmt of expr
  | Selfdestruct of expr
  | Emit of string * expr list

type visibility = Public | Internal

type func = {
  name : string;
  params : (ty * string) list;
  ret : ty option;
  visibility : visibility;
  payable : bool;
  modifiers : string list;
  body : stmt list;
  is_constructor : bool;
}

type modifier_decl = {
  m_name : string;
  m_body_pre : stmt list;
  m_body_post : stmt list;
}

type state_var = {
  v_name : string;
  v_ty : ty;
  v_init : expr option;
  v_slot : int;
}

type contract = {
  c_name : string;
  state_vars : state_var list;
  modifiers_decls : modifier_decl list;
  functions : func list;
}

let find_function c name = List.find_opt (fun f -> f.name = name) c.functions

let find_state_var c name = List.find_opt (fun v -> v.v_name = name) c.state_vars

let public_functions c =
  List.filter (fun f -> f.visibility = Public && not f.is_constructor) c.functions

let constructor c = List.find_opt (fun f -> f.is_constructor) c.functions
