open Ast

exception Type_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let is_numeric = function
  | T_uint256 | T_uint8 | T_address -> true
  | T_bool | T_mapping _ | T_array _ -> false

(* Collect every local declaration in a statement list (block scoping is
   flattened — the compiler allocates one slot per name per function). *)
let rec locals_of_stmts acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Local (ty, name, _) -> (name, ty) :: acc
      | If (_, a, b) -> locals_of_stmts (locals_of_stmts acc a) b
      | While (_, b) -> locals_of_stmts acc b
      | For (init, _, _, b) ->
        let acc = match init with Some i -> locals_of_stmts acc [ i ] | None -> acc in
        locals_of_stmts acc b
      | Assign _ | Aug_assign _ | Require _ | Assert _ | Revert | Return _
      | Expr_stmt _ | Selfdestruct _ | Emit _ ->
        acc)
    acc stmts

let scope_of contract func =
  let state = List.map (fun v -> (v.v_name, v.v_ty)) contract.state_vars in
  let params = List.map (fun (ty, name) -> (name, ty)) func.params in
  let locals = locals_of_stmts [] func.body in
  (* innermost first: locals shadow params shadow state *)
  locals @ params @ state

let rec expr_type contract func e =
  let lookup name =
    match List.assoc_opt name (scope_of contract func) with
    | Some ty -> ty
    | None -> err "unknown identifier '%s' in %s.%s" name contract.c_name func.name
  in
  match e with
  | Number _ -> T_uint256
  | Bool_lit _ -> T_bool
  | Ident "this" -> T_address
  | Ident name -> lookup name
  | Index (name, key) -> begin
    match lookup name with
    | T_mapping (kt, vt) ->
      let actual = expr_type contract func key in
      if not (is_numeric actual && is_numeric kt) && actual <> kt then
        err "mapping '%s' indexed with %s, expected %s" name (ty_to_string actual)
          (ty_to_string kt);
      vt
    | T_array elem ->
      if not (is_numeric (expr_type contract func key)) then
        err "array '%s' indexed with a non-numeric value" name;
      elem
    | ty -> err "'%s' is %s, not indexable" name (ty_to_string ty)
  end
  | Array_length name -> begin
    match lookup name with
    | T_array _ -> T_uint256
    | ty -> err "'%s' is %s, not an array" name (ty_to_string ty)
  end
  | Array_push (name, v) -> begin
    match lookup name with
    | T_array elem ->
      let actual = expr_type contract func v in
      if (actual = T_bool) <> (elem = T_bool) then
        err "push of %s into %s[]" (ty_to_string actual) (ty_to_string elem);
      T_uint256
    | ty -> err "'%s' is %s, not an array" name (ty_to_string ty)
  end
  | Unop (Not, e) ->
    if expr_type contract func e <> T_bool then err "'!' applied to a non-boolean";
    T_bool
  | Unop (Neg, e) ->
    if not (is_numeric (expr_type contract func e)) then err "unary '-' on non-numeric";
    T_uint256
  | Binop (op, a, b) -> begin
    let ta = expr_type contract func a and tb = expr_type contract func b in
    match op with
    | Add | Sub | Mul | Div | Mod ->
      if not (is_numeric ta && is_numeric tb) then
        err "arithmetic '%s' on non-numeric operands" (binop_to_string op);
      T_uint256
    | Lt | Gt | Le | Ge ->
      if not (is_numeric ta && is_numeric tb) then
        err "comparison '%s' on non-numeric operands" (binop_to_string op);
      T_bool
    | Eq | Neq ->
      if (ta = T_bool) <> (tb = T_bool) then err "'==' between boolean and value";
      T_bool
    | And | Or ->
      if ta <> T_bool || tb <> T_bool then
        err "'%s' requires boolean operands" (binop_to_string op);
      T_bool
  end
  | Msg_sender | Tx_origin | Block_coinbase -> T_address
  | Msg_value | Block_timestamp | Block_number | Block_difficulty | This_balance ->
    T_uint256
  | Balance_of e ->
    if not (is_numeric (expr_type contract func e)) then err ".balance of non-address";
    T_uint256
  | Keccak args ->
    List.iter (fun a -> ignore (expr_type contract func a)) args;
    T_uint256
  | Blockhash e ->
    ignore (expr_type contract func e);
    T_uint256
  | Send (target, v) | Call_value (target, v) ->
    if not (is_numeric (expr_type contract func target)) then err "send/call on non-address";
    if not (is_numeric (expr_type contract func v)) then err "send/call value non-numeric";
    T_bool
  | Transfer_call (target, v) ->
    if not (is_numeric (expr_type contract func target)) then err "transfer on non-address";
    if not (is_numeric (expr_type contract func v)) then err "transfer value non-numeric";
    T_bool (* void really; only allowed in statement position *)
  | Delegatecall (target, data) ->
    if not (is_numeric (expr_type contract func target)) then
      err "delegatecall on non-address";
    ignore (expr_type contract func data);
    T_bool
  | Internal_call (name, args) -> begin
    match find_function contract name with
    | None -> err "call to undeclared function '%s'" name
    | Some callee ->
      if callee.is_constructor then err "cannot call the constructor";
      if List.length args <> List.length callee.params then
        err "call to '%s': expected %d arguments, got %d" name
          (List.length callee.params) (List.length args);
      List.iter (fun a -> ignore (expr_type contract func a)) args;
      (match callee.ret with Some ty -> ty | None -> T_uint256)
  end

let check_lvalue contract func = function
  | L_var name -> begin
    match List.assoc_opt name (scope_of contract func) with
    | Some (T_mapping _) -> err "cannot assign to a whole mapping '%s'" name
    | Some (T_array _) -> err "cannot assign to a whole array '%s'" name
    | Some _ -> ()
    | None -> err "assignment to unknown variable '%s'" name
  end
  | L_index (name, key) -> ignore (expr_type contract func (Index (name, key)))

let rec check_stmts contract func stmts =
  List.iter
    (fun s ->
      match s with
      | Local (ty, _, init) -> begin
        match init with
        | Some e ->
          let t = expr_type contract func e in
          if (ty = T_bool) <> (t = T_bool) then
            err "initializer type mismatch in %s.%s" contract.c_name func.name
        | None -> ()
      end
      | Assign (lv, e) ->
        check_lvalue contract func lv;
        ignore (expr_type contract func e)
      | Aug_assign (lv, op, e) -> begin
        check_lvalue contract func lv;
        (match op with
        | Add | Sub | Mul | Div | Mod -> ()
        | _ -> err "augmented assignment with non-arithmetic operator");
        ignore (expr_type contract func e)
      end
      | If (cond, a, b) ->
        if expr_type contract func cond <> T_bool then err "if condition must be boolean";
        check_stmts contract func a;
        check_stmts contract func b
      | While (cond, b) ->
        if expr_type contract func cond <> T_bool then err "while condition must be boolean";
        check_stmts contract func b
      | For (init, cond, post, b) ->
        (match init with Some i -> check_stmts contract func [ i ] | None -> ());
        if expr_type contract func cond <> T_bool then err "for condition must be boolean";
        (match post with Some p -> check_stmts contract func [ p ] | None -> ());
        check_stmts contract func b
      | Require e | Assert e ->
        if expr_type contract func e <> T_bool then
          err "require/assert condition must be boolean"
      | Revert -> ()
      | Return None ->
        if func.ret <> None && not func.is_constructor then
          err "%s.%s must return a value" contract.c_name func.name
      | Return (Some e) ->
        if func.ret = None then err "%s.%s returns no value" contract.c_name func.name;
        ignore (expr_type contract func e)
      | Expr_stmt e -> ignore (expr_type contract func e)
      | Selfdestruct e ->
        if not (is_numeric (expr_type contract func e)) then
          err "selfdestruct beneficiary must be an address"
      | Emit (_, args) -> List.iter (fun a -> ignore (expr_type contract func a)) args)
    stmts

let check_function contract func =
  List.iter
    (fun m ->
      if not (List.exists (fun d -> d.m_name = m) contract.modifiers_decls) then
        err "%s.%s uses undeclared modifier '%s'" contract.c_name func.name m)
    func.modifiers;
  List.iter
    (fun (ty, name) ->
      match ty with
      | T_mapping _ -> err "mapping parameter '%s' is not supported" name
      | T_array _ -> err "array parameter '%s' is not supported" name
      | _ -> ())
    func.params;
  check_stmts contract func func.body

let check contract =
  (* duplicate declarations *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v.v_name then err "duplicate state variable '%s'" v.v_name;
      Hashtbl.add seen v.v_name ())
    contract.state_vars;
  let seen_f = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen_f f.name then err "duplicate function '%s'" f.name;
      Hashtbl.add seen_f f.name ())
    contract.functions;
  if List.length (List.filter (fun f -> f.is_constructor) contract.functions) > 1 then
    err "multiple constructors";
  List.iter
    (fun (m : modifier_decl) ->
      let pseudo =
        {
          name = "modifier:" ^ m.m_name;
          params = [];
          ret = None;
          visibility = Internal;
          payable = false;
          modifiers = [];
          body = m.m_body_pre @ m.m_body_post;
          is_constructor = false;
        }
      in
      check_stmts contract pseudo pseudo.body)
    contract.modifiers_decls;
  List.iter (check_function contract) contract.functions
