open Minisol.Ast
module O = Oracles.Oracle

type verdict = Findings of O.finding list | Timeout | Error of string

type profile = {
  name : string;
  supports : O.bug_class list;
  over_approximate : bool;
  timeout_instruction_limit : int option;
  rejects_modern_syntax : bool;
}

let oyente =
  {
    name = "Oyente";
    supports = [ O.BD; O.IO; O.RE ];
    over_approximate = true;
    timeout_instruction_limit = None;
    rejects_modern_syntax = true;
  }

let mythril =
  {
    name = "Mythril";
    supports = [ O.BD; O.UD; O.IO; O.RE; O.US; O.SE; O.TO; O.UE ];
    over_approximate = false;
    (* calibrated so roughly a third of the labelled suite exceeds it,
       mirroring Mythril's 72 timeout cases in the paper's Table III *)
    timeout_instruction_limit = Some 360;
    rejects_modern_syntax = false;
  }

let osiris =
  {
    name = "Osiris";
    supports = [ O.BD; O.IO; O.RE ];
    over_approximate = false;
    timeout_instruction_limit = None;
    rejects_modern_syntax = true;
  }

let securify =
  {
    name = "Securify";
    supports = [ O.RE; O.UE ];
    over_approximate = true;
    timeout_instruction_limit = None;
    rejects_modern_syntax = false;
  }

let slither =
  {
    name = "Slither";
    supports = [ O.BD; O.UD; O.EF; O.RE; O.US; O.SE; O.TO; O.UE ];
    over_approximate = false;
    timeout_instruction_limit = None;
    rejects_modern_syntax = false;
  }

let all = [ oyente; mythril; osiris; securify; slither ]

let find name = List.find_opt (fun p -> p.name = name) all

(* ------------------------------------------------------------------ *)
(* AST pattern rules                                                    *)
(* ------------------------------------------------------------------ *)

let rec expr_uses pred e =
  pred e
  ||
  match e with
  | Number _ | Bool_lit _ | Ident _ | Msg_sender | Msg_value | Tx_origin
  | Block_timestamp | Block_number | Block_difficulty | Block_coinbase
  | This_balance ->
    false
  | Array_length _ -> false
  | Index (_, k) | Array_push (_, k) | Unop (_, k) | Balance_of k | Blockhash k ->
    expr_uses pred k
  | Binop (_, a, b) | Send (a, b) | Call_value (a, b) | Transfer_call (a, b)
  | Delegatecall (a, b) ->
    expr_uses pred a || expr_uses pred b
  | Keccak es | Internal_call (_, es) -> List.exists (expr_uses pred) es

let uses_block_state =
  expr_uses (function
    | Block_timestamp | Block_number | Block_difficulty | Block_coinbase
    | Blockhash _ ->
      true
    | _ -> false)

let uses_origin = expr_uses (function Tx_origin -> true | _ -> false)

let uses_sender = expr_uses (function Msg_sender -> true | _ -> false)

let uses_balance =
  expr_uses (function This_balance | Balance_of _ -> true | _ -> false)

(* Every statement of a function body, flattened with the branch-nesting
   depth and whether a msg.sender guard dominates it. *)
let rec flatten ?(depth = 0) ~guarded stmts =
  List.concat_map
    (fun s ->
      match s with
      | If (cond, t, e) ->
        let guarded' = guarded || uses_sender cond in
        ((s, depth, guarded) :: flatten ~depth:(depth + 1) ~guarded:guarded' t)
        @ flatten ~depth:(depth + 1) ~guarded e
      | While (cond, b) ->
        let _ = cond in
        (s, depth, guarded) :: flatten ~depth:(depth + 1) ~guarded b
      | For (_, _, _, b) ->
        (s, depth, guarded) :: flatten ~depth:(depth + 1) ~guarded b
      | _ -> [ (s, depth, guarded) ])
    stmts

(* does the prefix of the function (up to the first occurrence of [p])
   establish a msg.sender guard via require? *)
let require_guard_before stmts pred =
  let rec go guarded = function
    | [] -> false
    | s :: rest ->
      if pred s then guarded
      else
        let guarded =
          guarded
          ||
          match s with
          | Require cond | Assert cond -> uses_sender cond
          | _ -> false
        in
        go guarded rest
  in
  go false (List.map (fun (s, _, g) -> if g then (s, true) else (s, false)) stmts
            |> List.map fst)

let analyze profile (contract : Minisol.Contract.t) =
  if profile.rejects_modern_syntax
     && (let src = contract.Minisol.Contract.source in
         let needle = "constructor" in
         let rec contains i =
           i + String.length needle <= String.length src
           && (String.sub src i (String.length needle) = needle || contains (i + 1))
         in
         contains 0)
  then Error "unsupported compiler version (constructor keyword)"
  else
    match profile.timeout_instruction_limit with
    | Some limit when Minisol.Contract.instruction_count contract > limit -> Timeout
    | _ ->
      let ast = contract.Minisol.Contract.ast in
      let findings = ref [] in
      let site = ref 0 in
      let add cls detail =
        incr site;
        if List.mem cls profile.supports then
          findings := { O.cls; pc = !site; tx_index = -1; detail } :: !findings
      in
      let is_state name = find_state_var ast name <> None in
      let writes_state = function
        | Assign (L_var n, _) | Aug_assign (L_var n, _, _) -> is_state n
        | Assign (L_index (n, _), _) | Aug_assign (L_index (n, _), _, _) ->
          is_state n
        | _ -> false
      in
      List.iter
        (fun (f : func) ->
          let has_modifier = f.modifiers <> [] in
          let flat = flatten ~guarded:false f.body in
          let stmt_conditions =
            List.filter_map
              (fun (s, _, _) ->
                match s with
                | If (c, _, _) | While (c, _) | For (_, c, _, _) | Require c
                | Assert c ->
                  Some c
                | _ -> None)
              flat
          in
          (* BD: block state in a decision or in transferred value *)
          List.iter
            (fun c ->
              if uses_block_state c then
                add O.BD (Printf.sprintf "%s: block state in condition" f.name))
            stmt_conditions;
          if profile.over_approximate then
            (* over-approximation: flag any block-state read at all *)
            List.iter
              (fun (s, _, _) ->
                match s with
                | Local (_, _, Some e) | Assign (_, e) | Aug_assign (_, _, e)
                | Expr_stmt e | Return (Some e) ->
                  if uses_block_state e then
                    add O.BD (Printf.sprintf "%s: block state read" f.name)
                | _ -> ())
              flat;
          (* TO: tx.origin in a decision *)
          List.iter
            (fun c ->
              if uses_origin c then
                add O.TO (Printf.sprintf "%s: tx.origin in condition" f.name))
            stmt_conditions;
          (* SE: strict equality on a balance *)
          let rec eq_on_balance e =
            match e with
            | Binop ((Eq | Neq), a, b) -> uses_balance a || uses_balance b
            | Binop (_, a, b) -> eq_on_balance a || eq_on_balance b
            | Unop (_, a) -> eq_on_balance a
            | _ -> false
          in
          List.iter
            (fun c ->
              if eq_on_balance c then
                add O.SE (Printf.sprintf "%s: strict balance equality" f.name))
            stmt_conditions;
          (* IO: unchecked arithmetic on attacker-reachable values *)
          let param_names = List.map snd f.params in
          let involves_param =
            expr_uses (function
              | Ident n -> List.mem n param_names
              | Msg_value -> true
              | _ -> false)
          in
          List.iter
            (fun (s, _, guarded) ->
              let arith =
                match s with
                | Assign (_, Binop ((Add | Sub | Mul), a, b)) ->
                  Some (Binop (Add, a, b))
                | Aug_assign (_, (Add | Sub | Mul), e) -> Some e
                | _ -> None
              in
              match arith with
              | Some e
                when involves_param e || profile.over_approximate ->
                if profile.over_approximate || not guarded then
                  add O.IO (Printf.sprintf "%s: unchecked arithmetic" f.name)
              | _ -> ())
            flat;
          (* RE: gas-forwarding call followed by a state write *)
          let saw_call = ref false in
          List.iter
            (fun (s, _, _) ->
              let is_cv =
                match s with
                | Expr_stmt (Call_value _) | Assign (_, Call_value _)
                | Local (_, _, Some (Call_value _)) ->
                  true
                | Require (Call_value _) | If (Call_value _, _, _) -> true
                | _ -> false
              in
              if is_cv then begin
                saw_call := true;
                if profile.over_approximate then
                  add O.RE (Printf.sprintf "%s: external call with gas" f.name)
              end
              else if !saw_call && writes_state s && not profile.over_approximate
              then
                add O.RE (Printf.sprintf "%s: state write after external call" f.name))
            flat;
          (* UD: delegatecall with attacker-controlled target *)
          List.iter
            (fun (s, _, _) ->
              let dc =
                match s with
                | Expr_stmt (Delegatecall (t, _))
                | Assign (_, Delegatecall (t, _))
                | Local (_, _, Some (Delegatecall (t, _))) ->
                  Some t
                | _ -> None
              in
              match dc with
              | Some target ->
                let from_param =
                  expr_uses
                    (function Ident n -> List.mem n param_names | _ -> false)
                    target
                in
                if profile.over_approximate || (from_param && not has_modifier)
                then add O.UD (Printf.sprintf "%s: delegatecall" f.name)
              | None -> ())
            flat;
          (* US: selfdestruct without sender guard *)
          List.iter
            (fun (s, _, guarded) ->
              match s with
              | Selfdestruct _ ->
                let req_guard =
                  require_guard_before flat (fun s' -> s' == s)
                in
                if profile.over_approximate
                   || not (guarded || has_modifier || req_guard)
                then add O.US (Printf.sprintf "%s: unprotected selfdestruct" f.name)
              | _ -> ())
            flat;
          (* UE: dropped result of send / raw call *)
          List.iter
            (fun (s, _, _) ->
              match s with
              | Expr_stmt (Send _) | Expr_stmt (Call_value _) ->
                add O.UE (Printf.sprintf "%s: unchecked send/call result" f.name)
              | _ -> ())
            flat)
        ast.functions;
      (* EF: can receive, cannot send *)
      let any_payable =
        List.exists (fun (f : Abi.func) -> f.payable && not f.is_constructor)
          contract.Minisol.Contract.abi
      in
      let can_send =
        List.exists
          (fun (f : func) ->
            let flat = flatten ~guarded:false f.body in
            List.exists
              (fun (s, _, _) ->
                match s with
                | Selfdestruct _ -> true
                | Expr_stmt (Send _ | Call_value _ | Transfer_call _)
                | Assign (_, (Send _ | Call_value _))
                | Local (_, _, Some (Send _ | Call_value _))
                | Require (Send _ | Call_value _)
                | If ((Send _ | Call_value _), _, _) ->
                  true
                | _ -> false)
              flat)
          ast.functions
      in
      if any_payable && not can_send then add O.EF "accepts ether, cannot send";
      Findings (List.rev !findings)
