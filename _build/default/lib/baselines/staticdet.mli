(** Static analyzers (Oyente, Mythril, Osiris, Securify, Slither)
    reimplemented as AST/bytecode pattern detectors with per-tool
    capability profiles.

    Each tool is a set of syntactic/dataflow rules plus precision knobs
    taken from the paper's discussion: over-approximating tools flag a
    pattern wherever it occurs (producing false positives on guarded
    code), precise tools discount guarded occurrences (producing false
    negatives on dynamic-only bugs); Mythril times out on large
    contracts; Oyente and Osiris error on post-0.4.19 syntax (the
    [constructor] keyword). *)

type verdict =
  | Findings of Oracles.Oracle.finding list
  | Timeout
  | Error of string

type profile = {
  name : string;
  supports : Oracles.Oracle.bug_class list;  (** Table I row *)
  over_approximate : bool;
      (** flag patterns even when a guard protects them *)
  timeout_instruction_limit : int option;
      (** analyses abort on programs larger than this *)
  rejects_modern_syntax : bool;
      (** errors out on sources using the [constructor] keyword *)
}

val oyente : profile
val mythril : profile
val osiris : profile
val securify : profile
val slither : profile

val all : profile list
val find : string -> profile option

val analyze : profile -> Minisol.Contract.t -> verdict
