lib/baselines/staticdet.ml: Abi List Minisol Oracles Printf String
