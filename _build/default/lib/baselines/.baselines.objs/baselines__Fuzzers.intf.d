lib/baselines/fuzzers.mli: Minisol Mufuzz Oracles
