lib/baselines/staticdet.mli: Minisol Oracles
