lib/baselines/fuzzers.ml: List Mufuzz Oracles
