(** Keccak-256 — the hash used by Ethereum for function selectors, mapping
    storage slots and the [SHA3] opcode.

    This is original Keccak (pad [0x01]), not NIST SHA-3 (pad [0x06]);
    Ethereum predates the FIPS 202 padding change. The implementation is
    a from-scratch Keccak-f[1600] permutation over 25 [int64] lanes. *)

val hash : string -> string
(** [hash msg] is the 32-byte Keccak-256 digest of [msg]. *)

val hash_hex : string -> string
(** [hash_hex msg] is the digest rendered as 64 lowercase hex characters. *)

val hash_word : string -> Word.U256.t
(** [hash_word msg] is the digest interpreted as a big-endian 256-bit
    word, as the EVM pushes it on the stack. *)

val selector : string -> string
(** [selector signature] is the 4-byte Ethereum function selector, i.e.
    the first four bytes of [hash signature]. *)
