lib/crypto/keccak.ml: Array Bytes Char Int64 String Util Word
