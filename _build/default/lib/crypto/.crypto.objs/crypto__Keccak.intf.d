lib/crypto/keccak.mli: Word
