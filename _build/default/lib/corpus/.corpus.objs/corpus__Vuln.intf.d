lib/corpus/vuln.mli: Minisol Oracles
