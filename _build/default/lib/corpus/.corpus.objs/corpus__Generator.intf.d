lib/corpus/generator.mli: Minisol Oracles Util
