lib/corpus/examples.mli:
