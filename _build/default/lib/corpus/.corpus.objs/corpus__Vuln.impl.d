lib/corpus/vuln.ml: Filename List Minisol Oracles Printf String Unix
