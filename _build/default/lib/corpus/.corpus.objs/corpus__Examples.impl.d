lib/corpus/examples.ml:
