lib/corpus/generator.ml: Buffer List Minisol Oracles Printf Stdlib String Util
