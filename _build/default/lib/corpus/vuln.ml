module O = Oracles.Oracle

type labelled = {
  name : string;
  source : string;
  labels : O.bug_class list;
}

(* ------------------------------------------------------------------ *)
(* Variant scaffolding                                                  *)
(*                                                                      *)
(* Every template derives three orthogonal dimensions from its variant  *)
(* index:                                                               *)
(*   gated  — the buggy function only works after a prior unlock()      *)
(*            transaction set a state flag (sequence dependence);       *)
(*   nest   — 0..2 extra parameter-guarded conditional layers around    *)
(*            the bug (branch-nesting depth);                           *)
(*   flavor — template-specific variation of the bug pattern itself.    *)
(* ------------------------------------------------------------------ *)

let gated_of i = i mod 2 = 1
let nest_of i = i / 2 mod 3

let gate_state gated = if gated then "  uint256 unlocked;\n" else ""

let gate_fn gated =
  if gated then "  function unlock() public { unlocked = 1; }\n" else ""

let gate_req gated = if gated then "    require(unlocked == 1);\n" else ""

(* Wrap [inner] (already indented at 4) in [nest] conditional layers on
   the uint256 parameter [x]. *)
let nest_wrap nest inner =
  match nest with
  | 0 -> inner
  | 1 -> "    if (x > 10) {\n" ^ inner ^ "    }\n"
  | _ -> "    if (x > 10) {\n      if (x < 100000) {\n" ^ inner ^ "      }\n    }\n"

let decoy i =
  (* wrap-safe: a - (a mod k) can never underflow *)
  Printf.sprintf
    "  function decoy%d(uint256 a) public returns (uint256) {\n\
    \    if (a %% %d == %d) {\n\
    \      return a - %d;\n\
    \    }\n\
    \    return a;\n\
    \  }\n"
    (i mod 3) (3 + (i mod 5)) (i mod 3) (i mod 3)

let contract name body = Printf.sprintf "contract %s {\n%s}\n" name body

(* ------------------------------------------------------------------ *)
(* Templates                                                            *)
(* ------------------------------------------------------------------ *)

(* BD: four block-dependency pattern families — modulo lottery on the
   timestamp, block-number epoch minting, deadline bypass, and blockhash
   randomness. *)
let mk_bd i =
  let gated = gated_of i and nest = nest_of i in
  let bug =
    match i mod 4 with
    | 0 ->
      Printf.sprintf
        "    if (block.timestamp %% %d == %d) {\n      msg.sender.transfer(pot);\n      pot = 0;\n    }\n"
        (5 + (i mod 4)) (i mod 3)
    | 1 ->
      Printf.sprintf
        "    if (block.number %% %d == %d) {\n      pot += %d;\n    }\n"
        (4 + (i mod 5)) (i mod 2) (10 + i)
    | 2 ->
      "    if (block.timestamp > deadline) {\n      owner = msg.sender;\n      msg.sender.transfer(pot);\n    }\n"
    | _ ->
      Printf.sprintf
        "    uint256 r = uint256(blockhash(block.number - 1)) %% %d;\n\
        \    if (r == x %% %d) {\n      msg.sender.transfer(pot / 2);\n      pot = pot / 2;\n    }\n"
        (10 + (i mod 7)) (10 + (i mod 7))
  in
  let body =
    Printf.sprintf
      "  address owner;\n  uint256 pot;\n  uint256 deadline;\n%s\n\
      \  constructor() public {\n    owner = msg.sender;\n    deadline = block.timestamp + %d days;\n  }\n\
      \  function fund() public payable {\n    pot += msg.value;\n  }\n%s\
      \  function claim(uint256 x) public {\n%s%s  }\n%s"
      (gate_state gated) (1 + (i mod 14)) (gate_fn gated)
      (gate_req gated)
      (nest_wrap nest bug)
      (decoy i)
  in
  { name = Printf.sprintf "BDv%02d" i; source = contract (Printf.sprintf "BDv%02d" i) body;
    labels = [ O.BD ] }

(* UD: delegatecall pattern families — plain forwarder, library-style
   dispatch, and a zero-check that does not actually protect anything. *)
let mk_ud i =
  let gated = gated_of i and nest = nest_of i in
  let bug =
    match i mod 3 with
    | 0 -> "    nonce += 1;\n    bool ok = target.delegatecall(data);\n"
    | 1 ->
      "    if (target != address(0)) {\n      bool ok = target.delegatecall(data);\n      nonce += 1;\n    }\n"
    | _ ->
      "    lastCaller = msg.sender;\n    bool ok = target.delegatecall(data);\n    require(ok);\n"
  in
  let body =
    Printf.sprintf
      "  uint256 nonce;\n  address lastCaller;\n%s\n%s\
      \  function run(address target, uint256 data, uint256 x) public {\n%s%s  }\n%s"
      (gate_state gated) (gate_fn gated) (gate_req gated)
      (nest_wrap nest bug)
      (decoy i)
  in
  { name = Printf.sprintf "UDv%02d" i; source = contract (Printf.sprintf "UDv%02d" i) body;
    labels = [ O.UD ] }

(* EF: value sinks with no way out — per-sender ledger bookkeeping, a
   crowd counter with an internal-transfer illusion, and a time-locked
   vault whose unlock only flips a flag but never pays. *)
let mk_ef i =
  let gated = gated_of i and nest = nest_of i in
  let flavor = i mod 3 in
  let extra =
    match flavor with
    | 0 -> ""
    | 1 ->
      "  function moveInternal(address to, uint256 x) public {\n\
      \    require(dep[msg.sender] >= x);\n\
      \    dep[msg.sender] -= x;\n    dep[to] += x;\n  }\n"
    | _ ->
      "  uint256 unlockedAt;\n\
      \  function unlockVault() public {\n\
      \    if (block.number > unlockedAt) {\n      total = total;\n    }\n  }\n"
  in
  let body =
    Printf.sprintf
      "  mapping(address => uint256) dep;\n  uint256 total;\n%s\n%s%s\
      \  function deposit() public payable {\n\
      \    dep[msg.sender] += msg.value;\n    total += msg.value;\n  }\n\
      \  function tally(uint256 x) public {\n%s%s  }\n%s"
      (gate_state gated) (gate_fn gated) extra (gate_req gated)
      (nest_wrap nest "      total = total + 0;\n")
      (decoy i)
  in
  { name = Printf.sprintf "EFv%02d" i; source = contract (Printf.sprintf "EFv%02d" i) body;
    labels = [ O.EF ] }

(* IO: seven arithmetic-truncation families — transfer underflow, chained
   multiplication, additive counter, subtractive counter, batch mint,
   loop-accumulated sum and admin-priced purchase. *)
let mk_io i =
  let gated = i mod 2 = 1 and nest = i / 2 mod 3 in
  let flavor = i mod 7 in
  let state, params, extra_fn, bug =
    match flavor with
    | 0 ->
      ( "  mapping(address => uint256) balances;\n", "uint256 x", "",
        "      balances[msg.sender] -= x;\n      balances[msg.sender] += 1;\n" )
    | 1 ->
      ( "  uint256 total;\n", "uint256 x", "",
        "      uint256 amount = x * 3;\n      total = x * amount;\n      total += 1;\n" )
    | 2 -> ("  uint256 total;\n", "uint256 x", "", "      total += x;\n")
    | 3 -> ("  uint256 total;\n", "uint256 x", "", "      total -= x;\n")
    | 4 ->
      ( "  uint256 supply;\n  mapping(address => uint256) balances;\n",
        "uint256 x, uint256 y", "",
        "      uint256 amount = x * y;\n      supply += amount;\n      balances[msg.sender] += amount;\n" )
    | 5 ->
      ( "  uint256 total;\n", "uint256 x, uint256 y", "",
        "      for (uint256 it = 0; it < x % 8; it += 1) {\n        total += y;\n      }\n" )
    | _ ->
      ( "  uint256 price;\n  uint256 owed;\n", "uint256 x",
        "  function setPrice(uint256 p) public {\n    price = p;\n  }\n",
        "      owed += x * price;\n" )
  in
  let body =
    Printf.sprintf
      "%s%s\n%s%s\
      \  function bump(%s) public {\n%s%s  }\n%s"
      state (gate_state gated) (gate_fn gated) extra_fn params (gate_req gated)
      (nest_wrap nest bug) (decoy i)
  in
  { name = Printf.sprintf "IOv%02d" i; source = contract (Printf.sprintf "IOv%02d" i) body;
    labels = [ O.IO ] }

(* RE: three reentrancy families — the classic DAO (whose re-entered
   subtraction also underflows: RE + IO), a withdraw-all that zeroes the
   balance only after the call, and a cross-function payout where the
   post-call bookkeeping lives in an internal helper. *)
let mk_re i =
  let nest = nest_of i in
  let flavor = i mod 3 in
  let body, labels =
    match flavor with
    | 0 ->
      ( Printf.sprintf
          "  mapping(address => uint256) credit;\n\
          \  function donate(address to) public payable {\n\
          \    credit[to] += msg.value;\n  }\n\
          \  function withdraw(uint256 x) public {\n%s  }\n%s"
          (nest_wrap nest
             "    if (credit[msg.sender] >= x) {\n\
             \      bool ok = msg.sender.call.value(x)();\n\
             \      credit[msg.sender] -= x;\n\
             \    }\n")
          (decoy i),
        [ O.RE; O.IO ] )
    | 1 ->
      ( Printf.sprintf
          "  mapping(address => uint256) credit;\n\
          \  function donate(address to) public payable {\n\
          \    credit[to] += msg.value;\n  }\n\
          \  function withdrawAll(uint256 x) public {\n%s  }\n%s"
          (nest_wrap nest
             "    uint256 amount = credit[msg.sender];\n\
             \    if (amount > 0) {\n\
             \      bool ok = msg.sender.call.value(amount)();\n\
             \      credit[msg.sender] = 0;\n\
             \    }\n")
          (decoy i),
        [ O.RE ] )
    | _ ->
      ( Printf.sprintf
          "  mapping(address => uint256) credit;\n  uint256 paidOut;\n\
          \  function donate(address to) public payable {\n\
          \    credit[to] += msg.value;\n  }\n\
          \  function book(uint256 amount) internal {\n\
          \    credit[msg.sender] = credit[msg.sender] - amount;\n\
          \    paidOut += amount;\n  }\n\
          \  function payout(uint256 x) public {\n%s  }\n%s"
          (nest_wrap nest
             "    if (credit[msg.sender] >= x) {\n\
             \      bool ok = msg.sender.call.value(x)();\n\
             \      book(x);\n\
             \    }\n")
          (decoy i),
        [ O.RE; O.IO ] )
  in
  { name = Printf.sprintf "REv%02d" i; source = contract (Printf.sprintf "REv%02d" i) body;
    labels }

(* US: selfdestruct families — heir parameter, msg.sender beneficiary,
   and a magic-number kill switch (strict constant guarding the kill,
   which is no protection at all). *)
let mk_us i =
  let gated = gated_of i and nest = nest_of i in
  let flavor = i mod 4 in
  let params =
    match flavor with
    | 0 -> "address heir, uint256 x"
    | 3 -> "uint256 code, uint256 x"
    | _ -> "uint256 x"
  in
  let bug =
    match flavor with
    | 0 -> "      selfdestruct(heir);\n"
    | 3 ->
      Printf.sprintf
        "      if (code == %d) {\n        selfdestruct(msg.sender);\n      }\n"
        (1000 + (37 * i))
    | _ -> "      selfdestruct(msg.sender);\n"
  in
  let body =
    Printf.sprintf
      "  uint256 counter;\n%s\n%s\
      \  function tick() public payable {\n    counter += 1;\n  }\n\
      \  function close(%s) public {\n%s%s  }\n%s"
      (gate_state gated) (gate_fn gated) params (gate_req gated)
      (nest_wrap nest bug)
      (decoy i)
  in
  { name = Printf.sprintf "USv%02d" i; source = contract (Printf.sprintf "USv%02d" i) body;
    labels = [ O.US ] }

(* SE + UE: strict-equality families — an if on this.balance, a require
   on it, and an equality against a tracked deposit counter; each variant
   also drops the result of an oversized send (UE). *)
let mk_se i =
  let nest = nest_of i in
  let ticket = 1 + (7 * i mod 50) in
  let se_bug =
    match i mod 3 with
    | 0 ->
      Printf.sprintf
        "    if (this.balance == %d finney) {\n      lastWinner = msg.sender;\n      round += 1;\n    }\n"
        (ticket * 10)
    | 1 ->
      Printf.sprintf
        "    if (this.balance != %d finney) {\n      round += 1;\n    } else {\n      lastWinner = msg.sender;\n    }\n"
        (ticket * 5)
    | _ ->
      "    if (this.balance == tracked) {\n      lastWinner = msg.sender;\n    }\n    tracked += msg.value;\n"
  in
  let body =
    Printf.sprintf
      "  address lastWinner;\n  uint256 round;\n  uint256 tracked;\n\
      \  function play(uint256 x) public payable {\n\
      \    require(msg.value == %d finney);\n%s\
      \    bool sent = msg.sender.send(%d ether);\n  }\n%s"
      ticket
      (nest_wrap nest se_bug)
      (2 + (i mod 3))
      (decoy i)
  in
  { name = Printf.sprintf "SEv%02d" i; source = contract (Printf.sprintf "SEv%02d" i) body;
    labels = [ O.SE; O.UE ] }

(* TO: tx.origin authorization. *)
let mk_to i =
  let body =
    Printf.sprintf
      "  address owner;\n  uint256 funds;\n\
      \  constructor() public {\n    owner = msg.sender;\n  }\n\
      \  function deposit() public payable {\n    funds += msg.value;\n  }\n\
      \  function sweep() public {\n\
      \    require(tx.origin == owner);\n\
      \    msg.sender.transfer(this.balance);\n  }\n%s"
      (decoy i)
  in
  { name = Printf.sprintf "TOv%02d" i; source = contract (Printf.sprintf "TOv%02d" i) body;
    labels = [ O.TO ] }

(* UE: dropped call results — a fixed oversized send, a gas-forwarding
   raw call, and a send inside a loop (the batch-payout footgun). *)
let mk_ue i =
  let gated = gated_of i and nest = nest_of i in
  let call =
    match i mod 3 with
    | 0 -> "    bool ok = msg.sender.send(2 ether);\n"
    | 1 -> "    bool ok = msg.sender.call.value(3 ether)();\n"
    | _ ->
      "    for (uint256 it = 0; it < x % 3 + 1; it += 1) {\n\
      \      bool ok = msg.sender.send(1 ether);\n    }\n"
  in
  let body =
    Printf.sprintf
      "  uint256 paid;\n%s\n%s\
      \  function payout(uint256 x) public {\n%s%s  }\n%s"
      (gate_state gated) (gate_fn gated) (gate_req gated)
      (nest_wrap nest ("      paid += 1;\n" ^ call))
      (decoy i)
  in
  { name = Printf.sprintf "UEv%02d" i; source = contract (Printf.sprintf "UEv%02d" i) body;
    labels = [ O.UE ] }

(* ------------------------------------------------------------------ *)
(* Safe controls: the guarded/checked twins of the patterns above.      *)
(* ------------------------------------------------------------------ *)

let safe_controls =
  [
    { name = "SafeVault";
      source =
        contract "SafeVault"
          "  address owner;\n\
          \  constructor() public {\n    owner = msg.sender;\n  }\n\
          \  function deposit() public payable {\n  }\n\
          \  function withdrawAll() public {\n\
          \    require(msg.sender == owner);\n\
          \    msg.sender.transfer(this.balance);\n  }\n";
      labels = [] };
    { name = "SafeDestroy";
      source =
        contract "SafeDestroy"
          "  address owner;\n\
          \  constructor() public {\n    owner = msg.sender;\n  }\n\
          \  function close() public {\n\
          \    require(msg.sender == owner);\n\
          \    selfdestruct(owner);\n  }\n";
      labels = [] };
    { name = "SafeMathToken";
      source =
        contract "SafeMathToken"
          "  mapping(address => uint256) balances;\n\
          \  constructor() public {\n    balances[msg.sender] = 1000000;\n  }\n\
          \  function transfer(address to, uint256 v) public {\n\
          \    require(balances[msg.sender] >= v);\n\
          \    require(balances[to] + v >= balances[to]);\n\
          \    balances[msg.sender] -= v;\n    balances[to] += v;\n  }\n";
      labels = [] };
    { name = "CheckedSend";
      source =
        contract "CheckedSend"
          "  mapping(address => uint256) owed;\n\
          \  function deposit() public payable {\n\
          \    owed[msg.sender] += msg.value;\n  }\n\
          \  function claim() public {\n\
          \    uint256 amount = owed[msg.sender];\n\
          \    owed[msg.sender] = 0;\n\
          \    require(amount > 0);\n\
          \    msg.sender.transfer(amount);\n  }\n";
      labels = [] };
    { name = "GuardedProxy";
      source =
        contract "GuardedProxy"
          "  address owner;\n\
          \  uint256 nonce;\n\
          \  constructor() public {\n    owner = msg.sender;\n  }\n\
          \  function run(address target, uint256 data) public {\n\
          \    require(msg.sender == owner);\n\
          \    nonce += 1;\n\
          \    bool ok = target.delegatecall(data);\n\
          \    require(ok);\n  }\n";
      labels = [] };
    { name = "PullPayment";
      source =
        contract "PullPayment"
          "  mapping(address => uint256) credit;\n\
          \  function donate(address to) public payable {\n\
          \    credit[to] += msg.value;\n  }\n\
          \  function withdraw() public {\n\
          \    uint256 amount = credit[msg.sender];\n\
          \    credit[msg.sender] = 0;\n\
          \    if (amount > 0) {\n      msg.sender.transfer(amount);\n    }\n  }\n";
      labels = [] };
  ]

(* Per-class variant counts chosen so the label totals match Table III's
   positives: BD 20, UD 17, EF 22, IO 49+16(RE)=65, RE 16, US 23,
   SE 19, TO 2, UE 12+19(SE)=31. *)
let suite =
  List.init 20 mk_bd
  @ List.init 17 mk_ud
  @ List.init 22 mk_ef
  @ List.init 54 mk_io
  @ List.init 16 mk_re
  @ List.init 23 mk_us
  @ List.init 19 mk_se
  @ List.init 2 mk_to
  @ List.init 12 mk_ue
  @ safe_controls

let positives = List.filter (fun l -> l.labels <> []) suite

let by_class cls = List.filter (fun l -> List.mem cls l.labels) suite

let label_count cls =
  List.fold_left
    (fun acc l -> acc + List.length (List.filter (( = ) cls) l.labels))
    0 suite

let compile l = Minisol.Contract.compile l.source

let write_to_dir dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let labels_oc = open_out (Filename.concat dir "LABELS.txt") in
  List.iter
    (fun l ->
      let oc = open_out (Filename.concat dir (l.name ^ ".sol")) in
      output_string oc l.source;
      close_out oc;
      Printf.fprintf labels_oc "%s: %s\n" l.name
        (String.concat ","
           (List.map Oracles.Oracle.class_to_string l.labels)))
    suite;
  close_out labels_oc
