(** The labelled vulnerability benchmark standing in for the paper's D2
    (155 contracts / 217 annotated bugs collected from SmartBugs,
    VeriSmart, TMP and the SWC registry).

    Each bug class has a parametric template; variants systematically
    vary the guarding structure (none / require chain / state-machine
    gate reachable only by a prior transaction), the branch nesting
    depth, the operand sources and the decoy functions around the bug —
    the dimensions the paper says separate the tools. The per-class
    label counts match Table III's positives: BD 20, UD 17, EF 22,
    IO 65, RE 16, US 23, SE 19, TO 2, UE 31 (215 labels overall). A
    handful of deliberately safe contracts is included for false-positive
    measurement. *)

type labelled = {
  name : string;
  source : string;
  labels : Oracles.Oracle.bug_class list;
      (** ground truth; empty for the safe controls *)
}

val suite : labelled list
(** The full benchmark, safe controls included. *)

val positives : labelled list
(** Only contracts with at least one label. *)

val by_class : Oracles.Oracle.bug_class -> labelled list

val label_count : Oracles.Oracle.bug_class -> int
(** Number of labelled instances of the class across the suite. *)

val compile : labelled -> Minisol.Contract.t
(** @raise on parse/type errors — the suite is expected to always
    compile; tests enforce it. *)

val write_to_dir : string -> unit
(** Dump the suite as [.sol] files plus a [LABELS.txt] ground-truth index
    into the given directory (created if missing). *)
