module R = Util.Rng
module O = Oracles.Oracle

type size = Small | Large

type spec = {
  name : string;
  source : string;
  injected : O.bug_class list;
}

(* ------------------------------------------------------------------ *)
(* A tiny well-typed program synthesiser. State variables are uint256   *)
(* ([sv0..svK]), one address [owner], one phase counter [phase], plus   *)
(* up to two mappings ([m0], [m1]). Expressions are built so that every *)
(* generated contract type-checks by construction.                      *)
(* ------------------------------------------------------------------ *)

type ctx = {
  rng : R.t;
  n_sv : int;
  n_map : int;
  n_arr : int;
  n_phase : int;  (* number of phase-machine stages *)
  n_counters : int;  (* repetition counters (the invest-twice shape) *)
  stmts_per_block : int;
  buf : Buffer.t;
  mutable injected : O.bug_class list;
}

let sv ctx = Printf.sprintf "sv%d" (R.int ctx.rng ctx.n_sv)

let mapping ctx = Printf.sprintf "m%d" (R.int ctx.rng (Stdlib.max 1 ctx.n_map))

let magic ctx =
  (* strict constants worth guarding with; occasionally ether-scaled *)
  match R.int ctx.rng 4 with
  | 0 -> string_of_int (R.int ctx.rng 100)
  | 1 -> string_of_int (100 + R.int ctx.rng 10000)
  | 2 -> Printf.sprintf "%d finney" (1 + R.int ctx.rng 200)
  | _ -> Printf.sprintf "%d ether" (1 + R.int ctx.rng 50)

(* an arithmetic uint expression over state, params and context *)
let rec uint_expr ctx ~params depth =
  let atom () =
    match R.int ctx.rng 6 with
    | 0 -> sv ctx
    | 1 when params <> [] -> R.choose_list ctx.rng params
    | 2 -> string_of_int (R.int ctx.rng 1000)
    | 3 when ctx.n_map > 0 -> Printf.sprintf "%s[msg.sender]" (mapping ctx)
    | 4 -> "msg.value"
    | _ -> sv ctx
  in
  if depth <= 0 then atom ()
  else
    match R.int ctx.rng 4 with
    | 0 ->
      Printf.sprintf "(%s + %s)" (uint_expr ctx ~params (depth - 1)) (atom ())
    | 1 ->
      Printf.sprintf "(%s %% %d)" (uint_expr ctx ~params (depth - 1))
        (2 + R.int ctx.rng 100)
    | _ -> atom ()

let cond_expr ctx ~params =
  let lhs = uint_expr ctx ~params 1 in
  let rhs =
    match R.int ctx.rng 3 with
    | 0 -> magic ctx
    | 1 -> sv ctx
    | _ when params <> [] -> R.choose_list ctx.rng params
    | _ -> string_of_int (R.int ctx.rng 500)
  in
  let op = R.choose ctx.rng [| "<"; ">"; "<="; ">="; "=="; "!=" |] in
  Printf.sprintf "%s %s %s" lhs op rhs

let emit ctx indent line =
  Buffer.add_string ctx.buf (String.make indent ' ');
  Buffer.add_string ctx.buf line;
  Buffer.add_char ctx.buf '\n'

(* one statement; returns approximate statement count generated *)
let rec gen_stmt ctx ~params ~payable ~indent ~depth =
  match R.int ctx.rng 10 with
  | 0 | 1 ->
    (* RAW accumulation: the pattern the repetition rule keys on *)
    emit ctx indent
      (Printf.sprintf "%s += %s;" (sv ctx) (uint_expr ctx ~params 1));
    1
  | 2 ->
    emit ctx indent
      (Printf.sprintf "%s = %s;" (sv ctx) (uint_expr ctx ~params 1));
    1
  | 3 when ctx.n_map > 0 ->
    emit ctx indent
      (Printf.sprintf "%s[msg.sender] += %s;" (mapping ctx)
         (uint_expr ctx ~params 1));
    1
  | 4 when depth > 0 ->
    emit ctx indent (Printf.sprintf "if (%s) {" (cond_expr ctx ~params));
    let inner = gen_block ctx ~params ~payable ~indent:(indent + 2) ~depth:(depth - 1) in
    let extra =
      if R.bool ctx.rng then begin
        emit ctx indent "} else {";
        gen_block ctx ~params ~payable ~indent:(indent + 2) ~depth:(depth - 1)
      end
      else 0
    in
    emit ctx indent "}";
    1 + inner + extra
  | 5 ->
    emit ctx indent (Printf.sprintf "require(%s);" (cond_expr ctx ~params));
    1
  | 6 when params <> [] ->
    (* bounded loop over a parameter *)
    let p = R.choose_list ctx.rng params in
    emit ctx indent
      (Printf.sprintf "for (uint256 it%d = 0; it%d < %s %% %d; it%d += 1) {"
         indent indent p (2 + R.int ctx.rng 6) indent);
    emit ctx (indent + 2) (Printf.sprintf "%s += 1;" (sv ctx));
    emit ctx indent "}";
    2
  | 7 when payable ->
    emit ctx indent (Printf.sprintf "%s += msg.value;" (sv ctx));
    1
  | 9 when ctx.n_arr > 0 ->
    let a = Printf.sprintf "arr%d" (R.int ctx.rng ctx.n_arr) in
    if R.bool ctx.rng then begin
      emit ctx indent (Printf.sprintf "%s.push(%s);" a (uint_expr ctx ~params 1));
      1
    end
    else begin
      (* growth-gated branch: the body only opens after enough pushes *)
      emit ctx indent
        (Printf.sprintf "if (%s.length > %d) {" a (1 + R.int ctx.rng 3));
      emit ctx (indent + 2)
        (Printf.sprintf "%s += %s[%s.length - 1];" (sv ctx) a a);
      emit ctx indent "}";
      2
    end
  | 8 ->
    (* guarded payout keeps the contract able to send value *)
    emit ctx indent
      (Printf.sprintf "if (%s == %s) {" (sv ctx) (magic ctx));
    emit ctx (indent + 2)
      (Printf.sprintf "msg.sender.transfer(%d);" (1 + R.int ctx.rng 1000));
    emit ctx indent "}";
    2
  | _ ->
    emit ctx indent
      (Printf.sprintf "%s = %s + %d;" (sv ctx) (sv ctx) (R.int ctx.rng 10));
    1

and gen_block ctx ~params ~payable ~indent ~depth =
  let n = 1 + R.int ctx.rng ctx.stmts_per_block in
  let count = ref 0 in
  for _ = 1 to n do
    count := !count + gen_stmt ctx ~params ~payable ~indent ~depth
  done;
  !count

(* injected bug patterns, one statement each *)
let inject ctx ~params ~indent cls =
  ctx.injected <- cls :: ctx.injected;
  match cls with
  | O.BD ->
    emit ctx indent
      (Printf.sprintf "if (block.timestamp %% %d == %d) {" (5 + R.int ctx.rng 5)
         (R.int ctx.rng 3));
    emit ctx (indent + 2) (Printf.sprintf "msg.sender.transfer(%s);" (sv ctx));
    emit ctx indent "}"
  | O.IO ->
    let operand =
      match params with p :: _ -> p | [] -> sv ctx
    in
    emit ctx indent (Printf.sprintf "%s -= %s;" (sv ctx) operand)
  | _ -> ()

let gen_function ctx ~fname ~phase_stage =
  let n_params = R.int ctx.rng 3 in
  let params = List.init n_params (fun i -> Printf.sprintf "p%d" i) in
  let payable = R.int ctx.rng 3 = 0 in
  let sig_params =
    String.concat ", " (List.map (fun p -> "uint256 " ^ p) params)
  in
  emit ctx 2
    (Printf.sprintf "function %s(%s) public%s {" fname sig_params
       (if payable then " payable" else ""));
  (* phase machine: stage k requires phase == k and advances it *)
  (match phase_stage with
  | Some k ->
    emit ctx 4 (Printf.sprintf "require(phase == %d);" k);
    emit ctx 4 (Printf.sprintf "phase = %d;" (k + 1))
  | None ->
    (* cross-function state guards: either an accumulator threshold, or a
       repetition counter that must have been stepped K times — the
       paper's invest-twice shape that only sequence repetition opens *)
    (match R.int ctx.rng 10 with
    | 0 | 1 ->
      emit ctx 4
        (Printf.sprintf "require(%s >= %d);" (sv ctx) (1 + R.int ctx.rng 3))
    | 2 | 3 | 4 when ctx.n_counters > 0 ->
      emit ctx 4
        (Printf.sprintf "require(ctr%d >= %d);" (R.int ctx.rng ctx.n_counters)
           (2 + R.int ctx.rng 2))
    | _ -> ()));
  let depth =
    if ctx.stmts_per_block > 3 then 3 + R.int ctx.rng 2 else 2 + R.int ctx.rng 2
  in
  ignore (gen_block ctx ~params ~payable ~indent:4 ~depth);
  emit ctx 2 "}"

let generate rng size ~name ~bug_rate =
  let ctx =
    {
      rng;
      n_sv = (match size with Small -> 3 + R.int rng 3 | Large -> 6 + R.int rng 5);
      n_map = R.int rng 3;
      n_arr = R.int rng 2;
      n_phase = (match size with Small -> 2 | Large -> 4 + R.int rng 4);
      n_counters = (match size with Small -> 1 | Large -> 2 + R.int rng 2);
      stmts_per_block = (match size with Small -> 3 | Large -> 5);
      buf = Buffer.create 4096;
      injected = [];
    }
  in
  emit ctx 0 (Printf.sprintf "contract %s {" name);
  for i = 0 to ctx.n_sv - 1 do
    emit ctx 2 (Printf.sprintf "uint256 sv%d;" i)
  done;
  for i = 0 to ctx.n_map - 1 do
    emit ctx 2 (Printf.sprintf "mapping(address => uint256) m%d;" i)
  done;
  for i = 0 to ctx.n_arr - 1 do
    emit ctx 2 (Printf.sprintf "uint256[] arr%d;" i)
  done;
  emit ctx 2 "address owner;";
  emit ctx 2 "uint256 phase;";
  for c = 0 to ctx.n_counters - 1 do
    emit ctx 2 (Printf.sprintf "uint256 ctr%d;" c)
  done;
  emit ctx 2 "constructor() public {";
  emit ctx 4 "owner = msg.sender;";
  emit ctx 4 "phase = 0;";
  for i = 0 to Stdlib.min 2 (ctx.n_sv - 1) do
    emit ctx 4 (Printf.sprintf "sv%d = %d;" i (R.int rng 1000))
  done;
  emit ctx 2 "}";
  (* repetition counters: step functions that must run K times before the
     guarded branches elsewhere open; their RAW + branch-read signature is
     what the derivation's repeat rule keys on *)
  for c = 0 to ctx.n_counters - 1 do
    emit ctx 2 (Printf.sprintf "function step%d() public {" c);
    emit ctx 4 (Printf.sprintf "if (ctr%d < %d) {" c (10 + R.int rng 10));
    emit ctx 6 (Printf.sprintf "ctr%d += 1;" c);
    emit ctx 4 "}";
    emit ctx 2 "}"
  done;
  let n_funcs =
    match size with Small -> 3 + R.int rng 3 | Large -> 26 + R.int rng 10
  in
  (* dedicate the first n_phase functions to the phase machine so deep
     states require ordered sequences *)
  for i = 0 to n_funcs - 1 do
    let phase_stage = if i < ctx.n_phase then Some i else None in
    gen_function ctx ~fname:(Printf.sprintf "f%d" i) ~phase_stage;
    (* possibly inject a bug pattern after this function *)
    if R.float rng < bug_rate then begin
      let cls = R.choose rng [| O.BD; O.IO; O.SE; O.TO; O.UE; O.US |] in
      match cls with
      | O.BD ->
        emit ctx 2 (Printf.sprintf "function lucky%d() public {" i);
        inject ctx ~params:[] ~indent:4 O.BD;
        emit ctx 2 "}"
      | O.IO ->
        emit ctx 2 (Printf.sprintf "function burn%d(uint256 q) public {" i);
        inject ctx ~params:[ "q" ] ~indent:4 O.IO;
        emit ctx 2 "}"
      | O.SE ->
        ctx.injected <- O.SE :: ctx.injected;
        emit ctx 2 (Printf.sprintf "function bonus%d() public payable {" i);
        emit ctx 4
          (Printf.sprintf "if (this.balance == %d finney) {" (10 + R.int rng 100));
        emit ctx 6 (Printf.sprintf "%s += 1;" (sv ctx));
        emit ctx 4 "}";
        emit ctx 2 "}"
      | O.TO ->
        ctx.injected <- O.TO :: ctx.injected;
        emit ctx 2 (Printf.sprintf "function admin%d() public {" i);
        emit ctx 4 "require(tx.origin == owner);";
        emit ctx 4 (Printf.sprintf "%s = 0;" (sv ctx));
        emit ctx 2 "}";
      | O.UE ->
        ctx.injected <- O.UE :: ctx.injected;
        emit ctx 2 (Printf.sprintf "function pay%d() public {" i);
        emit ctx 4 (Printf.sprintf "bool ok = msg.sender.send(%d ether);" (1 + R.int rng 5));
        emit ctx 2 "}"
      | O.US ->
        ctx.injected <- O.US :: ctx.injected;
        emit ctx 2 (Printf.sprintf "function kill%d() public {" i);
        emit ctx 4 "selfdestruct(msg.sender);";
        emit ctx 2 "}"
      | _ -> ()
    end
  done;
  emit ctx 0 "}";
  { name; source = Buffer.contents ctx.buf; injected = List.rev ctx.injected }

let population ~seed ~n size ~bug_rate =
  let rng = R.create seed in
  List.init n (fun i ->
      let child = R.split rng in
      let prefix = match size with Small -> "Small" | Large -> "Large" in
      generate child size ~name:(Printf.sprintf "%s_%d" prefix i) ~bug_rate)

let compile spec = Minisol.Contract.compile spec.source
