(** Parametric contract-population generator standing in for the paper's
    D1 (21,147 real contracts, split small/large at 3,632 encoded
    instructions) and D3 (500 popular high-traffic contracts).

    Generated contracts are deterministic functions of the seed and are
    built to exhibit the structural properties the paper says drive the
    coverage results: inter-function write→read state dependencies (so
    transaction ordering matters), read-after-write accumulators guarding
    branches (so the §IV-A repetition rule matters), strict numeric
    equality gates (so dictionary/mask mutation matters), nested
    conditionals (so energy weighting matters) and phase-machine
    [require]s (so sequences matter at all). A fraction of contracts
    carries injected bug patterns so bug-finding can be measured on the
    population too. *)

type size = Small | Large

type spec = {
  name : string;
  source : string;
  injected : Oracles.Oracle.bug_class list;
      (** bug patterns injected into this contract (possibly none) *)
}

val generate : Util.Rng.t -> size -> name:string -> bug_rate:float -> spec
(** One contract. [bug_rate] is the probability of injecting each bug
    pattern drawn for this contract. *)

val population :
  seed:int64 -> n:int -> size -> bug_rate:float -> spec list
(** [n] deterministic contracts named ["<Size>_<i>"]. *)

val compile : spec -> Minisol.Contract.t
