let count_leading_zeros v =
  if Int64.equal v 0L then 64
  else begin
    (* Binary search over half-widths. *)
    let v = ref v and n = ref 0 in
    if Int64.equal (Int64.shift_right_logical !v 32) 0L then begin
      n := !n + 32;
      v := Int64.shift_left !v 32
    end;
    if Int64.equal (Int64.shift_right_logical !v 48) 0L then begin
      n := !n + 16;
      v := Int64.shift_left !v 16
    end;
    if Int64.equal (Int64.shift_right_logical !v 56) 0L then begin
      n := !n + 8;
      v := Int64.shift_left !v 8
    end;
    if Int64.equal (Int64.shift_right_logical !v 60) 0L then begin
      n := !n + 4;
      v := Int64.shift_left !v 4
    end;
    if Int64.equal (Int64.shift_right_logical !v 62) 0L then begin
      n := !n + 2;
      v := Int64.shift_left !v 2
    end;
    if Int64.equal (Int64.shift_right_logical !v 63) 0L then n := !n + 1;
    !n
  end
