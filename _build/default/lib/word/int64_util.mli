(** Bit-level helpers on [int64] treated as unsigned. *)

val count_leading_zeros : int64 -> int
(** Number of zero bits above the highest set bit; 64 for zero. *)
