lib/word/u256.ml: Array Buffer Char Format Int64 Int64_util List Printf Stdlib String
