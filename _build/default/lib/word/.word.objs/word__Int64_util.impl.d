lib/word/int64_util.ml: Int64
