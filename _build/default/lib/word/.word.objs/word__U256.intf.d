lib/word/u256.mli: Format
