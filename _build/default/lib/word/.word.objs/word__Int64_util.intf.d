lib/word/int64_util.mli:
