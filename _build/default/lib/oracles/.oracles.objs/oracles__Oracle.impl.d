lib/oracles/oracle.ml: Abi Array Evm Format Hashtbl List Minisol Printf Word
