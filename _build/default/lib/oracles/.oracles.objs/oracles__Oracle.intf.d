lib/oracles/oracle.mli: Evm Format Minisol
