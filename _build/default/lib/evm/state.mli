(** World state: accounts with balance, code and persistent storage.

    The state is a persistent (immutable) value, so reverting a failed
    call frame is just discarding the candidate state — the same trick
    the paper relies on when it talks about returning to a previous
    persistent state between transactions. *)

type address = Word.U256.t

type account = {
  balance : Word.U256.t;
  code : Bytecode.t;
  storage : Word.U256.t Map.Make(Word.U256).t;
}

type t

val empty : t

val account : t -> address -> account option

val code : t -> address -> Bytecode.t
(** Empty array for absent accounts. *)

val balance : t -> address -> Word.U256.t
(** Zero for absent accounts. *)

val storage_get : t -> address -> Word.U256.t -> Word.U256.t
(** Zero for unset slots. *)

val storage_set : t -> address -> Word.U256.t -> Word.U256.t -> t

val storage_dump : t -> address -> (Word.U256.t * Word.U256.t) list
(** Non-zero slots, unordered. *)

val set_code : t -> address -> Bytecode.t -> t

val credit : t -> address -> Word.U256.t -> t
(** Add to balance (wrapping, though balances never realistically wrap). *)

val debit : t -> address -> Word.U256.t -> t option
(** [None] if the balance is insufficient. *)

val transfer : t -> from:address -> to_:address -> Word.U256.t -> t option

val delete_account : t -> address -> beneficiary:address -> t
(** SELFDESTRUCT semantics: move the balance, drop code and storage. *)

val equal : t -> t -> bool
(** Structural equality of all accounts (used by tests). *)
