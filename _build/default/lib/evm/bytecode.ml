type t = Opcode.t array

let length = Array.length

let push_width v =
  let bits = Word.U256.bit_length v in
  Stdlib.max 1 ((bits + 7) / 8)

let byte_size code =
  Array.fold_left
    (fun acc op ->
      match op with Opcode.PUSH v -> acc + 1 + push_width v | _ -> acc + 1)
    0 code

let jumpdests code =
  let tbl = Hashtbl.create 64 in
  Array.iteri (fun i op -> if op = Opcode.JUMPDEST then Hashtbl.replace tbl i ()) code;
  tbl

let pp fmt code =
  Array.iteri
    (fun i op -> Format.fprintf fmt "%4d  %s@." i (Opcode.to_string op))
    code

let to_listing code = Format.asprintf "%a" pp code

let push_constants code =
  let dests = jumpdests code in
  let is_jump_target v =
    match Word.U256.to_int_opt v with
    | Some i -> Hashtbl.mem dests i
    | None -> false
  in
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun op ->
      match op with
      | Opcode.PUSH v when not (is_jump_target v) ->
        if not (Hashtbl.mem tbl v) then Hashtbl.replace tbl v ()
      | _ -> ())
    code;
  Hashtbl.fold (fun v () acc -> v :: acc) tbl []
  |> List.sort Word.U256.compare
