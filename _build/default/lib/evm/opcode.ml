type t =
  | STOP
  | ADD
  | MUL
  | SUB
  | DIV
  | SDIV
  | MOD
  | SMOD
  | ADDMOD
  | MULMOD
  | EXP
  | SIGNEXTEND
  | LT
  | GT
  | SLT
  | SGT
  | EQ
  | ISZERO
  | AND
  | OR
  | XOR
  | NOT
  | BYTE
  | SHL
  | SHR
  | SAR
  | SHA3
  | ADDRESS
  | BALANCE
  | ORIGIN
  | CALLER
  | CALLVALUE
  | CALLDATALOAD
  | CALLDATASIZE
  | CALLDATACOPY
  | CODESIZE
  | BLOCKHASH
  | COINBASE
  | TIMESTAMP
  | NUMBER
  | DIFFICULTY
  | GASLIMIT
  | SELFBALANCE
  | POP
  | MLOAD
  | MSTORE
  | MSTORE8
  | SLOAD
  | SSTORE
  | JUMP
  | JUMPI
  | PC
  | MSIZE
  | GAS
  | JUMPDEST
  | PUSH of Word.U256.t
  | DUP of int
  | SWAP of int
  | LOG of int
  | CALL
  | DELEGATECALL
  | STATICCALL
  | RETURN
  | REVERT
  | INVALID
  | SELFDESTRUCT

let to_string = function
  | STOP -> "STOP"
  | ADD -> "ADD"
  | MUL -> "MUL"
  | SUB -> "SUB"
  | DIV -> "DIV"
  | SDIV -> "SDIV"
  | MOD -> "MOD"
  | SMOD -> "SMOD"
  | ADDMOD -> "ADDMOD"
  | MULMOD -> "MULMOD"
  | EXP -> "EXP"
  | SIGNEXTEND -> "SIGNEXTEND"
  | LT -> "LT"
  | GT -> "GT"
  | SLT -> "SLT"
  | SGT -> "SGT"
  | EQ -> "EQ"
  | ISZERO -> "ISZERO"
  | AND -> "AND"
  | OR -> "OR"
  | XOR -> "XOR"
  | NOT -> "NOT"
  | BYTE -> "BYTE"
  | SHL -> "SHL"
  | SHR -> "SHR"
  | SAR -> "SAR"
  | SHA3 -> "SHA3"
  | ADDRESS -> "ADDRESS"
  | BALANCE -> "BALANCE"
  | ORIGIN -> "ORIGIN"
  | CALLER -> "CALLER"
  | CALLVALUE -> "CALLVALUE"
  | CALLDATALOAD -> "CALLDATALOAD"
  | CALLDATASIZE -> "CALLDATASIZE"
  | CALLDATACOPY -> "CALLDATACOPY"
  | CODESIZE -> "CODESIZE"
  | BLOCKHASH -> "BLOCKHASH"
  | COINBASE -> "COINBASE"
  | TIMESTAMP -> "TIMESTAMP"
  | NUMBER -> "NUMBER"
  | DIFFICULTY -> "DIFFICULTY"
  | GASLIMIT -> "GASLIMIT"
  | SELFBALANCE -> "SELFBALANCE"
  | POP -> "POP"
  | MLOAD -> "MLOAD"
  | MSTORE -> "MSTORE"
  | MSTORE8 -> "MSTORE8"
  | SLOAD -> "SLOAD"
  | SSTORE -> "SSTORE"
  | JUMP -> "JUMP"
  | JUMPI -> "JUMPI"
  | PC -> "PC"
  | MSIZE -> "MSIZE"
  | GAS -> "GAS"
  | JUMPDEST -> "JUMPDEST"
  | PUSH v -> "PUSH " ^ Word.U256.to_hex_string v
  | DUP n -> Printf.sprintf "DUP%d" n
  | SWAP n -> Printf.sprintf "SWAP%d" n
  | LOG n -> Printf.sprintf "LOG%d" n
  | CALL -> "CALL"
  | DELEGATECALL -> "DELEGATECALL"
  | STATICCALL -> "STATICCALL"
  | RETURN -> "RETURN"
  | REVERT -> "REVERT"
  | INVALID -> "INVALID"
  | SELFDESTRUCT -> "SELFDESTRUCT"

let pp fmt op = Format.pp_print_string fmt (to_string op)

let is_branch = function JUMPI -> true | _ -> false

let is_comparison = function LT | GT | SLT | SGT | EQ -> true | _ -> false

let base_gas = function
  | STOP | RETURN | REVERT | INVALID -> 0
  | ADD | SUB | LT | GT | SLT | SGT | EQ | ISZERO | AND | OR | XOR | NOT
  | BYTE | SHL | SHR | SAR | CALLVALUE | CALLDATALOAD | CALLDATASIZE
  | CODESIZE | POP | PC | MSIZE | GAS | PUSH _ | DUP _ | SWAP _ ->
    3
  | MUL | DIV | SDIV | MOD | SMOD | SIGNEXTEND | CALLDATACOPY -> 5
  | ADDMOD | MULMOD | JUMP -> 8
  | EXP -> 10
  | JUMPI -> 10
  | SHA3 -> 30
  | ADDRESS | ORIGIN | CALLER | COINBASE | TIMESTAMP | NUMBER | DIFFICULTY
  | GASLIMIT | JUMPDEST ->
    2
  | BALANCE | SELFBALANCE -> 20
  | BLOCKHASH -> 20
  | MLOAD | MSTORE | MSTORE8 -> 3
  | SLOAD -> 200
  | SSTORE -> 5000
  | LOG n -> 375 * (n + 1)
  | CALL | DELEGATECALL | STATICCALL -> 700
  | SELFDESTRUCT -> 5000
