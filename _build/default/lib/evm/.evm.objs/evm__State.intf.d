lib/evm/state.mli: Bytecode Map Word
