lib/evm/bytecode.mli: Format Hashtbl Opcode Word
