lib/evm/interp.ml: Array Bytecode Bytes Char Crypto Hashtbl List Opcode State Stdlib String Trace Word
