lib/evm/bytecode.ml: Array Format Hashtbl List Opcode Stdlib Word
