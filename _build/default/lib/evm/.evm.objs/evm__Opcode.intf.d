lib/evm/opcode.mli: Format Word
