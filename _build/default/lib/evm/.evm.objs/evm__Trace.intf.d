lib/evm/trace.mli: Format Word
