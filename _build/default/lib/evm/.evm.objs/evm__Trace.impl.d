lib/evm/trace.ml: Format List String Word
