lib/evm/interp.mli: State Trace Word
