lib/evm/encoding.ml: Array Buffer Bytecode Char List Opcode Printf Stdlib String Util Word
