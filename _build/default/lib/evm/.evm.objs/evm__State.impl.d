lib/evm/state.ml: Bytecode Map Word
