lib/evm/encoding.mli: Bytecode Opcode
