module WordMap = Map.Make (Word.U256)

type address = Word.U256.t

type account = {
  balance : Word.U256.t;
  code : Bytecode.t;
  storage : Word.U256.t WordMap.t;
}

type t = account WordMap.t

let empty = WordMap.empty

let empty_account =
  { balance = Word.U256.zero; code = [||]; storage = WordMap.empty }

let account t addr = WordMap.find_opt addr t

let get_or_empty t addr =
  match WordMap.find_opt addr t with Some a -> a | None -> empty_account

let code t addr = (get_or_empty t addr).code

let balance t addr = (get_or_empty t addr).balance

let storage_get t addr slot =
  match WordMap.find_opt slot (get_or_empty t addr).storage with
  | Some v -> v
  | None -> Word.U256.zero

let storage_set t addr slot value =
  let acct = get_or_empty t addr in
  let storage =
    if Word.U256.is_zero value then WordMap.remove slot acct.storage
    else WordMap.add slot value acct.storage
  in
  WordMap.add addr { acct with storage } t

let storage_dump t addr =
  WordMap.bindings (get_or_empty t addr).storage

let set_code t addr c =
  let acct = get_or_empty t addr in
  WordMap.add addr { acct with code = c } t

let credit t addr v =
  let acct = get_or_empty t addr in
  WordMap.add addr { acct with balance = Word.U256.add acct.balance v } t

let debit t addr v =
  let acct = get_or_empty t addr in
  if Word.U256.lt acct.balance v then None
  else Some (WordMap.add addr { acct with balance = Word.U256.sub acct.balance v } t)

let transfer t ~from ~to_ v =
  match debit t from v with
  | None -> None
  | Some t -> Some (credit t to_ v)

let delete_account t addr ~beneficiary =
  let acct = get_or_empty t addr in
  let t = credit t beneficiary acct.balance in
  WordMap.remove addr t

let equal a b =
  WordMap.equal
    (fun x y ->
      Word.U256.equal x.balance y.balance
      && x.code = y.code
      && WordMap.equal Word.U256.equal x.storage y.storage)
    a b
