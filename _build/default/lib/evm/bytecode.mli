(** Contract bytecode as an instruction array.

    Program counters are instruction indices (not byte offsets): [JUMP] and
    [JUMPI] target the index of a [JUMPDEST] instruction. [byte_size]
    reports the size the program would occupy in the canonical EVM byte
    encoding — the paper's D1 small/large split ([<= 3632] vs [> 3632]
    encoded instructions) is measured against this. *)

type t = Opcode.t array

val length : t -> int
(** Number of instructions. *)

val byte_size : t -> int
(** Size of the canonical byte encoding ([PUSH] widths are minimal). *)

val jumpdests : t -> (int, unit) Hashtbl.t
(** Indices of valid [JUMPDEST] instructions. *)

val push_constants : t -> Word.U256.t list
(** Distinct [PUSH] operand values that are not jump targets — the
    contract's "magic numbers", used to seed the fuzzer's mutation
    dictionary (the standard Echidna/ConFuzzius trick for strict
    equality conditions). Sorted ascending. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing, one instruction per line with its index. *)

val to_listing : t -> string
