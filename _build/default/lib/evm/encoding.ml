module Op = Opcode
module U = Word.U256

let push_width v = Stdlib.max 1 ((Word.U256.bit_length v + 7) / 8)

let opcode_byte (op : Op.t) =
  match op with
  | STOP -> 0x00
  | ADD -> 0x01
  | MUL -> 0x02
  | SUB -> 0x03
  | DIV -> 0x04
  | SDIV -> 0x05
  | MOD -> 0x06
  | SMOD -> 0x07
  | ADDMOD -> 0x08
  | MULMOD -> 0x09
  | EXP -> 0x0a
  | SIGNEXTEND -> 0x0b
  | LT -> 0x10
  | GT -> 0x11
  | SLT -> 0x12
  | SGT -> 0x13
  | EQ -> 0x14
  | ISZERO -> 0x15
  | AND -> 0x16
  | OR -> 0x17
  | XOR -> 0x18
  | NOT -> 0x19
  | BYTE -> 0x1a
  | SHL -> 0x1b
  | SHR -> 0x1c
  | SAR -> 0x1d
  | SHA3 -> 0x20
  | ADDRESS -> 0x30
  | BALANCE -> 0x31
  | ORIGIN -> 0x32
  | CALLER -> 0x33
  | CALLVALUE -> 0x34
  | CALLDATALOAD -> 0x35
  | CALLDATASIZE -> 0x36
  | CALLDATACOPY -> 0x37
  | CODESIZE -> 0x38
  | BLOCKHASH -> 0x40
  | COINBASE -> 0x41
  | TIMESTAMP -> 0x42
  | NUMBER -> 0x43
  | DIFFICULTY -> 0x44
  | GASLIMIT -> 0x45
  | SELFBALANCE -> 0x47
  | POP -> 0x50
  | MLOAD -> 0x51
  | MSTORE -> 0x52
  | MSTORE8 -> 0x53
  | SLOAD -> 0x54
  | SSTORE -> 0x55
  | JUMP -> 0x56
  | JUMPI -> 0x57
  | PC -> 0x58
  | MSIZE -> 0x59
  | GAS -> 0x5a
  | JUMPDEST -> 0x5b
  | PUSH v -> 0x60 + push_width v - 1
  | DUP n -> 0x80 + n - 1
  | SWAP n -> 0x90 + n - 1
  | LOG n -> 0xa0 + n
  | CALL -> 0xf1
  | DELEGATECALL -> 0xf4
  | STATICCALL -> 0xfa
  | RETURN -> 0xf3
  | REVERT -> 0xfd
  | INVALID -> 0xfe
  | SELFDESTRUCT -> 0xff

let encode (code : Bytecode.t) =
  let buf = Buffer.create (Array.length code * 2) in
  Array.iter
    (fun op ->
      Buffer.add_char buf (Char.chr (opcode_byte op));
      match op with
      | Op.PUSH v ->
        let w = push_width v in
        let bytes = U.to_bytes_be v in
        Buffer.add_string buf (String.sub bytes (32 - w) w)
      | _ -> ())
    code;
  Buffer.contents buf

exception Decode_error of string * int

let decode s =
  let out = ref [] in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    let b = Char.code s.[!i] in
    let at = !i in
    incr i;
    let simple op = out := op :: !out in
    (match b with
    | 0x00 -> simple Op.STOP
    | 0x01 -> simple Op.ADD
    | 0x02 -> simple Op.MUL
    | 0x03 -> simple Op.SUB
    | 0x04 -> simple Op.DIV
    | 0x05 -> simple Op.SDIV
    | 0x06 -> simple Op.MOD
    | 0x07 -> simple Op.SMOD
    | 0x08 -> simple Op.ADDMOD
    | 0x09 -> simple Op.MULMOD
    | 0x0a -> simple Op.EXP
    | 0x0b -> simple Op.SIGNEXTEND
    | 0x10 -> simple Op.LT
    | 0x11 -> simple Op.GT
    | 0x12 -> simple Op.SLT
    | 0x13 -> simple Op.SGT
    | 0x14 -> simple Op.EQ
    | 0x15 -> simple Op.ISZERO
    | 0x16 -> simple Op.AND
    | 0x17 -> simple Op.OR
    | 0x18 -> simple Op.XOR
    | 0x19 -> simple Op.NOT
    | 0x1a -> simple Op.BYTE
    | 0x1b -> simple Op.SHL
    | 0x1c -> simple Op.SHR
    | 0x1d -> simple Op.SAR
    | 0x20 -> simple Op.SHA3
    | 0x30 -> simple Op.ADDRESS
    | 0x31 -> simple Op.BALANCE
    | 0x32 -> simple Op.ORIGIN
    | 0x33 -> simple Op.CALLER
    | 0x34 -> simple Op.CALLVALUE
    | 0x35 -> simple Op.CALLDATALOAD
    | 0x36 -> simple Op.CALLDATASIZE
    | 0x37 -> simple Op.CALLDATACOPY
    | 0x38 -> simple Op.CODESIZE
    | 0x40 -> simple Op.BLOCKHASH
    | 0x41 -> simple Op.COINBASE
    | 0x42 -> simple Op.TIMESTAMP
    | 0x43 -> simple Op.NUMBER
    | 0x44 -> simple Op.DIFFICULTY
    | 0x45 -> simple Op.GASLIMIT
    | 0x47 -> simple Op.SELFBALANCE
    | 0x50 -> simple Op.POP
    | 0x51 -> simple Op.MLOAD
    | 0x52 -> simple Op.MSTORE
    | 0x53 -> simple Op.MSTORE8
    | 0x54 -> simple Op.SLOAD
    | 0x55 -> simple Op.SSTORE
    | 0x56 -> simple Op.JUMP
    | 0x57 -> simple Op.JUMPI
    | 0x58 -> simple Op.PC
    | 0x59 -> simple Op.MSIZE
    | 0x5a -> simple Op.GAS
    | 0x5b -> simple Op.JUMPDEST
    | b when b >= 0x60 && b <= 0x7f ->
      let w = b - 0x60 + 1 in
      if !i + w > n then raise (Decode_error ("truncated PUSH operand", at));
      let v = U.of_bytes_be (String.sub s !i w) in
      i := !i + w;
      simple (Op.PUSH v)
    | b when b >= 0x80 && b <= 0x8f -> simple (Op.DUP (b - 0x80 + 1))
    | b when b >= 0x90 && b <= 0x9f -> simple (Op.SWAP (b - 0x90 + 1))
    | b when b >= 0xa0 && b <= 0xa4 -> simple (Op.LOG (b - 0xa0))
    | 0xf1 -> simple Op.CALL
    | 0xf3 -> simple Op.RETURN
    | 0xf4 -> simple Op.DELEGATECALL
    | 0xfa -> simple Op.STATICCALL
    | 0xfd -> simple Op.REVERT
    | 0xfe -> simple Op.INVALID
    | 0xff -> simple Op.SELFDESTRUCT
    | b -> raise (Decode_error (Printf.sprintf "unknown opcode 0x%02x" b, at)))
  done;
  Array.of_list (List.rev !out)

let encode_hex code = Util.Hex.encode (encode code)

let decode_hex h = decode (Util.Hex.decode h)
