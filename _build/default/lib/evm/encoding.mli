(** Canonical EVM byte encoding of programs.

    [encode] serialises a program using the real EVM opcode bytes
    (PUSH1..PUSH32 with minimal operand width); [decode] disassembles a
    byte string back into an instruction array. Jump operands are
    instruction indices in this dialect (see {!Bytecode}); the byte form
    exists for size accounting, on-disk corpora and interoperability
    tests, and round-trips exactly:
    [decode (encode code) = code] for every program whose PUSH operands
    use minimal width. *)

val opcode_byte : Opcode.t -> int
(** The instruction's EVM opcode byte (PUSH returns the byte for its
    minimal width variant). *)

val encode : Bytecode.t -> string

exception Decode_error of string * int
(** message, byte offset *)

val decode : string -> Bytecode.t
(** @raise Decode_error on unknown opcode bytes or truncated PUSH data. *)

val encode_hex : Bytecode.t -> string
val decode_hex : string -> Bytecode.t
