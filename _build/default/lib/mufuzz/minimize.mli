(** Witness minimisation: shrink a bug-exposing transaction sequence to a
    minimal, readable proof-of-concept.

    Greedy delta-debugging: drop transactions one at a time (keeping the
    constructor), then zero out argument/value words, re-checking after
    each step that the finding still reproduces. Deterministic; the
    result always reproduces the finding. *)

val reproduces :
  contract:Minisol.Contract.t ->
  gas:int ->
  n_senders:int ->
  attacker:bool ->
  Oracles.Oracle.finding ->
  Seed.t ->
  bool
(** Does executing the seed raise a finding with the same class and pc? *)

val minimize :
  contract:Minisol.Contract.t ->
  gas:int ->
  n_senders:int ->
  attacker:bool ->
  ?max_steps:int ->
  Oracles.Oracle.finding ->
  Seed.t ->
  Seed.t * int
(** [minimize ... finding seed] returns the shrunk seed and the number of
    executions spent. [max_steps] bounds the work (default 200). If the
    input seed does not reproduce the finding it is returned unchanged. *)
