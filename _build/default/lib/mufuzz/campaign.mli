(** The MuFuzz campaign: Algorithm 1's seed selection and mutation loop,
    wired to the sequence-aware derivation of §IV-A, the mask guidance of
    §IV-B and the dynamic energy adjustment of §IV-C.

    A campaign is fully deterministic given [Config.rng_seed]: every
    random draw flows from one SplitMix64 stream, and the EVM substrate
    is itself deterministic. *)

val run : ?config:Config.t -> Minisol.Contract.t -> Report.t
(** Fuzz one contract until the execution budget is exhausted. *)

val derive_sequence : Minisol.Contract.t -> string list
(** The §IV-A sequence for a contract (constructor excluded), exposed
    for examples and tests. *)
