let assign ~dynamic ~base ~max_energy ~weights ~path =
  if not dynamic then base
  else
    match weights with
    | None -> base
    | Some tbl ->
      let max_w =
        List.fold_left
          (fun acc br ->
            match Hashtbl.find_opt tbl br with
            | Some w -> Stdlib.max acc w
            | None -> acc)
          0.0 path
      in
      (* weight 0 -> base; each weight point buys a proportional slice of
         the remaining headroom, saturating at max_energy *)
      let scaled = float_of_int base *. (1.0 +. (max_w /. 4.0)) in
      Stdlib.min max_energy (int_of_float scaled)

let update energy ~new_coverage = if new_coverage then energy + 2 else energy - 1
