type snapshot = {
  state : Evm.State.t;
  block : Evm.Interp.block_env;
  tx_results : Executor_types.tx_result list;
  received_value : bool;
}

type t = {
  table : (string, snapshot) Hashtbl.t;
  capacity : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ?(capacity = 4096) () =
  { table = Hashtbl.create 256; capacity; hit_count = 0; miss_count = 0 }

let digest_tx prev (tx : Seed.tx) =
  Crypto.Keccak.hash
    (prev ^ Abi.selector tx.fn ^ String.make 1 (Char.chr (tx.sender land 0xff))
   ^ tx.stream)

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some s ->
    t.hit_count <- t.hit_count + 1;
    Some s
  | None ->
    t.miss_count <- t.miss_count + 1;
    None

let store t key snapshot =
  if Hashtbl.length t.table >= t.capacity then Hashtbl.reset t.table;
  Hashtbl.replace t.table key snapshot

let hits t = t.hit_count
let misses t = t.miss_count
