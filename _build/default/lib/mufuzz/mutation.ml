type kind = O | I | R | D

let all_kinds = [ O; I; R; D ]

let kind_to_string = function O -> "O" | I -> "I" | R -> "R" | D -> "D"

let kind_index = function O -> 0 | I -> 1 | R -> 2 | D -> 3

type m = { kind : kind; n : int }

let random rng ~max_n =
  let kind =
    match Util.Rng.int rng 4 with 0 -> O | 1 -> I | 2 -> R | _ -> D
  in
  { kind; n = 1 + Util.Rng.int rng (Stdlib.max 1 max_n) }

let interesting_bytes = "\x00\x01\x02\x07\x08\x0f\x10\x1f\x20\x40\x64\x7f\x80\xff"

(* Word-level dictionary for the R operator: boundary constants and
   round ether denominations — the values strict branch conditions
   compare against. *)
let interesting_word rng =
  let module U = Word.U256 in
  match Util.Rng.int rng 6 with
  | 0 -> U.of_int (Util.Rng.int rng 256)
  | 1 ->
    (* k wei/finney/ether for small k *)
    let unit =
      match Util.Rng.int rng 3 with
      | 0 -> "1"
      | 1 -> "1000000000000000"
      | _ -> "1000000000000000000"
    in
    U.mul (U.of_int (1 + Util.Rng.int rng 200)) (U.of_decimal_string unit)
  | 2 -> U.shift_left U.one (Util.Rng.int rng 256)
  | 3 -> U.sub (U.shift_left U.one (1 + Util.Rng.int rng 255)) U.one
  | 4 -> U.max_value
  | _ -> U.of_int (Util.Rng.int rng 100000)

let clamp_pos stream pos = Stdlib.max 0 (Stdlib.min pos (String.length stream))

(* Log-scale arithmetic steps on the aligned word containing [pos]:
   combined with branch-distance seed retention this hill-climbs toward
   strict numeric conditions. *)
let arith_word rng stream pos =
  let module U = Word.U256 in
  let len = String.length stream in
  let word_start = Stdlib.min (pos / 32 * 32) (len - 32) in
  let w = U.of_bytes_be (String.sub stream word_start 32) in
  let w' =
    match Util.Rng.int rng 8 with
    | 0 -> U.add w U.one
    | 1 -> U.sub w U.one
    | 2 -> U.add w (U.of_int 256)
    | 3 -> U.sub w (U.of_int 256)
    | 4 -> U.mul w (U.of_int 2)
    | 5 -> U.div w (U.of_int 2)
    | 6 -> U.mul w (U.of_int 10)
    | _ -> U.div w (U.of_int 10)
  in
  String.sub stream 0 word_start ^ U.to_bytes_be w'
  ^ String.sub stream (word_start + 32) (len - word_start - 32)

let apply ?(dict = [||]) rng m ~pos stream =
  let len = String.length stream in
  let pos = clamp_pos stream pos in
  match m.kind with
  | O ->
    if len = 0 then stream
    else if len >= 32 && Util.Rng.int rng 3 = 0 then arith_word rng stream pos
    else begin
      let n = Stdlib.min m.n (len - Stdlib.min pos (len - 1)) in
      let b = Bytes.of_string stream in
      for k = 0 to n - 1 do
        let i = Stdlib.min (pos + k) (len - 1) in
        (* half overwrite with fresh bytes, half single-bit flips *)
        if Util.Rng.bool rng then Bytes.set b i (Util.Rng.byte rng)
        else
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Util.Rng.int rng 8)))
      done;
      Bytes.to_string b
    end
  | I ->
    let chunk = Bytes.to_string (Util.Rng.bytes rng m.n) in
    String.sub stream 0 pos ^ chunk ^ String.sub stream pos (len - pos)
  | R ->
    if len = 0 then stream
    else if Util.Rng.bool rng && len >= 32 then begin
      (* word-level replace: swap the aligned 32-byte word containing
         [pos] for a dictionary word — the move that satisfies strict
         equality conditions like [msg.value == 88 finney] *)
      let word_start = Stdlib.min (pos / 32 * 32) (len - 32) in
      let candidate =
        if Array.length dict > 0 && Util.Rng.bool rng then
          (* contract-specific magic numbers, occasionally perturbed *)
          let base = Util.Rng.choose rng dict in
          match Util.Rng.int rng 4 with
          | 0 -> Word.U256.add base Word.U256.one
          | 1 -> Word.U256.sub base Word.U256.one
          | _ -> base
        else interesting_word rng
      in
      let w = Word.U256.to_bytes_be candidate in
      String.sub stream 0 word_start ^ w
      ^ String.sub stream (word_start + 32) (len - word_start - 32)
    end
    else begin
      let n = Stdlib.min m.n (len - Stdlib.min pos (len - 1)) in
      let b = Bytes.of_string stream in
      for k = 0 to n - 1 do
        let i = Stdlib.min (pos + k) (len - 1) in
        Bytes.set b i
          interesting_bytes.[Util.Rng.int rng (String.length interesting_bytes)]
      done;
      Bytes.to_string b
    end
  | D ->
    if len = 0 then stream
    else begin
      let n = Stdlib.min m.n (len - pos) in
      if n <= 0 then stream
      else String.sub stream 0 pos ^ String.sub stream (pos + n) (len - pos - n)
    end
