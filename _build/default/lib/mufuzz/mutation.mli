(** The four §IV-B mutation operator classes over byte streams.

    A mutation is a pair [m = (x, n)] with [x ∈ {O, I, R, D}]:
    [O] overwrites [n] bytes at position [i] (random bytes or bit flips),
    [I] inserts [n] bytes at [i], [R] replaces [n] bytes at [i] with
    {e interesting} values (the AFL dictionary of boundary constants),
    [D] deletes [n] bytes at [i]. *)

type kind = O | I | R | D

val all_kinds : kind list
val kind_to_string : kind -> string
val kind_index : kind -> int
(** Stable 0..3 index, used by the mask bitsets. *)

type m = { kind : kind; n : int }

val random : Util.Rng.t -> max_n:int -> m
(** A random operator with [1 <= n <= max_n]. *)

val apply : ?dict:Word.U256.t array -> Util.Rng.t -> m -> pos:int -> string -> string
(** [apply rng m ~pos stream] returns the mutated stream. Positions are
    clamped into the stream; [D] on an empty stream and other degenerate
    cases return the stream unchanged. The result of [I]/[D] changes the
    stream length — decoding re-pads, as the paper's ABI layer does.
    [dict] supplies contract-specific magic-number words that the
    word-level [R] mode draws from. *)

val interesting_bytes : string
(** The single-byte dictionary used by [R]. *)
