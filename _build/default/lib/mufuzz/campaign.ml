module U = Word.U256

let log_src = Logs.Src.create "mufuzz.campaign" ~doc:"MuFuzz campaign events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type entry = {
  seed : Seed.t;
  path : (int * bool) list;
  nested_hits : (int * bool) list;
  frontier_dists : ((int * bool) * float) list;
  masks : (int, Mask.t) Hashtbl.t;  (* tx index -> cached mask *)
}

let derive_sequence (contract : Minisol.Contract.t) =
  Analysis.Sequence.derive (Analysis.Statevars.analyze contract.ast)

(* Branches whose within-transaction ordinal is >= 2 — the paper's
   "nested branch" (at least two enclosing conditional statements). *)
let nested_hits_of_run (run : Executor.run) =
  List.concat_map
    (fun (r : Executor.tx_result) ->
      let _, acc =
        List.fold_left
          (fun (ord, acc) ev ->
            match ev with
            | Evm.Trace.Branch { pc; taken; _ } ->
              (ord + 1, if ord + 1 >= 2 then (pc, taken) :: acc else acc)
            | _ -> (ord, acc))
          (0, []) r.trace.events
      in
      acc)
    run.tx_results
  |> List.sort_uniq compare

let path_of_run (run : Executor.run) =
  List.concat_map
    (fun (r : Executor.tx_result) -> Evm.Trace.branches r.trace)
    run.tx_results
  |> List.sort_uniq compare

let frontier_dists_of_run coverage (run : Executor.run) =
  let frontier = Coverage.uncovered_frontier coverage in
  List.filter_map
    (fun br ->
      let best =
        List.fold_left
          (fun acc (r : Executor.tx_result) ->
            match Coverage.trace_min_distance r.trace br with
            | Some d -> (match acc with Some a when a <= d -> acc | _ -> Some d)
            | None -> acc)
          None run.tx_results
      in
      Option.map (fun d -> (br, d)) best)
    frontier

let run ?(config = Config.default) (contract : Minisol.Contract.t) =
  let start_time = Unix.gettimeofday () in
  let rng = Util.Rng.create config.rng_seed in
  let info = Analysis.Statevars.analyze contract.ast in
  let cfg = Analysis.Cfg.build contract.bytecode in
  (* contract-specific magic numbers for the mutation dictionary *)
  let dict = Array.of_list (Evm.Bytecode.push_constants contract.bytecode) in
  let static = Oracles.Oracle.static_info_of contract in
  let abi = contract.abi in
  let coverage = Coverage.create () in
  let findings_tbl : (Oracles.Oracle.bug_class * int, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let findings = ref [] in
  let witnesses = ref [] in
  let witness_seeds = ref [] in
  let execs = ref 0 in
  let checkpoints = ref [] in
  let weight_table : (int * bool, float) Hashtbl.t option ref =
    ref (if config.dynamic_energy then Some (Hashtbl.create 64) else None)
  in
  let budget_left () = !execs < config.max_executions in
  let cache = if config.state_caching then Some (State_cache.create ()) else None in
  (* Execute a seed, fold its feedback into every table, return the run
     plus whether it covered a new branch side. *)
  let exec_and_observe seed =
    let run =
      Executor.run_seed ~contract ~gas:config.gas_per_tx ~n_senders:config.n_senders
        ~attacker:config.attacker_enabled ?cache seed
    in
    incr execs;
    let fresh =
      List.fold_left
        (fun fresh (r : Executor.tx_result) -> Coverage.record coverage r.trace || fresh)
        false run.tx_results
    in
    if fresh then
      Log.debug (fun m ->
          m "exec %d: coverage %d sides" !execs (Coverage.covered_count coverage));
    let executions =
      List.map (fun (r : Executor.tx_result) -> (r.tx_index, r.success, r.trace))
        run.tx_results
    in
    List.iter
      (fun (f : Oracles.Oracle.finding) ->
        let key = (f.cls, f.pc) in
        if not (Hashtbl.mem findings_tbl key) then begin
          Hashtbl.replace findings_tbl key ();
          findings := f :: !findings;
          witnesses := (f, Seed.show seed) :: !witnesses;
          witness_seeds := (f, seed) :: !witness_seeds;
          Log.info (fun m ->
              m "exec %d: new finding %a" !execs Oracles.Oracle.pp_finding f)
        end)
      (Oracles.Oracle.inspect_campaign ~static ~received_value:run.received_value
         executions);
    (* pre-fuzz / continuous branch weighting (Algorithm 3) *)
    (match !weight_table with
    | Some tbl when fresh ->
      List.iter
        (fun (r : Executor.tx_result) ->
          List.iter
            (fun (wb : Analysis.Prefix.weighted_branch) ->
              let key = (wb.pc, wb.taken) in
              match Hashtbl.find_opt tbl key with
              | Some w when w >= wb.weight -> ()
              | _ -> Hashtbl.replace tbl key wb.weight)
            (Analysis.Prefix.analyze_trace ~params:config.prefix_params cfg r.trace))
        run.tx_results
    | _ -> ());
    checkpoints :=
      { Report.execs = !execs; covered = Coverage.covered_count coverage }
      :: !checkpoints;
    (run, fresh)
  in
  let mk_entry seed run =
    {
      seed;
      path = path_of_run run;
      nested_hits = nested_hits_of_run run;
      frontier_dists = frontier_dists_of_run coverage run;
      masks = Hashtbl.create 4;
    }
  in
  (* ---------------- initial seeds ---------------- *)
  let base_sequence () =
    match config.sequence_mode with
    | Config.Seq_random -> Analysis.Sequence.random_sequence rng info
    | Config.Seq_dataflow -> Analysis.Sequence.derive_base info
    | Config.Seq_dataflow_repeat -> Analysis.Sequence.derive info
  in
  let new_seed () =
    let seed =
      Seed.of_sequence ~dict rng ~n_senders:config.n_senders abi
        ("constructor" :: base_sequence ())
    in
    if not config.prolongation then seed
    else begin
      (* IR-Fuzz-style prolongation: stretch the tail with extra calls *)
      let fns = Minisol.Contract.callable_functions contract in
      if fns = [] then seed
      else
        let extra =
          List.init (1 + Util.Rng.int rng 3) (fun _ ->
              Seed.random_tx ~dict rng ~n_senders:config.n_senders
                (Util.Rng.choose_list rng fns))
        in
        { Seed.txs = seed.txs @ extra }
    end
  in
  let queue : entry array ref = ref [||] in
  let queue_add e =
    let cap = 128 in
    let q = Array.to_list !queue @ [ e ] in
    let q = if List.length q > cap then List.tl q else q in
    queue := Array.of_list q
  in
  let best_for_branch : (int * bool, float * entry) Hashtbl.t = Hashtbl.create 64 in
  let note_entry e =
    List.iter
      (fun (br, d) ->
        match Hashtbl.find_opt best_for_branch br with
        | Some (best, _) when best <= d -> ()
        | _ -> Hashtbl.replace best_for_branch br (d, e))
      e.frontier_dists
  in
  (* replayed corpus first, then freshly generated seeds *)
  List.iter
    (fun seed ->
      if budget_left () then begin
        let run, _fresh = exec_and_observe seed in
        let e = mk_entry seed run in
        queue_add e;
        note_entry e
      end)
    config.initial_corpus;
  for _ = 1 to config.initial_seeds do
    if budget_left () then begin
      let seed = new_seed () in
      let run, _fresh = exec_and_observe seed in
      let e = mk_entry seed run in
      queue_add e;
      note_entry e
    end
  done;
  (* ---------------- mask probing ---------------- *)
  let mask_probes_used = ref 0 in
  let mask_budget_left () =
    float_of_int !mask_probes_used
    < config.mask_budget_fraction *. float_of_int config.max_executions
  in
  let get_mask (e : entry) tx_index =
    match Hashtbl.find_opt e.masks tx_index with
    | Some m -> Some m
    | None when not (mask_budget_left ()) -> None
    | None ->
      let tx = List.nth e.seed.txs tx_index in
      let baseline_nested = e.nested_hits in
      let baseline_dists = e.frontier_dists in
      if baseline_nested = [] && baseline_dists = [] then None
      else begin
        let probe mutant_stream =
          if not (budget_left ()) then
            { Mask.hits_nested = false; distance_decreased = false }
          else begin
            let probe_seed =
              Seed.with_tx e.seed tx_index { tx with stream = mutant_stream }
            in
            incr mask_probes_used;
            let run, _ = exec_and_observe probe_seed in
            let hits_nested =
              baseline_nested <> []
              && List.exists
                   (fun br -> List.mem br baseline_nested)
                   (nested_hits_of_run run)
            in
            let distance_decreased =
              List.exists
                (fun (br, base_d) ->
                  List.exists
                    (fun (r : Executor.tx_result) ->
                      match Coverage.trace_min_distance r.trace br with
                      | Some d -> d < base_d
                      | None -> false)
                    run.tx_results)
                baseline_dists
            in
            { Mask.hits_nested; distance_decreased }
          end
        in
        let m =
          Mask.compute rng ~stride:config.mask_stride
            ~max_probes:config.mask_max_probes ~probe tx.stream
        in
        if Hashtbl.length e.masks < config.mask_cache_max then
          Hashtbl.replace e.masks tx_index m;
        Some m
      end
  in
  (* ---------------- sequence-level mutation (§IV-A, continuing) ------- *)
  let mutate_sequence (seed : Seed.t) =
    match seed.txs with
    | [] | [ _ ] -> seed
    | ctor :: rest -> begin
      let rest = Array.of_list rest in
      let n = Array.length rest in
      (match
         (* RAW-targeted duplication and sequence extension are the §IV-A
            moves of the full system. Baselines mutate the ORDER of their
            sequences (the paper's §III-B point is precisely that they
            cannot make a transaction run twice); IR-Fuzz's extension
            happens at seed creation via prolongation instead. *)
         if config.sequence_mode = Config.Seq_dataflow_repeat then Util.Rng.int rng 3
         else 1
       with
      | 0 ->
        (* duplicate a transaction whose function the RAW rule marks as
           repeatable (fall back to any) *)
        let candidates =
          Array.to_list rest
          |> List.filter (fun (tx : Seed.tx) ->
                 match Analysis.Statevars.info info tx.fn.Abi.name with
                 | Some fi -> Analysis.Statevars.should_repeat info fi
                 | None -> false)
        in
        let tx =
          match candidates with
          | [] -> rest.(Util.Rng.int rng n)
          | l -> Util.Rng.choose_list rng l
        in
        let pos = Util.Rng.int rng (n + 1) in
        let l = Array.to_list rest in
        let before = List.filteri (fun i _ -> i < pos) l in
        let after = List.filteri (fun i _ -> i >= pos) l in
        { Seed.txs = ctor :: (before @ [ tx ] @ after) }
      | 1 when n >= 2 ->
        let i = Util.Rng.int rng n and j = Util.Rng.int rng n in
        let tmp = rest.(i) in
        rest.(i) <- rest.(j);
        rest.(j) <- tmp;
        { Seed.txs = ctor :: Array.to_list rest }
      | _ ->
        (* append a random callable *)
        let fns = Minisol.Contract.callable_functions contract in
        if fns = [] then seed
        else
          let fn = Util.Rng.choose_list rng fns in
          { Seed.txs = ctor :: (Array.to_list rest
                                @ [ Seed.random_tx ~dict rng ~n_senders:config.n_senders fn ]) })
    end
  in
  (* ---------------- main loop ---------------- *)
  (* black-box mode: no feedback, fresh random seeds until the budget ends *)
  if config.blackbox then
    while budget_left () do
      ignore (exec_and_observe (new_seed ()))
    done;
  let cursor = ref 0 in
  while budget_left () && Array.length !queue > 0 do
    (* Branch-distance-feedback selection (Algorithm 1 lines 8-13): most
       picks go to the seed closest to some still-uncovered branch. *)
    let entry =
      let frontier =
        Hashtbl.fold
          (fun br (d, e) acc ->
            if Coverage.is_covered coverage br then acc else (br, d, e) :: acc)
          best_for_branch []
      in
      if config.distance_feedback && frontier <> [] && Util.Rng.float rng < 0.7 then
        let _, _, e = Util.Rng.choose_list rng frontier in
        e
      else begin
        let q = !queue in
        let e = q.(!cursor mod Array.length q) in
        incr cursor;
        e
      end
    in
    let energy =
      Energy.assign ~dynamic:config.dynamic_energy ~base:config.base_energy
        ~max_energy:config.max_energy
        ~weights:!weight_table ~path:entry.path
    in
    let remaining = ref energy in
    while !remaining > 0 && budget_left () do
      let ntx = List.length entry.seed.txs in
      let tx_index = Util.Rng.int rng ntx in
      let tx = List.nth entry.seed.txs tx_index in
      let stream = tx.Seed.stream in
      let mask =
        if config.mask_guided && (entry.nested_hits <> [] || entry.frontier_dists <> [])
        then get_mask entry tx_index
        else None
      in
      let pos = Util.Rng.int rng (Stdlib.max 1 (String.length stream)) in
      let m = Mutation.random rng ~max_n:8 in
      let allowed =
        match mask with
        | Some msk -> Mask.allows msk m.Mutation.kind ~pos
        | None -> true
      in
      if not allowed then remaining := !remaining - 1
      else begin
        let mutated = Mutation.apply ~dict rng m ~pos stream in
        let candidate = Seed.with_tx entry.seed tx_index { tx with stream = mutated } in
        let candidate =
          if Util.Rng.float rng < config.sequence_mutation_prob then
            mutate_sequence candidate
          else candidate
        in
        if budget_left () then begin
          let run, fresh = exec_and_observe candidate in
          if fresh then begin
            let e = mk_entry candidate run in
            queue_add e;
            note_entry e
          end
          else begin
            (* Algorithm 1 lines 8-13: a seed that gets closer to an
               uncovered branch joins the selection pool even without new
               coverage — this is what lets mutation hill-climb strict
               conditions. *)
            let dists = frontier_dists_of_run coverage run in
            let improves =
              List.exists
                (fun (br, d) ->
                  match Hashtbl.find_opt best_for_branch br with
                  | Some (best, _) -> d < best
                  | None -> true)
                dists
            in
            if improves then
              note_entry
                { seed = candidate; path = path_of_run run;
                  nested_hits = nested_hits_of_run run;
                  frontier_dists = dists; masks = Hashtbl.create 4 }
          end;
          remaining := Energy.update !remaining ~new_coverage:fresh
        end
        else remaining := 0
      end
    done
  done;
  {
    Report.contract_name = contract.name;
    executions = !execs;
    covered_branches = Coverage.covered_count coverage;
    covered = List.sort compare (Coverage.covered coverage);
    total_branch_sides = 2 * List.length (Analysis.Cfg.branch_points cfg);
    findings = Oracles.Oracle.dedup (List.rev !findings);
    witnesses = List.rev !witnesses;
    witness_seeds = List.rev !witness_seeds;
    over_time = List.rev !checkpoints;
    seeds_in_queue = Array.length !queue;
    corpus = Array.to_list !queue |> List.map (fun e -> e.seed);
    wall_seconds = Unix.gettimeofday () -. start_time;
  }
