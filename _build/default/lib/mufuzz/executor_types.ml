(* Shared result types between the executor and the prefix state cache. *)

type tx_result = {
  tx_index : int;
  fn_name : string;
  success : bool;
  trace : Evm.Trace.t;
}
