lib/mufuzz/executor.mli: Evm Executor_types Minisol Seed State_cache
