lib/mufuzz/report.ml: Buffer Format List Oracles Printf Seed Stdlib String
