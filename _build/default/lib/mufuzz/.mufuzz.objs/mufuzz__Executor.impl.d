lib/mufuzz/executor.ml: Abi Accounts Array Evm Executor_types List Minisol Seed State_cache Stdlib Word
