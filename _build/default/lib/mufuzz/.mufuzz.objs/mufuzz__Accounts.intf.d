lib/mufuzz/accounts.mli: Evm
