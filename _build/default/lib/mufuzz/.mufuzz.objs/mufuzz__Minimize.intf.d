lib/mufuzz/minimize.mli: Minisol Oracles Seed
