lib/mufuzz/seed.mli: Abi Format Util Word
