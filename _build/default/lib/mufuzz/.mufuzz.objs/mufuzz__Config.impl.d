lib/mufuzz/config.ml: Analysis Seed
