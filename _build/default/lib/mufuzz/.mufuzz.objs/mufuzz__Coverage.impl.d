lib/mufuzz/coverage.ml: Evm Hashtbl List
