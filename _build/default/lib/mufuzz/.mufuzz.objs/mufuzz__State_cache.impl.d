lib/mufuzz/state_cache.ml: Abi Char Crypto Evm Executor_types Hashtbl Seed String
