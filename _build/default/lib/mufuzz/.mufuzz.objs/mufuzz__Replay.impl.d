lib/mufuzz/replay.ml: Abi List Printf Seed String Util
