lib/mufuzz/seed.ml: Abi Accounts Array Bytes Format Lazy List Printf Stdlib String Util Word
