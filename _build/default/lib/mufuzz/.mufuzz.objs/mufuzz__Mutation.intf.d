lib/mufuzz/mutation.mli: Util Word
