lib/mufuzz/coverage.mli: Evm
