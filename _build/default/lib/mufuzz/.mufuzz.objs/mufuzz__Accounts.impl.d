lib/mufuzz/accounts.ml: Evm List Stdlib Word
