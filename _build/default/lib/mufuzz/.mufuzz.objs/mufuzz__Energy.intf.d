lib/mufuzz/energy.mli: Hashtbl
