lib/mufuzz/report.mli: Format Oracles Seed
