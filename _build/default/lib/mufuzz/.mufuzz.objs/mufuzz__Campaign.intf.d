lib/mufuzz/campaign.mli: Config Minisol Report
