lib/mufuzz/campaign.ml: Abi Analysis Array Config Coverage Energy Evm Executor Hashtbl List Logs Mask Minisol Mutation Option Oracles Report Seed State_cache Stdlib String Unix Util Word
