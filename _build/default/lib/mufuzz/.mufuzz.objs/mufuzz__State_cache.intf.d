lib/mufuzz/state_cache.mli: Evm Executor_types Seed
