lib/mufuzz/mutation.ml: Array Bytes Char Stdlib String Util Word
