lib/mufuzz/minimize.ml: Abi Array Bytes Executor List Oracles Seed Word
