lib/mufuzz/mask.ml: Array List Mutation Stdlib String Util
