lib/mufuzz/config.mli: Analysis Seed
