lib/mufuzz/energy.ml: Hashtbl List Stdlib
