lib/mufuzz/mask.mli: Mutation Util
