lib/mufuzz/replay.mli: Abi Seed
