lib/mufuzz/executor_types.ml: Evm
