type t = { bits : int array; stride : int }

type feedback = { hits_nested : bool; distance_decreased : bool }

let kind_bit k = 1 lsl Mutation.kind_index k

let all_bits = 0b1111

let compute rng ~stride ~max_probes ~probe stream =
  let len = String.length stream in
  let bits = Array.make (Stdlib.max len 1) 0 in
  if len = 0 then { bits; stride = 1 }
  else begin
    let stride = Stdlib.max 1 stride in
    (* Algorithm 2 line 2: the mutation width n is drawn once. *)
    let n = 1 + Util.Rng.int rng (Stdlib.min 8 len) in
    let probes = ref 0 in
    let i = ref 0 in
    while !i < len && !probes < max_probes do
      let pos = !i in
      List.iter
        (fun kind ->
          if !probes < max_probes then begin
            incr probes;
            let mutant = Mutation.apply rng { Mutation.kind; n } ~pos stream in
            let fb = probe mutant in
            if fb.hits_nested || fb.distance_decreased then
              bits.(pos) <- bits.(pos) lor kind_bit kind
          end)
        Mutation.all_kinds;
      i := !i + stride
    done;
    (* Propagate each probed verdict across the positions its stride
       window covers. *)
    for p = 0 to len - 1 do
      if p mod stride <> 0 then begin
        let anchor = p - (p mod stride) in
        bits.(p) <- bits.(anchor)
      end
    done;
    { bits; stride }
  end

let allows t kind ~pos =
  if pos < 0 then false
  else if pos >= Array.length t.bits then true
  else t.bits.(pos) land kind_bit kind <> 0

let allow_all len = { bits = Array.make (Stdlib.max len 1) all_bits; stride = 1 }

let admitted_fraction t =
  let total = 4 * Array.length t.bits in
  let set =
    Array.fold_left
      (fun acc b ->
        acc
        + (b land 1)
        + ((b lsr 1) land 1)
        + ((b lsr 2) land 1)
        + ((b lsr 3) land 1))
      0 t.bits
  in
  if total = 0 then 1.0 else float_of_int set /. float_of_int total
