open Minisol.Ast
module StringSet = Set.Make (String)

type func_info = {
  fn_name : string;
  reads : StringSet.t;
  writes : StringSet.t;
  branch_reads : StringSet.t;
  raw_vars : StringSet.t;
  touches_state : bool;
}

type t = {
  contract_name : string;
  funcs : func_info list;
  all_branch_reads : StringSet.t;
}

(* State variables named in an expression. Locals and parameters shadow
   state variables, so membership is checked against the state-var list
   minus the function's own bindings. *)
let rec expr_vars is_state e acc =
  match e with
  | Number _ | Bool_lit _ | Msg_sender | Msg_value | Tx_origin | Block_timestamp
  | Block_number | Block_difficulty | Block_coinbase | This_balance ->
    acc
  | Ident name | Array_length name ->
    if is_state name then StringSet.add name acc else acc
  | Index (name, key) | Array_push (name, key) ->
    let acc = if is_state name then StringSet.add name acc else acc in
    expr_vars is_state key acc
  | Unop (_, e) | Balance_of e | Blockhash e -> expr_vars is_state e acc
  | Binop (_, a, b) | Send (a, b) | Call_value (a, b) | Transfer_call (a, b)
  | Delegatecall (a, b) ->
    expr_vars is_state a (expr_vars is_state b acc)
  | Keccak es | Internal_call (_, es) ->
    List.fold_left (fun acc e -> expr_vars is_state e acc) acc es

type acc = {
  mutable rd : StringSet.t;
  mutable wr : StringSet.t;
  mutable br : StringSet.t;
}

let rec walk_stmts is_state a stmts =
  let read e = a.rd <- expr_vars is_state e a.rd in
  let branch_read e = a.br <- expr_vars is_state e a.br in
  let write_lv = function
    | L_var name -> if is_state name then a.wr <- StringSet.add name a.wr
    | L_index (name, key) ->
      if is_state name then a.wr <- StringSet.add name a.wr;
      read key
  in
  List.iter
    (fun s ->
      match s with
      | Local (_, _, init) -> Option.iter read init
      | Assign (lv, e) ->
        write_lv lv;
        read e
      | Aug_assign (lv, _, e) ->
        write_lv lv;
        (* compound assignment also reads the target *)
        (match lv with
        | L_var name -> if is_state name then a.rd <- StringSet.add name a.rd
        | L_index (name, key) ->
          if is_state name then a.rd <- StringSet.add name a.rd;
          read key);
        read e
      | If (cond, t, e) ->
        read cond;
        branch_read cond;
        walk_stmts is_state a t;
        walk_stmts is_state a e
      | While (cond, b) ->
        read cond;
        branch_read cond;
        walk_stmts is_state a b
      | For (init, cond, post, b) ->
        Option.iter (fun i -> walk_stmts is_state a [ i ]) init;
        read cond;
        branch_read cond;
        Option.iter (fun p -> walk_stmts is_state a [ p ]) post;
        walk_stmts is_state a b
      | Require cond | Assert cond ->
        read cond;
        branch_read cond
      | Revert -> ()
      | Return e -> Option.iter read e
      | Expr_stmt e -> read e
      | Selfdestruct e -> read e
      | Emit (_, es) -> List.iter read es)
    stmts

let analyze_function (c : contract) (f : func) =
  let shadowed =
    List.map snd f.params
    @ List.filter_map (function Local (_, n, _) -> Some n | _ -> None) f.body
  in
  let is_state name =
    (not (List.mem name shadowed)) && find_state_var c name <> None
  in
  let a = { rd = StringSet.empty; wr = StringSet.empty; br = StringSet.empty } in
  (* modifier bodies execute as part of the function *)
  let body =
    List.fold_right
      (fun mname body ->
        match List.find_opt (fun d -> d.m_name = mname) c.modifiers_decls with
        | Some d -> d.m_body_pre @ body @ d.m_body_post
        | None -> body)
      f.modifiers f.body
  in
  walk_stmts is_state a body;
  {
    fn_name = f.name;
    reads = a.rd;
    writes = a.wr;
    branch_reads = a.br;
    raw_vars = StringSet.inter a.rd a.wr;
    touches_state = not (StringSet.is_empty (StringSet.union a.rd a.wr));
  }

let analyze (c : contract) =
  let all = List.map (analyze_function c) c.functions in
  let funcs =
    List.filter_map
      (fun ((f : func), info) ->
        if f.visibility = Public && not f.is_constructor then Some info else None)
      (List.combine c.functions all)
  in
  let all_branch_reads =
    List.fold_left (fun acc i -> StringSet.union acc i.branch_reads) StringSet.empty all
  in
  { contract_name = c.c_name; funcs; all_branch_reads }

let info t name = List.find_opt (fun i -> i.fn_name = name) t.funcs

let should_repeat t i =
  StringSet.exists (fun v -> StringSet.mem v t.all_branch_reads) i.raw_vars

let pp fmt t =
  let set s = String.concat "," (StringSet.elements s) in
  Format.fprintf fmt "contract %s@." t.contract_name;
  List.iter
    (fun i ->
      Format.fprintf fmt "  %s: reads={%s} writes={%s} branch={%s} raw={%s}@."
        i.fn_name (set i.reads) (set i.writes) (set i.branch_reads) (set i.raw_vars))
    t.funcs
