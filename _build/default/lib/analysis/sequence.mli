(** Transaction-sequence derivation and sequence-aware mutation (§IV-A).

    The base sequence orders functions so that a writer of a state
    variable precedes its readers (write→read data-flow edges, ties broken
    by declaration order; cycles broken greedily). The sequence-aware
    mutation then repeats every function that satisfies the RAW-plus-
    branch-read rule, inserting the copy right before the sequence's last
    reader of the affected variable — reproducing the paper's
    [invest → refund → invest → withdraw] on the Crowdsale example. *)

val derive_base : Statevars.t -> string list
(** Data-flow ordered public function names (constructor excluded — the
    campaign always places it first). Functions touching no state keep
    their declaration order at the tail. *)

val repeat_mutation : Statevars.t -> string list -> string list
(** Apply the §IV-A repetition rule to a sequence. Idempotent: functions
    already appearing twice are not repeated again. *)

val derive : Statevars.t -> string list
(** [repeat_mutation info (derive_base info)]. *)

val random_sequence : Util.Rng.t -> Statevars.t -> string list
(** Uniformly shuffled ordering (the sFuzz-style baseline and the
    "without sequence-aware mutation" ablation). *)

val dependency_edges : Statevars.t -> (string * string * string) list
(** [(writer, reader, variable)] write→read edges, for reporting. *)
