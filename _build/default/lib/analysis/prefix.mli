(** Algorithm 3: pre-fuzz path analysis and branch weighting (§IV-C).

    Given the trace of a pre-fuzz execution, every exercised branch gets a
    [nested_score] (the count of branch instructions on the path prefix up
    to and including it) and a vulnerability bonus when a vulnerable
    instruction is reached after it on the path — or, statically, when the
    branch's {e unexplored} side can reach one (via {!Cfg}). The final
    weight drives the dynamic-adaptive energy allocation. *)

type weighted_branch = {
  pc : int;
  taken : bool;
  nested_score : int;
  vulnerable : bool;  (** vulnerable instruction on the path after it *)
  flip_vulnerable : bool;  (** statically, the other side reaches one *)
  weight : float;
}

type params = {
  nested_coeff : float;  (** contribution per nesting level *)
  vuln_bonus : float;  (** additional weight for vulnerable branches *)
}

val default_params : params

val analyze_trace : ?params:params -> Cfg.t -> Evm.Trace.t -> weighted_branch list
(** One entry per branch event of the trace, in path order. *)

val weight_table :
  ?params:params -> Cfg.t -> Evm.Trace.t list -> (int * bool, float) Hashtbl.t
(** Fold many pre-fuzz traces into a per-branch weight map, keeping the
    maximum weight observed for each (pc, taken) identity. *)
