module Op = Evm.Opcode

type t = {
  code : Evm.Bytecode.t;
  vuln : (int * string) list;
  reach_cache : (int, (int, unit) Hashtbl.t) Hashtbl.t;
}

let static_target code i =
  (* Our compiler always emits PUSH <label>; JUMP/JUMPI. *)
  if i > 0 then
    match code.(i - 1) with
    | Op.PUSH v -> Word.U256.to_int_opt v
    | _ -> None
  else None

let successors_raw code i =
  if i >= Array.length code then []
  else
    match code.(i) with
    | Op.STOP | Op.RETURN | Op.REVERT | Op.INVALID | Op.SELFDESTRUCT -> []
    | Op.JUMP -> ( match static_target code i with Some t -> [ t ] | None -> [])
    | Op.JUMPI -> begin
      let fall = [ i + 1 ] in
      match static_target code i with Some t -> t :: fall | None -> fall
    end
    | _ -> if i + 1 < Array.length code then [ i + 1 ] else []

let classify_vulnerable code i =
  match code.(i) with
  | Op.CALL -> Some "call"
  | Op.DELEGATECALL -> Some "delegatecall"
  | Op.SELFDESTRUCT -> Some "selfdestruct"
  | Op.TIMESTAMP | Op.NUMBER | Op.BLOCKHASH | Op.COINBASE | Op.DIFFICULTY ->
    Some "block-state"
  | Op.BALANCE | Op.SELFBALANCE -> Some "balance"
  | Op.ORIGIN -> Some "origin"
  | Op.ADD | Op.SUB | Op.MUL -> Some "arithmetic"
  | _ -> None

let build code =
  let vuln = ref [] in
  Array.iteri
    (fun i _ ->
      match classify_vulnerable code i with
      | Some cls -> vuln := (i, cls) :: !vuln
      | None -> ())
    code;
  { code; vuln = List.rev !vuln; reach_cache = Hashtbl.create 64 }

let successors t i = successors_raw t.code i

let branch_points t =
  let acc = ref [] in
  Array.iteri (fun i op -> if op = Op.JUMPI then acc := i :: !acc) t.code;
  List.rev !acc

let branch_successor t i ~taken =
  if taken then static_target t.code i
  else if i + 1 < Array.length t.code then Some (i + 1)
  else None

let vulnerable_pcs t = t.vuln

let reachable t start =
  match Hashtbl.find_opt t.reach_cache start with
  | Some set -> set
  | None ->
    let set = Hashtbl.create 64 in
    let rec dfs i =
      if not (Hashtbl.mem set i) then begin
        Hashtbl.replace set i ();
        List.iter dfs (successors t i)
      end
    in
    dfs start;
    Hashtbl.replace t.reach_cache start set;
    set

let reaches_vulnerable t start =
  let set = reachable t start in
  List.exists (fun (pc, _) -> Hashtbl.mem set pc) t.vuln
