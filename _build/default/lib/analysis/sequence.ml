module SS = Statevars.StringSet

let dependency_edges (t : Statevars.t) =
  List.concat_map
    (fun (w : Statevars.func_info) ->
      List.concat_map
        (fun (r : Statevars.func_info) ->
          if w.fn_name = r.fn_name then []
          else
            SS.elements (SS.inter w.writes r.reads)
            |> List.map (fun v -> (w.fn_name, r.fn_name, v)))
        t.funcs)
    t.funcs

let derive_base (t : Statevars.t) =
  let stateful, stateless =
    List.partition (fun (i : Statevars.func_info) -> i.touches_state) t.funcs
  in
  let names = List.map (fun (i : Statevars.func_info) -> i.fn_name) stateful in
  let edges =
    List.filter
      (fun (w, r, _) -> List.mem w names && List.mem r names)
      (dependency_edges t)
  in
  (* Kahn's algorithm with declaration-order tie-breaking; when only a
     cycle remains, peel the declaration-earliest node. *)
  let in_degree name =
    List.length
      (List.sort_uniq compare
         (List.filter_map (fun (w, r, _) -> if r = name then Some w else None) edges))
  in
  let order = ref [] in
  let remaining = ref names in
  let removed = ref [] in
  while !remaining <> [] do
    let degrees =
      List.map
        (fun n ->
          let d =
            List.length
              (List.sort_uniq compare
                 (List.filter_map
                    (fun (w, r, _) ->
                      if r = n && List.mem w !remaining && w <> n then Some w else None)
                    edges))
          in
          (n, d))
        !remaining
    in
    let next =
      match List.find_opt (fun (_, d) -> d = 0) degrees with
      | Some (n, _) -> n
      | None -> fst (List.hd degrees) (* cycle: take declaration-earliest *)
    in
    order := next :: !order;
    removed := next :: !removed;
    remaining := List.filter (fun n -> n <> next) !remaining
  done;
  ignore in_degree;
  List.rev !order
  @ List.map (fun (i : Statevars.func_info) -> i.fn_name) stateless

let repeat_mutation (t : Statevars.t) seq =
  let count name = List.length (List.filter (( = ) name) seq) in
  List.fold_left
    (fun seq (i : Statevars.func_info) ->
      if (not (Statevars.should_repeat t i)) || count i.fn_name > 1 then seq
      else begin
        (* The variables whose update is gated behind branches. *)
        let critical = SS.inter i.raw_vars t.all_branch_reads in
        let reads_critical name =
          match Statevars.info t name with
          | Some fi ->
            name <> i.fn_name
            && SS.exists (fun v -> SS.mem v fi.reads) critical
          | None -> false
        in
        (* Insert the repeated call right before the last reader of a
           critical variable; if none follows, append at the end. *)
        let last_reader_idx =
          List.fold_left
            (fun (best, idx) name ->
              ((if reads_critical name then Some idx else best), idx + 1))
            (None, 0) seq
          |> fst
        in
        match last_reader_idx with
        | Some idx ->
          List.concat
            (List.mapi
               (fun j name -> if j = idx then [ i.fn_name; name ] else [ name ])
               seq)
        | None -> seq @ [ i.fn_name ]
      end)
    seq t.funcs

let derive t = repeat_mutation t (derive_base t)

let random_sequence rng (t : Statevars.t) =
  Util.Rng.shuffle_list rng
    (List.map (fun (i : Statevars.func_info) -> i.fn_name) t.funcs)
