type weighted_branch = {
  pc : int;
  taken : bool;
  nested_score : int;
  vulnerable : bool;
  flip_vulnerable : bool;
  weight : float;
}

type params = { nested_coeff : float; vuln_bonus : float }

let default_params = { nested_coeff = 1.0; vuln_bonus = 5.0 }

let is_vulnerable_event (e : Evm.Trace.event) =
  match e with
  | External_call _ | Selfdestruct _ | Block_state_use _ | Balance_compare _
  | Origin_use _ | Arith_overflow _ | Value_transfer_out _ ->
    true
  | Branch _ | Storage_write _ | Storage_read _ | Call_result_checked _
  | Invalid_reached _ | Revert_reached _ | Reentrant_call _ | Log _ ->
    false

let analyze_trace ?(params = default_params) cfg (trace : Evm.Trace.t) =
  (* Walk the path once; for each branch event record its prefix nesting
     count, then in a second pass check whether a vulnerable event follows
     it (Algorithm 3's ISVULNERABLEINSTRUCTREACHED on the exercised path). *)
  let events = Array.of_list trace.events in
  let n = Array.length events in
  let vulnerable_after = Array.make (n + 1) false in
  for i = n - 1 downto 0 do
    vulnerable_after.(i) <- vulnerable_after.(i + 1) || is_vulnerable_event events.(i)
  done;
  let nested = ref 0 in
  let out = ref [] in
  Array.iteri
    (fun i e ->
      match e with
      | Evm.Trace.Branch { pc; taken; _ } ->
        incr nested;
        let vulnerable = vulnerable_after.(i + 1) in
        let flip_vulnerable =
          match Cfg.branch_successor cfg pc ~taken:(not taken) with
          | Some succ -> Cfg.reaches_vulnerable cfg succ
          | None -> false
        in
        let weight =
          (params.nested_coeff *. float_of_int !nested)
          +. (if vulnerable || flip_vulnerable then params.vuln_bonus else 0.0)
        in
        out :=
          { pc; taken; nested_score = !nested; vulnerable; flip_vulnerable; weight }
          :: !out
      | _ -> ())
    events;
  List.rev !out

let weight_table ?(params = default_params) cfg traces =
  let tbl = Hashtbl.create 128 in
  List.iter
    (fun trace ->
      List.iter
        (fun wb ->
          let key = (wb.pc, wb.taken) in
          match Hashtbl.find_opt tbl key with
          | Some w when w >= wb.weight -> ()
          | _ -> Hashtbl.replace tbl key wb.weight)
        (analyze_trace ~params cfg trace))
    traces;
  tbl
