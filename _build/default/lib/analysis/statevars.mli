(** State-variable read/write analysis over the Minisol AST (§IV-A).

    For every public function the analysis computes which state variables
    it reads, writes, and reads inside branch conditions, plus whether it
    carries a read-after-write (RAW) dependency — the paper's trigger for
    repeating a function inside the transaction sequence. *)

module StringSet : Set.S with type elt = string

type func_info = {
  fn_name : string;
  reads : StringSet.t;
  writes : StringSet.t;
  branch_reads : StringSet.t;
      (** state variables appearing in this function's [if]/[while]/[for]/
          [require]/[assert] conditions *)
  raw_vars : StringSet.t;
      (** state variables both read and written by this function *)
  touches_state : bool;
}

type t = {
  contract_name : string;
  funcs : func_info list;  (** public non-constructor functions, in order *)
  all_branch_reads : StringSet.t;
      (** union of [branch_reads] over every function incl. constructor *)
}

val analyze : Minisol.Ast.contract -> t

val info : t -> string -> func_info option

val should_repeat : t -> func_info -> bool
(** The §IV-A repetition rule: the function has a RAW dependency on some
    state variable [V] and [V] is read by a branch statement somewhere in
    the contract. *)

val pp : Format.formatter -> t -> unit
