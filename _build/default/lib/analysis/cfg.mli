(** Lightweight control-flow analysis over compiled bytecode.

    Serves the "lightweight abstract interpreter" role of §IV-C: it
    resolves static jump targets (the code generator always emits
    [PUSH label; JUMP/JUMPI]), finds the program's vulnerable-instruction
    locations, and answers reachability queries used to weight branches
    whose unexplored side can reach a vulnerable instruction. *)

type t

val build : Evm.Bytecode.t -> t

val successors : t -> int -> int list
(** Instruction-index successors (empty for terminators). *)

val branch_points : t -> int list
(** Indices of every [JUMPI]. *)

val branch_successor : t -> int -> taken:bool -> int option
(** The side of a [JUMPI]: fallthrough for [taken:false], the statically
    pushed target for [taken:true] (when resolvable). *)

val vulnerable_pcs : t -> (int * string) list
(** Locations of instructions that may introduce vulnerabilities (the
    paper's examples: [call.value], [block.timestamp], plus
    [DELEGATECALL], [SELFDESTRUCT], [BALANCE], [ORIGIN], arithmetic);
    each tagged with its class name. *)

val reachable : t -> int -> (int, unit) Hashtbl.t
(** All instruction indices reachable from the given index (cached). *)

val reaches_vulnerable : t -> int -> bool
(** Whether any vulnerable instruction is reachable from the index. *)
