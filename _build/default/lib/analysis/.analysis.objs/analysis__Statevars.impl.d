lib/analysis/statevars.ml: Format List Minisol Option Set String
