lib/analysis/cfg.ml: Array Evm Hashtbl List Word
