lib/analysis/cfg.mli: Evm Hashtbl
