lib/analysis/prefix.mli: Cfg Evm Hashtbl
