lib/analysis/statevars.mli: Format Minisol Set
