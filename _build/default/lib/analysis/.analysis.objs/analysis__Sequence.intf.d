lib/analysis/sequence.mli: Statevars Util
