lib/analysis/prefix.ml: Array Cfg Evm Hashtbl List
