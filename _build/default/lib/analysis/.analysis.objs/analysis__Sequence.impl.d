lib/analysis/sequence.ml: List Statevars Util
