(** Small descriptive-statistics helpers for the benchmark harness. *)

val mean : float list -> float
(** 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val median : float list -> float
(** 0 on the empty list; the midpoint average on even lengths. *)

val min_max : float list -> float * float
(** (0, 0) on the empty list. *)

val mean_std_string : float list -> string
(** ["m ± s"] rendering with one decimal. *)
