(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of [s], two characters per
    byte, no prefix. *)

val encode_bytes : bytes -> string

val decode : string -> string
(** [decode h] parses a hex string (optionally prefixed with ["0x"]).
    @raise Invalid_argument on odd length or non-hex characters. *)

val decode_bytes : string -> bytes

val of_byte : int -> string
(** Two-character hex of a byte value in [\[0, 255\]]. *)
