let hex_chars = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set out (2 * i) hex_chars.[c lsr 4];
    Bytes.set out ((2 * i) + 1) hex_chars.[c land 0xf]
  done;
  Bytes.unsafe_to_string out

let encode_bytes b = encode (Bytes.unsafe_to_string b)

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg (Printf.sprintf "Hex.decode: invalid character %C" c)

let decode h =
  let h =
    if String.length h >= 2 && h.[0] = '0' && (h.[1] = 'x' || h.[1] = 'X') then
      String.sub h 2 (String.length h - 2)
    else h
  in
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.set out i (Char.chr ((nibble h.[2 * i] lsl 4) lor nibble h.[(2 * i) + 1]))
  done;
  Bytes.unsafe_to_string out

let decode_bytes h = Bytes.of_string (decode h)

let of_byte v =
  if v < 0 || v > 255 then invalid_arg "Hex.of_byte";
  Printf.sprintf "%c%c" hex_chars.[v lsr 4] hex_chars.[v land 0xf]
