type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list }

let create ~headers = { headers; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left
      (fun acc r -> match r with Cells c -> max acc (List.length c) | Separator -> acc)
      (List.length t.headers) rows
  in
  let pad cells = cells @ List.init (ncols - List.length cells) (fun _ -> "") in
  let headers = pad t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure headers;
  List.iter (function Cells c -> measure (pad c) | Separator -> ()) rows;
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (widths.(i) - String.length c) ' ');
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  line headers;
  rule ();
  List.iter (function Cells c -> line (pad c) | Separator -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
