let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev = function
  | [] | [ _ ] -> 0.0
  | l ->
    let m = mean l in
    sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) l))

let median = function
  | [] -> 0.0
  | l ->
    let a = Array.of_list l in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (Stdlib.min lo v, Stdlib.max hi v)) (x, x) rest

let mean_std_string l = Printf.sprintf "%.1f ± %.1f" (mean l) (stddev l)
