(** Plain-text table rendering for benchmark reports.

    Renders aligned ASCII tables in the style of the paper's result tables
    so that bench output is directly comparable to the published rows. *)

type t

val create : headers:string list -> t
(** [create ~headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. Rows shorter than the header are
    padded with empty cells; longer rows extend the column count. *)

val add_separator : t -> unit
(** Inserts a horizontal rule before the next row. *)

val render : t -> string
(** Renders the table with box-drawing rules and padded columns. *)

val print : t -> unit
(** [print t] writes [render t] to standard output. *)
