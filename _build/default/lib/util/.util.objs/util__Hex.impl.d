lib/util/hex.ml: Bytes Char Printf String
