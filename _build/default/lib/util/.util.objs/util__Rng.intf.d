lib/util/rng.mli:
