lib/util/hex.mli:
