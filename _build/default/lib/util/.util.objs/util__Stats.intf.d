lib/util/stats.mli:
