lib/util/table.mli:
