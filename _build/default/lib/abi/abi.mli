(** Ethereum contract ABI: types, selectors, and argument encoding.

    The fuzzer represents a transaction's inputs as a raw byte stream (the
    mutation unit of §IV-B); this module gives that stream its meaning,
    converting between typed values and the calldata consumed by the EVM's
    [CALLDATALOAD]. Only the static head types used by the Minisol
    language are supported — every contract in the paper's motivating
    examples and every bug-class pattern is expressible with these. *)

type ty =
  | Uint256
  | Uint8
  | Address
  | Bool

val ty_to_string : ty -> string
(** Canonical signature rendering, e.g. ["uint256"]. *)

val word_size : int
(** Bytes per encoded argument (32). *)

type value =
  | VUint of Word.U256.t
  | VAddress of Word.U256.t
  | VBool of bool

val value_to_string : value -> string

(** A function entry in a contract's ABI. *)
type func = {
  name : string;
  inputs : ty list;
  payable : bool;
  is_constructor : bool;
}

val signature : func -> string
(** ["name(ty1,ty2,...)"]. *)

val selector : func -> string
(** First 4 bytes of the Keccak-256 of {!signature}. *)

val encode_value : ty -> value -> string
(** 32-byte big-endian encoding; values are canonicalised to the type's
    width (e.g. a [Uint8] keeps only its low byte). *)

val encode_call : func -> value list -> string
(** Full calldata: selector followed by the encoded arguments.
    @raise Invalid_argument on arity mismatch. *)

val encode_args_raw : func -> string -> string
(** [encode_args_raw f raw] builds calldata from an untyped byte stream:
    the stream is cut into 32-byte words (zero-padded at the tail), one
    per input, canonicalised to each input's type so that mutated bytes
    always decode to a well-typed argument. *)

val args_byte_length : func -> int
(** Length of the raw argument stream [encode_args_raw] expects. *)

val decode_args : func -> string -> value list
(** Inverse of the argument part of {!encode_call} (tolerates short
    input by zero-extension). *)

val canonicalize_word : ty -> Word.U256.t -> Word.U256.t
(** Mask a word to the type's value domain ([Uint8] -> low byte,
    [Address] -> low 20 bytes, [Bool] -> 0/1). *)
