#!/usr/bin/env bash
# Fleet crash-safety smoke test.
#
# Runs the same sharded corpus through `mufuzz fleet run` three times:
#
#   1. reference     — uninterrupted, 2 local workers
#   2. coordinator   — SIGKILL the coordinator mid-run, then kill the
#                      orphaned workers, then resume with identical
#                      arguments
#   3. worker        — SIGKILL one worker mid-run and let the
#                      coordinator reassign its shard lease
#
# and asserts that every run produces byte-identical aggregate CSVs
# and fleet summaries. Exits nonzero on any mismatch. $WORK (default:
# a fresh mktemp dir) is left behind on failure for artifact upload.
set -euo pipefail

CLI=${CLI:-_build/default/bin/mufuzz_cli.exe}
WORK=${WORK:-$(mktemp -d /tmp/fleet-smoke.XXXXXX)}
# Small budgets keep the smoke under a minute, but the run must stay
# alive long enough for the kills below to land mid-run.
FLEET_ARGS=(--tools MuFuzz,sFuzz --budget-small 120 --budget-large 200
  --checkpoint-every 40)

say() { printf '\n== %s ==\n' "$*"; }

if [ ! -x "$CLI" ]; then
  echo "error: $CLI not built (run: dune build bin/mufuzz_cli.exe)" >&2
  exit 1
fi
CLI=$(realpath "$CLI")
mkdir -p "$WORK"
cd "$WORK"
echo "workdir: $WORK"

say "shard a 1x D1 corpus (50 contracts, 4 shards)"
"$CLI" fleet shard --d1-scale 1 --shards 4 --out corpus

run_fleet() { # run_fleet <state-dir> <csv-dir> [extra args...]
  local state=$1 csv=$2
  shift 2
  "$CLI" fleet run --state "$state" --corpus corpus \
    "${FLEET_ARGS[@]}" --workers 2 --out "$csv" "$@"
}

say "reference run (uninterrupted)"
run_fleet ref-state ref-csv

say "coordinator SIGKILL mid-run"
# Background the binary itself — NOT the run_fleet function: a
# backgrounded function runs in a subshell, so $! would name the
# subshell and the kill below would miss the coordinator.
"$CLI" fleet run --state kill-state --corpus corpus \
  "${FLEET_ARGS[@]}" --workers 2 --out kill-csv --status 1 &
coord=$!
sleep 3
if ! kill -9 "$coord" 2>/dev/null; then
  echo "error: coordinator finished before the kill — raise the" >&2
  echo "budgets in FLEET_ARGS so the smoke run lasts past the sleep" >&2
  exit 1
fi
wait "$coord" 2>/dev/null || true
echo "coordinator $coord killed"
# The orphaned workers keep fuzzing their leased shards; kill them too
# so the resume replays in-flight shards from checkpoints. ([f]leet
# keeps the pattern from matching pkill's own command line.)
sleep 0.5
pkill -9 -f "[f]leet worker" 2>/dev/null || true
sleep 0.5
"$CLI" fleet status --state kill-state
done_after_kill=$("$CLI" fleet status --state kill-state |
  sed -n 's|^\([0-9]*\)/[0-9]* shards done.*|\1|p')
shards_total=$("$CLI" fleet status --state kill-state |
  sed -n 's|^[0-9]*/\([0-9]*\) shards done.*|\1|p')
if [ "$done_after_kill" -ge "$shards_total" ]; then
  echo "error: all $shards_total shards were already done at kill" >&2
  echo "time — the resume below would test nothing" >&2
  exit 1
fi

say "resume with identical arguments"
run_fleet kill-state kill-csv

say "worker SIGKILL mid-run (lease reassignment)"
"$CLI" fleet run --state wkill-state --corpus corpus \
  "${FLEET_ARGS[@]}" --workers 2 --out wkill-csv \
  --metrics wkill-metrics.txt &
coord=$!
sleep 3
# Kill the oldest worker; the coordinator reaps it and reassigns.
if pkill -9 -o -f "[f]leet worker" 2>/dev/null; then
  echo "killed one worker"
else
  echo "error: no worker alive to kill — raise the budgets" >&2
  kill -9 "$coord" 2>/dev/null || true
  exit 1
fi
wait "$coord"
grep "^mufuzz_fleet_lease_reassignments_total" wkill-metrics.txt
reassigned=$(sed -n 's/^mufuzz_fleet_lease_reassignments_total \([0-9]*\)/\1/p' \
  wkill-metrics.txt)
if [ "${reassigned:-0}" -lt 1 ]; then
  echo "error: worker was killed but no lease reassignment recorded" >&2
  exit 1
fi

say "compare aggregates"
for f in fig5_small.csv fig5_large.csv fig6.csv findings.csv; do
  cmp ref-csv/"$f" kill-csv/"$f"
  cmp ref-csv/"$f" wkill-csv/"$f"
  echo "ok: $f byte-identical across all three runs"
done
cmp ref-state/fleet-summary.json kill-state/fleet-summary.json
cmp ref-state/fleet-summary.json wkill-state/fleet-summary.json
echo "ok: fleet-summary.json byte-identical across all three runs"

say "fleet smoke passed"
rm -rf "$WORK"
