(* Campaign persistence: codec round-trip laws, corrupt-input
   rejection, the rotated checkpoint store, and the headline
   guarantee — a campaign resumed from a mid-run checkpoint finishes
   with the same report the uninterrupted run produces. *)

module J = Telemetry.Json

let unit name f = Alcotest.test_case name `Quick f

let qprop name ?(count = 200) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let fn_u name =
  { Abi.name; inputs = [ Abi.Uint256 ]; payable = true; is_constructor = false }

let contract = Minisol.Contract.compile Corpus.Examples.crowdsale

let abi = contract.Minisol.Contract.abi

let base_config =
  { Mufuzz.Config.default with max_executions = 2500; rng_seed = 99L }

(* one sequential campaign with a mid-run snapshot captured at the
   first safe point past [at] executions; memoised — several tests
   compare against the same reference run *)
let reference =
  lazy
    (let snap = ref None in
     let hook ~final ~bus:_ ~execs thunk =
       if (not final) && execs >= 800 && Option.is_none !snap then
         snap := Some (thunk ())
     in
     let report =
       Mufuzz.Campaign.run ~config:base_config ~on_safe_point:hook contract
     in
     match !snap with
     | Some s -> (report, s)
     | None -> Alcotest.fail "reference campaign never hit a safe point")

(* report comparison modulo the wall-clock fields the spec excludes *)
let normalized report =
  match Mufuzz.Report.to_json report with
  | J.Obj fields ->
    J.to_string
      (J.Obj
         (List.filter
            (fun (k, _) ->
              not
                (List.mem k [ "wall_seconds"; "execs_per_sec"; "steps_per_sec" ]))
            fields))
  | j -> J.to_string j

(* scratch dirs route through Util.Fileio so an aborted test run
   cannot strand persist-tmp-* litter in the working tree — the
   at_exit hook sweeps everything the process created *)
let temp_dir () = Util.Fileio.temp_dir ~prefix:"persist-tmp" ()

let no_temp_leftovers dir =
  Array.for_all
    (fun name ->
      not
        (String.length name >= 4
        && String.sub name (String.length name - 4) 4 = ".tmp"))
    (Sys.readdir dir)

(* ---------------- atomic file writes ---------------- *)

let fileio_tests =
  [
    unit "write_atomic writes and overwrites" (fun () ->
        let dir = temp_dir () in
        let path = Filename.concat dir "f.txt" in
        Util.Fileio.write_atomic path "first";
        Alcotest.(check string) "first" "first" (Util.Fileio.read_file path);
        Util.Fileio.write_atomic path "second";
        Alcotest.(check string) "second" "second" (Util.Fileio.read_file path);
        Alcotest.(check bool) "no temp files" true (no_temp_leftovers dir));
    unit "save_corpus is atomic" (fun () ->
        let dir = temp_dir () in
        let path = Filename.concat dir "corpus.txt" in
        let rng = Util.Rng.create 1L in
        let seed = Mufuzz.Seed.of_sequence rng ~n_senders:2 [ fn_u "a" ] [ "a" ] in
        Mufuzz.Replay.save_corpus path [ seed ];
        let loaded, skipped = Mufuzz.Replay.load_corpus ~abi:[ fn_u "a" ] path in
        Alcotest.(check int) "one seed" 1 (List.length loaded);
        Alcotest.(check int) "none skipped" 0 (List.length skipped);
        Alcotest.(check bool) "no temp files" true (no_temp_leftovers dir));
  ]

(* ---------------- RNG save/restore ---------------- *)

let rng_tests =
  [
    qprop "restore continues the exact stream"
      ~print:(fun (s, k) -> Printf.sprintf "seed=%Ld skip=%d" s k)
      QCheck2.Gen.(pair (map Int64.of_int int) (int_range 0 50))
      (fun (seed, skip) ->
        let r = Util.Rng.create seed in
        for _ = 1 to skip do
          ignore (Util.Rng.int r 1000)
        done;
        let saved = Util.Rng.save r in
        let expect = List.init 16 (fun _ -> Util.Rng.int r 1_000_000) in
        let r' = Util.Rng.restore saved in
        let got = List.init 16 (fun _ -> Util.Rng.int r' 1_000_000) in
        expect = got);
    unit "state survives the decimal-string codec" (fun () ->
        let r = Util.Rng.create (-7L) in
        ignore (Util.Rng.int r 99);
        let s = Int64.to_string (Util.Rng.save r) in
        let r' = Util.Rng.restore (Int64.of_string s) in
        Alcotest.(check int) "next draw" (Util.Rng.int r 1000)
          (Util.Rng.int r' 1000));
  ]

(* ---------------- codec round trips ---------------- *)

let hex_digits = "0123456789abcdef"

let mask_json_gen =
  QCheck2.Gen.(
    pair (int_range 1 64)
      (string_size ~gen:(map (String.get hex_digits) (int_range 0 15))
         (int_range 1 80)))

let codec_tests =
  [
    qprop "mask json round trip"
      ~print:(fun (s, b) -> Printf.sprintf "stride=%d bits=%s" s b)
      mask_json_gen
      (fun (stride, bits) ->
        let j = J.Obj [ ("stride", J.Int stride); ("bits", J.String bits) ] in
        match Mufuzz.Mask.of_json j with
        | Error e -> QCheck2.Test.fail_reportf "of_json: %s" e
        | Ok m -> J.to_string (Mufuzz.Mask.to_json m) = J.to_string j);
    unit "mask of_json rejects bad input" (fun () ->
        let bad =
          [
            J.Obj [ ("stride", J.Int 0); ("bits", J.String "f") ];
            J.Obj [ ("stride", J.Int 4); ("bits", J.String "") ];
            J.Obj [ ("stride", J.Int 4); ("bits", J.String "xyz") ];
            J.Obj [ ("stride", J.Int 4) ];
          ]
        in
        List.iter
          (fun j ->
            match Mufuzz.Mask.of_json j with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %s" (J.to_string j))
          bad);
    unit "coverage json round trip on campaign output" (fun () ->
        let report, _ = Lazy.force reference in
        ignore report;
        let _, snap = Lazy.force reference in
        let j = Mufuzz.Coverage.to_json snap.Mufuzz.Campaign.sn_coverage in
        match Mufuzz.Coverage.of_json j with
        | Error e -> Alcotest.fail e
        | Ok cov ->
          Alcotest.(check string) "stable" (J.to_string j)
            (J.to_string (Mufuzz.Coverage.to_json cov)));
    unit "coverage of_json rejects n=0 and dists on covered sides" (fun () ->
        let hit n = J.Obj [ ("pc", J.Int 3); ("taken", J.Bool true); ("n", J.Int n) ] in
        let dist = J.Obj [ ("pc", J.Int 3); ("taken", J.Bool true); ("d", J.Float 1.0) ] in
        let doc hits dists =
          J.Obj [ ("hits", J.List hits); ("dists", J.List dists) ]
        in
        (match Mufuzz.Coverage.of_json (doc [ hit 0 ] []) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted n=0");
        match Mufuzz.Coverage.of_json (doc [ hit 2 ] [ dist ]) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted dist on covered side");
    unit "seed json round trip" (fun () ->
        let rng = Util.Rng.create 5L in
        let names =
          List.filter_map
            (fun (f : Abi.func) ->
              if f.is_constructor then None else Some f.Abi.name)
            abi
        in
        let seed =
          Mufuzz.Seed.of_sequence rng ~n_senders:3 abi ("constructor" :: names)
        in
        let j = Mufuzz.Seed.to_json seed in
        match Mufuzz.Seed.of_json ~abi j with
        | Error e -> Alcotest.fail e
        | Ok seed' ->
          Alcotest.(check string) "stable" (J.to_string j)
            (J.to_string (Mufuzz.Seed.to_json seed')));
    unit "seed of_json rejects unknown functions" (fun () ->
        let j =
          J.List
            [
              J.Obj
                [
                  ("fn", J.String "no_such_fn");
                  ("sender", J.Int 0);
                  ("stream", J.String "");
                ];
            ]
        in
        match Mufuzz.Seed.of_json ~abi j with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted unknown function");
    unit "energy weights round trip in canonical order" (fun () ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace tbl (9, true) 0.25;
        Hashtbl.replace tbl (3, false) 1.5;
        Hashtbl.replace tbl (3, true) 0.125;
        let j = Mufuzz.Energy.weights_to_json tbl in
        match Mufuzz.Energy.weights_of_json j with
        | Error e -> Alcotest.fail e
        | Ok tbl' ->
          Alcotest.(check string) "stable" (J.to_string j)
            (J.to_string (Mufuzz.Energy.weights_to_json tbl'));
          Alcotest.(check int) "size" 3 (Hashtbl.length tbl'));
    unit "config json round trip (non-default fields)" (fun () ->
        let rng = Util.Rng.create 2L in
        let seed = Mufuzz.Seed.of_sequence rng ~n_senders:2 abi [ "constructor" ] in
        let config =
          { base_config with
            Mufuzz.Config.jobs = 4;
            sequence_mode = Mufuzz.Config.Seq_random;
            blackbox = true;
            trace_path = Some "t.jsonl";
            checkpoint_dir = Some "ck";
            checkpoint_every_execs = 123;
            checkpoint_every_seconds = 1.5;
            checkpoint_keep = 7;
            max_seconds = 3.25;
            initial_corpus = [ seed ];
            rng_seed = -123456789L }
        in
        let j = Mufuzz.Config.to_json config in
        match Mufuzz.Config.of_json ~abi j with
        | Error e -> Alcotest.fail e
        | Ok config' ->
          Alcotest.(check string) "stable" (J.to_string j)
            (J.to_string (Mufuzz.Config.to_json config')));
  ]

(* ---------------- checkpoint documents ---------------- *)

let make_checkpoint () =
  let _, snap = Lazy.force reference in
  {
    Persist.Checkpoint.tool = "MuFuzz";
    config = base_config;
    contract;
    snapshot = snap;
  }

(* rewrite one top-level field of a rendered checkpoint *)
let with_field name v ckpt =
  match Persist.Checkpoint.to_json ckpt with
  | J.Obj fields ->
    J.Obj (List.map (fun (k, old) -> (k, if k = name then v else old)) fields)
  | j -> j

let checkpoint_tests =
  [
    unit "to_string/of_string round trip, byte-stable" (fun () ->
        let c = make_checkpoint () in
        let s = Persist.Checkpoint.to_string c in
        match Persist.Checkpoint.of_string s with
        | Error e -> Alcotest.fail e
        | Ok c' ->
          Alcotest.(check string) "same rendering" s
            (Persist.Checkpoint.to_string c');
          Alcotest.(check string) "tool" "MuFuzz" c'.tool;
          Alcotest.(check int) "execs" c.snapshot.sn_execs c'.snapshot.sn_execs);
    unit "rejects garbage and truncation" (fun () ->
        let s = Persist.Checkpoint.to_string (make_checkpoint ()) in
        List.iter
          (fun bad ->
            match Persist.Checkpoint.of_string bad with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "accepted corrupt input")
          [ "{nope"; ""; String.sub s 0 (String.length s / 2) ]);
    unit "rejects wrong format tag" (fun () ->
        let j = with_field "format" (J.String "mufuzz-repro") (make_checkpoint ()) in
        match Persist.Checkpoint.of_json j with
        | Error e ->
          Alcotest.(check bool) "mentions format" true
            (String.length e > 0)
        | Ok _ -> Alcotest.fail "accepted wrong format");
    unit "rejects future versions" (fun () ->
        let j = with_field "version" (J.Int 999) (make_checkpoint ()) in
        match Persist.Checkpoint.of_json j with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted version 999");
    unit "rejects source tampering (hash mismatch)" (fun () ->
        let j =
          with_field "source"
            (J.String (Corpus.Examples.crowdsale ^ " "))
            (make_checkpoint ())
        in
        match Persist.Checkpoint.of_json j with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted tampered source");
    unit "rejects out-of-range entry indices" (fun () ->
        let c = make_checkpoint () in
        match Persist.Checkpoint.to_json c with
        | J.Obj fields ->
          let fields =
            List.map
              (fun (k, v) ->
                if k <> "snapshot" then (k, v)
                else
                  match v with
                  | J.Obj sf ->
                    ( k,
                      J.Obj
                        (List.map
                           (fun (sk, sv) ->
                             if sk = "queue" then (sk, J.List [ J.Int 999999 ])
                             else (sk, sv))
                           sf) )
                  | other -> (k, other))
              fields
          in
          (match Persist.Checkpoint.of_json (J.Obj fields) with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "accepted dangling queue index")
        | _ -> Alcotest.fail "checkpoint is not an object");
  ]

(* ---------------- the rotated store ---------------- *)

let store_tests =
  [
    unit "file naming is sortable and recognisable" (fun () ->
        Alcotest.(check string) "padded" "checkpoint-000000000042.json"
          (Persist.Store.file_name 42);
        Alcotest.(check bool) "accepts own names" true
          (Persist.Store.is_checkpoint_file (Persist.Store.file_name 7));
        List.iter
          (fun n ->
            Alcotest.(check bool) n false (Persist.Store.is_checkpoint_file n))
          [ "report.json"; "checkpoint-.json"; "checkpoint-12x.json"; "x" ]);
    unit "save rotates down to keep, load_latest picks newest" (fun () ->
        let dir = temp_dir () in
        let store = Persist.Store.create ~dir ~keep:2 in
        let c = make_checkpoint () in
        let save execs =
          ignore
            (Persist.Store.save store
               { c with snapshot = { c.snapshot with sn_execs = execs } })
        in
        save 100;
        save 200;
        save 300;
        Alcotest.(check int) "kept 2" 2 (List.length (Persist.Store.list store));
        Alcotest.(check bool) "no temp files" true (no_temp_leftovers dir);
        match Persist.Store.load_latest dir with
        | Error e -> Alcotest.fail e
        | Ok (path, loaded) ->
          Alcotest.(check int) "newest" 300 loaded.snapshot.sn_execs;
          Alcotest.(check string) "path name" (Persist.Store.file_name 300)
            (Filename.basename path));
    unit "load_latest falls back past a corrupt newest file" (fun () ->
        let dir = temp_dir () in
        let store = Persist.Store.create ~dir ~keep:3 in
        let c = make_checkpoint () in
        ignore (Persist.Store.save store c);
        Util.Fileio.write_atomic
          (Filename.concat dir (Persist.Store.file_name (c.snapshot.sn_execs + 1)))
          "{torn";
        (match Persist.Store.load_latest dir with
        | Error e -> Alcotest.fail e
        | Ok (_, loaded) ->
          Alcotest.(check int) "older good one" c.snapshot.sn_execs
            loaded.snapshot.sn_execs);
        match Persist.Store.load_latest (temp_dir ()) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "empty dir should not load");
  ]

(* ---------------- kill-and-resume determinism ---------------- *)

let resume_tests =
  [
    unit "sequential resume reproduces the uninterrupted report" (fun () ->
        let report_a, snap = Lazy.force reference in
        let report_b =
          Mufuzz.Campaign.run ~config:base_config ~resume:("test", snap) contract
        in
        Alcotest.(check string) "reports equal modulo wall clock"
          (normalized report_a) (normalized report_b);
        Alcotest.(check bool) "stopped on budget" true
          (report_b.stop_reason = Mufuzz.Report.Budget_exhausted));
    unit "resume through the disk codec is equally deterministic" (fun () ->
        let report_a, _ = Lazy.force reference in
        let dir = temp_dir () in
        let store = Persist.Store.create ~dir ~keep:1 in
        ignore (Persist.Store.save store (make_checkpoint ()));
        match Persist.Store.load_latest dir with
        | Error e -> Alcotest.fail e
        | Ok (path, ckpt) ->
          let report_b =
            Mufuzz.Campaign.run ~config:ckpt.config ~resume:(path, ckpt.snapshot)
              ckpt.contract
          in
          Alcotest.(check string) "reports equal modulo wall clock"
            (normalized report_a) (normalized report_b));
    unit "parallel resume preserves merged coverage and findings" (fun () ->
        let config =
          { base_config with Mufuzz.Config.jobs = 2; max_executions = 3000 }
        in
        let snap = ref None in
        let hook ~final ~bus:_ ~execs thunk =
          if (not final) && execs >= 600 && Option.is_none !snap then
            snap := Some (thunk ())
        in
        let report_a =
          Mufuzz.Campaign.run_parallel ~config ~on_safe_point:hook contract
        in
        let snap =
          match !snap with
          | Some s -> s
          | None -> Alcotest.fail "no mid-run safe point at jobs 2"
        in
        let report_b =
          Mufuzz.Campaign.run_parallel ~config ~resume:("test", snap) contract
        in
        Alcotest.(check int) "covered sides" report_a.covered_branches
          report_b.Mufuzz.Report.covered_branches;
        Alcotest.(check (list (pair int bool))) "covered set" report_a.covered
          report_b.covered;
        let keys (r : Mufuzz.Report.t) =
          List.map (fun (k, _) -> Oracles.Oracle.key_to_string k) r.occurrences
        in
        Alcotest.(check (list string)) "finding keys" (keys report_a)
          (keys report_b));
    unit "checkpoint driver writes on cadence, campaign emits events" (fun () ->
        let dir = temp_dir () in
        let config =
          { base_config with
            Mufuzz.Config.max_executions = 1200;
            checkpoint_dir = Some dir;
            checkpoint_every_execs = 300;
            checkpoint_keep = 2 }
        in
        let metrics = Telemetry.Metrics.create () in
        let driver =
          match
            Persist.Driver.of_config ~metrics ~tool:"MuFuzz" ~contract config
          with
          | Some d -> d
          | None -> Alcotest.fail "driver should be on"
        in
        let ring = Telemetry.Sink.ring ~capacity:4096 in
        let report =
          Mufuzz.Campaign.run ~config
            ~sinks:[ Telemetry.Sink.ring_sink ring ]
            ~metrics
            ~on_safe_point:(Persist.Driver.hook driver)
            contract
        in
        ignore report;
        let files = Sys.readdir dir in
        Alcotest.(check int) "rotation kept 2" 2 (Array.length files);
        let written =
          Telemetry.Metrics.value
            (Telemetry.Metrics.counter metrics "mufuzz_checkpoint_written_total")
        in
        Alcotest.(check bool) "wrote several" true (written >= 3);
        let events =
          List.filter
            (fun e -> Telemetry.Event.kind e = "checkpoint-written")
            (Telemetry.Sink.ring_contents ring)
        in
        Alcotest.(check int) "one event per write" written (List.length events);
        (* the final checkpoint resumes to the same end state *)
        match Persist.Store.load_latest dir with
        | Error e -> Alcotest.fail e
        | Ok (path, ckpt) ->
          let resumed =
            Mufuzz.Campaign.run ~config:ckpt.config
              ~resume:(path, ckpt.snapshot) ckpt.contract
          in
          Alcotest.(check string) "same report" (normalized report)
            (normalized resumed));
    unit "max_seconds stops the campaign with time-exhausted" (fun () ->
        let config =
          { base_config with
            Mufuzz.Config.max_executions = 100_000_000;
            max_seconds = 0.15 }
        in
        let report = Mufuzz.Campaign.run ~config contract in
        Alcotest.(check bool) "stopped on time" true
          (report.stop_reason = Mufuzz.Report.Time_exhausted);
        Alcotest.(check bool) "did not run the whole budget" true
          (report.executions < config.max_executions);
        Alcotest.(check string) "stop reason serialises" "time-exhausted"
          (Mufuzz.Report.stop_reason_to_string report.stop_reason));
  ]

let suite =
  [
    ("persist: fileio", fileio_tests);
    ("persist: rng", rng_tests);
    ("persist: codecs", codec_tests);
    ("persist: checkpoint", checkpoint_tests);
    ("persist: store", store_tests);
    ("persist: resume", resume_tests);
  ]
