(* The staged mask-computation API (plan / waves / finish) and the
   parallel phases built on it: the staged form must be a faithful
   factoring of the sequential [Mask.compute], waves must respect
   position-group boundaries, and the batched campaign phases
   (worker-side mask probing, round-batch auto-tuning) must keep the
   budget-exactness and determinism guarantees of the serial code. *)

module J = Telemetry.Json

let unit name f = Alcotest.test_case name `Quick f

let qprop name ?(count = 200) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* ------------------------------------------------------------------ *)
(* plan / finish versus the sequential compute                         *)

(* a deterministic feedback oracle: any pure function of the mutant
   stream works, the laws only need both paths to see the same answers *)
let oracle s =
  let h = Hashtbl.hash s in
  { Mufuzz.Mask.hits_nested = h land 1 = 0; distance_decreased = h land 2 = 0 }

let stream_gen =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 64))

let params_gen =
  QCheck2.Gen.(
    tup4 stream_gen (int_range 1 9) (int_range 0 300) (map Int64.of_int int))

let print_params (s, stride, max_probes, seed) =
  Printf.sprintf "stream=%S stride=%d max_probes=%d seed=%Ld" s stride
    max_probes seed

let differential_tests =
  [
    qprop "plan+finish equals compute for any (stream, stride, budget)"
      ~count:400 ~print:print_params params_gen
      (fun (stream, stride, max_probes, seed) ->
        let direct =
          Mufuzz.Mask.compute
            (Util.Rng.create seed)
            ~stride ~max_probes ~probe:oracle stream
        in
        let pl =
          Mufuzz.Mask.plan (Util.Rng.create seed) ~stride ~max_probes stream
        in
        let staged =
          Mufuzz.Mask.finish pl
            (Array.map
               (fun (p : Mufuzz.Mask.probe) -> Some (oracle p.probe_stream))
               (Mufuzz.Mask.probes pl))
        in
        J.to_string (Mufuzz.Mask.to_json direct)
        = J.to_string (Mufuzz.Mask.to_json staged));
    qprop "compute executes exactly the planned probes" ~count:400
      ~print:print_params params_gen
      (fun (stream, stride, max_probes, seed) ->
        let calls = ref 0 in
        ignore
          (Mufuzz.Mask.compute
             (Util.Rng.create seed)
             ~stride ~max_probes
             ~probe:(fun s ->
               incr calls;
               oracle s)
             stream);
        let pl =
          Mufuzz.Mask.plan (Util.Rng.create seed) ~stride ~max_probes stream
        in
        !calls = Array.length (Mufuzz.Mask.probes pl)
        && !calls <= max_probes);
    qprop "an unexecuted suffix equals a budget-starved probe callback"
      ~count:300
      ~print:
        (QCheck2.Print.pair print_params QCheck2.Print.int)
      QCheck2.Gen.(pair params_gen (int_range 0 300))
      (fun ((stream, stride, max_probes, seed), cut) ->
        (* feeding [Some] for the first [cut] probes and [None] after
           must match the sequential path whose probe budget dries up
           at the same point (there the callback is simply never
           invoked past the cap) *)
        let pl =
          Mufuzz.Mask.plan (Util.Rng.create seed) ~stride ~max_probes stream
        in
        let n = Array.length (Mufuzz.Mask.probes pl) in
        let partial =
          Mufuzz.Mask.finish pl
            (Array.mapi
               (fun i (p : Mufuzz.Mask.probe) ->
                 if i < cut then Some (oracle p.probe_stream) else None)
               (Mufuzz.Mask.probes pl))
        in
        let truncated =
          (* missing trailing entries are [None] by contract *)
          Mufuzz.Mask.finish pl
            (Array.init (Stdlib.min cut n) (fun i ->
                 Some (oracle (Mufuzz.Mask.probes pl).(i).probe_stream)))
        in
        J.to_string (Mufuzz.Mask.to_json partial)
        = J.to_string (Mufuzz.Mask.to_json truncated));
    unit "all-None feedback admits nothing" (fun () ->
        let pl =
          Mufuzz.Mask.plan (Util.Rng.create 7L) ~stride:1 ~max_probes:1000
            (String.make 16 'x')
        in
        let mask =
          Mufuzz.Mask.finish pl
            (Array.make (Array.length (Mufuzz.Mask.probes pl)) None)
        in
        Alcotest.(check (float 0.0)) "fraction" 0.0
          (Mufuzz.Mask.admitted_fraction mask));
  ]

(* ------------------------------------------------------------------ *)
(* waves                                                               *)

let wave_params_gen =
  QCheck2.Gen.(
    pair params_gen (int_range 1 40))

let print_wave_params (p, w) =
  Printf.sprintf "%s width=%d" (print_params p) w

let wave_tests =
  [
    qprop "concatenated waves are the probe sequence, in order" ~count:300
      ~print:print_wave_params wave_params_gen
      (fun ((stream, stride, max_probes, seed), width) ->
        let pl =
          Mufuzz.Mask.plan (Util.Rng.create seed) ~stride ~max_probes stream
        in
        Array.concat (Mufuzz.Mask.waves pl ~width)
        = Mufuzz.Mask.probes pl);
    qprop "a position's probes never straddle two waves" ~count:300
      ~print:print_wave_params wave_params_gen
      (fun ((stream, stride, max_probes, seed), width) ->
        let pl =
          Mufuzz.Mask.plan (Util.Rng.create seed) ~stride ~max_probes stream
        in
        let owner = Hashtbl.create 16 in
        List.for_all
          (fun wave ->
            Array.for_all
              (fun (p : Mufuzz.Mask.probe) ->
                match Hashtbl.find_opt owner p.probe_pos with
                | None ->
                  Hashtbl.add owner p.probe_pos wave;
                  true
                | Some w -> w == wave)
              wave)
          (Mufuzz.Mask.waves pl ~width));
    qprop "waves respect width once clamped to a full position group"
      ~count:300 ~print:print_wave_params wave_params_gen
      (fun ((stream, stride, max_probes, seed), width) ->
        let pl =
          Mufuzz.Mask.plan (Util.Rng.create seed) ~stride ~max_probes stream
        in
        let group = List.length Mufuzz.Mutation.all_kinds in
        let effective = Stdlib.max width group in
        List.for_all
          (fun wave -> Array.length wave <= effective)
          (Mufuzz.Mask.waves pl ~width));
  ]

(* ------------------------------------------------------------------ *)
(* parallel campaign phases built on the staged API                    *)

let crowdsale = lazy (Minisol.Contract.compile Corpus.Examples.crowdsale)

(* everything observable except wall-clock time and per-domain stats *)
let essence (r : Mufuzz.Report.t) =
  ( r.executions,
    r.covered_branches,
    List.sort compare r.covered,
    r.mask_probes,
    r.predict_proposals,
    List.sort compare
      (List.map (fun (f : Oracles.Oracle.finding) -> (f.cls, f.pc)) r.findings)
  )

(* a mask-heavy profile: stride 1 and a generous probe cap so every
   refresh ships real probe waves through the batched path *)
let mask_heavy jobs budget =
  { Mufuzz.Config.default with
    jobs;
    max_executions = budget;
    mask_stride = 1;
    mask_max_probes = 64;
    rng_seed = 7L }

let campaign_tests =
  [
    unit "jobs=2 mask-heavy campaign is deterministic and probes in workers"
      (fun () ->
        let config = mask_heavy 2 900 in
        let c = Lazy.force crowdsale in
        let metrics = Telemetry.Metrics.create () in
        let a = Mufuzz.Campaign.run_parallel ~config ~metrics c in
        let b = Mufuzz.Campaign.run_parallel ~config c in
        Alcotest.(check int) "budget exact" 900 a.executions;
        Alcotest.(check bool) "probes ran" true (a.mask_probes > 0);
        Alcotest.(check bool) "deterministic" true (essence a = essence b);
        (* the point of the batched path: zero probes execute on the
           coordinator domain when jobs > 1 *)
        Alcotest.(check int) "no coordinator probes" 0
          (Telemetry.Metrics.value
             (Telemetry.Metrics.counter metrics
                "mufuzz_mask_probes_coordinator_total")));
    unit "jobs=2 mask-heavy kill-and-resume preserves coverage and findings"
      (fun () ->
        let config = mask_heavy 2 1800 in
        let c = Lazy.force crowdsale in
        let snap = ref None in
        let hook ~final ~bus:_ ~execs thunk =
          if (not final) && execs >= 500 && Option.is_none !snap then
            snap := Some (thunk ())
        in
        let a = Mufuzz.Campaign.run_parallel ~config ~on_safe_point:hook c in
        let snap =
          match !snap with
          | Some s -> s
          | None -> Alcotest.fail "no mid-run safe point"
        in
        Alcotest.(check bool) "snapshot saw probes" true
          (snap.Mufuzz.Campaign.sn_mask_probes > 0);
        let b = Mufuzz.Campaign.run_parallel ~config ~resume:("test", snap) c in
        Alcotest.(check int) "covered sides" a.covered_branches
          b.Mufuzz.Report.covered_branches;
        Alcotest.(check (list (pair int bool))) "covered set"
          (List.sort compare a.covered)
          (List.sort compare b.covered);
        Alcotest.(check int) "budget exact" 1800 b.executions;
        Alcotest.(check bool) "resumed run still probes" true
          (b.mask_probes >= snap.sn_mask_probes));
    unit "auto round-batch completes on budget with a sane final width"
      (fun () ->
        let config =
          { (mask_heavy 2 1200) with
            Mufuzz.Config.round_batch_auto = true }
        in
        let r = Mufuzz.Campaign.run_parallel ~config (Lazy.force crowdsale) in
        Alcotest.(check int) "budget exact" 1200 r.executions;
        match r.parallel with
        | None -> Alcotest.fail "parallel stats missing"
        | Some p ->
          Alcotest.(check bool) "auto recorded" true p.round_batch_auto;
          Alcotest.(check bool) "width in controller range" true
            (p.round_batch_final >= 1 && p.round_batch_final <= 32);
          Alcotest.(check bool) "merge wait non-negative" true
            (p.merge_wait_seconds >= 0.0);
          Alcotest.(check bool) "worker idle non-negative" true
            (p.worker_idle_seconds >= 0.0));
    unit "auto round-batch resume continues from the checkpointed width"
      (fun () ->
        let config =
          { (mask_heavy 2 1400) with
            Mufuzz.Config.round_batch_auto = true }
        in
        let c = Lazy.force crowdsale in
        let snap = ref None in
        let hook ~final ~bus:_ ~execs thunk =
          if (not final) && execs >= 400 && Option.is_none !snap then
            snap := Some (thunk ())
        in
        ignore (Mufuzz.Campaign.run_parallel ~config ~on_safe_point:hook c);
        let snap =
          match !snap with
          | Some s -> s
          | None -> Alcotest.fail "no mid-run safe point"
        in
        (* the controller's live width is checkpointed (v3), never the
           unset sentinel, so a resumed campaign starts where the
           trajectory left off rather than back at [config.round_batch] *)
        Alcotest.(check bool) "width checkpointed" true
          (snap.Mufuzz.Campaign.sn_round_batch >= 1
          && snap.sn_round_batch <= 32);
        let r = Mufuzz.Campaign.run_parallel ~config ~resume:("test", snap) c in
        Alcotest.(check int) "budget exact" 1400 r.executions;
        match r.parallel with
        | None -> Alcotest.fail "parallel stats missing"
        | Some p ->
          Alcotest.(check bool) "auto recorded" true p.round_batch_auto;
          Alcotest.(check bool) "final width in range" true
            (p.round_batch_final >= 1 && p.round_batch_final <= 32));
    unit "report JSON carries the probe and proposal counters" (fun () ->
        let config = { Mufuzz.Config.default with max_executions = 400 } in
        let r = Mufuzz.Campaign.run ~config (Lazy.force crowdsale) in
        match Mufuzz.Report.to_json r with
        | J.Obj fields ->
          Alcotest.(check bool) "mask_probes present" true
            (List.mem_assoc "mask_probes" fields);
          Alcotest.(check bool) "predict_proposals present" true
            (List.mem_assoc "predict_proposals" fields);
          Alcotest.(check (option int)) "mask_probes value"
            (Some r.mask_probes)
            (Option.bind (List.assoc_opt "mask_probes" fields) J.to_int)
        | _ -> Alcotest.fail "report is not an object");
  ]

(* ------------------------------------------------------------------ *)
(* pool merge-wait accounting                                          *)

let pool_tests =
  [
    unit "merge_wait_seconds is recorded and non-negative" (fun () ->
        Mufuzz.Pool.with_pool ~jobs:2 (fun p ->
            ignore
              (Mufuzz.Pool.run_batch p
                 (Array.init 8 (fun i _worker ->
                      (* enough work that the coordinator measurably
                         waits on the drain *)
                      let acc = ref i in
                      for _ = 1 to 100_000 do
                        acc := (!acc * 7 + 3) land 0xFFFF
                      done;
                      !acc)));
            let s = Mufuzz.Pool.stats p in
            Alcotest.(check bool) "non-negative" true
              (s.merge_wait_seconds >= 0.0)));
    unit "wait metrics publish as gauges" (fun () ->
        let metrics = Telemetry.Metrics.create () in
        Mufuzz.Pool.with_pool ~jobs:2 ~metrics (fun p ->
            ignore (Mufuzz.Pool.run_batch p (Array.make 4 (fun w -> w)));
            let g name = Telemetry.Metrics.gauge metrics name in
            Alcotest.(check bool) "merge-wait gauge" true
              (Telemetry.Metrics.gauge_value
                 (g "mufuzz_pool_merge_wait_seconds")
              >= 0.0);
            Alcotest.(check bool) "idle gauge" true
              (Telemetry.Metrics.gauge_value
                 (g "mufuzz_pool_worker_idle_seconds")
              >= 0.0)));
  ]

(* ------------------------------------------------------------------ *)
(* codec tolerance: snapshot v3 fields and round_batch_auto            *)

let codec_tests =
  [
    unit "config decodes without round_batch_auto (pre-v3 checkpoint)"
      (fun () ->
        let abi = (Lazy.force crowdsale).Minisol.Contract.abi in
        let j =
          match Mufuzz.Config.to_json Mufuzz.Config.default with
          | J.Obj fields ->
            J.Obj (List.remove_assoc "round_batch_auto" fields)
          | j -> j
        in
        match Mufuzz.Config.of_json ~abi j with
        | Error e -> Alcotest.fail e
        | Ok c ->
          Alcotest.(check bool) "defaults to off" false c.round_batch_auto);
    unit "config round-trips round_batch_auto" (fun () ->
        let abi = (Lazy.force crowdsale).Minisol.Contract.abi in
        let config = { Mufuzz.Config.default with round_batch_auto = true } in
        match Mufuzz.Config.of_json ~abi (Mufuzz.Config.to_json config) with
        | Error e -> Alcotest.fail e
        | Ok c -> Alcotest.(check bool) "on" true c.round_batch_auto);
    unit "checkpoint v3 round-trips the controller state" (fun () ->
        let contract = Lazy.force crowdsale in
        let config = mask_heavy 2 700 in
        let snap = ref None in
        let hook ~final ~bus:_ ~execs thunk =
          if (not final) && execs >= 200 && Option.is_none !snap then
            snap := Some (thunk ())
        in
        ignore (Mufuzz.Campaign.run_parallel ~config ~on_safe_point:hook contract);
        let snapshot =
          match !snap with
          | Some s ->
            { s with
              Mufuzz.Campaign.sn_round_batch = 8;
              sn_rb_votes = -1;
              sn_predict_proposals = 5 }
          | None -> Alcotest.fail "no safe point"
        in
        let ckpt =
          { Persist.Checkpoint.tool = "MuFuzz"; config; contract; snapshot }
        in
        match
          Persist.Checkpoint.of_string (Persist.Checkpoint.to_string ckpt)
        with
        | Error e -> Alcotest.fail e
        | Ok c ->
          Alcotest.(check int) "round_batch" 8 c.snapshot.sn_round_batch;
          Alcotest.(check int) "rb_votes" (-1) c.snapshot.sn_rb_votes;
          Alcotest.(check int) "predict_proposals" 5
            c.snapshot.sn_predict_proposals);
    unit "checkpoint decodes v2 documents missing the v3 fields" (fun () ->
        let contract = Lazy.force crowdsale in
        let config = { Mufuzz.Config.default with max_executions = 500 } in
        let snap = ref None in
        let hook ~final ~bus:_ ~execs thunk =
          if (not final) && execs >= 200 && Option.is_none !snap then
            snap := Some (thunk ())
        in
        ignore (Mufuzz.Campaign.run ~config ~on_safe_point:hook contract);
        let snapshot =
          match !snap with
          | Some s -> s
          | None -> Alcotest.fail "no safe point"
        in
        let ckpt =
          { Persist.Checkpoint.tool = "MuFuzz"; config; contract; snapshot }
        in
        let j =
          match Persist.Checkpoint.to_json ckpt with
          | J.Obj fields ->
            J.Obj
              (List.map
                 (fun (k, v) ->
                   if k <> "snapshot" then (k, v)
                   else
                     match v with
                     | J.Obj sf ->
                       ( k,
                         J.Obj
                           (List.filter
                              (fun (sk, _) ->
                                not
                                  (List.mem sk
                                     [ "round_batch";
                                       "rb_votes";
                                       "predict_proposals"
                                     ]))
                              sf) )
                     | other -> (k, other))
                 fields)
          | j -> j
        in
        match Persist.Checkpoint.of_json j with
        | Error e -> Alcotest.fail e
        | Ok c ->
          Alcotest.(check int) "round_batch zeroed" 0
            c.snapshot.sn_round_batch;
          Alcotest.(check int) "rb_votes zeroed" 0 c.snapshot.sn_rb_votes;
          Alcotest.(check int) "proposals zeroed" 0
            c.snapshot.sn_predict_proposals);
  ]

let suite =
  [
    ("maskplan: staged = sequential", differential_tests);
    ("maskplan: waves", wave_tests);
    ("maskplan: batched campaign phases", campaign_tests);
    ("maskplan: pool wait accounting", pool_tests);
    ("maskplan: v3 codec tolerance", codec_tests);
  ]
