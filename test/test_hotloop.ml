(* Hot-loop overhaul regression tests: the array operand stack against a
   list-based reference model, the 1024-depth boundary, pre-decoded code
   artifacts against the naive per-frame computations, allocation-free
   word I/O, the second-chance LRU prefix cache, and the executor's
   step accounting. *)

module U = Word.U256
module Op = Evm.Opcode

let unit name f = Alcotest.test_case name `Quick f

let addr_a = U.of_int 0xA
let addr_b = U.of_int 0xB

(* Run [code] installed at [addr_a]; returns the trace. *)
let run ?(data = "") ?(gas = 10_000_000) code =
  let state = Evm.State.set_code Evm.State.empty addr_a (Array.of_list code) in
  let state =
    Evm.State.credit state addr_b (U.of_decimal_string "1000000000000000000000")
  in
  snd
    (Evm.Interp.execute ~block:Evm.Interp.default_block ~state
       { caller = addr_b; origin = addr_b; callee = addr_a; value = U.zero;
         data; gas })

let status_of code =
  Evm.Trace.status_to_string (run code : Evm.Trace.t).status

let pushes n = List.init n (fun i -> Op.PUSH (U.of_int i))

(* ---------------- stack depth boundary ----------------

   The previous list-based stack checked [List.length stack > 1024]
   after the push, admitting depth 1025; these pin the corrected EVM
   bound on the array stack. *)

let boundary =
  [
    unit "depth 1023 succeeds" (fun () ->
        Alcotest.(check string) "status" "success" (status_of (pushes 1023)));
    unit "depth 1024 succeeds" (fun () ->
        Alcotest.(check string) "status" "success" (status_of (pushes 1024)));
    unit "the 1025th push halts with a stack error" (fun () ->
        Alcotest.(check string) "status" "stack-error" (status_of (pushes 1025)));
    unit "DUP onto a full stack is a stack error" (fun () ->
        Alcotest.(check string) "status" "stack-error"
          (status_of (pushes 1024 @ [ Op.DUP 1 ])));
    unit "SWAP on a full stack still works" (fun () ->
        Alcotest.(check string) "status" "success"
          (status_of (pushes 1024 @ [ Op.SWAP 16 ])));
    unit "DUP deeper than the stack is a stack error" (fun () ->
        Alcotest.(check string) "status" "stack-error"
          (status_of (pushes 3 @ [ Op.DUP 4 ])));
    unit "SWAP needs n+1 elements" (fun () ->
        Alcotest.(check string) "status" "stack-error"
          (status_of (pushes 3 @ [ Op.SWAP 3 ])));
    unit "SWAP with exactly n+1 elements succeeds" (fun () ->
        Alcotest.(check string) "status" "success"
          (status_of (pushes 4 @ [ Op.SWAP 3 ])));
    unit "POP of an empty stack is a stack error" (fun () ->
        Alcotest.(check string) "status" "stack-error" (status_of [ Op.POP ]));
  ]

(* ---------------- array stack vs list reference model ----------------

   The reference model is the interpreter's old list-based operand stack
   (cons push, [List.nth] DUP, swap-top-with-nth SWAP), with the depth
   guard at the EVM's 1024 bound. Random stack-op programs must behave
   identically on both representations. *)

type sop = S_push of U.t | S_pop | S_dup of int | S_swap of int

let ref_exec ops =
  let rec go stack = function
    | [] -> Ok stack
    | S_push v :: rest ->
      if List.length stack >= 1024 then Error () else go (v :: stack) rest
    | S_pop :: rest -> (
      match stack with _ :: s -> go s rest | [] -> Error ())
    | S_dup n :: rest -> (
      match List.nth_opt stack (n - 1) with
      | Some v ->
        if List.length stack >= 1024 then Error () else go (v :: stack) rest
      | None -> Error ())
    | S_swap n :: rest ->
      if List.length stack < n + 1 then Error ()
      else
        let top = List.nth stack 0 and nth = List.nth stack n in
        let s =
          List.mapi
            (fun i x -> if i = 0 then nth else if i = n then top else x)
            stack
        in
        go s rest
  in
  go [] ops

let op_of_sop = function
  | S_push v -> Op.PUSH v
  | S_pop -> Op.POP
  | S_dup n -> Op.DUP n
  | S_swap n -> Op.SWAP n

let gen_sop =
  QCheck2.Gen.(
    frequency
      [
        (5, map (fun n -> S_push (U.of_int (abs n))) small_int);
        (2, return S_pop);
        (2, map (fun n -> S_dup (1 + (abs n mod 16))) small_int);
        (2, map (fun n -> S_swap (1 + (abs n mod 16))) small_int);
      ])

let gen_program = QCheck2.Gen.(list_size (int_range 1 60) gen_sop)

let print_program ops =
  String.concat ";"
    (List.map
       (function
         | S_push v -> "PUSH " ^ U.to_decimal_string v
         | S_pop -> "POP"
         | S_dup n -> Printf.sprintf "DUP%d" n
         | S_swap n -> Printf.sprintf "SWAP%d" n)
       ops)

let stack_differential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"array stack = list-stack reference model"
       ~count:300 ~print:print_program gen_program (fun ops ->
         let code = List.map op_of_sop ops in
         match ref_exec ops with
         | Error () -> status_of code = "stack-error"
         | Ok [] -> status_of code = "success"
         | Ok (top :: _) ->
           (* return the top of the final stack and compare words *)
           let trace =
             run
               (code
               @ [ Op.PUSH U.zero; Op.MSTORE; Op.PUSH (U.of_int 32);
                   Op.PUSH U.zero; Op.RETURN ])
           in
           Evm.Trace.status_to_string trace.status = "success"
           && U.equal (U.of_bytes_be trace.return_data) top))

(* ---------------- pre-decoded artifacts ---------------- *)

let gen_opcode =
  QCheck2.Gen.(
    frequency
      [
        (3, map (fun n -> Op.PUSH (U.of_int (abs n))) int);
        (2, return Op.JUMPDEST);
        (1, return Op.ADD);
        (1, return Op.POP);
        (1, return Op.MSTORE);
        (1, return Op.STOP);
        (1, map (fun n -> Op.PUSH (U.shift_left U.one (abs n mod 256))) small_int);
      ])

let gen_bytecode =
  QCheck2.Gen.(map Array.of_list (list_size (int_range 0 80) gen_opcode))

let print_bytecode = Evm.Bytecode.to_listing

let artifact_agrees =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"artifact agrees with naive per-frame computation"
       ~count:200 ~print:print_bytecode gen_bytecode (fun code ->
         let art = Evm.Bytecode.decode code in
         let naive = Evm.Bytecode.jumpdests code in
         let jd_ok =
           Array.length art.a_jumpdest = Array.length code
           && Array.for_all Fun.id
                (Array.init (Array.length code) (fun pc ->
                     Evm.Bytecode.is_jumpdest art pc = Hashtbl.mem naive pc))
           && (not (Evm.Bytecode.is_jumpdest art (-1)))
           && not (Evm.Bytecode.is_jumpdest art (Array.length code))
         in
         jd_ok
         && art.a_byte_size = Evm.Bytecode.byte_size code
         && Array.to_list art.a_push_constants = Evm.Bytecode.push_constants code))

let artifact_idempotent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"artifact decoding is idempotent and memoized"
       ~count:100 ~print:print_bytecode gen_bytecode (fun code ->
         let a1 = Evm.Bytecode.decode code in
         let a2 = Evm.Bytecode.decode code in
         let m1 = Evm.Bytecode.artifact code in
         let m2 = Evm.Bytecode.artifact code in
         a1.a_jumpdest = a2.a_jumpdest
         && a1.a_byte_size = a2.a_byte_size
         && a1.a_push_constants = a2.a_push_constants
         && m1 == m2
         && m1.a_jumpdest = a1.a_jumpdest))

(* ---------------- allocation-free word I/O ---------------- *)

let gen_word =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> U.of_int (abs n)) int;
        return U.zero;
        return U.max_value;
        map (fun n -> U.shift_left U.one (abs n mod 256)) small_int;
        map2
          (fun a b ->
            U.logor (U.shift_left (U.of_int (abs a)) 128) (U.of_int (abs b)))
          int int;
      ])

let blit_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"blit_be/read_be agree with to/of_bytes_be"
       ~count:300 ~print:U.to_decimal_string gen_word (fun w ->
         let buf = Bytes.make 40 '\xAA' in
         U.blit_be w buf 4;
         let s = Bytes.sub_string buf 4 32 in
         s = U.to_bytes_be w
         && U.equal (U.read_be buf 4) w
         && U.equal (U.read_be_string (Bytes.to_string buf) 4) w
         && U.equal (U.of_bytes_be s) w
         (* surrounding bytes untouched *)
         && Bytes.sub_string buf 0 4 = "\xAA\xAA\xAA\xAA"
         && Bytes.sub_string buf 36 4 = "\xAA\xAA\xAA\xAA"))

(* ---------------- second-chance LRU prefix cache ---------------- *)

let snapshot =
  {
    Mufuzz.State_cache.state = Evm.State.empty;
    block = Evm.Interp.default_block;
    tx_results = [];
    received_value = false;
  }

let lru =
  [
    unit "a full cache still serves recently used keys" (fun () ->
        let c = Mufuzz.State_cache.create ~capacity:4 () in
        List.iter
          (fun k -> Mufuzz.State_cache.store c k snapshot)
          [ "k1"; "k2"; "k3"; "k4" ];
        (* touch k2..k4: they are now recently used; k1 stays cold *)
        List.iter
          (fun k ->
            Alcotest.(check bool)
              ("hit " ^ k) true
              (Mufuzz.State_cache.find c k <> None))
          [ "k2"; "k3"; "k4" ];
        Mufuzz.State_cache.store c "k5" snapshot;
        (* only the cold entry went; everything recent survives — the
           old implementation wiped the whole table here *)
        Alcotest.(check bool)
          "k1 evicted" true
          (Mufuzz.State_cache.find c "k1" = None);
        List.iter
          (fun k ->
            Alcotest.(check bool)
              ("survives " ^ k) true
              (Mufuzz.State_cache.find c k <> None))
          [ "k2"; "k3"; "k4"; "k5" ];
        Alcotest.(check int) "one eviction" 1 (Mufuzz.State_cache.evictions c));
    unit "restoring an existing key does not evict" (fun () ->
        let c = Mufuzz.State_cache.create ~capacity:2 () in
        Mufuzz.State_cache.store c "a" snapshot;
        Mufuzz.State_cache.store c "b" snapshot;
        Mufuzz.State_cache.store c "a" snapshot;
        Alcotest.(check int) "no evictions" 0 (Mufuzz.State_cache.evictions c);
        Alcotest.(check bool)
          "a present" true
          (Mufuzz.State_cache.find c "a" <> None);
        Alcotest.(check bool)
          "b present" true
          (Mufuzz.State_cache.find c "b" <> None));
    unit "sustained overflow evicts one entry per insertion" (fun () ->
        let c = Mufuzz.State_cache.create ~capacity:8 () in
        for i = 1 to 100 do
          Mufuzz.State_cache.store c (Printf.sprintf "key%d" i) snapshot
        done;
        Alcotest.(check int) "evictions" 92 (Mufuzz.State_cache.evictions c);
        (* the most recent insertion is always resident *)
        Alcotest.(check bool)
          "latest present" true
          (Mufuzz.State_cache.find c "key100" <> None));
    unit "metrics counters mirror hits, misses and evictions" (fun () ->
        let m = Telemetry.Metrics.create () in
        let c = Mufuzz.State_cache.create ~capacity:2 ~metrics:m () in
        Mufuzz.State_cache.store c "a" snapshot;
        Mufuzz.State_cache.store c "b" snapshot;
        ignore (Mufuzz.State_cache.find c "a");
        ignore (Mufuzz.State_cache.find c "nope");
        Mufuzz.State_cache.store c "d" snapshot;
        let v name =
          Telemetry.Metrics.value (Telemetry.Metrics.counter m name)
        in
        (* counts reach the registry only at flush (batch boundary) *)
        Alcotest.(check int) "nothing before flush" 0
          (v "mufuzz_cache_hits_total");
        Mufuzz.State_cache.flush_metrics c;
        (* a second flush must not double-count *)
        Mufuzz.State_cache.flush_metrics c;
        Alcotest.(check int)
          "hits" (Mufuzz.State_cache.hits c)
          (v "mufuzz_cache_hits_total");
        Alcotest.(check int)
          "misses" (Mufuzz.State_cache.misses c)
          (v "mufuzz_cache_misses_total");
        Alcotest.(check int)
          "evictions" (Mufuzz.State_cache.evictions c)
          (v "mufuzz_cache_evictions_total");
        Alcotest.(check int)
          "one eviction happened" 1
          (Mufuzz.State_cache.evictions c));
  ]

(* ---------------- executor step accounting ---------------- *)

let crowdsale_seed () =
  let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
  let rng = Util.Rng.create 7L in
  let seed =
    Mufuzz.Seed.of_sequence rng ~n_senders:3 c.abi
      ("constructor" :: Mufuzz.Campaign.derive_sequence c)
  in
  (c, seed)

let executor_steps =
  [
    unit "executed_steps sums the per-transaction trace steps" (fun () ->
        let c, seed = crowdsale_seed () in
        let run =
          Mufuzz.Executor.run_seed ~contract:c ~gas:1_000_000 ~n_senders:3
            ~attacker:false seed
        in
        let sum =
          List.fold_left
            (fun a (r : Mufuzz.Executor.tx_result) ->
              a + r.trace.Evm.Trace.steps)
            0 run.tx_results
        in
        Alcotest.(check bool) "nonzero" true (run.executed_steps > 0);
        Alcotest.(check int) "sum" sum run.executed_steps);
    unit "a fully cached replay executes zero steps" (fun () ->
        let c, seed = crowdsale_seed () in
        let cache = Mufuzz.State_cache.create () in
        let r1 =
          Mufuzz.Executor.run_seed ~contract:c ~gas:1_000_000 ~n_senders:3
            ~attacker:false ~cache seed
        in
        let r2 =
          Mufuzz.Executor.run_seed ~contract:c ~gas:1_000_000 ~n_senders:3
            ~attacker:false ~cache seed
        in
        Alcotest.(check bool) "first run works" true (r1.executed_steps > 0);
        Alcotest.(check int) "replay is free" 0 r2.executed_steps;
        Alcotest.(check int)
          "same transcript"
          (List.length r1.tx_results)
          (List.length r2.tx_results));
  ]

let suite =
  [
    ("hotloop.stack_boundary", boundary);
    ("hotloop.stack_model", [ stack_differential ]);
    ("hotloop.artifact", [ artifact_agrees; artifact_idempotent ]);
    ("hotloop.word_io", [ blit_roundtrip ]);
    ("hotloop.state_cache_lru", lru);
    ("hotloop.executor_steps", executor_steps);
  ]
