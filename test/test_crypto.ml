(* Keccak-256 against published test vectors, plus sponge edge cases. *)

let unit name f = Alcotest.test_case name `Quick f

let check_hex msg expect =
  Alcotest.(check string) "digest" expect (Crypto.Keccak.hash_hex msg)

let vectors =
  [
    unit "empty string" (fun () ->
        check_hex "" "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
    unit "abc" (fun () ->
        check_hex "abc" "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
    unit "'testing'" (fun () ->
        check_hex "testing"
          "5f16f4c7f149ac4f9510d9cf8cf384038ad348b3bcdc01915f95de12df9d1b02");
    unit "one full rate block (136 bytes)" (fun () ->
        (* padding must open a fresh block when len = rate *)
        let msg = String.make 136 'a' in
        Alcotest.(check int) "len" 64 (String.length (Crypto.Keccak.hash_hex msg)));
    unit "two blocks" (fun () ->
        let msg = String.make 300 'b' in
        Alcotest.(check int) "len" 32 (String.length (Crypto.Keccak.hash msg)));
    unit "solidity function selector transfer(address,uint256)" (fun () ->
        (* the canonical ERC-20 selector a9059cbb *)
        Alcotest.(check string) "selector" "a9059cbb"
          (Util.Hex.encode (Crypto.Keccak.selector "transfer(address,uint256)")));
    unit "selector baz(uint32,bool)" (fun () ->
        (* example from the Solidity ABI specification *)
        Alcotest.(check string) "selector" "cdcd77c0"
          (Util.Hex.encode (Crypto.Keccak.selector "baz(uint32,bool)")));
    unit "quick brown fox" (fun () ->
        check_hex "The quick brown fox jumps over the lazy dog"
          "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15");
    unit "quick brown fox, trailing period" (fun () ->
        (* one-character change, completely different digest *)
        check_hex "The quick brown fox jumps over the lazy dog."
          "578951e24efd62a3d63a86f7cd19aaa53c898fe287d2552133220370240b572d");
    unit "'hello world'" (fun () ->
        check_hex "hello world"
          "47173285a8d7341e5e972fc677286384f802f8ef42a5ec5f03bbfa254cb01fad");
    unit "ERC-20 selector suite" (fun () ->
        List.iter
          (fun (signature, expect) ->
            Alcotest.(check string) signature expect
              (Util.Hex.encode (Crypto.Keccak.selector signature)))
          [
            ("balanceOf(address)", "70a08231");
            ("approve(address,uint256)", "095ea7b3");
            ("transferFrom(address,address,uint256)", "23b872dd");
            ("totalSupply()", "18160ddd");
            ("allowance(address,address)", "dd62ed3e");
          ]);
    unit "Transfer event topic" (fun () ->
        (* full 32-byte event topic, not just the 4-byte selector *)
        check_hex "Transfer(address,address,uint256)"
          "ddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef");
    unit "hash_word matches big-endian digest" (fun () ->
        Alcotest.(check string) "word"
          (Crypto.Keccak.hash_hex "xyz")
          (let w = Crypto.Keccak.hash_word "xyz" in
           (* strip 0x and left-pad to 64 *)
           let h = Word.U256.to_hex_string w in
           let h = String.sub h 2 (String.length h - 2) in
           String.make (64 - String.length h) '0' ^ h));
  ]

let properties =
  let gen = QCheck2.Gen.(string_size (int_bound 500)) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"digest is 32 bytes" ~count:200 ~print:Util.Hex.encode
         gen (fun s -> String.length (Crypto.Keccak.hash s) = 32));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"deterministic" ~count:100 ~print:Util.Hex.encode gen
         (fun s -> Crypto.Keccak.hash s = Crypto.Keccak.hash s));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"single-bit avalanche" ~count:100
         ~print:Util.Hex.encode
         QCheck2.Gen.(string_size (int_range 1 100))
         (fun s ->
           let b = Bytes.of_string s in
           Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
           Crypto.Keccak.hash s <> Crypto.Keccak.hash (Bytes.to_string b)));
  ]

let suite = [ ("keccak: vectors", vectors); ("keccak: properties", properties) ]
