(* Triage layer: dedup keys, the delta-debugging shrinker, repro
   artifacts and the self-replaying regression corpus.

   The corpus tests read test/regressions/*.json (declared as dune deps,
   so they are visible inside the test sandbox). Every artifact there
   must replay — byte-identically twice — and be a shrinker fixpoint. *)

module O = Oracles.Oracle

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Replace the first occurrence of [needle] in [hay] with [repl]. *)
let replace_first hay needle repl =
  let n = String.length needle and m = String.length hay in
  let rec find i = if i + n > m then None
    else if String.sub hay i n = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> hay
  | Some i ->
    String.sub hay 0 i ^ repl ^ String.sub hay (i + n) (m - i - n)

let small_config =
  { Mufuzz.Config.default with max_executions = 400; rng_seed = 42L }

let campaign source =
  let c = Minisol.Contract.compile source in
  (c, Mufuzz.Campaign.run ~config:small_config c)

(* ---------------- dedup keys ---------------- *)

let key_tests =
  [
    Alcotest.test_case "class_of_string round-trips all classes" `Quick
      (fun () ->
        List.iter
          (fun cls ->
            match O.class_of_string (O.class_to_string cls) with
            | Some c -> Alcotest.(check bool) "same class" true (c = cls)
            | None -> Alcotest.fail "class_of_string returned None")
          O.all_classes;
        Alcotest.(check bool) "unknown rejected" true
          (O.class_of_string "XX" = None));
    Alcotest.test_case "path_hash is deterministic and path-sensitive" `Quick
      (fun () ->
        let h1 = O.path_hash [ "constructor"; "invest"; "withdraw" ] in
        let h2 = O.path_hash [ "constructor"; "invest"; "withdraw" ] in
        let h3 = O.path_hash [ "constructor"; "withdraw"; "invest" ] in
        Alcotest.(check string) "stable" h1 h2;
        Alcotest.(check bool) "order matters" true (h1 <> h3);
        Alcotest.(check int) "16 hex chars" 16 (String.length h1));
    Alcotest.test_case "key_of distinguishes pc and call path" `Quick
      (fun () ->
        let f pc = { O.cls = O.IO; pc; tx_index = 1; detail = "d" } in
        let ka = O.key_of ~call_path:[ "a" ] (f 10) in
        let kb = O.key_of ~call_path:[ "a" ] (f 11) in
        let kc = O.key_of ~call_path:[ "b" ] (f 10) in
        Alcotest.(check bool) "pc differs" true (O.compare_key ka kb <> 0);
        Alcotest.(check bool) "path differs" true (O.compare_key ka kc <> 0);
        Alcotest.(check int) "reflexive" 0
          (O.compare_key ka (O.key_of ~call_path:[ "a" ] (f 10))));
    Alcotest.test_case "key_to_string is class@pc/hash" `Quick (fun () ->
        let k =
          O.key_of ~call_path:[ "constructor"; "f" ]
            { O.cls = O.RE; pc = 42; tx_index = 0; detail = "" }
        in
        let s = O.key_to_string k in
        Alcotest.(check bool) "prefix" true
          (String.length s > 6 && String.sub s 0 6 = "RE@42/"));
    Alcotest.test_case "campaign reports sorted unique occurrence keys" `Quick
      (fun () ->
        let _, r = campaign Corpus.Examples.crowdsale in
        Alcotest.(check bool) "has occurrences" true (r.occurrences <> []);
        Alcotest.(check bool) "counts positive" true
          (List.for_all (fun (_, n) -> n > 0) r.occurrences);
        let keys = List.map fst r.occurrences in
        Alcotest.(check bool) "strictly sorted (hence unique)" true
          (List.for_all2
             (fun a b -> O.compare_key a b < 0)
             (List.filteri (fun i _ -> i < List.length keys - 1) keys)
             (List.tl keys));
        (* every occurrence count covers at least its first witness *)
        Alcotest.(check bool) "at least as many occurrences as findings" true
          (List.fold_left (fun acc (_, n) -> acc + n) 0 r.occurrences
          >= List.length r.findings));
  ]

(* ---------------- shrinker ---------------- *)

let shrink_target (c : Minisol.Contract.t) =
  Triage.Shrink.target_of_config small_config c

let shrink_tests =
  let oracle_preserving source name =
    Alcotest.test_case
      (Printf.sprintf "shrink preserves oracle on %s" name)
      `Slow
      (fun () ->
        let c, r = campaign source in
        Alcotest.(check bool) "campaign found bugs" true (r.witness_seeds <> []);
        let target = shrink_target c in
        List.iter
          (fun ((f : O.finding), seed) ->
            let s = Triage.Shrink.shrink ~target f seed in
            Alcotest.(check bool) "input reproduced" true s.reproduced;
            Alcotest.(check bool) "no longer than input" true
              (List.length s.seed.txs <= List.length seed.txs);
            (* the shrunk sequence still raises the same (class, pc) *)
            (match Triage.Shrink.reraise ~target f s.seed with
            | Some g ->
              Alcotest.(check bool) "same class" true (g.cls = f.cls);
              Alcotest.(check int) "same pc" f.pc g.pc
            | None -> Alcotest.fail "shrunk sequence lost the finding");
            (* idempotence: shrinking the shrunk seed changes nothing *)
            let s2 = Triage.Shrink.shrink ~target f s.seed in
            Alcotest.(check bool) "fixpoint" true (s2.seed = s.seed))
          r.witness_seeds)
  in
  [
    oracle_preserving Corpus.Examples.crowdsale "crowdsale";
    oracle_preserving Corpus.Examples.simple_dao "simple_dao";
    oracle_preserving Corpus.Examples.token_overflow "token_overflow";
    Alcotest.test_case "non-reproducing seed returned unchanged" `Quick
      (fun () ->
        let c, r = campaign Corpus.Examples.crowdsale in
        match r.witness_seeds with
        | [] -> Alcotest.fail "no witnesses"
        | (_, seed) :: _ ->
          let bogus = { O.cls = O.US; pc = 999999; tx_index = 0; detail = "" } in
          let s = Triage.Shrink.shrink ~target:(shrink_target c) bogus seed in
          Alcotest.(check bool) "not reproduced" false s.reproduced;
          Alcotest.(check bool) "seed unchanged" true (s.seed = seed));
    Alcotest.test_case "budget exhaustion still returns a reproducer" `Quick
      (fun () ->
        let c, r = campaign Corpus.Examples.crowdsale in
        match r.witness_seeds with
        | [] -> Alcotest.fail "no witnesses"
        | (f, seed) :: _ ->
          let target = shrink_target c in
          let s = Triage.Shrink.shrink ~target ~max_execs:3 f seed in
          Alcotest.(check bool) "reproduced" true s.reproduced;
          (match Triage.Shrink.reraise ~target f s.seed with
          | Some _ -> ()
          | None -> Alcotest.fail "budget-limited shrink lost the oracle"));
  ]

(* ---------------- artifacts ---------------- *)

let first_artifact () =
  let c, r = campaign Corpus.Examples.crowdsale in
  match r.witness_seeds with
  | [] -> Alcotest.fail "no witnesses"
  | (f, seed) :: _ ->
    Triage.Artifact.make ~contract:c ~gas_per_tx:small_config.gas_per_tx
      ~n_senders:small_config.n_senders
      ~attacker:small_config.attacker_enabled ~finding:f ~seed

let artifact_tests =
  [
    Alcotest.test_case "to_string/of_string round-trips" `Quick (fun () ->
        let a = first_artifact () in
        let s = Triage.Artifact.to_string a in
        match Triage.Artifact.of_string s with
        | Error e -> Alcotest.fail e
        | Ok b ->
          Alcotest.(check string) "byte-identical re-render" s
            (Triage.Artifact.to_string b);
          Alcotest.(check string) "contract name" a.contract.name
            b.contract.name;
          Alcotest.(check int) "pc" a.finding.pc b.finding.pc;
          Alcotest.(check bool) "class" true (a.finding.cls = b.finding.cls);
          Alcotest.(check string) "path hash" a.path_hash b.path_hash;
          Alcotest.(check int) "tx count" (List.length a.seed.txs)
            (List.length b.seed.txs));
    Alcotest.test_case "save/load round-trips through a file" `Quick (fun () ->
        let a = first_artifact () in
        let path = Filename.temp_file "mufuzz_artifact" ".json" in
        Triage.Artifact.save path a;
        (match Triage.Artifact.load path with
        | Error e -> Alcotest.fail e
        | Ok b ->
          Alcotest.(check string) "same render" (Triage.Artifact.to_string a)
            (Triage.Artifact.to_string b));
        Sys.remove path);
    Alcotest.test_case "tampered source hash is rejected" `Quick (fun () ->
        let a = first_artifact () in
        let s = Triage.Artifact.to_string a in
        let h = Triage.Artifact.source_hash a.contract in
        let flipped =
          (if h.[0] = '0' then "1" else "0") ^ String.sub h 1 (String.length h - 1)
        in
        let tampered = replace_first s h flipped in
        match Triage.Artifact.of_string tampered with
        | Ok _ -> Alcotest.fail "accepted tampered source hash"
        | Error _ -> ());
    Alcotest.test_case "wrong format tag is rejected" `Quick (fun () ->
        match Triage.Artifact.of_string "{\"format\": \"nope\"}" with
        | Ok _ -> Alcotest.fail "accepted bad format"
        | Error _ -> ());
    Alcotest.test_case "file_name is canonical and filesystem-safe" `Quick
      (fun () ->
        let a = first_artifact () in
        let n = Triage.Artifact.file_name a in
        Alcotest.(check bool) "json suffix" true (Filename.check_suffix n ".json");
        Alcotest.(check bool) "starts with contract name" true
          (String.length n > String.length a.contract.name
          && String.sub n 0 (String.length a.contract.name) = a.contract.name);
        String.iter
          (fun ch ->
            Alcotest.(check bool) "safe char" true
              (ch <> '/' && ch <> '\\' && ch <> ' '))
          n);
    Alcotest.test_case "artifact key matches the campaign's dedup key" `Quick
      (fun () ->
        let a = first_artifact () in
        let k = Triage.Artifact.key a in
        Alcotest.(check bool) "class" true (k.k_cls = a.finding.cls);
        Alcotest.(check int) "pc" a.finding.pc k.k_pc;
        Alcotest.(check string) "path hash" a.path_hash k.k_path);
  ]

(* ---------------- regression corpus ---------------- *)

let regression_files () =
  (* cwd is _build/default/test under `dune runtest`, the project root
     under `dune exec test/test_main.exe` *)
  let dir =
    if Sys.file_exists "regressions" then "regressions" else "test/regressions"
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let regression_tests =
  [
    Alcotest.test_case "corpus is non-empty and covers all four contracts"
      `Quick
      (fun () ->
        let files = regression_files () in
        Alcotest.(check bool) "several artifacts" true (List.length files >= 4);
        let prefixes = [ "Crowdsale"; "Game"; "SimpleDAO"; "Token" ] in
        List.iter
          (fun p ->
            Alcotest.(check bool) (p ^ " covered") true
              (List.exists
                 (fun f ->
                   let b = Filename.basename f in
                   String.length b > String.length p
                   && String.sub b 0 (String.length p) = p)
                 files))
          prefixes);
    Alcotest.test_case "every regression artifact replays (twice, identically)"
      `Slow
      (fun () ->
        List.iter
          (fun path ->
            match Triage.Artifact.load path with
            | Error e -> Alcotest.fail (path ^ ": " ^ e)
            | Ok a ->
              let o1 = Triage.Repro.replay a in
              let o2 = Triage.Repro.replay a in
              Alcotest.(check bool) (path ^ " reproduces") true o1.ok;
              Alcotest.(check string) (path ^ " deterministic")
                (Triage.Repro.describe a o1)
                (Triage.Repro.describe a o2))
          (regression_files ()));
    Alcotest.test_case "every regression artifact is a shrinker fixpoint"
      `Slow
      (fun () ->
        List.iter
          (fun path ->
            match Triage.Artifact.load path with
            | Error e -> Alcotest.fail (path ^ ": " ^ e)
            | Ok a -> (
              match Triage.Repro.shrink a with
              | Error e -> Alcotest.fail (path ^ ": " ^ e)
              | Ok (b, _) ->
                Alcotest.(check string) (path ^ " already minimal")
                  (Triage.Artifact.to_string a)
                  (Triage.Artifact.to_string b)))
          (regression_files ()));
  ]

(* ---------------- report plumbing ---------------- *)

let report_tests =
  [
    Alcotest.test_case "report JSON carries skipped corpus blocks" `Quick
      (fun () ->
        let _, r = campaign Corpus.Examples.crowdsale in
        let r = { r with corpus_skipped = [ (3, "bad hex") ] } in
        let json = Mufuzz.Report.to_json_string r in
        Alcotest.(check bool) "has skipped field" true
          (contains json "\"skipped\"");
        Alcotest.(check bool) "has reason" true (contains json "bad hex"));
    Alcotest.test_case "report JSON carries unique findings" `Quick (fun () ->
        let _, r = campaign Corpus.Examples.crowdsale in
        let json = Mufuzz.Report.to_json_string r in
        Alcotest.(check bool) "has unique_findings" true
          (contains json "\"unique_findings\"");
        Alcotest.(check bool) "has path_hash" true
          (contains json "\"path_hash\""));
  ]

let suite =
  [
    ("triage.key", key_tests);
    ("triage.shrink", shrink_tests);
    ("triage.artifact", artifact_tests);
    ("triage.regressions", regression_tests);
    ("triage.report", report_tests);
  ]
