(* The fuzzing service: protocol codec laws, scheduler fairness
   (FIFO, priority, round-robin), cancellation semantics, and the
   headline guarantee — a campaign run in preempted time slices
   produces the same final report as an uninterrupted run. *)

module J = Telemetry.Json
module Protocol = Serve.Protocol
module Engine = Serve.Engine

let unit name f = Alcotest.test_case name `Quick f

let qprop name ?(count = 200) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* Engine state directories live under the system temp dir — never the
   working directory, which would litter the repo root when the test
   binary is run outside the dune sandbox — and every one is removed on
   process exit by Util.Fileio's at_exit sweep. *)
let temp_dir () = Util.Fileio.temp_dir ~prefix:"serve-tmp" ()

let engine ?(slice_execs = 150) () =
  Engine.create ~slice_execs ~state_dir:(temp_dir ())
    ~metrics:(Telemetry.Metrics.create ()) ()

let submission ?budget ?(seed = 7L) ?(priority = 0) source =
  {
    Protocol.sub_source = `Inline source;
    sub_budget = budget;
    sub_seed = Some seed;
    sub_tool = None;
    sub_jobs = None;
    sub_priority = priority;
  }

let submit_ok t s =
  match Engine.submit t s with
  | Ok fields -> (
    match List.assoc_opt "id" fields with
    | Some (J.String id) -> id
    | _ -> Alcotest.fail "submit response has no id")
  | Error (_, msg) -> Alcotest.failf "submit rejected: %s" msg

let field name = function
  | Ok fields -> List.assoc_opt name fields
  | Error (_, msg) -> Alcotest.failf "expected Ok, got error: %s" msg

let state_of t id =
  match field "state" (Engine.status t id) with
  | Some (J.String s) -> s
  | _ -> Alcotest.fail "status response has no state"

(* ---------------- protocol ---------------- *)

let expect_error code = function
  | Error (c, _) when c = code -> ()
  | Error (c, msg) ->
    Alcotest.failf "wrong error code %s: %s" (Protocol.code_string c) msg
  | Ok _ -> Alcotest.fail "expected an error"

let protocol_tests =
  [
    unit "parse: bare ops" (fun () ->
        List.iter
          (fun (line, expected) ->
            match Protocol.parse_request line with
            | Ok r when r = expected -> ()
            | Ok _ -> Alcotest.failf "wrong parse for %s" line
            | Error (_, msg) -> Alcotest.failf "%s: %s" line msg)
          [
            ({|{"op":"ping"}|}, Protocol.Ping);
            ({|{"op":"list"}|}, Protocol.List_campaigns);
            ({|{"op":"metrics"}|}, Protocol.Metrics);
            ({|{"op":"shutdown"}|}, Protocol.Shutdown);
            ({|{"op":"hello","protocol":1}|}, Protocol.Hello (Some 1));
            ({|{"op":"status","id":"c0001"}|}, Protocol.Status "c0001");
            ({|{"op":"cancel","id":"x"}|}, Protocol.Cancel "x");
          ]);
    unit "parse: submit round-trip" (fun () ->
        let line =
          {|{"op":"submit","source":"contract C {}","budget":123,"seed":"-9223372036854775808","tool":"sFuzz","jobs":2,"priority":5}|}
        in
        match Protocol.parse_request line with
        | Ok (Protocol.Submit s) ->
          Alcotest.(check bool) "source" true (s.sub_source = `Inline "contract C {}");
          Alcotest.(check (option int)) "budget" (Some 123) s.sub_budget;
          Alcotest.(check (option int64)) "seed" (Some Int64.min_int) s.sub_seed;
          Alcotest.(check (option string)) "tool" (Some "sFuzz") s.sub_tool;
          Alcotest.(check (option int)) "jobs" (Some 2) s.sub_jobs;
          Alcotest.(check int) "priority" 5 s.sub_priority
        | Ok _ -> Alcotest.fail "parsed as non-submit"
        | Error (_, msg) -> Alcotest.fail msg);
    unit "parse: malformed inputs are structured errors" (fun () ->
        expect_error Protocol.Bad_request (Protocol.parse_request "not json");
        expect_error Protocol.Bad_request (Protocol.parse_request {|{"x":1}|});
        expect_error Protocol.Bad_request
          (Protocol.parse_request {|{"op":"status"}|});
        expect_error Protocol.Bad_request
          (Protocol.parse_request {|{"op":"submit"}|});
        expect_error Protocol.Bad_request
          (Protocol.parse_request {|{"op":"submit","source":"c","file":"f"}|});
        expect_error Protocol.Bad_request
          (Protocol.parse_request {|{"op":"submit","source":"c","budget":"x"}|});
        expect_error Protocol.Unknown_op
          (Protocol.parse_request {|{"op":"frobnicate"}|}));
    unit "responses: ok and error shapes" (fun () ->
        (match J.of_string (Protocol.ok [ ("x", J.Int 1) ]) with
        | Ok j ->
          Alcotest.(check (option bool)) "ok" (Some true)
            (Option.bind (J.member "ok" j) J.to_bool);
          Alcotest.(check (option int)) "x" (Some 1)
            (Option.bind (J.member "x" j) J.to_int)
        | Error e -> Alcotest.fail e);
        match J.of_string (Protocol.error ~code:Protocol.Unknown_id "nope") with
        | Ok j ->
          Alcotest.(check (option bool)) "ok" (Some false)
            (Option.bind (J.member "ok" j) J.to_bool);
          Alcotest.(check (option string)) "code" (Some "unknown-id")
            (Option.bind (J.member "code" j) J.string_value)
        | Error e -> Alcotest.fail e);
    qprop "submit numeric fields survive a JSON round-trip" ~count:100
      ~print:(fun (b, s, p) -> Printf.sprintf "(%d, %Ld, %d)" b s p)
      QCheck2.Gen.(triple (int_range 1 1_000_000) (map Int64.of_int int) int)
      (fun (budget, seed, priority) ->
        let line =
          J.to_string
            (J.Obj
               [
                 ("op", J.String "submit");
                 ("source", J.String "contract C {}");
                 ("budget", J.Int budget);
                 ("seed", J.String (Int64.to_string seed));
                 ("priority", J.Int priority);
               ])
        in
        match Protocol.parse_request line with
        | Ok (Protocol.Submit s) ->
          s.sub_budget = Some budget && s.sub_seed = Some seed
          && s.sub_priority = priority
        | _ -> false);
  ]

(* ---------------- scheduler ---------------- *)

let scheduler_tests =
  [
    unit "equal priority is FIFO" (fun () ->
        let t = engine () in
        let a = submit_ok t (submission ~budget:200 Corpus.Examples.crowdsale) in
        let b = submit_ok t (submission ~budget:200 Corpus.Examples.simple_dao) in
        let c = submit_ok t (submission ~budget:200 Corpus.Examples.piggy_bank) in
        (* queue positions reflect submission order *)
        List.iteri
          (fun i id ->
            Alcotest.(check (option int))
              (id ^ " position") (Some i)
              (match field "position" (Engine.status t id) with
              | Some (J.Int p) -> Some p
              | _ -> None))
          [ a; b; c ];
        (* a 200-exec budget fits in one 150+slack slice? No — two
           slices; still, first slice of each follows submission order *)
        let first_slices =
          List.init 3 (fun _ -> Option.get (Engine.step t)) |> List.sort_uniq compare
        in
        Alcotest.(check (list string)) "first slices in order" [ a; b; c ]
          (List.sort compare first_slices);
        Alcotest.(check string) "first slice is the first submission" a
          (List.nth first_slices 0));
    unit "higher priority runs first, FIFO within a priority" (fun () ->
        let t = engine () in
        let low = submit_ok t (submission ~budget:200 Corpus.Examples.crowdsale) in
        let hi1 =
          submit_ok t
            (submission ~budget:200 ~priority:5 Corpus.Examples.simple_dao)
        in
        let hi2 =
          submit_ok t
            (submission ~budget:200 ~priority:5 Corpus.Examples.piggy_bank)
        in
        Alcotest.(check (option string)) "first slice" (Some hi1) (Engine.step t);
        Alcotest.(check (option string)) "second slice" (Some hi2) (Engine.step t);
        ignore low);
    unit "equal priority round-robins across slices" (fun () ->
        let t = engine ~slice_execs:100 () in
        let a = submit_ok t (submission ~budget:400 Corpus.Examples.crowdsale) in
        let b = submit_ok t (submission ~budget:400 Corpus.Examples.simple_dao) in
        let slices = List.init 4 (fun _ -> Option.get (Engine.step t)) in
        Alcotest.(check (list string)) "alternating" [ a; b; a; b ] slices);
    unit "a late high-priority submission preempts at the next slice"
      (fun () ->
        let t = engine ~slice_execs:100 () in
        let low = submit_ok t (submission ~budget:400 Corpus.Examples.crowdsale) in
        Alcotest.(check (option string)) "low runs alone" (Some low)
          (Engine.step t);
        let hi =
          submit_ok t
            (submission ~budget:200 ~priority:9 Corpus.Examples.simple_dao)
        in
        Alcotest.(check (option string)) "high jumps the queue" (Some hi)
          (Engine.step t);
        Alcotest.(check string) "low is parked mid-run" "running"
          (state_of t low));
    unit "run_to_completion finishes everything" (fun () ->
        let t = engine () in
        let ids =
          List.map
            (fun src -> submit_ok t (submission ~budget:300 src))
            [
              Corpus.Examples.crowdsale;
              Corpus.Examples.simple_dao;
              Corpus.Examples.piggy_bank;
            ]
        in
        Engine.run_to_completion t;
        Alcotest.(check bool) "nothing runnable" false (Engine.has_runnable t);
        List.iter
          (fun id ->
            Alcotest.(check string) (id ^ " state") "completed" (state_of t id))
          ids);
  ]

(* ---------------- cancellation ---------------- *)

let cancel_tests =
  [
    unit "cancel while queued" (fun () ->
        let t = engine () in
        let a = submit_ok t (submission ~budget:200 Corpus.Examples.crowdsale) in
        let b = submit_ok t (submission ~budget:200 Corpus.Examples.simple_dao) in
        (match Engine.cancel t b with
        | Ok _ -> ()
        | Error (_, msg) -> Alcotest.fail msg);
        Alcotest.(check string) "b cancelled" "cancelled" (state_of t b);
        Engine.run_to_completion t;
        Alcotest.(check string) "a unaffected" "completed" (state_of t a);
        Alcotest.(check string) "b stays cancelled" "cancelled" (state_of t b);
        (* cancelling a terminal campaign is a bad-state error *)
        expect_error Protocol.Bad_state (Engine.cancel t b);
        expect_error Protocol.Bad_state (Engine.cancel t a);
        (* and its report never exists *)
        expect_error Protocol.Bad_state (Engine.report t b));
    unit "cancel while running frees the scheduler" (fun () ->
        let t = engine ~slice_execs:100 () in
        let a = submit_ok t (submission ~budget:1000 Corpus.Examples.crowdsale) in
        Alcotest.(check (option string)) "slice" (Some a) (Engine.step t);
        Alcotest.(check string) "mid-run" "running" (state_of t a);
        (match Engine.cancel t a with
        | Ok _ -> ()
        | Error (_, msg) -> Alcotest.fail msg);
        Alcotest.(check string) "cancelled" "cancelled" (state_of t a);
        Alcotest.(check bool) "nothing runnable" false (Engine.has_runnable t);
        Alcotest.(check (option string)) "no more slices" None (Engine.step t));
    unit "unknown id is unknown-id" (fun () ->
        let t = engine () in
        expect_error Protocol.Unknown_id (Engine.status t "c9999");
        expect_error Protocol.Unknown_id (Engine.cancel t "c9999"));
    unit "uncompilable source is rejected at submit" (fun () ->
        let t = engine () in
        expect_error Protocol.Bad_request
          (Engine.submit t (submission "contract { nonsense"));
        Alcotest.(check bool) "nothing queued" false (Engine.has_runnable t));
  ]

(* ---------------- preempt/resume equivalence ---------------- *)

(* the spec's comparison: everything except wall-clock rates *)
let normalized json =
  match json with
  | J.Obj fields ->
    J.Obj
      (List.filter
         (fun (k, _) ->
           not
             (List.mem k [ "wall_seconds"; "execs_per_sec"; "steps_per_sec" ]))
         fields)
  | j -> j

let equivalence_tests =
  [
    unit "sliced campaign report equals the uninterrupted run" (fun () ->
        let budget = 2000 in
        let seed = 99L in
        let t = engine ~slice_execs:300 () in
        let id =
          submit_ok t (submission ~budget ~seed Corpus.Examples.crowdsale)
        in
        Engine.run_to_completion t;
        let sliced =
          match Engine.report t id with
          | Ok j -> j
          | Error (_, msg) -> Alcotest.fail msg
        in
        (* the engine really did slice it *)
        (match field "slices" (Engine.status t id) with
        | Some (J.Int n) when n > 1 -> ()
        | Some (J.Int n) -> Alcotest.failf "only %d slice(s); no preemption" n
        | _ -> Alcotest.fail "no slice count");
        let profile = Option.get (Baselines.Fuzzers.find "MuFuzz") in
        let config =
          profile.configure
            {
              Mufuzz.Config.default with
              max_executions = budget;
              rng_seed = seed;
            }
        in
        let uninterrupted =
          Baselines.Fuzzers.run profile ~config
            (Minisol.Contract.compile Corpus.Examples.crowdsale)
        in
        Alcotest.(check string) "reports equal"
          (J.to_string (normalized (Mufuzz.Report.to_json uninterrupted)))
          (J.to_string (normalized sliced)));
    unit "a restarted engine resumes from the checkpoint" (fun () ->
        let budget = 2000 in
        let seed = 99L in
        let dir = temp_dir () in
        let metrics = Telemetry.Metrics.create () in
        let t = Engine.create ~slice_execs:300 ~state_dir:dir ~metrics () in
        let id =
          submit_ok t (submission ~budget ~seed Corpus.Examples.crowdsale)
        in
        (* a few slices, then the daemon "dies" *)
        ignore (Engine.step t);
        ignore (Engine.step t);
        Alcotest.(check string) "mid-run" "running" (state_of t id);
        Engine.shutdown t;
        let t2 = Engine.create ~slice_execs:300 ~state_dir:dir ~metrics () in
        Alcotest.(check string) "restored as running" "running"
          (state_of t2 id);
        Engine.run_to_completion t2;
        let resumed =
          match Engine.report t2 id with
          | Ok j -> j
          | Error (_, msg) -> Alcotest.fail msg
        in
        let profile = Option.get (Baselines.Fuzzers.find "MuFuzz") in
        let config =
          profile.configure
            {
              Mufuzz.Config.default with
              max_executions = budget;
              rng_seed = seed;
            }
        in
        let uninterrupted =
          Baselines.Fuzzers.run profile ~config
            (Minisol.Contract.compile Corpus.Examples.crowdsale)
        in
        Alcotest.(check string) "reports equal"
          (J.to_string (normalized (Mufuzz.Report.to_json uninterrupted)))
          (J.to_string (normalized resumed)));
    unit "checkpoints live in the campaign's namespace" (fun () ->
        let t = engine ~slice_execs:100 () in
        let id = submit_ok t (submission ~budget:500 Corpus.Examples.crowdsale) in
        ignore (Engine.step t);
        ignore (Engine.step t);
        Alcotest.(check (list string)) "one namespace" [ id ]
          (Persist.Store.namespaces (Engine.state_dir t));
        match
          Persist.Store.load_latest (Filename.concat (Engine.state_dir t) id)
        with
        | Ok (_, ckpt) ->
          Alcotest.(check string) "tool" "MuFuzz" ckpt.Persist.Checkpoint.tool
        | Error e -> Alcotest.fail e);
  ]

let suite =
  [
    ("serve protocol", protocol_tests);
    ("serve scheduler", scheduler_tests);
    ("serve cancel", cancel_tests);
    ("serve equivalence", equivalence_tests);
  ]
