let () =
  Alcotest.run "mufuzz"
    (Test_util.suite @ Test_u256.suite @ Test_crypto.suite @ Test_evm.suite
    @ Test_abi.suite @ Test_minisol.suite @ Test_analysis.suite
    @ Test_oracles.suite @ Test_mufuzz.suite @ Test_baselines.suite
    @ Test_corpus.suite @ Test_parallel.suite @ Test_telemetry.suite
    @ Test_differential.suite @ Test_triage.suite @ Test_hotloop.suite
    @ Test_golden.suite @ Test_persist.suite @ Test_batch.suite @ Test_serve.suite
    @ Test_predict.suite @ Test_maskplan.suite @ Test_fleet.suite)
