(* Batch execution and shard-local state caching (the parallel-path
   overhaul): [Executor.run_batch] must be an amortisation of the
   per-seed loop, never a semantic change — differentially checked seed
   by seed, including findings, step counts and flushed telemetry
   totals — and the sharded [State_cache] must keep shards isolated
   while summing counters across them. [Pool.run_batch_iter] must merge
   every result in submission order. *)

let unit name f = Alcotest.test_case name `Quick f

let crowdsale = lazy (Minisol.Contract.compile Corpus.Examples.crowdsale)

(* ---------------- run_batch = per-seed loop (differential) -------- *)

(* A deterministic random seed population: [n] sequences of 1-4
   dictionary-biased transactions over the crowdsale ABI. *)
let gen_population =
  QCheck2.Gen.(
    let* key = int_range 1 1_000_000 in
    let* n = int_range 1 6 in
    return (key, n))

let population key n =
  let c = Lazy.force crowdsale in
  let rng = Util.Rng.create (Int64.of_int key) in
  List.init n (fun _ ->
      let ntx = 1 + Util.Rng.int rng 4 in
      let txs =
        List.init ntx (fun _ ->
            let f = Util.Rng.choose_list rng c.abi in
            Mufuzz.Seed.random_tx rng ~n_senders:3 f)
      in
      { Mufuzz.Seed.txs })

let finding_essence (f : Oracles.Oracle.finding) =
  (Oracles.Oracle.class_to_string f.cls, f.pc, f.tx_index)

let run_essence (r : Mufuzz.Executor.run) =
  ( List.map
      (fun (t : Mufuzz.Executor.tx_result) ->
        (t.tx_index, t.fn_name, t.success, Evm.Trace.branches t.trace))
      r.tx_results,
    r.received_value,
    r.executed_steps,
    r.logical_steps )

let batch_differential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"run_batch = per-seed run_seed loop, seed by seed"
       ~count:20 gen_population (fun (key, n) ->
         let c = Lazy.force crowdsale in
         let seeds = population key n in
         let static = Oracles.Oracle.static_info_of c in
         (* batch side: one context, one cache, one telemetry flush *)
         let m_batch = Telemetry.Metrics.create () in
         let cache_batch = Mufuzz.State_cache.create () in
         let ctx =
           Mufuzz.Executor.make_ctx ~contract:c ~gas:1_000_000 ~n_senders:3
             ~attacker:true ~cache:cache_batch ~metrics:m_batch ()
         in
         let batch = Mufuzz.Executor.run_batch ctx seeds in
         (* reference side: a fresh run_seed call per seed, sharing a
            second cache so both sides see identical prefix warmth *)
         let m_ref = Telemetry.Metrics.create () in
         let cache_ref = Mufuzz.State_cache.create () in
         let reference =
           List.map
             (fun s ->
               Mufuzz.Executor.run_seed ~contract:c ~gas:1_000_000 ~n_senders:3
                 ~attacker:true ~cache:cache_ref ~metrics:m_ref s)
             seeds
         in
         List.length batch = List.length reference
         && List.for_all2
              (fun b r ->
                run_essence b = run_essence r
                && List.map finding_essence
                     (Mufuzz.Executor.inspect ~static b)
                   = List.map finding_essence
                       (Mufuzz.Executor.inspect ~static r))
              batch reference
         (* flushed telemetry totals agree: the locally-accumulated
            counters lose nothing relative to per-execution updates *)
         && List.for_all
              (fun name ->
                Telemetry.Metrics.(value (counter m_batch name))
                = Telemetry.Metrics.(value (counter m_ref name)))
              [
                "mufuzz_txs_total";
                "mufuzz_evm_steps_total";
                "mufuzz_cache_prefix_hits_total";
                "mufuzz_cache_hits_total";
                "mufuzz_cache_misses_total";
              ]
         && Telemetry.Metrics.(
              histogram_count (histogram m_batch "mufuzz_tx_gas_used")
              = histogram_count (histogram m_ref "mufuzz_tx_gas_used"))
         && Telemetry.Metrics.(
              histogram_sum (histogram m_batch "mufuzz_tx_gas_used")
              = histogram_sum (histogram m_ref "mufuzz_tx_gas_used"))))

let batch_units =
  [
    unit "run_batch on the empty population is empty" (fun () ->
        let c = Lazy.force crowdsale in
        let ctx =
          Mufuzz.Executor.make_ctx ~contract:c ~gas:1_000_000 ~n_senders:3
            ~attacker:true ()
        in
        Alcotest.(check int) "empty" 0
          (List.length (Mufuzz.Executor.run_batch ctx [])));
    unit "telemetry reaches the registry only at flush" (fun () ->
        let c = Lazy.force crowdsale in
        let m = Telemetry.Metrics.create () in
        let ctx =
          Mufuzz.Executor.make_ctx ~contract:c ~gas:1_000_000 ~n_senders:3
            ~attacker:true ~metrics:m ()
        in
        let seed = List.hd (population 7 1) in
        let _run = Mufuzz.Executor.run_in_ctx ctx seed in
        let v () =
          Telemetry.Metrics.(value (counter m "mufuzz_txs_total"))
        in
        Alcotest.(check int) "pending until flush" 0 (v ());
        Mufuzz.Executor.flush ctx;
        Alcotest.(check int) "flushed" (List.length seed.txs) (v ());
        (* flush is idempotent between executions *)
        Mufuzz.Executor.flush ctx;
        Alcotest.(check int) "no double count" (List.length seed.txs) (v ()));
  ]

(* ---------------- sharded state cache ---------------- *)

let snapshot () =
  {
    Mufuzz.State_cache.state = Evm.State.empty;
    block = Evm.Interp.default_block;
    tx_results = [];
    received_value = false;
  }

let sharded_tests =
  [
    unit "shards are independent caches" (fun () ->
        let s = Mufuzz.State_cache.create_sharded ~shards:3 () in
        Alcotest.(check int) "count" 3 (Mufuzz.State_cache.shard_count s);
        let snap = snapshot () in
        Mufuzz.State_cache.store (Mufuzz.State_cache.shard s 0) "k" snap;
        Alcotest.(check bool) "own shard hits" true
          (Mufuzz.State_cache.find (Mufuzz.State_cache.shard s 0) "k" <> None);
        Alcotest.(check bool) "sibling shard does not" true
          (Mufuzz.State_cache.find (Mufuzz.State_cache.shard s 1) "k" = None));
    unit "shard indices wrap" (fun () ->
        let s = Mufuzz.State_cache.create_sharded ~shards:2 () in
        Alcotest.(check bool) "4 mod 2 = 0" true
          (Mufuzz.State_cache.shard s 4 == Mufuzz.State_cache.shard s 0));
    unit "at least one shard even for zero" (fun () ->
        let s = Mufuzz.State_cache.create_sharded ~shards:0 () in
        Alcotest.(check int) "clamped" 1 (Mufuzz.State_cache.shard_count s));
    unit "totals sum over every shard" (fun () ->
        let s = Mufuzz.State_cache.create_sharded ~capacity:2 ~shards:2 () in
        let snap = snapshot () in
        let sh i = Mufuzz.State_cache.shard s i in
        Mufuzz.State_cache.store (sh 0) "a" snap;
        Mufuzz.State_cache.store (sh 1) "b" snap;
        ignore (Mufuzz.State_cache.find (sh 0) "a");
        ignore (Mufuzz.State_cache.find (sh 0) "nope");
        ignore (Mufuzz.State_cache.find (sh 1) "b");
        (* overflow shard 1 to force an eviction there only *)
        Mufuzz.State_cache.store (sh 1) "c" snap;
        Mufuzz.State_cache.store (sh 1) "d" snap;
        Alcotest.(check int) "hits" 2 (Mufuzz.State_cache.total_hits s);
        Alcotest.(check int) "misses" 1 (Mufuzz.State_cache.total_misses s);
        Alcotest.(check int) "evictions" 1
          (Mufuzz.State_cache.total_evictions s));
    unit "flush_sharded_metrics merges into one registry" (fun () ->
        let m = Telemetry.Metrics.create () in
        let s =
          Mufuzz.State_cache.create_sharded ~capacity:4 ~metrics:m ~shards:3 ()
        in
        let snap = snapshot () in
        for i = 0 to 2 do
          let sh = Mufuzz.State_cache.shard s i in
          Mufuzz.State_cache.store sh "k" snap;
          ignore (Mufuzz.State_cache.find sh "k");
          ignore (Mufuzz.State_cache.find sh "miss")
        done;
        let v name = Telemetry.Metrics.(value (counter m name)) in
        Alcotest.(check int) "nothing before flush" 0
          (v "mufuzz_cache_hits_total");
        Mufuzz.State_cache.flush_sharded_metrics s;
        Mufuzz.State_cache.flush_sharded_metrics s;
        Alcotest.(check int) "merged hits" 3 (v "mufuzz_cache_hits_total");
        Alcotest.(check int) "merged misses" 3 (v "mufuzz_cache_misses_total"));
  ]

(* ---------------- incremental in-order merge ---------------- *)

let pool_iter_tests =
  [
    unit "run_batch_iter merges every result in submission order" (fun () ->
        Mufuzz.Pool.with_pool ~jobs:2 (fun pool ->
            let n = 9 in
            let merged = ref [] in
            let tasks =
              Array.init n (fun i ->
                  fun _worker ->
                    (* stagger so completion order differs from
                       submission order *)
                    if i mod 2 = 0 then Unix.sleepf 0.002;
                    i * 10)
            in
            Mufuzz.Pool.run_batch_iter pool tasks ~merge:(fun i v ->
                merged := (i, v) :: !merged);
            Alcotest.(check (list (pair int int)))
              "in submission order"
              (List.init n (fun i -> (i, i * 10)))
              (List.rev !merged)));
    unit "run_batch_iter propagates task failures after draining" (fun () ->
        Mufuzz.Pool.with_pool ~jobs:2 (fun pool ->
            let tasks =
              Array.init 4 (fun i ->
                  fun _worker -> if i = 2 then failwith "boom" else i)
            in
            match
              Mufuzz.Pool.run_batch_iter pool tasks ~merge:(fun _ _ -> ())
            with
            | () -> Alcotest.fail "expected Task_error"
            | exception Mufuzz.Pool.Task_error _ -> ()));
    unit "the pool survives an iter batch for the next batch" (fun () ->
        Mufuzz.Pool.with_pool ~jobs:2 (fun pool ->
            let tasks = Array.init 3 (fun i -> fun _ -> i) in
            Mufuzz.Pool.run_batch_iter pool tasks ~merge:(fun _ _ -> ());
            let out = Mufuzz.Pool.run_batch pool tasks in
            Alcotest.(check (list int)) "second batch" [ 0; 1; 2 ]
              (Array.to_list out)));
  ]

let suite =
  [
    ("batch: executor", batch_differential :: batch_units);
    ("batch: sharded cache", sharded_tests);
    ("batch: pool iter", pool_iter_tests);
  ]
