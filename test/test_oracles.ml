(* Bug oracles: each of the nine classes detected on its canonical
   pattern, and not raised on the safe twins. *)

module O = Oracles.Oracle
module U = Word.U256

let unit name f = Alcotest.test_case name `Quick f

(* Run a deterministic MuFuzz campaign and collect found classes. *)
let fuzz ?(budget = 3000) src =
  let c = Minisol.Contract.compile src in
  let config =
    { Mufuzz.Config.default with max_executions = budget; rng_seed = 99L }
  in
  let report = Mufuzz.Campaign.run ~config c in
  List.sort_uniq compare
    (List.map (fun (f : O.finding) -> f.cls) report.findings)

let expects ?budget name src cls =
  unit name (fun () ->
      Alcotest.(check bool)
        (Printf.sprintf "finds %s" (O.class_to_string cls))
        true
        (List.mem cls (fuzz ?budget src)))

let rejects name src cls =
  unit name (fun () ->
      Alcotest.(check bool)
        (Printf.sprintf "does not flag %s" (O.class_to_string cls))
        false
        (List.mem cls (fuzz src)))

let positive_tests =
  [
    expects "BD: timestamp-gated payout" Corpus.Examples.timed_vault O.BD;
    expects "UD: delegatecall forwarder" Corpus.Examples.proxy_wallet O.UD;
    expects "EF: piggy bank freezes ether" Corpus.Examples.piggy_bank O.EF;
    expects "IO: token transfer underflow" Corpus.Examples.token_overflow O.IO;
    expects "RE: simple DAO" Corpus.Examples.simple_dao O.RE;
    expects "US: unprotected selfdestruct" Corpus.Examples.suicidal O.US;
    expects "TO: tx.origin auth" Corpus.Examples.origin_auth O.TO;
    expects "BD: guess game timestamp randomness" Corpus.Examples.guess_number O.BD;
    expects ~budget:5000 "SE: lottery strict balance equality" Corpus.Examples.lottery
      O.SE;
  ]

let negative_tests =
  [
    rejects "owner-guarded selfdestruct is not US"
      {|contract Safe { address owner;
         constructor() public { owner = msg.sender; }
         function close() public { require(msg.sender == owner); selfdestruct(owner); } }|}
      O.US;
    rejects "guarded arithmetic is not IO"
      {|contract Safe { uint256 total;
         function add(uint256 v) public {
           require(total + v >= total);
           total += v; } }|}
      O.IO;
    rejects "checked send is not UE"
      {|contract Safe { mapping(address => uint256) owed;
         function deposit() public payable { owed[msg.sender] += msg.value; }
         function claim() public {
           uint256 a = owed[msg.sender];
           owed[msg.sender] = 0;
           bool ok = msg.sender.send(a);
           require(ok); } }|}
      O.UE;
    rejects "contract with a withdraw path is not EF"
      {|contract Safe {
         function deposit() public payable { }
         function withdraw() public { msg.sender.transfer(this.balance); } }|}
      O.EF;
    rejects "pull-payment pattern is not RE"
      {|contract Safe { mapping(address => uint256) credit;
         function donate(address to) public payable { credit[to] += msg.value; }
         function withdraw() public {
           uint256 a = credit[msg.sender];
           credit[msg.sender] = 0;
           if (a > 0) { msg.sender.transfer(a); } } }|}
      O.RE;
  ]

let structural_tests =
  [
    unit "dedup keeps one finding per class and site" (fun () ->
        let f cls pc = { O.cls; pc; tx_index = 0; detail = "" } in
        let deduped = O.dedup [ f O.BD 5; f O.BD 5; f O.BD 6; f O.IO 5 ] in
        Alcotest.(check int) "three" 3 (List.length deduped));
    unit "static info detects value-out instructions" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let s = O.static_info_of c in
        Alcotest.(check bool) "crowdsale can send" true s.has_value_out;
        let p = Minisol.Contract.compile Corpus.Examples.piggy_bank in
        let sp = O.static_info_of p in
        Alcotest.(check bool) "piggy bank cannot" false sp.has_value_out);
    unit "EF requires value actually received" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.piggy_bank in
        let s = O.static_info_of c in
        Alcotest.(check int) "no EF without deposits" 0
          (List.length (O.inspect_campaign ~static:s ~received_value:false []));
        Alcotest.(check int) "EF with deposits" 1
          (List.length (O.inspect_campaign ~static:s ~received_value:true [])));
    unit "class list is stable" (fun () ->
        Alcotest.(check int) "nine classes" 9 (List.length O.all_classes));
  ]

let suite =
  [
    ("oracles: positives", positive_tests);
    ("oracles: negatives", negative_tests);
    ("oracles: structure", structural_tests);
  ]

(* A miniature of Table III as a regression test: across a stratified
   sample of the labelled suite MuFuzz must find most labels and raise
   nothing on the safe controls. *)
let sample_suite_test =
  Alcotest.test_case "suite sample: high recall, zero safe-control noise" `Slow
    (fun () ->
      let sample =
        [ "BDv02"; "BDv05"; "UDv00"; "UDv03"; "EFv04"; "IOv05"; "IOv10";
          "IOv12"; "REv01"; "USv04"; "TOv01"; "UEv02" ]
      in
      let found_labels = ref 0 and total_labels = ref 0 in
      List.iter
        (fun name ->
          let l =
            List.find (fun (l : Corpus.Vuln.labelled) -> l.name = name)
              Corpus.Vuln.suite
          in
          let found = fuzz ~budget:2500 l.source in
          List.iter
            (fun cls ->
              incr total_labels;
              if List.mem cls found then incr found_labels)
            (List.sort_uniq compare l.labels))
        sample;
      let recall = float_of_int !found_labels /. float_of_int !total_labels in
      if recall < 0.7 then
        Alcotest.failf "recall %.2f below 0.7 (%d/%d)" recall !found_labels
          !total_labels;
      (* safe controls stay silent *)
      List.iter
        (fun (l : Corpus.Vuln.labelled) ->
          if l.labels = [] then
            let found = fuzz ~budget:1000 l.source in
            if found <> [] then
              Alcotest.failf "%s flagged %s" l.name
                (String.concat ","
                   (List.map Oracles.Oracle.class_to_string found)))
        Corpus.Vuln.suite)

let suite = suite @ [ ("oracles: suite sample", [ sample_suite_test ]) ]

(* Detection of the newly diversified pattern families. *)
let vuln_of name =
  (List.find (fun (l : Corpus.Vuln.labelled) -> l.name = name) Corpus.Vuln.suite)
    .source

let flavor_detection =
  [
    expects ~budget:3000 "RE: withdraw-all flavor" (vuln_of "REv01") O.RE;
    expects ~budget:3000 "RE: cross-function flavor" (vuln_of "REv02") O.RE;
    expects ~budget:4000 "US: magic-number kill switch" (vuln_of "USv03") O.US;
    expects ~budget:3000 "UE: send in a loop" (vuln_of "UEv02") O.UE;
    expects ~budget:3000 "IO: loop-accumulated sum" (vuln_of "IOv05") O.IO;
    expects ~budget:3000 "IO: admin-priced purchase" (vuln_of "IOv06") O.IO;
    expects ~budget:3000 "BD: deadline bypass" (vuln_of "BDv02") O.BD;
    expects ~budget:3000 "BD: blockhash randomness" (vuln_of "BDv03") O.BD;
    expects ~budget:3000 "EF: internal-transfer illusion" (vuln_of "EFv01") O.EF;
  ]

let suite = suite @ [ ("oracles: flavor detection", flavor_detection) ]

(* Direct unit tests over hand-built traces (no EVM in the loop). *)
let mk_trace events =
  { Evm.Trace.status = Evm.Trace.Success; events; return_data = ""; gas_used = 0; steps = 0 }

let static_none =
  { O.has_value_out = true; payable_functions = [] }

let classes_of findings = List.sort_uniq compare (List.map (fun (f : O.finding) -> f.cls) findings)

let trace_unit_tests =
  [
    unit "UE fires only for failing unchecked calls in successful txs" (fun () ->
        let call ~success ~id =
          Evm.Trace.External_call
            { id; pc = 10; kind = Evm.Trace.Call; target = U.one;
              target_taint = 0; value = U.zero; gas = 50_000; success;
              caller_guard_before = false }
        in
        let f trace tx_success =
          classes_of (O.inspect_trace ~static:static_none ~tx_index:0 ~tx_success trace)
        in
        (* failing + unchecked + tx success -> UE *)
        Alcotest.(check bool) "fires" true
          (List.mem O.UE (f (mk_trace [ call ~success:false ~id:0 ]) true));
        (* successful call -> no UE *)
        Alcotest.(check bool) "ok call silent" false
          (List.mem O.UE (f (mk_trace [ call ~success:true ~id:0 ]) true));
        (* failing but checked -> no UE *)
        Alcotest.(check bool) "checked silent" false
          (List.mem O.UE
             (f
                (mk_trace
                   [ call ~success:false ~id:0;
                     Evm.Trace.Call_result_checked { call_id = 0 } ])
                true));
        (* failing + unchecked but the tx reverted -> no UE *)
        Alcotest.(check bool) "reverted tx silent" false
          (List.mem O.UE (f (mk_trace [ call ~success:false ~id:0 ]) false)));
    unit "IO needs influenceable taint and a successful tx" (fun () ->
        let ov taint = Evm.Trace.Arith_overflow { pc = 5; op = "ADD"; taint } in
        let f trace tx_success =
          classes_of (O.inspect_trace ~static:static_none ~tx_index:0 ~tx_success trace)
        in
        Alcotest.(check bool) "calldata taint fires" true
          (List.mem O.IO (f (mk_trace [ ov Evm.Trace.Taint.calldata ]) true));
        Alcotest.(check bool) "untainted silent" false
          (List.mem O.IO (f (mk_trace [ ov Evm.Trace.Taint.none ]) true));
        Alcotest.(check bool) "block taint alone silent" false
          (List.mem O.IO (f (mk_trace [ ov Evm.Trace.Taint.block ]) true));
        Alcotest.(check bool) "reverted tx silent" false
          (List.mem O.IO (f (mk_trace [ ov Evm.Trace.Taint.calldata ]) false)));
    unit "RE needs a state write after a risky call" (fun () ->
        let call =
          Evm.Trace.External_call
            { id = 0; pc = 10; kind = Evm.Trace.Call; target = U.one;
              target_taint = Evm.Trace.Taint.caller; value = U.one; gas = 50_000;
              success = true; caller_guard_before = false }
        in
        let write after =
          Evm.Trace.Storage_write
            { slot = U.one; value = U.one; pc = 20; after_external_call = after }
        in
        let f events =
          classes_of (O.inspect_trace ~static:static_none ~tx_index:0 ~tx_success:true
                        (mk_trace events))
        in
        Alcotest.(check bool) "call + post-write fires" true
          (List.mem O.RE (f [ call; write true ]));
        Alcotest.(check bool) "call alone silent" false (List.mem O.RE (f [ call ]));
        Alcotest.(check bool) "pre-write alone silent" false
          (List.mem O.RE (f [ write false; call ])));
    unit "US respects the caller guard" (fun () ->
        let sd guarded =
          Evm.Trace.Selfdestruct
            { pc = 3; caller_guard_before = guarded; beneficiary_taint = 0 }
        in
        let f events =
          classes_of (O.inspect_trace ~static:static_none ~tx_index:0 ~tx_success:true
                        (mk_trace events))
        in
        Alcotest.(check bool) "unguarded fires" true (List.mem O.US (f [ sd false ]));
        Alcotest.(check bool) "guarded silent" false (List.mem O.US (f [ sd true ])));
    unit "SE fires only on strict equality" (fun () ->
        let bc strict = Evm.Trace.Balance_compare { pc = 4; strict_eq = strict } in
        let f events =
          classes_of (O.inspect_trace ~static:static_none ~tx_index:0 ~tx_success:true
                        (mk_trace events))
        in
        Alcotest.(check bool) "eq fires" true (List.mem O.SE (f [ bc true ]));
        Alcotest.(check bool) "lt silent" false (List.mem O.SE (f [ bc false ])));
    unit "UD needs a calldata-tainted target" (fun () ->
        let dc taint =
          Evm.Trace.External_call
            { id = 0; pc = 8; kind = Evm.Trace.Delegatecall; target = U.one;
              target_taint = taint; value = U.zero; gas = 50_000; success = true;
              caller_guard_before = false }
        in
        let f events =
          classes_of (O.inspect_trace ~static:static_none ~tx_index:0 ~tx_success:true
                        (mk_trace events))
        in
        Alcotest.(check bool) "calldata fires" true
          (List.mem O.UD (f [ dc Evm.Trace.Taint.calldata ]));
        Alcotest.(check bool) "storage target silent" false
          (List.mem O.UD (f [ dc Evm.Trace.Taint.storage ])));
  ]

let suite = suite @ [ ("oracles: trace units", trace_unit_tests) ]
