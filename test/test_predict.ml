(* Input prediction: solver laws at the value level, replay laws through
   the interpreter (a proposed value really flips the branch it targets),
   mask-respecting injection, the config/checkpoint codec extensions, and
   the headline differential — a magic-value guard the random mutator
   cannot pass falls to [--predict] within the same budget. *)

module U = Word.U256
module J = Telemetry.Json
module T = Evm.Trace
module S = Predict.Solver
module I = Predict.Inject
module Op = Evm.Opcode

let unit name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let qprop name ?(count = 300) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* same mixed generator as test_u256: full-width words plus the small
   and boundary values where comparison corner cases live *)
let gen_u256 =
  QCheck2.Gen.(
    oneof
      [
        (let* a = int64 and* b = int64 and* c = int64 and* d = int64 in
         return
           (U.logor
              (U.shift_left (U.of_int64 a) 192)
              (U.logor
                 (U.shift_left (U.of_int64 b) 128)
                 (U.logor (U.shift_left (U.of_int64 c) 64) (U.of_int64 d)))));
        map (fun n -> U.of_int (abs n)) small_int;
        oneofl
          [
            U.zero; U.one; U.max_value; U.sub U.max_value U.one;
            U.shift_left U.one 255; U.sub (U.shift_left U.one 128) U.one;
          ];
      ])

let all_ops = [ T.Ceq; T.Clt; T.Cgt; T.Cslt; T.Csgt; T.Ciszero ]

let gen_cmp =
  QCheck2.Gen.(
    let* cmp_op = oneofl all_ops
    and* lhs = gen_u256
    and* rhs = gen_u256
    and* negated = bool in
    return
      {
        T.cmp_pc = 0; cmp_op; lhs; rhs;
        lhs_taint = T.Taint.calldata; rhs_taint = T.Taint.calldata;
        negated;
      })

let print_cmp (c : T.comparison) =
  Printf.sprintf "%s lhs=%s rhs=%s neg=%b"
    (T.cmp_op_to_string c.cmp_op) (U.to_decimal_string c.lhs)
    (U.to_decimal_string c.rhs) c.negated

(* ---------------- solver laws ---------------- *)

let solver_tests =
  [
    qprop "every candidate flips the condition to want" ~print:print_cmp
      gen_cmp (fun cmp ->
        List.for_all
          (fun want ->
            List.for_all
              (fun (side, v) ->
                let lhs, rhs =
                  match side with
                  | S.Lhs -> (v, cmp.T.rhs)
                  | S.Rhs -> (cmp.T.lhs, v)
                in
                S.eval_cond cmp ~lhs ~rhs = want)
              (S.candidates cmp ~want))
          [ true; false ]);
    qprop "uncontrolled operands propose nothing" ~print:print_cmp gen_cmp
      (fun cmp ->
        let cmp =
          { cmp with T.lhs_taint = T.Taint.storage; rhs_taint = T.Taint.block }
        in
        S.candidates cmp ~want:true = []
        && S.candidates cmp ~want:false = []
        && S.controlled_sides cmp = []);
    qprop "EQ with want=true proposes the exact magic value"
      ~print:(fun (a, b) ->
        U.to_decimal_string a ^ ", " ^ U.to_decimal_string b)
      QCheck2.Gen.(pair gen_u256 gen_u256)
      (fun (lhs, rhs) ->
        QCheck2.assume (not (U.equal lhs rhs));
        let cmp =
          { T.cmp_pc = 0; cmp_op = T.Ceq; lhs; rhs;
            lhs_taint = T.Taint.none; rhs_taint = T.Taint.calldata;
            negated = false }
        in
        List.exists
          (fun (side, v) -> side = S.Rhs && U.equal v lhs)
          (S.candidates cmp ~want:true));
    unit "input_controlled covers calldata, callvalue and caller only"
      (fun () ->
        List.iter
          (fun (t, expect) ->
            Alcotest.(check bool) "taint class" expect (S.input_controlled t))
          [
            (T.Taint.calldata, true); (T.Taint.callvalue, true);
            (T.Taint.caller, true); (T.Taint.storage, false);
            (T.Taint.block, false); (T.Taint.balance, false);
            (T.Taint.origin, false); (T.Taint.callresult, false);
            (T.Taint.union T.Taint.storage T.Taint.calldata, true);
          ]);
  ]

(* ---------------- replay laws through the interpreter ---------------- *)

(* PUSH 0; CALLDATALOAD; <prepare>; PUSH dest; JUMPI; STOP; JUMPDEST;
   STOP — the branch condition derives from the first calldata word, so
   every solver proposal maps back onto the data by construction. *)
let branch_program prepare =
  let pre = [ Op.PUSH U.zero; Op.CALLDATALOAD ] @ prepare in
  let dest = List.length pre + 3 in
  pre @ [ Op.PUSH (U.of_int dest); Op.JUMPI; Op.STOP; Op.JUMPDEST; Op.STOP ]

let addr_a = U.of_int 0xA
let addr_b = U.of_int 0xB

let run_data code data =
  let state = Evm.State.set_code Evm.State.empty addr_a (Array.of_list code) in
  let _, trace =
    Evm.Interp.execute ~block:Evm.Interp.default_block ~state
      {
        caller = addr_b; origin = addr_b; callee = addr_a; value = U.zero;
        data; gas = 1_000_000;
      }
  in
  trace

let find_branch (trace : T.t) =
  List.find_map
    (function
      | T.Branch { pc; taken; cmp; _ } -> Some (pc, taken, cmp) | _ -> None)
    trace.T.events

let replay_case name prepare d0 =
  unit name (fun () ->
      let code = branch_program prepare in
      match find_branch (run_data code (U.to_bytes_be d0)) with
      | None -> Alcotest.fail "no branch recorded"
      | Some (_, _, None) -> Alcotest.fail "branch carries no comparison"
      | Some (pc, taken, Some cmp) ->
        let controlled = S.controlled_sides cmp in
        Alcotest.(check bool) "some side is input-controlled" true
          (controlled <> []);
        List.iter
          (fun (t, v) ->
            if S.input_controlled t then
              Alcotest.(check bool) "controlled operand is the data word"
                true (U.equal v d0))
          [ (cmp.T.lhs_taint, cmp.T.lhs); (cmp.T.rhs_taint, cmp.T.rhs) ];
        let want = not taken in
        let cands = S.candidates cmp ~want in
        Alcotest.(check bool) "solver proposes something" true (cands <> []);
        List.iter
          (fun (_, v) ->
            match find_branch (run_data code (U.to_bytes_be v)) with
            | Some (pc', taken', _) ->
              Alcotest.(check int) "same branch" pc pc';
              Alcotest.(check bool)
                (Printf.sprintf "value %s flips the branch"
                   (U.to_decimal_string v))
                want taken'
            | None -> Alcotest.fail "branch vanished on replay")
          cands)

let magic = U.of_decimal_string "3163536527"
let neg n = U.sub U.zero (U.of_int n)

let replay_tests =
  [
    replay_case "EQ: exact magic value" [ Op.PUSH magic; Op.EQ ] U.one;
    replay_case "EQ negated: any differing value"
      [ Op.PUSH magic; Op.EQ; Op.ISZERO ] magic;
    replay_case "LT: boundary above" [ Op.PUSH (U.of_int 1000); Op.LT ]
      (U.of_int 3);
    replay_case "LT: boundary below" [ Op.PUSH (U.of_int 1000); Op.LT ]
      (U.of_int 5000);
    replay_case "GT: boundary below" [ Op.PUSH (U.of_int 1000); Op.GT ]
      (U.of_int 5000);
    replay_case "SLT: signed boundary" [ Op.PUSH (neg 5); Op.SLT ] (neg 10);
    replay_case "SGT: signed boundary" [ Op.PUSH (neg 5); Op.SGT ] (neg 1);
    replay_case "ISZERO: zero test both ways" [ Op.ISZERO ] (U.of_int 7);
    replay_case "ISZERO from zero" [ Op.ISZERO ] U.zero;
  ]

(* ---------------- injection laws ---------------- *)

let stream_of_words ws =
  String.concat "" (List.map U.to_bytes_be ws)

let inject_tests =
  [
    unit "windows: calldata words then none past args_len" (fun () ->
        Alcotest.(check (list int)) "two arg words" [ 0; 32 ]
          (I.windows ~taint:T.Taint.calldata ~args_len:64 ~stream_len:96);
        Alcotest.(check (list int)) "value word" [ 64 ]
          (I.windows ~taint:T.Taint.callvalue ~args_len:64 ~stream_len:96);
        Alcotest.(check (list int)) "short stream drops windows" []
          (I.windows ~taint:T.Taint.calldata ~args_len:32 ~stream_len:16));
    qprop "patch writes exactly the value and only where allowed"
      ~print:U.to_decimal_string gen_u256 (fun v ->
        let stream = stream_of_words [ U.of_int 5; U.of_int 7 ] in
        (match I.patch ~allow:(fun _ -> true) ~stream ~at:0 v with
        | Some s' ->
          U.equal (I.read_window s' 0) v
          && String.sub s' 32 32 = String.sub stream 32 32
        | None -> U.equal v (U.of_int 5) (* only the no-op is refused *))
        &&
        (* allow nothing: any change is refused *)
        match I.patch ~allow:(fun _ -> false) ~stream ~at:0 v with
        | None -> true
        | Some _ -> false);
    unit "patch refuses partial windows and no-ops" (fun () ->
        let stream = stream_of_words [ magic; U.zero ] in
        Alcotest.(check bool) "no-op refused" true
          (I.patch ~allow:(fun _ -> true) ~stream ~at:0 magic = None);
        Alcotest.(check bool) "window past end refused" true
          (I.patch ~allow:(fun _ -> true) ~stream ~at:48 U.one = None);
        (* the low bytes of [magic] must change but are protected *)
        Alcotest.(check bool) "protected byte vetoes the whole window" true
          (I.patch ~allow:(fun pos -> pos < 28) ~stream ~at:0 U.one = None));
    unit "patches ranks the window matching the observed operand first"
      (fun () ->
        let stream = stream_of_words [ U.of_int 5; U.of_int 7; U.zero ] in
        match
          I.patches ~allow:(fun _ -> true) ~taint:T.Taint.calldata
            ~current:(U.of_int 7) ~args_len:64 ~stream magic
        with
        | first :: _ ->
          Alcotest.(check bool) "second word patched first" true
            (U.equal (I.read_window first 32) magic);
          Alcotest.(check bool) "first word untouched in ranked patch" true
            (U.equal (I.read_window first 0) (U.of_int 5))
        | [] -> Alcotest.fail "no patches produced");
  ]

(* ---------------- codec extensions ---------------- *)

let strict_guard = Minisol.Contract.compile Corpus.Examples.strict_guard
let guarded_token = Minisol.Contract.compile Corpus.Examples.guarded_token

let json_update key f = function
  | J.Obj fields ->
    J.Obj (List.map (fun (k, v) -> if k = key then (k, f v) else (k, v)) fields)
  | j -> j

let json_drop key = function
  | J.Obj fields -> J.Obj (List.filter (fun (k, _) -> k <> key) fields)
  | j -> j

let codec_tests =
  [
    unit "config round-trips the predict knobs" (fun () ->
        let c =
          { Mufuzz.Config.default with predict = true; predict_attempts = 3;
            predict_max_candidates = 4 }
        in
        match
          Mufuzz.Config.of_json ~abi:strict_guard.Minisol.Contract.abi
            (Mufuzz.Config.to_json c)
        with
        | Error e -> Alcotest.fail e
        | Ok c' ->
          Alcotest.(check bool) "predict" true c'.Mufuzz.Config.predict;
          Alcotest.(check int) "attempts" 3 c'.Mufuzz.Config.predict_attempts;
          Alcotest.(check int) "candidates" 4
            c'.Mufuzz.Config.predict_max_candidates);
    unit "config decode tolerates missing predict fields" (fun () ->
        let j =
          List.fold_left
            (fun j k -> json_drop k j)
            (Mufuzz.Config.to_json Mufuzz.Config.default)
            [ "predict"; "predict_attempts"; "predict_max_candidates" ]
        in
        match Mufuzz.Config.of_json ~abi:strict_guard.Minisol.Contract.abi j with
        | Error e -> Alcotest.fail e
        | Ok c ->
          Alcotest.(check bool) "defaults off" false c.Mufuzz.Config.predict;
          Alcotest.(check int) "default attempts"
            Mufuzz.Config.default.predict_attempts
            c.Mufuzz.Config.predict_attempts);
  ]

(* a real mid-run snapshot to wrap in checkpoints *)
let small_snapshot =
  lazy
    (let snap = ref None in
     let hook ~final ~bus:_ ~execs thunk =
       if (not final) && execs >= 200 && Option.is_none !snap then
         snap := Some (thunk ())
     in
     let config =
       { Mufuzz.Config.default with max_executions = 600; rng_seed = 5L }
     in
     ignore (Mufuzz.Campaign.run ~config ~on_safe_point:hook strict_guard);
     match !snap with
     | Some s -> (config, s)
     | None -> Alcotest.fail "campaign never hit a safe point")

let checkpoint_tests =
  [
    slow "checkpoint round-trips sn_attempts including backoff" (fun () ->
        let config, s = Lazy.force small_snapshot in
        let s =
          { s with Mufuzz.Campaign.sn_attempts = [ ((5, true), 3); ((9, false), -2) ] }
        in
        let t =
          { Persist.Checkpoint.tool = "mufuzz"; config;
            contract = strict_guard; snapshot = s }
        in
        match Persist.Checkpoint.of_json (Persist.Checkpoint.to_json t) with
        | Error e -> Alcotest.fail e
        | Ok t' ->
          Alcotest.(check (list (pair (pair int bool) int)))
            "attempts preserved" s.Mufuzz.Campaign.sn_attempts
            t'.Persist.Checkpoint.snapshot.Mufuzz.Campaign.sn_attempts);
    slow "v1 checkpoints (no attempts field) still load" (fun () ->
        let config, s = Lazy.force small_snapshot in
        let t =
          { Persist.Checkpoint.tool = "mufuzz"; config;
            contract = strict_guard; snapshot = s }
        in
        let j =
          Persist.Checkpoint.to_json t
          |> json_update "version" (fun _ -> J.Int 1)
          |> json_update "snapshot" (json_drop "attempts")
        in
        match Persist.Checkpoint.of_json j with
        | Error e -> Alcotest.fail e
        | Ok t' ->
          Alcotest.(check (list (pair (pair int bool) int)))
            "attempts default to empty" []
            t'.Persist.Checkpoint.snapshot.Mufuzz.Campaign.sn_attempts);
  ]

(* ---------------- campaign-level differential ---------------- *)

(* Locate the guard branch dynamically: run a probe sequence and find
   the branch whose comparison mentions [magic]; the uncovered target is
   the opposite of the observed side. *)
let guard_side contract fn_name magic =
  let fn =
    List.find
      (fun (f : Abi.func) -> f.Abi.name = fn_name)
      contract.Minisol.Contract.abi
  in
  let ctor =
    List.find
      (fun (f : Abi.func) -> f.Abi.is_constructor)
      contract.Minisol.Contract.abi
  in
  let mk fn =
    let n = Abi.args_byte_length fn + 32 in
    { Mufuzz.Seed.fn; stream = String.make n '\000'; sender = 0 }
  in
  let seed = { Mufuzz.Seed.txs = [ mk ctor; mk fn ] } in
  let ctx =
    Mufuzz.Executor.make_ctx ~contract ~gas:1_000_000 ~n_senders:3
      ~attacker:false ()
  in
  let run = Mufuzz.Executor.run_in_ctx ctx seed in
  match
    List.find_map
      (fun (r : Mufuzz.Executor.tx_result) ->
        List.find_map
          (function
            | T.Branch { pc; taken; cmp = Some c; _ }
              when U.equal c.T.lhs magic || U.equal c.T.rhs magic ->
              Some (pc, not taken)
            | _ -> None)
          r.trace.T.events)
      run.tx_results
  with
  | Some side -> side
  | None -> Alcotest.fail "guard comparison not found in probe run"

let counter_value metrics name =
  Telemetry.Metrics.value (Telemetry.Metrics.counter metrics name)

let diff_config predict =
  { Mufuzz.Config.default with max_executions = 1200; rng_seed = 7L; predict;
    predict_attempts = 10 }

let differential_tests =
  [
    slow "predict covers the magic-value guard; the control cannot"
      (fun () ->
        let guard = guard_side strict_guard "open" magic in
        let m0 = Telemetry.Metrics.create () in
        let control =
          Mufuzz.Campaign.run ~config:(diff_config false) ~metrics:m0
            strict_guard
        in
        Alcotest.(check bool) "control misses the guard" false
          (List.mem guard control.Mufuzz.Report.covered);
        Alcotest.(check int) "prediction inert when off" 0
          (counter_value m0 "mufuzz_predict_proposed_total");
        let m1 = Telemetry.Metrics.create () in
        let predicted =
          Mufuzz.Campaign.run ~config:(diff_config true) ~metrics:m1
            strict_guard
        in
        Alcotest.(check bool) "predict covers the guard" true
          (List.mem guard predicted.Mufuzz.Report.covered);
        Alcotest.(check bool) "proposals were spent" true
          (counter_value m1 "mufuzz_predict_proposed_total" > 0);
        Alcotest.(check bool) "at least one flip recorded" true
          (counter_value m1 "mufuzz_predict_flipped_total" >= 1));
    slow "parallel predict flips the guard and stays deterministic"
      (fun () ->
        let guard = guard_side strict_guard "open" magic in
        let config = { (diff_config true) with jobs = 2 } in
        let m = Telemetry.Metrics.create () in
        let r1 = Mufuzz.Campaign.run ~config ~metrics:m strict_guard in
        Alcotest.(check bool) "jobs=2 covers the guard" true
          (List.mem guard r1.Mufuzz.Report.covered);
        Alcotest.(check bool) "jobs=2 flips via prediction" true
          (counter_value m "mufuzz_predict_flipped_total" >= 1);
        let r2 = Mufuzz.Campaign.run ~config strict_guard in
        Alcotest.(check (list (pair int bool))) "identical coverage on rerun"
          (List.sort compare r1.Mufuzz.Report.covered)
          (List.sort compare r2.Mufuzz.Report.covered));
  ]

(* ---------------- checkpoint/resume equivalence with predict on ------ *)

let normalized report =
  match Mufuzz.Report.to_json report with
  | J.Obj fields ->
    J.to_string
      (J.Obj
         (List.filter
            (fun (k, _) ->
              not
                (List.mem k
                   [ "wall_seconds"; "execs_per_sec"; "steps_per_sec" ]))
            fields))
  | j -> J.to_string j

let resume_tests =
  [
    slow "resumed predict campaign equals the uninterrupted run" (fun () ->
        let config =
          { (diff_config true) with max_executions = 1600; rng_seed = 21L }
        in
        let snap = ref None in
        let hook ~final ~bus:_ ~execs thunk =
          if (not final) && execs >= 500 && Option.is_none !snap then
            snap := Some (thunk ())
        in
        let full =
          Mufuzz.Campaign.run ~config ~on_safe_point:hook strict_guard
        in
        match !snap with
        | None -> Alcotest.fail "no snapshot captured"
        | Some s ->
          let resumed =
            Mufuzz.Campaign.run ~config ~resume:("inline", s) strict_guard
          in
          Alcotest.(check string) "same report modulo wall clock"
            (normalized full) (normalized resumed));
  ]

(* ---------------- dictionary regression ---------------- *)

let dictionary_tests =
  [
    unit "push constants carry the mint guard literal" (fun () ->
        let a = Evm.Bytecode.artifact guarded_token.Minisol.Contract.bytecode in
        Alcotest.(check bool) "1000000000 in dictionary" true
          (Array.exists
             (fun w -> U.equal w (U.of_int 1000000000))
             a.Evm.Bytecode.a_push_constants));
    unit "strict guard product is NOT a push constant" (fun () ->
        (* the differential only means something if the magic value is
           invisible to the dictionary *)
        let a = Evm.Bytecode.artifact strict_guard.Minisol.Contract.bytecode in
        Alcotest.(check bool) "factors present" true
          (Array.exists
             (fun w -> U.equal w (U.of_int 48271))
             a.Evm.Bytecode.a_push_constants);
        Alcotest.(check bool) "product absent" false
          (Array.exists (fun w -> U.equal w magic)
             a.Evm.Bytecode.a_push_constants));
    slow "the word dictionary alone solves the literal mint guard"
      (fun () ->
        let guard = guard_side guarded_token "mint" (U.of_int 1000000000) in
        let config =
          { Mufuzz.Config.default with max_executions = 3000; rng_seed = 11L }
        in
        let r = Mufuzz.Campaign.run ~config guarded_token in
        Alcotest.(check bool) "mint guard pass side covered" true
          (List.mem guard r.Mufuzz.Report.covered));
  ]

let suite =
  [
    ("predict.solver", solver_tests);
    ("predict.replay", replay_tests);
    ("predict.inject", inject_tests);
    ("predict.codec", codec_tests @ checkpoint_tests);
    ("predict.differential", differential_tests @ resume_tests);
    ("predict.dictionary", dictionary_tests);
  ]
