(* The multicore campaign machinery: the domain pool, commutative
   coverage merging, order-independent per-worker RNG streams, and the
   [run_parallel] contract (jobs=1 bit-identical to the sequential
   runner, jobs>1 deterministic and budget-exact). *)

let unit name f = Alcotest.test_case name `Quick f

let qprop name ?(count = 200) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* ------------------------------------------------------------------ *)
(* Coverage.merge                                                      *)

let trace_of events =
  { Evm.Trace.status = Evm.Trace.Success; events; return_data = ""; gas_used = 0; steps = 0 }

let branch (pc, taken, d) =
  Evm.Trace.Branch
    { pc; taken; dist_to_flip = float_of_int d +. 0.5; cond_taint = 0; cmp = None }

(* small pc range so traces collide on branch identities often *)
let events_gen =
  QCheck2.Gen.(
    list_size (int_range 0 20)
      (map branch (triple (int_range 0 7) bool (int_range 0 9))))

let print_events evs =
  String.concat ";"
    (List.map
       (function
         | Evm.Trace.Branch { pc; taken; dist_to_flip; _ } ->
           Printf.sprintf "(%d,%b,%.1f)" pc taken dist_to_flip
         | _ -> "?")
       evs)

let cov_of events =
  let cov = Mufuzz.Coverage.create () in
  ignore (Mufuzz.Coverage.record cov (trace_of events));
  cov

(* the observable state the campaign reads: covered set, frontier, and
   best distance toward every frontier side *)
let observe cov =
  let covered = List.sort compare (Mufuzz.Coverage.covered cov) in
  let frontier = List.sort compare (Mufuzz.Coverage.uncovered_frontier cov) in
  let dists =
    List.map (fun b -> (b, Mufuzz.Coverage.best_distance cov b)) frontier
  in
  (covered, dists, Mufuzz.Coverage.total_sides_known cov)

let merge_tests =
  [
    qprop "merge is commutative" ~count:300
      ~print:(QCheck2.Print.pair print_events print_events)
      QCheck2.Gen.(pair events_gen events_gen)
      (fun (ea, eb) ->
        let ab = cov_of ea and ba = cov_of eb in
        Mufuzz.Coverage.merge ~into:ab (cov_of eb);
        Mufuzz.Coverage.merge ~into:ba (cov_of ea);
        observe ab = observe ba);
    qprop "merge is idempotent" ~count:300 ~print:print_events events_gen
      (fun evs ->
        let dst = cov_of evs in
        Mufuzz.Coverage.merge ~into:dst (cov_of evs);
        let once = observe dst in
        Mufuzz.Coverage.merge ~into:dst (cov_of evs);
        observe dst = once);
    qprop "merge = recording the same traces directly" ~count:300
      ~print:(QCheck2.Print.pair print_events print_events)
      QCheck2.Gen.(pair events_gen events_gen)
      (fun (ea, eb) ->
        let merged = cov_of ea in
        Mufuzz.Coverage.merge ~into:merged (cov_of eb);
        let direct = Mufuzz.Coverage.create () in
        ignore (Mufuzz.Coverage.record direct (trace_of ea));
        ignore (Mufuzz.Coverage.record direct (trace_of eb));
        observe merged = observe direct);
    qprop "merge associates over three shards" ~count:200
      ~print:(QCheck2.Print.triple print_events print_events print_events)
      QCheck2.Gen.(triple events_gen events_gen events_gen)
      (fun (ea, eb, ec) ->
        (* (a<-b)<-c versus a<-(b<-c) *)
        let left = cov_of ea in
        Mufuzz.Coverage.merge ~into:left (cov_of eb);
        Mufuzz.Coverage.merge ~into:left (cov_of ec);
        let bc = cov_of eb in
        Mufuzz.Coverage.merge ~into:bc (cov_of ec);
        let right = cov_of ea in
        Mufuzz.Coverage.merge ~into:right bc;
        observe left = observe right);
  ]

(* ------------------------------------------------------------------ *)
(* Rng.derive                                                          *)

let stream_prefix rng n = List.init n (fun _ -> Util.Rng.next_int64 rng)

let derive_tests =
  [
    qprop "derive is a pure function of (seed, index)" ~count:200
      ~print:QCheck2.Print.(pair int64 int)
      QCheck2.Gen.(pair int64 (int_range 0 64))
      (fun (seed, i) ->
        stream_prefix (Util.Rng.derive seed i) 8
        = stream_prefix (Util.Rng.derive seed i) 8);
    qprop "derived stream independent of sibling derivation order"
      ~count:200
      ~print:QCheck2.Print.(pair int64 int)
      QCheck2.Gen.(pair int64 (int_range 0 16))
      (fun (seed, i) ->
        (* deriving (and drawing from) other indices first must not
           perturb stream [i] *)
        let fresh = stream_prefix (Util.Rng.derive seed i) 8 in
        for j = 16 downto 0 do
          ignore (stream_prefix (Util.Rng.derive seed j) 3)
        done;
        fresh = stream_prefix (Util.Rng.derive seed i) 8);
    qprop "distinct indices give pairwise distinct streams" ~count:200
      ~print:QCheck2.Print.(pair int64 (pair int int))
      QCheck2.Gen.(pair int64 (pair (int_range 0 64) (int_range 0 64)))
      (fun (seed, (i, j)) ->
        i = j
        || stream_prefix (Util.Rng.derive seed i) 4
           <> stream_prefix (Util.Rng.derive seed j) 4);
    unit "derived streams differ from the coordinator stream" (fun () ->
        let coord = stream_prefix (Util.Rng.create 42L) 4 in
        for i = 0 to 7 do
          if stream_prefix (Util.Rng.derive 42L i) 4 = coord then
            Alcotest.failf "stream %d collides with the coordinator" i
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let pool_tests =
  [
    unit "jobs are clamped to >= 1" (fun () ->
        Mufuzz.Pool.with_pool ~jobs:0 (fun p ->
            Alcotest.(check int) "size" 1 (Mufuzz.Pool.size p)));
    unit "run_batch returns results in submission order" (fun () ->
        Mufuzz.Pool.with_pool ~jobs:3 (fun p ->
            let tasks = Array.init 23 (fun i _worker -> i * i) in
            let out = Mufuzz.Pool.run_batch p tasks in
            Alcotest.(check (array int))
              "squares"
              (Array.init 23 (fun i -> i * i))
              out));
    unit "tasks see worker ids in range" (fun () ->
        Mufuzz.Pool.with_pool ~jobs:3 (fun p ->
            let ids = Mufuzz.Pool.run_batch p (Array.make 16 (fun w -> w)) in
            Array.iter
              (fun w ->
                if w < 0 || w >= Mufuzz.Pool.size p then
                  Alcotest.failf "worker id %d out of range" w)
              ids));
    unit "map preserves order across many batches" (fun () ->
        Mufuzz.Pool.with_pool ~jobs:2 (fun p ->
            let items = List.init 50 (fun i -> i) in
            Alcotest.(check (list int))
              "doubled"
              (List.map (fun i -> i * 2) items)
              (Mufuzz.Pool.map p (fun i -> i * 2) items);
            (* pool is reusable: a second batch on the same domains *)
            Alcotest.(check (list string))
              "stringed"
              (List.map string_of_int items)
              (Mufuzz.Pool.map p string_of_int items);
            let s = Mufuzz.Pool.stats p in
            Alcotest.(check int)
              "all tasks accounted"
              100
              (Array.fold_left ( + ) 0 s.tasks_run)));
    unit "task exceptions surface as Task_error after the batch drains"
      (fun () ->
        Mufuzz.Pool.with_pool ~jobs:2 (fun p ->
            (match
               Mufuzz.Pool.run_batch p
                 [| (fun _ -> 1); (fun _ -> failwith "boom"); (fun _ -> 3) |]
             with
            | _ -> Alcotest.fail "expected Task_error"
            | exception Mufuzz.Pool.Task_error (Failure msg) ->
              Alcotest.(check string) "payload" "boom" msg
            | exception Mufuzz.Pool.Task_error e ->
              Alcotest.failf "unexpected payload %s" (Printexc.to_string e));
            (* the pool survives a failed batch *)
            Alcotest.(check (array int))
              "next batch runs" [| 7 |]
              (Mufuzz.Pool.run_batch p [| (fun _ -> 7) |])))
  ]

(* ------------------------------------------------------------------ *)
(* run_parallel                                                        *)

let crowdsale = lazy (Minisol.Contract.compile Corpus.Examples.crowdsale)

let finding_key (f : Oracles.Oracle.finding) = (f.cls, f.pc)

(* everything observable except wall-clock time and per-domain stats *)
let essence (r : Mufuzz.Report.t) =
  ( r.contract_name,
    r.executions,
    r.covered_branches,
    List.sort compare r.covered,
    r.total_branch_sides,
    List.sort compare (List.map finding_key r.findings),
    r.over_time,
    r.seeds_in_queue )

let campaign_tests =
  [
    unit "jobs=1 is the sequential campaign, field for field" (fun () ->
        let config =
          { Mufuzz.Config.default with max_executions = 700; jobs = 1 }
        in
        let c = Lazy.force crowdsale in
        let seq = Mufuzz.Campaign.run ~config c in
        let par = Mufuzz.Campaign.run_parallel ~config c in
        if essence seq <> essence par then
          Alcotest.fail "jobs=1 diverged from the sequential runner";
        (match par.parallel with
        | None -> ()
        | Some _ -> Alcotest.fail "jobs=1 must not report parallel stats");
        Alcotest.(check string)
          "identical text report" (* wall time excepted *)
          (Mufuzz.Report.to_text { seq with wall_seconds = 0.0 })
          (Mufuzz.Report.to_text { par with wall_seconds = 0.0 }));
    unit "jobs=2 is deterministic and budget-exact" (fun () ->
        let config =
          { Mufuzz.Config.default with max_executions = 600; jobs = 2 }
        in
        let c = Lazy.force crowdsale in
        let a = Mufuzz.Campaign.run_parallel ~config c in
        let b = Mufuzz.Campaign.run_parallel ~config c in
        Alcotest.(check int) "budget honoured" 600 a.executions;
        if essence a <> essence b then
          Alcotest.fail "same (rng_seed, jobs) must reproduce";
        match a.parallel with
        | Some p ->
          Alcotest.(check int) "jobs recorded" 2 p.jobs;
          Alcotest.(check int)
            "per-domain execs sum to the total" a.executions
            (List.fold_left
               (fun acc (d : Mufuzz.Report.domain_stat) -> acc + d.d_execs)
               0 p.domains)
        | None -> Alcotest.fail "parallel stats missing");
    unit "jobs=2 finds what the sequential campaign finds" (fun () ->
        (* different schedules explore differently, but on this small
           contract both must cover every side and expose the planted
           bug class *)
        let budget = 800 in
        let c = Lazy.force crowdsale in
        let seq =
          Mufuzz.Campaign.run
            ~config:{ Mufuzz.Config.default with max_executions = budget }
            c
        in
        let par =
          Mufuzz.Campaign.run_parallel
            ~config:
              { Mufuzz.Config.default with max_executions = budget; jobs = 2 }
            c
        in
        Alcotest.(check int)
          "same coverage" seq.covered_branches par.covered_branches;
        Alcotest.(check (list (pair int bool)))
          "same sides"
          (List.sort compare seq.covered)
          (List.sort compare par.covered);
        Alcotest.(check bool)
          "same bug classes" true
          (List.sort_uniq compare
             (List.map (fun (f : Oracles.Oracle.finding) -> f.cls) seq.findings)
          = List.sort_uniq compare
              (List.map (fun (f : Oracles.Oracle.finding) -> f.cls) par.findings)));
    unit "an explicit pool is reusable across campaigns" (fun () ->
        Mufuzz.Pool.with_pool ~jobs:2 (fun pool ->
            let config =
              { Mufuzz.Config.default with max_executions = 300; jobs = 2 }
            in
            let c = Lazy.force crowdsale in
            let a = Mufuzz.Campaign.run_parallel ~config ~pool c in
            let b = Mufuzz.Campaign.run_parallel ~config ~pool c in
            Alcotest.(check bool) "reproducible on a shared pool" true
              (essence a = essence b)));
    unit "run_many preserves input order" (fun () ->
        let c = Lazy.force crowdsale in
        let config =
          { Mufuzz.Config.default with max_executions = 150 }
        in
        Mufuzz.Pool.with_pool ~jobs:2 (fun pool ->
            let names =
              List.map
                (function
                  | Ok (r : Mufuzz.Report.t) -> r.contract_name
                  | Error (f : Mufuzz.Campaign.failure) -> f.failed_contract)
                (Mufuzz.Campaign.run_many ~config ~pool [ c; c; c ])
            in
            Alcotest.(check (list string))
              "order"
              [ c.Minisol.Contract.name; c.name; c.name ]
              names));
    unit "run_many survives a bad corpus member" (fun () ->
        let c = Lazy.force crowdsale in
        (* a contract with no ABI at all cannot even bootstrap a seed:
           its campaign raises — the fleet-robustness regression is that
           the siblings still complete and the failure is structured *)
        let broken = { c with Minisol.Contract.abi = [] } in
        let config = { Mufuzz.Config.default with max_executions = 100 } in
        let results = Mufuzz.Campaign.run_many ~config [ c; broken; c ] in
        (match results with
        | [ Ok a; Error f; Ok b ] ->
          Alcotest.(check string) "first ok" c.Minisol.Contract.name
            a.contract_name;
          Alcotest.(check string) "failure names the contract"
            c.Minisol.Contract.name f.failed_contract;
          Alcotest.(check bool) "failure carries a reason" true
            (String.length f.failed_reason > 0);
          Alcotest.(check string) "third ok" c.Minisol.Contract.name
            b.contract_name
        | _ -> Alcotest.fail "expected [Ok; Error; Ok]");
        ());
  ]

let suite =
  [
    ("parallel: coverage merge", merge_tests);
    ("parallel: rng streams", derive_tests);
    ("parallel: pool", pool_tests);
    ("parallel: campaign", campaign_tests);
  ]
