(* Golden-trace snapshots: the branch-event stream of a fixed seed on
   each example contract, hashed and pinned.

   The fingerprint covers every JUMPI the interpreter reports — pc,
   taken direction and the sFuzz branch distance — across the whole
   transaction sequence. Any change to the compiler, the interpreter's
   branch instrumentation or the seed byte-stream layout shows up here
   as a hash mismatch, and the same seed executed on worker domains
   must fingerprint identically to the sequential run (the --jobs 1 vs
   --jobs 2 determinism contract). *)

let gas = Mufuzz.Config.default.gas_per_tx
let n_senders = Mufuzz.Config.default.n_senders
let attacker = Mufuzz.Config.default.attacker_enabled

(* One fixed seed per contract: the derived sequence, concretised with
   a pinned RNG stream. *)
let fixed_seed (c : Minisol.Contract.t) =
  let rng = Util.Rng.create 7L in
  Mufuzz.Seed.of_sequence rng ~n_senders c.abi
    ("constructor" :: Mufuzz.Campaign.derive_sequence c)

let branch_fingerprint (run : Mufuzz.Executor.run) =
  let buf = Buffer.create 512 in
  List.iter
    (fun (r : Mufuzz.Executor.tx_result) ->
      List.iter
        (fun (e : Evm.Trace.event) ->
          match e with
          | Evm.Trace.Branch { pc; taken; dist_to_flip; _ } ->
            Buffer.add_string buf
              (Printf.sprintf "%d:%d:%b:%h;" r.tx_index pc taken dist_to_flip)
          | _ -> ())
        r.trace.events)
    run.tx_results;
  Crypto.Keccak.hash_hex (Buffer.contents buf)

let fingerprint_of source =
  let c = Minisol.Contract.compile source in
  let seed = fixed_seed c in
  branch_fingerprint
    (Mufuzz.Executor.run_seed ~contract:c ~gas ~n_senders ~attacker seed)

(* Pinned snapshots (regenerate by reading the test failure diff after
   an intentional instrumentation change). *)
let golden =
  [
    ( "crowdsale",
      Corpus.Examples.crowdsale,
      "eee1223ba922f2f7326c23a393c5153f38398272e9f8047c2f611ee45569f97a" );
    ( "guess_number",
      Corpus.Examples.guess_number,
      "db87e4772fedf336a47e661d44d160d5d1d72b0dfe27d6a5705e08c7807b3b99" );
    ( "simple_dao",
      Corpus.Examples.simple_dao,
      "b9e99fe56ffc76f14f43132517d8d9c97c2216c14b76f6ac73a68d3a918ef773" );
    ( "token_overflow",
      Corpus.Examples.token_overflow,
      "11b8896dfc3690c5a194a7cf421d180bfeeae085845b10a4355752f1212d751f" );
  ]

let snapshot_tests =
  List.map
    (fun (name, source, expected) ->
      Alcotest.test_case (name ^ " branch stream matches snapshot") `Quick
        (fun () ->
          Alcotest.(check string) "golden hash" expected (fingerprint_of source)))
    golden

let determinism_tests =
  [
    Alcotest.test_case "fingerprint is stable across repeated runs" `Quick
      (fun () ->
        let h1 = fingerprint_of Corpus.Examples.crowdsale in
        let h2 = fingerprint_of Corpus.Examples.crowdsale in
        Alcotest.(check string) "same hash" h1 h2);
    Alcotest.test_case "state cache does not change the branch stream" `Quick
      (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.simple_dao in
        let seed = fixed_seed c in
        let plain =
          Mufuzz.Executor.run_seed ~contract:c ~gas ~n_senders ~attacker seed
        in
        let cache = Mufuzz.State_cache.create () in
        (* run twice through the same cache: cold, then prefix-hit *)
        let _ =
          Mufuzz.Executor.run_seed ~contract:c ~gas ~n_senders ~attacker ~cache
            seed
        in
        let cached =
          Mufuzz.Executor.run_seed ~contract:c ~gas ~n_senders ~attacker ~cache
            seed
        in
        Alcotest.(check string) "same fingerprint"
          (branch_fingerprint plain)
          (branch_fingerprint cached));
    Alcotest.test_case "worker domains fingerprint like the coordinator"
      `Quick
      (fun () ->
        let contracts =
          List.map
            (fun (_, source, _) -> Minisol.Contract.compile source)
            golden
        in
        let sequential =
          List.map
            (fun c ->
              branch_fingerprint
                (Mufuzz.Executor.run_seed ~contract:c ~gas ~n_senders ~attacker
                   (fixed_seed c)))
            contracts
        in
        let parallel =
          Mufuzz.Pool.with_pool ~jobs:2 (fun pool ->
              Mufuzz.Pool.map pool
                (fun c ->
                  branch_fingerprint
                    (Mufuzz.Executor.run_seed ~contract:c ~gas ~n_senders
                       ~attacker (fixed_seed c)))
                contracts)
        in
        List.iter2
          (fun a b -> Alcotest.(check string) "jobs=1 = jobs=2" a b)
          sequential parallel);
    Alcotest.test_case "campaigns agree across --jobs 1 and --jobs 2" `Slow
      (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let run jobs =
          Mufuzz.Campaign.run_parallel
            ~config:
              { Mufuzz.Config.default with max_executions = 400; jobs }
            c
        in
        let r1 = run 1 and r2 = run 2 in
        let classes (r : Mufuzz.Report.t) =
          List.sort_uniq compare
            (List.map (fun (f : Oracles.Oracle.finding) -> f.cls) r.findings)
        in
        Alcotest.(check bool) "same bug classes" true
          (classes r1 = classes r2));
  ]

let suite =
  [
    ("golden.snapshots", snapshot_tests);
    ("golden.determinism", determinism_tests);
  ]
