(* The telemetry subsystem: JSON codec, event round-trips, ring-buffer
   bounds, lock-free metrics under domain contention, and the campaign
   smoke contract (trace exec-completed count = report executions, in
   both the sequential and the parallel runner). *)

module J = Telemetry.Json
module E = Telemetry.Event
module M = Telemetry.Metrics

let unit name f = Alcotest.test_case name `Quick f

let qprop name ?(count = 300) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let rec json_gen depth =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun n -> J.Int n) (int_range (-1000000) 1000000);
        map (fun f -> J.Float f) (float_range (-1e9) 1e9);
        map (fun s -> J.String s) (string_size (int_range 0 12));
      ]
  in
  if depth = 0 then leaf
  else
    oneof
      [
        leaf;
        map (fun l -> J.List l) (list_size (int_range 0 4) (json_gen (depth - 1)));
        map
          (fun kvs ->
            (* duplicate keys would make round-trip comparison ambiguous *)
            let seen = Hashtbl.create 8 in
            J.Obj
              (List.filter
                 (fun (k, _) ->
                   if Hashtbl.mem seen k then false
                   else (Hashtbl.replace seen k (); true))
                 kvs))
          (list_size (int_range 0 4)
             (QCheck2.Gen.pair (string_size (int_range 0 6)) (json_gen (depth - 1))));
      ]

(* Float printing goes through a shortest-round-trip format, so parsed
   numbers compare equal structurally; Int stays Int because integral
   decimals parse back to Int. *)
let rec json_eq a b =
  match (a, b) with
  | J.Float x, J.Float y -> x = y || (x <> x && y <> y)
  | J.Int x, J.Int y -> x = y
  | J.Int x, J.Float y | J.Float y, J.Int x -> float_of_int x = y
  | J.List xs, J.List ys ->
    List.length xs = List.length ys && List.for_all2 json_eq xs ys
  | J.Obj xs, J.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k, v) (k', v') -> k = k' && json_eq v v') xs ys
  | _ -> a = b

let json_tests =
  [
    qprop "print/parse round trip" ~print:(fun j -> J.to_string j) (json_gen 3)
      (fun j ->
        match J.of_string (J.to_string j) with
        | Ok j' -> json_eq j j'
        | Error e -> QCheck2.Test.fail_reportf "parse error: %s" e);
    unit "escapes round trip" (fun () ->
        let s = "a\"b\\c\nd\te\x01f\xe2\x82\xac" in
        match J.of_string (J.to_string (J.String s)) with
        | Ok (J.String s') -> Alcotest.(check string) "string" s s'
        | Ok _ -> Alcotest.fail "not a string"
        | Error e -> Alcotest.fail e);
    unit "trailing garbage rejected" (fun () ->
        match J.of_string "{} x" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should reject");
    unit "integral decimals parse to Int" (fun () ->
        match J.of_string "[1, 2.5, -3]" with
        | Ok (J.List [ J.Int 1; J.Float 2.5; J.Int (-3) ]) -> ()
        | Ok j -> Alcotest.failf "unexpected parse: %s" (J.to_string j)
        | Error e -> Alcotest.fail e);
    unit "member/accessors" (fun () ->
        let j = J.Obj [ ("a", J.Int 7); ("b", J.Bool true) ] in
        Alcotest.(check (option int)) "a" (Some 7)
          (Option.bind (J.member "a" j) J.to_int);
        Alcotest.(check (option bool)) "b" (Some true)
          (Option.bind (J.member "b" j) J.to_bool);
        Alcotest.(check bool) "missing" true (J.member "c" j = None));
  ]

(* ------------------------------------------------------------------ *)
(* Event JSON round trip                                               *)

let event_gen =
  let open QCheck2.Gen in
  let nat = int_range 0 100000 in
  oneof
    [
      map2 (fun worker fresh -> E.Exec_completed { worker; fresh }) nat bool;
      map3
        (fun pc taken covered -> E.New_branch_side { pc; taken; covered })
        nat bool nat;
      map2 (fun txs queue_len -> E.Seed_enqueued { txs; queue_len }) nat nat;
      map2 (fun tx_index probes -> E.Mask_updated { tx_index; probes }) nat nat;
      map (fun energy -> E.Energy_reassigned { energy }) nat;
      map3
        (fun cls pc tx_index -> E.Finding_raised { cls; pc; tx_index })
        (string_size (int_range 0 8))
        nat nat;
      map2 (fun thief victim -> E.Pool_steal { thief; victim }) nat nat;
      map3
        (fun round execs covered -> E.Batch_merge { round; execs; covered })
        nat nat nat;
      map2
        (fun execs path -> E.Checkpoint_written { execs; path })
        nat (string_size ~gen:printable (int_range 0 30));
      map2
        (fun execs path -> E.Checkpoint_loaded { execs; path })
        nat (string_size ~gen:printable (int_range 0 30));
      map2 (fun shard worker -> E.Fleet_shard_leased { shard; worker }) nat nat;
      map3
        (fun shard contracts failed ->
          E.Fleet_shard_done { shard; contracts; failed })
        nat nat nat;
      map2
        (fun shard worker -> E.Fleet_lease_reassigned { shard; worker })
        nat nat;
    ]

let event_tests =
  [
    qprop "to_json/of_json round trip" ~print:(Format.asprintf "%a" E.pp)
      event_gen (fun ev ->
        match E.of_json (E.to_json ev) with
        | Ok ev' -> ev = ev'
        | Error e -> QCheck2.Test.fail_reportf "of_json: %s" e);
    qprop "JSONL line round trip" ~print:(Format.asprintf "%a" E.pp) event_gen
      (fun ev ->
        (* the full trace pipeline: event -> line -> parse -> event *)
        let line = J.to_string (E.to_json ev) in
        (not (String.contains line '\n'))
        &&
        match Result.bind (J.of_string line) E.of_json with
        | Ok ev' -> ev = ev'
        | Error e -> QCheck2.Test.fail_reportf "round trip: %s" e);
    unit "kind tags are kebab-case and distinct" (fun () ->
        let kinds =
          List.map E.kind
            [
              E.Exec_completed { worker = 0; fresh = false };
              E.New_branch_side { pc = 0; taken = true; covered = 1 };
              E.Seed_enqueued { txs = 1; queue_len = 1 };
              E.Mask_updated { tx_index = 0; probes = 0 };
              E.Energy_reassigned { energy = 1 };
              E.Finding_raised { cls = "RE"; pc = 0; tx_index = 0 };
              E.Pool_steal { thief = 1; victim = 0 };
              E.Batch_merge { round = 1; execs = 1; covered = 1 };
              E.Checkpoint_written { execs = 1; path = "ck/a.json" };
              E.Checkpoint_loaded { execs = 1; path = "ck/a.json" };
              E.Fleet_shard_leased { shard = 0; worker = 1 };
              E.Fleet_shard_done { shard = 0; contracts = 8; failed = 1 };
              E.Fleet_lease_reassigned { shard = 0; worker = 1 };
            ]
        in
        Alcotest.(check int) "distinct" 13 (List.length (List.sort_uniq compare kinds));
        List.iter
          (fun k ->
            Alcotest.(check bool) (k ^ " is kebab") true
              (String.for_all
                 (fun c -> (c >= 'a' && c <= 'z') || c = '-')
                 k))
          kinds);
  ]

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)

let ring_tests =
  [
    unit "capacity bound and oldest-first drop" (fun () ->
        let r = Telemetry.Sink.ring ~capacity:5 in
        let sink = Telemetry.Sink.ring_sink r in
        for i = 1 to 12 do
          sink.on_event (E.Energy_reassigned { energy = i })
        done;
        let kept = Telemetry.Sink.ring_contents r in
        Alcotest.(check int) "at most capacity" 5 (List.length kept);
        Alcotest.(check int) "dropped count" 7 (Telemetry.Sink.ring_dropped r);
        Alcotest.(check (list int)) "newest survive" [ 8; 9; 10; 11; 12 ]
          (List.map
             (function E.Energy_reassigned { energy } -> energy | _ -> -1)
             kept));
    unit "empty ring" (fun () ->
        let r = Telemetry.Sink.ring ~capacity:4 in
        Alcotest.(check int) "no contents" 0
          (List.length (Telemetry.Sink.ring_contents r));
        Alcotest.(check int) "no drops" 0 (Telemetry.Sink.ring_dropped r));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let metrics_tests =
  [
    unit "counter basics and idempotent registration" (fun () ->
        let m = M.create () in
        let c = M.counter m "c_total" ~help:"h" in
        M.incr c;
        M.add c 4;
        Alcotest.(check int) "value" 5 (M.value c);
        let c' = M.counter m "c_total" in
        M.incr c';
        Alcotest.(check int) "same metric" 6 (M.value c);
        (match M.add c (-1) with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "negative add should raise");
        match M.gauge m "c_total" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "kind mismatch should raise");
    unit "gauge goes both ways" (fun () ->
        let m = M.create () in
        let g = M.gauge m "g" in
        M.set g 3.5;
        M.set g 1.25;
        Alcotest.(check (float 0.0)) "last write wins" 1.25 (M.gauge_value g));
    unit "histogram buckets, count and sum" (fun () ->
        let m = M.create () in
        let h = M.histogram m "h" ~buckets:[ 1.0; 10.0 ] in
        List.iter (M.observe h) [ 0.5; 5.0; 50.0 ];
        Alcotest.(check int) "count" 3 (M.histogram_count h);
        Alcotest.(check (float 1e-9)) "sum" 55.5 (M.histogram_sum h);
        match M.histogram m "bad" ~buckets:[ 2.0; 2.0 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "non-increasing buckets should raise");
    unit "N domains sum exactly" (fun () ->
        let m = M.create () in
        let n_domains = 4 and per_domain = 25_000 in
        let c = M.counter m "contended_total" in
        let g = M.gauge m "contended_gauge" in
        let h = M.histogram m "contended_hist" ~buckets:[ 0.5 ] in
        let body () =
          for i = 1 to per_domain do
            M.incr c;
            M.set g (float_of_int i);
            M.observe h (if i land 1 = 0 then 0.25 else 0.75)
          done
        in
        let domains = List.init n_domains (fun _ -> Domain.spawn body) in
        List.iter Domain.join domains;
        Alcotest.(check int) "counter exact" (n_domains * per_domain) (M.value c);
        Alcotest.(check int) "histogram count exact" (n_domains * per_domain)
          (M.histogram_count h);
        Alcotest.(check (float 1e-6)) "histogram sum exact"
          (float_of_int (n_domains * per_domain) *. 0.5)
          (M.histogram_sum h);
        Alcotest.(check (float 0.0)) "gauge holds a written value"
          (float_of_int per_domain) (M.gauge_value g));
    unit "prometheus dump shape" (fun () ->
        let m = M.create () in
        M.incr (M.counter m "z_total" ~help:"last");
        M.set (M.gauge m "a_gauge" ~help:"first") 2.0;
        List.iter (M.observe (M.histogram m "h" ~buckets:[ 1.0 ])) [ 0.5; 3.0 ];
        let dump = M.dump m in
        let find_sub s =
          let n = String.length dump and k = String.length s in
          let rec go i =
            if i + k > n then None
            else if String.sub dump i k = s then Some i
            else go (i + 1)
          in
          go 0
        in
        let has s = find_sub s <> None in
        List.iter
          (fun needle -> Alcotest.(check bool) needle true (has needle))
          [
            "# HELP a_gauge first";
            "# TYPE a_gauge gauge";
            "# TYPE h histogram";
            "h_bucket{le=\"1\"} 1";
            "h_bucket{le=\"+Inf\"} 2";
            "h_sum 3.5";
            "h_count 2";
            "# TYPE z_total counter";
            "z_total 1";
          ];
        (* deterministic: sorted by name *)
        let pos s = Option.value ~default:(-1) (find_sub s) in
        Alcotest.(check bool) "sorted by name" true
          (pos "a_gauge" < pos "h_bucket" && pos "h_bucket" < pos "z_total"));
  ]

(* ------------------------------------------------------------------ *)
(* Campaign smoke: the trace agrees with the report                    *)

let count_kind events k =
  List.length (List.filter (fun e -> E.kind e = k) events)

let smoke_config budget jobs =
  { Mufuzz.Config.default with max_executions = budget; jobs }

let campaign_tests =
  [
    unit "sequential trace matches the report" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let r = Telemetry.Sink.ring ~capacity:100_000 in
        let metrics = M.create () in
        let report =
          Mufuzz.Campaign.run ~config:(smoke_config 150 1)
            ~sinks:[ Telemetry.Sink.ring_sink r ] ~metrics c
        in
        let events = Telemetry.Sink.ring_contents r in
        Alcotest.(check bool) "trace is non-empty" true (events <> []);
        Alcotest.(check int) "exec-completed = executions" report.executions
          (count_kind events "exec-completed");
        Alcotest.(check int) "new-branch-side = covered sides"
          report.covered_branches
          (count_kind events "new-branch-side");
        Alcotest.(check int) "metrics agree with the report" report.executions
          (M.value (M.counter metrics "mufuzz_executions_total"));
        Alcotest.(check int) "findings counter agrees"
          (List.length report.findings)
          (M.value (M.counter metrics "mufuzz_findings_total")));
    unit "parallel trace matches the report (jobs=2)" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let r = Telemetry.Sink.ring ~capacity:100_000 in
        let metrics = M.create () in
        let report =
          Mufuzz.Campaign.run_parallel ~config:(smoke_config 300 2)
            ~sinks:[ Telemetry.Sink.ring_sink r ] ~metrics c
        in
        let events = Telemetry.Sink.ring_contents r in
        Alcotest.(check int) "exec-completed = executions" report.executions
          (count_kind events "exec-completed");
        Alcotest.(check int) "new-branch-side = covered sides"
          report.covered_branches
          (count_kind events "new-branch-side");
        Alcotest.(check bool) "at least one batch-merge" true
          (count_kind events "batch-merge" >= 1);
        Alcotest.(check int) "metrics agree with the report" report.executions
          (M.value (M.counter metrics "mufuzz_executions_total")));
    unit "telemetry does not perturb the campaign" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let quiet = Mufuzz.Campaign.run ~config:(smoke_config 150 1) c in
        let r = Telemetry.Sink.ring ~capacity:100_000 in
        let traced =
          Mufuzz.Campaign.run ~config:(smoke_config 150 1)
            ~sinks:[ Telemetry.Sink.ring_sink r ] c
        in
        Alcotest.(check string) "identical report text"
          (Mufuzz.Report.to_text { quiet with wall_seconds = 0.0 })
          (Mufuzz.Report.to_text { traced with wall_seconds = 0.0 }));
    unit "report JSON parses and carries the headline numbers" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let report = Mufuzz.Campaign.run ~config:(smoke_config 120 1) c in
        match J.of_string (Mufuzz.Report.to_json_string report) with
        | Error e -> Alcotest.fail e
        | Ok j ->
          let int_field name =
            match Option.bind (J.member name j) J.to_int with
            | Some v -> v
            | None -> Alcotest.failf "missing int field %s" name
          in
          Alcotest.(check int) "executions" report.executions
            (int_field "executions");
          Alcotest.(check int) "covered_branches" report.covered_branches
            (int_field "covered_branches");
          Alcotest.(check bool) "findings list length" true
            (match Option.bind (J.member "findings" j) J.to_list with
            | Some l -> List.length l = List.length report.findings
            | None -> false);
          Alcotest.(check bool) "covered list length" true
            (match Option.bind (J.member "covered" j) J.to_list with
            | Some l -> List.length l = report.covered_branches
            | None -> false));
    unit "jsonl sink writes parseable lines" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let path = Filename.temp_file "trace" ".jsonl" in
        let config = { (smoke_config 100 1) with trace_path = Some path } in
        let report = Mufuzz.Campaign.run ~config c in
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        Sys.remove path;
        let events =
          List.rev_map
            (fun line ->
              match Result.bind (J.of_string line) E.of_json with
              | Ok ev -> ev
              | Error e -> Alcotest.failf "bad trace line %S: %s" line e)
            !lines
        in
        Alcotest.(check int) "exec-completed = executions" report.executions
          (count_kind events "exec-completed"));
  ]

let suite =
  [
    ("telemetry: json", json_tests);
    ("telemetry: events", event_tests);
    ("telemetry: ring", ring_tests);
    ("telemetry: metrics", metrics_tests);
    ("telemetry: campaign", campaign_tests);
  ]
