(* The fuzzer core: seeds, mutation operators, masks, coverage tables,
   energy assignment and whole-campaign behaviour (incl. determinism). *)

module U = Word.U256

let unit name f = Alcotest.test_case name `Quick f

let qprop name ?(count = 300) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let fn_u name = { Abi.name; inputs = [ Abi.Uint256 ]; payable = true; is_constructor = false }

let seed_tests =
  [
    unit "stream length = 32*arity + value word" (fun () ->
        Alcotest.(check int) "len" 64 (Mufuzz.Seed.stream_length (fn_u "f")));
    unit "tx_value reads trailing word" (fun () ->
        let tx =
          Mufuzz.Seed.make_tx (fn_u "f") ~sender:0 ~args:(String.make 32 '\000')
            ~value:(U.of_int 777)
        in
        Alcotest.(check string) "777" "777" (U.to_decimal_string (Mufuzz.Seed.tx_value tx)));
    unit "tx_value on truncated stream is zero-extended" (fun () ->
        let tx =
          Mufuzz.Seed.make_tx (fn_u "f") ~sender:0 ~args:"" ~value:U.zero
        in
        let tx = { tx with stream = String.sub tx.stream 0 40 } in
        (* only 8 value bytes remain; must not crash *)
        ignore (Mufuzz.Seed.tx_value tx));
    unit "tx_calldata starts with the selector" (fun () ->
        let f = fn_u "f" in
        let tx = Mufuzz.Seed.make_tx f ~sender:0 ~args:"" ~value:U.zero in
        Alcotest.(check string) "selector" (Abi.selector f)
          (String.sub (Mufuzz.Seed.tx_calldata tx) 0 4));
    unit "of_sequence resolves names" (fun () ->
        let rng = Util.Rng.create 1L in
        let abi = [ fn_u "a"; fn_u "b" ] in
        let seed = Mufuzz.Seed.of_sequence rng ~n_senders:2 abi [ "b"; "a"; "b" ] in
        Alcotest.(check (list string)) "order" [ "b"; "a"; "b" ]
          (List.map (fun (tx : Mufuzz.Seed.tx) -> tx.fn.Abi.name) seed.txs));
    unit "of_sequence rejects unknown names" (fun () ->
        let rng = Util.Rng.create 1L in
        match Mufuzz.Seed.of_sequence rng ~n_senders:1 [ fn_u "a" ] [ "zz" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "should raise");
    unit "address dictionary biases address args to live accounts" (fun () ->
        let rng = Util.Rng.create 3L in
        let f =
          { Abi.name = "g"; inputs = [ Abi.Address ]; payable = false;
            is_constructor = false }
        in
        let pool = Mufuzz.Accounts.address_dictionary 3 in
        let hits = ref 0 in
        for _ = 1 to 100 do
          let tx = Mufuzz.Seed.random_tx rng ~n_senders:3 f in
          let w = U.of_bytes_be (String.sub tx.stream 0 32) in
          if List.exists (U.equal w) pool then incr hits
        done;
        Alcotest.(check bool) "mostly pool addresses" true (!hits > 50));
  ]

let mutation_gen = QCheck2.Gen.(pair (string_size (int_range 0 96)) small_int)

let mutation_tests =
  [
    qprop "O preserves length" ~print:(fun (s, p) -> Printf.sprintf "%d@%d" (String.length s) p)
      mutation_gen (fun (s, p) ->
        let rng = Util.Rng.create (Int64.of_int p) in
        let out = Mufuzz.Mutation.apply rng { kind = Mufuzz.Mutation.O; n = 4 } ~pos:p s in
        String.length out = String.length s);
    qprop "I grows length by n" ~print:(fun (s, p) -> Printf.sprintf "%d@%d" (String.length s) p)
      mutation_gen (fun (s, p) ->
        let rng = Util.Rng.create (Int64.of_int p) in
        let out = Mufuzz.Mutation.apply rng { kind = Mufuzz.Mutation.I; n = 3 } ~pos:p s in
        String.length out = String.length s + 3);
    qprop "D never grows" ~print:(fun (s, p) -> Printf.sprintf "%d@%d" (String.length s) p)
      mutation_gen (fun (s, p) ->
        let rng = Util.Rng.create (Int64.of_int p) in
        let out = Mufuzz.Mutation.apply rng { kind = Mufuzz.Mutation.D; n = 5 } ~pos:p s in
        String.length out <= String.length s);
    qprop "R preserves length" ~print:(fun (s, p) -> Printf.sprintf "%d@%d" (String.length s) p)
      mutation_gen (fun (s, p) ->
        let rng = Util.Rng.create (Int64.of_int p) in
        let out = Mufuzz.Mutation.apply rng { kind = Mufuzz.Mutation.R; n = 2 } ~pos:p s in
        String.length out = String.length s);
    unit "dictionary words appear in R word mode" (fun () ->
        let rng = Util.Rng.create 12L in
        let dict = [| U.of_decimal_string "88000000000000000" |] in
        let stream = String.make 64 '\000' in
        let found = ref false in
        for _ = 1 to 500 do
          let out =
            Mufuzz.Mutation.apply ~dict rng
              { kind = Mufuzz.Mutation.R; n = 4 } ~pos:40 stream
          in
          if String.length out = 64 then begin
            let w = U.of_bytes_be (String.sub out 32 32) in
            if U.equal w dict.(0) then found := true
          end
        done;
        Alcotest.(check bool) "dict word injected" true !found);
    unit "empty stream never crashes any operator" (fun () ->
        let rng = Util.Rng.create 5L in
        List.iter
          (fun kind ->
            ignore (Mufuzz.Mutation.apply rng { Mufuzz.Mutation.kind; n = 4 } ~pos:0 ""))
          Mufuzz.Mutation.all_kinds);
    unit "kind indices are distinct" (fun () ->
        let idx = List.map Mufuzz.Mutation.kind_index Mufuzz.Mutation.all_kinds in
        Alcotest.(check (list int)) "0..3" [ 0; 1; 2; 3 ] (List.sort compare idx));
  ]

let mask_tests =
  [
    unit "probe verdicts control admission" (fun () ->
        let rng = Util.Rng.create 1L in
        let stream = String.make 8 'x' in
        (* positions < 4 always good; rest always bad *)
        let calls = ref [] in
        let probe _mutant =
          (* the probe cannot see the position, so drive by call order:
             Algorithm 2 probes position-major, 4 kinds per position *)
          let i = List.length !calls in
          calls := i :: !calls;
          let pos = i / 4 in
          { Mufuzz.Mask.hits_nested = pos < 4; distance_decreased = false }
        in
        let mask = Mufuzz.Mask.compute rng ~stride:1 ~max_probes:1000 ~probe stream in
        List.iter
          (fun kind ->
            Alcotest.(check bool) "pos0 allowed" true
              (Mufuzz.Mask.allows mask kind ~pos:0);
            Alcotest.(check bool) "pos7 denied" false
              (Mufuzz.Mask.allows mask kind ~pos:7))
          Mufuzz.Mutation.all_kinds);
    unit "stride propagates the anchor verdict" (fun () ->
        let rng = Util.Rng.create 2L in
        let stream = String.make 8 'x' in
        let probe _ = { Mufuzz.Mask.hits_nested = true; distance_decreased = false } in
        let mask = Mufuzz.Mask.compute rng ~stride:4 ~max_probes:1000 ~probe stream in
        Alcotest.(check bool) "pos1 inherits pos0" true
          (Mufuzz.Mask.allows mask Mufuzz.Mutation.O ~pos:1));
    unit "allow_all admits everything" (fun () ->
        let mask = Mufuzz.Mask.allow_all 16 in
        Alcotest.(check (float 0.0001)) "fraction" 1.0
          (Mufuzz.Mask.admitted_fraction mask);
        Alcotest.(check bool) "beyond range allowed" true
          (Mufuzz.Mask.allows mask Mufuzz.Mutation.D ~pos:100));
    unit "max_probes caps executions" (fun () ->
        let rng = Util.Rng.create 3L in
        let count = ref 0 in
        let probe _ =
          incr count;
          { Mufuzz.Mask.hits_nested = false; distance_decreased = false }
        in
        ignore (Mufuzz.Mask.compute rng ~stride:1 ~max_probes:10 ~probe (String.make 64 'a'));
        Alcotest.(check int) "ten probes" 10 !count);
  ]

let coverage_tests =
  [
    unit "record returns true only on new sides" (fun () ->
        let cov = Mufuzz.Coverage.create () in
        let trace taken =
          { Evm.Trace.status = Evm.Trace.Success;
            events = [ Evm.Trace.Branch { pc = 3; taken; dist_to_flip = 2.0;
                                          cond_taint = 0; cmp = None } ];
            return_data = ""; gas_used = 0; steps = 0 }
        in
        Alcotest.(check bool) "first" true (Mufuzz.Coverage.record cov (trace true));
        Alcotest.(check bool) "repeat" false (Mufuzz.Coverage.record cov (trace true));
        Alcotest.(check bool) "other side" true (Mufuzz.Coverage.record cov (trace false)));
    unit "frontier lists uncovered twins" (fun () ->
        let cov = Mufuzz.Coverage.create () in
        let trace =
          { Evm.Trace.status = Evm.Trace.Success;
            events = [ Evm.Trace.Branch { pc = 7; taken = true; dist_to_flip = 5.0;
                                          cond_taint = 0; cmp = None } ];
            return_data = ""; gas_used = 0; steps = 0 }
        in
        ignore (Mufuzz.Coverage.record cov trace);
        Alcotest.(check (list (pair int bool))) "frontier" [ (7, false) ]
          (Mufuzz.Coverage.uncovered_frontier cov);
        Alcotest.(check (option (float 0.001))) "distance" (Some 5.0)
          (Mufuzz.Coverage.best_distance cov (7, false)));
    unit "covering the twin clears its distance" (fun () ->
        let cov = Mufuzz.Coverage.create () in
        let trace taken =
          { Evm.Trace.status = Evm.Trace.Success;
            events = [ Evm.Trace.Branch { pc = 7; taken; dist_to_flip = 5.0;
                                          cond_taint = 0; cmp = None } ];
            return_data = ""; gas_used = 0; steps = 0 }
        in
        ignore (Mufuzz.Coverage.record cov (trace true));
        ignore (Mufuzz.Coverage.record cov (trace false));
        Alcotest.(check (list (pair int bool))) "no frontier" []
          (Mufuzz.Coverage.uncovered_frontier cov));
    unit "trace_min_distance picks the smallest visit" (fun () ->
        let trace =
          { Evm.Trace.status = Evm.Trace.Success;
            events =
              [ Evm.Trace.Branch { pc = 7; taken = true; dist_to_flip = 5.0; cond_taint = 0; cmp = None };
                Evm.Trace.Branch { pc = 7; taken = true; dist_to_flip = 2.0; cond_taint = 0; cmp = None } ];
            return_data = ""; gas_used = 0; steps = 0 }
        in
        Alcotest.(check (option (float 0.001))) "min" (Some 2.0)
          (Mufuzz.Coverage.trace_min_distance trace (7, false)));
  ]

let energy_tests =
  [
    unit "flat when dynamic disabled" (fun () ->
        Alcotest.(check int) "base" 20
          (Mufuzz.Energy.assign ~dynamic:false ~base:20 ~max_energy:100
             ~weights:None ~path:[]));
    unit "weight scales energy up to the cap" (fun () ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace tbl (1, true) 100.0;
        let e =
          Mufuzz.Energy.assign ~dynamic:true ~base:20 ~max_energy:60
            ~weights:(Some tbl) ~path:[ (1, true) ]
        in
        Alcotest.(check int) "capped" 60 e);
    unit "unknown path gets base" (fun () ->
        let tbl = Hashtbl.create 4 in
        let e =
          Mufuzz.Energy.assign ~dynamic:true ~base:20 ~max_energy:60
            ~weights:(Some tbl) ~path:[ (9, false) ]
        in
        Alcotest.(check int) "base" 20 e);
    unit "update decrements, refunds on coverage" (fun () ->
        Alcotest.(check int) "dec" 9 (Mufuzz.Energy.update 10 ~new_coverage:false);
        Alcotest.(check int) "bonus" 12 (Mufuzz.Energy.update 10 ~new_coverage:true));
  ]

let campaign_tests =
  [
    unit "campaign is deterministic for a fixed seed" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let config = { Mufuzz.Config.default with max_executions = 300 } in
        let r1 = Mufuzz.Campaign.run ~config c in
        let r2 = Mufuzz.Campaign.run ~config c in
        Alcotest.(check int) "same coverage" r1.covered_branches r2.covered_branches;
        Alcotest.(check int) "same findings" (List.length r1.findings)
          (List.length r2.findings);
        Alcotest.(check (list (pair int bool))) "same covered set" r1.covered r2.covered);
    unit "different seeds explore differently" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.guess_number in
        let run seed =
          Mufuzz.Campaign.run
            ~config:{ Mufuzz.Config.default with max_executions = 150; rng_seed = seed }
            c
        in
        let r1 = run 1L and r2 = run 2L in
        (* executions equal; exploration may differ — just require both ran *)
        Alcotest.(check int) "budget respected" 150 r1.executions;
        Alcotest.(check int) "budget respected" 150 r2.executions);
    unit "budget is a hard cap" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let r =
          Mufuzz.Campaign.run
            ~config:{ Mufuzz.Config.default with max_executions = 77 } c
        in
        Alcotest.(check int) "exact budget" 77 r.executions);
    unit "checkpoints are monotone" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let r =
          Mufuzz.Campaign.run
            ~config:{ Mufuzz.Config.default with max_executions = 200 } c
        in
        let rec monotone = function
          | (a : Mufuzz.Report.checkpoint) :: (b :: _ as rest) ->
            a.execs <= b.execs && a.covered <= b.covered && monotone rest
          | _ -> true
        in
        Alcotest.(check bool) "monotone" true (monotone r.over_time));
    unit "derive_sequence reproduces the paper's example" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        Alcotest.(check (list string)) "sequence"
          [ "invest"; "refund"; "invest"; "withdraw" ]
          (Mufuzz.Campaign.derive_sequence c));
    unit "campaign on a contract with no functions" (fun () ->
        let c = Minisol.Contract.compile "contract Empty { uint256 x; }" in
        let r =
          Mufuzz.Campaign.run
            ~config:{ Mufuzz.Config.default with max_executions = 50 } c
        in
        Alcotest.(check bool) "terminates with coverage" true (r.covered_branches > 0));
    unit "executor funds senders and runs constructor as deployer" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let rng = Util.Rng.create 4L in
        let seed =
          Mufuzz.Seed.of_sequence rng ~n_senders:3 c.abi [ "constructor"; "invest" ]
        in
        let run = Mufuzz.Executor.run_seed ~contract:c ~gas:1_000_000 ~n_senders:3
            ~attacker:true seed in
        Alcotest.(check int) "two txs" 2 (List.length run.tx_results);
        (* owner slot (3) must hold the deployer regardless of the seed's
           sender choice *)
        Alcotest.(check string) "owner = deployer"
          (U.to_hex_string Mufuzz.Accounts.deployer)
          (U.to_hex_string
             (Evm.State.storage_get run.final_state Mufuzz.Accounts.contract_address
                (U.of_int 3))));
  ]

let suite =
  [
    ("mufuzz: seeds", seed_tests);
    ("mufuzz: mutation", mutation_tests);
    ("mufuzz: mask", mask_tests);
    ("mufuzz: coverage", coverage_tests);
    ("mufuzz: energy", energy_tests);
    ("mufuzz: campaign", campaign_tests);
  ]

let cache_tests =
  [
    unit "state caching is semantically transparent" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let run caching =
          Mufuzz.Campaign.run
            ~config:{ Mufuzz.Config.default with max_executions = 400;
                      state_caching = caching }
            c
        in
        let with_cache = run true and without = run false in
        Alcotest.(check (list (pair int bool))) "same covered set"
          without.covered with_cache.covered;
        Alcotest.(check int) "same findings" (List.length without.findings)
          (List.length with_cache.findings));
    unit "cache hits on repeated prefixes" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let cache = Mufuzz.State_cache.create () in
        let rng = Util.Rng.create 7L in
        let seed =
          Mufuzz.Seed.of_sequence rng ~n_senders:3 c.abi
            [ "constructor"; "invest"; "refund"; "withdraw" ]
        in
        let run s =
          Mufuzz.Executor.run_seed ~contract:c ~gas:1_000_000 ~n_senders:3
            ~attacker:true ~cache s
        in
        let r1 = run seed in
        (* mutate only the last tx: the three-tx prefix must come from cache *)
        let last = List.nth seed.txs 3 in
        let seed2 =
          Mufuzz.Seed.with_tx seed 3 { last with sender = last.sender + 1 }
        in
        let r2 = run seed2 in
        Alcotest.(check bool) "hits recorded" true (Mufuzz.State_cache.hits cache > 0);
        (* prefix traces identical *)
        let b r i = Evm.Trace.branches (List.nth r.Mufuzz.Executor.tx_results i).trace in
        Alcotest.(check (list (pair int bool))) "tx0 same" (b r1 0) (b r2 0);
        Alcotest.(check (list (pair int bool))) "tx2 same" (b r1 2) (b r2 2));
    unit "digest distinguishes stream, sender and function" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let f = List.find (fun (f : Abi.func) -> f.Abi.name = "invest") c.abi in
        let tx = Mufuzz.Seed.make_tx f ~sender:0 ~args:(String.make 32 'a') ~value:U.zero in
        let d0 = Mufuzz.State_cache.digest_tx "" tx in
        Alcotest.(check bool) "sender" true
          (d0 <> Mufuzz.State_cache.digest_tx "" { tx with sender = 1 });
        Alcotest.(check bool) "stream" true
          (d0 <> Mufuzz.State_cache.digest_tx "" { tx with stream = String.make 64 'b' });
        Alcotest.(check bool) "chain" true
          (d0 <> Mufuzz.State_cache.digest_tx d0 tx));
  ]

let suite = suite @ [ ("mufuzz: state cache", cache_tests) ]

let report_tests =
  [
    unit "to_text contains summary and witnesses" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.suicidal in
        let r =
          Mufuzz.Campaign.run
            ~config:{ Mufuzz.Config.default with max_executions = 400 } c
        in
        let text = Mufuzz.Report.to_text r in
        let contains needle =
          let n = String.length needle and m = String.length text in
          let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "has title" true (contains "Suicidal");
        Alcotest.(check bool) "has coverage" true (contains "branch coverage");
        Alcotest.(check bool) "has US class" true (contains "US");
        Alcotest.(check bool) "has growth" true (contains "coverage growth"));
    unit "to_text always prints the final coverage checkpoint" (fun () ->
        (* 45 checkpoints: step = 45/20 = 2, and 44 (the last index) is
           even, so before the fix the final sample depended on parity;
           47 checkpoints give step 2 with an odd last index — both must
           end on the true final value *)
        List.iter
          (fun n ->
            let over_time =
              List.init n (fun i ->
                  { Mufuzz.Report.execs = i + 1; covered = i + 1 })
            in
            let r =
              {
                Mufuzz.Report.contract_name = "T";
                executions = n;
                steps = 0;
                mask_probes = 0;
                predict_proposals = 0;
                covered_branches = n;
                covered = [];
                total_branch_sides = 2 * n;
                findings = [];
                occurrences = [];
                witnesses = [];
                witness_seeds = [];
                over_time;
                seeds_in_queue = 0;
                corpus = [];
                corpus_skipped = [];
                wall_seconds = 0.0;
                stop_reason = Mufuzz.Report.Budget_exhausted;
                parallel = None;
              }
            in
            let text = Mufuzz.Report.to_text r in
            let final = Printf.sprintf "  %6d %4d\n" n n in
            let contains needle =
              let k = String.length needle and m = String.length text in
              let rec go i =
                i + k <= m && (String.sub text i k = needle || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool)
              (Printf.sprintf "final checkpoint printed (n=%d)" n)
              true (contains final))
          [ 1; 2; 19; 20; 45; 46; 47; 100 ]);
    unit "findings_by_class counts match findings" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.suicidal in
        let r =
          Mufuzz.Campaign.run
            ~config:{ Mufuzz.Config.default with max_executions = 400 } c
        in
        let total =
          List.fold_left (fun acc (_, n) -> acc + n) 0
            (Mufuzz.Report.findings_by_class r)
        in
        Alcotest.(check int) "sum" (List.length r.findings) total);
  ]

let cache_property =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"caching transparent on generated contracts" ~count:5
         ~print:Int64.to_string
         QCheck2.Gen.(map Int64.of_int small_int)
         (fun gseed ->
           let spec =
             List.hd
               (Corpus.Generator.population ~seed:gseed ~n:1 Corpus.Generator.Small
                  ~bug_rate:0.3)
           in
           let c = Corpus.Generator.compile spec in
           let run caching =
             Mufuzz.Campaign.run
               ~config:{ Mufuzz.Config.default with max_executions = 120;
                         state_caching = caching }
               c
           in
           let a = run true and b = run false in
           a.covered = b.covered
           && List.length a.findings = List.length b.findings));
  ]

let suite =
  suite @ [ ("mufuzz: report", report_tests); ("mufuzz: cache property", cache_property) ]

let minimize_tests =
  [
    unit "minimized witness still reproduces and is no longer" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.suicidal in
        let config = { Mufuzz.Config.default with max_executions = 500 } in
        let r = Mufuzz.Campaign.run ~config c in
        match
          List.find_opt
            (fun ((f : Oracles.Oracle.finding), _) -> f.cls = Oracles.Oracle.US)
            r.witness_seeds
        with
        | None -> Alcotest.fail "expected a US witness"
        | Some (f, seed) ->
          let shrunk, _ =
            Mufuzz.Minimize.minimize ~contract:c ~gas:config.gas_per_tx
              ~n_senders:config.n_senders ~attacker:true f seed
          in
          Alcotest.(check bool) "reproduces" true
            (Mufuzz.Minimize.reproduces ~contract:c ~gas:config.gas_per_tx
               ~n_senders:config.n_senders ~attacker:true f shrunk);
          Alcotest.(check bool) "not longer" true
            (List.length shrunk.txs <= List.length seed.txs));
    unit "minimal US witness is constructor + destroy" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.suicidal in
        let config = { Mufuzz.Config.default with max_executions = 500 } in
        let r = Mufuzz.Campaign.run ~config c in
        match
          List.find_opt
            (fun ((f : Oracles.Oracle.finding), _) -> f.cls = Oracles.Oracle.US)
            r.witness_seeds
        with
        | None -> Alcotest.fail "expected a US witness"
        | Some (f, seed) ->
          let shrunk, _ =
            Mufuzz.Minimize.minimize ~contract:c ~gas:config.gas_per_tx
              ~n_senders:config.n_senders ~attacker:true f seed
          in
          (* destroy() alone triggers it; constructor may or may not
             survive shrinking depending on order, so allow 1-2 txs *)
          Alcotest.(check bool) "at most 2 txs" true (List.length shrunk.txs <= 2);
          Alcotest.(check bool) "contains destroy" true
            (List.exists
               (fun (tx : Mufuzz.Seed.tx) -> tx.fn.Abi.name = "destroy")
               shrunk.txs));
    unit "non-reproducing seed returned unchanged" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let rng = Util.Rng.create 3L in
        let seed =
          Mufuzz.Seed.of_sequence rng ~n_senders:3 c.abi [ "constructor"; "refund" ]
        in
        let fake = { Oracles.Oracle.cls = Oracles.Oracle.US; pc = 9999;
                     tx_index = 0; detail = "" } in
        let shrunk, _ =
          Mufuzz.Minimize.minimize ~contract:c ~gas:1_000_000 ~n_senders:3
            ~attacker:true fake seed
        in
        Alcotest.(check int) "unchanged" (List.length seed.txs)
          (List.length shrunk.txs));
  ]

let suite = suite @ [ ("mufuzz: minimize", minimize_tests) ]

let replay_tests =
  [
    unit "seed serialisation round trip" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let rng = Util.Rng.create 21L in
        let seed =
          Mufuzz.Seed.of_sequence rng ~n_senders:3 c.abi
            [ "constructor"; "invest"; "refund"; "withdraw" ]
        in
        let s = Mufuzz.Replay.seed_to_string seed in
        let back = Mufuzz.Replay.seed_of_string ~abi:c.abi s in
        Alcotest.(check int) "tx count" 4 (List.length back.txs);
        List.iter2
          (fun (a : Mufuzz.Seed.tx) (b : Mufuzz.Seed.tx) ->
            Alcotest.(check string) "fn" a.fn.Abi.name b.fn.Abi.name;
            Alcotest.(check int) "sender" a.sender b.sender;
            Alcotest.(check string) "stream" a.stream b.stream)
          seed.txs back.txs);
    unit "corpus file round trip" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let rng = Util.Rng.create 22L in
        let seeds =
          List.init 3 (fun _ ->
              Mufuzz.Seed.of_sequence rng ~n_senders:3 c.abi
                [ "constructor"; "invest" ])
        in
        let path = Filename.temp_file "corpus" ".txt" in
        Mufuzz.Replay.save_corpus path seeds;
        let loaded, skipped = Mufuzz.Replay.load_corpus ~abi:c.abi path in
        Sys.remove path;
        Alcotest.(check int) "three seeds" 3 (List.length loaded);
        Alcotest.(check int) "nothing skipped" 0 (List.length skipped));
    unit "corrupt block skipped, rest load" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let rng = Util.Rng.create 23L in
        let seeds =
          List.init 2 (fun _ ->
              Mufuzz.Seed.of_sequence rng ~n_senders:3 c.abi
                [ "constructor"; "invest" ])
        in
        let path = Filename.temp_file "corpus" ".txt" in
        (* good block, corrupt block (unknown function), good block *)
        let oc = open_out path in
        output_string oc (Mufuzz.Replay.seed_to_string (List.nth seeds 0));
        output_string oc "\nnonsense 0 aa\n\n";
        output_string oc (Mufuzz.Replay.seed_to_string (List.nth seeds 1));
        close_out oc;
        let loaded, skipped = Mufuzz.Replay.load_corpus ~abi:c.abi path in
        Sys.remove path;
        Alcotest.(check int) "two seeds survive" 2 (List.length loaded);
        (match skipped with
        | [ (1, reason) ] ->
          Alcotest.(check bool) "reason mentions the function" true
            (String.length reason > 0)
        | _ -> Alcotest.fail "expected exactly block 1 skipped"));
    unit "unknown function rejected" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        match Mufuzz.Replay.seed_of_string ~abi:c.abi "nonsense 0 aa\n" with
        | exception Mufuzz.Replay.Corrupt _ -> ()
        | _ -> Alcotest.fail "should raise");
    unit "campaign accepts a replayed corpus" (fun () ->
        let c = Minisol.Contract.compile Corpus.Examples.crowdsale in
        let r1 =
          Mufuzz.Campaign.run
            ~config:{ Mufuzz.Config.default with max_executions = 200 } c
        in
        (* bootstrap a second campaign from the first one's queue *)
        let r2 =
          Mufuzz.Campaign.run
            ~config:{ Mufuzz.Config.default with max_executions = 200;
                      initial_corpus = r1.corpus }
            c
        in
        Alcotest.(check bool) "at least as much coverage" true
          (r2.covered_branches >= r1.covered_branches - 2))
  ]

let suite = suite @ [ ("mufuzz: replay", replay_tests) ]
