(* lib/fleet: shard codec laws, summary merge algebra, ledger state
   machine, and the worker's kill-and-resume determinism. *)

let qcheck ?(count = 100) ~name ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let temp_dir () = Util.Fileio.temp_dir ~prefix:"fleet-tmp" ()

(* ---------------- shard codec ---------------- *)

let entry_gen =
  let open QCheck2.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let source = string_size ~gen:printable (int_range 0 40) in
  map (fun (name, source) -> { Fleet.Shard.name; source }) (pair name source)

let entries_gen =
  QCheck2.Gen.(list_size (int_range 0 30) entry_gen)

let print_entries es =
  String.concat ";"
    (List.map (fun (e : Fleet.Shard.entry) -> e.name) es)

let read_all ~dir manifest =
  List.concat
    (List.init (Fleet.Shard.shards manifest) (fun k ->
         match
           Fleet.Shard.fold ~dir ~shard:k ~manifest ~init:[]
             ~f:(fun acc _ e -> e :: acc)
         with
         | Ok acc -> List.rev acc
         | Error e -> Alcotest.failf "shard %d: %s" k e))

let shard_roundtrip =
  qcheck ~name:"shard: write/fold round-trips any corpus"
    ~print:(fun (es, k) -> Printf.sprintf "%s k=%d" (print_entries es) k)
    QCheck2.Gen.(pair entries_gen (int_range 1 5))
    (fun (entries, shards) ->
      Util.Fileio.with_temp_dir ~prefix:"fleet-rt" (fun dir ->
          let m = Fleet.Shard.write_list ~dir ~shards entries in
          let m' =
            match Fleet.Shard.load_manifest dir with
            | Ok m' -> m'
            | Error e -> Alcotest.failf "manifest: %s" e
          in
          (* manifest counts agree with the written split *)
          let counted =
            List.fold_left
              (fun n (s : Fleet.Shard.shard_info) -> n + s.si_count)
              0 m'.Fleet.Shard.m_shards
          in
          m = m'
          && counted = List.length entries
          && read_all ~dir m' = entries))

let corrupt_file path f =
  let s = Util.Fileio.read_file path in
  Util.Fileio.write_atomic path (f s)

(* replace the first occurrence of [pat] in [s] with [rep] *)
let replace_first ~pat ~rep s =
  let n = String.length s and np = String.length pat in
  let rec find i =
    if i + np > n then None
    else if String.sub s i np = pat then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "pattern %S not found" pat
  | Some i -> String.sub s 0 i ^ rep ^ String.sub s (i + np) (n - i - np)

let expect_fold_error ~dir what =
  match Fleet.Shard.load_manifest dir with
  | Error _ -> () (* manifest-level rejection also counts *)
  | Ok m -> (
    match
      Fleet.Shard.fold ~dir ~shard:0 ~manifest:m ~init:0 ~f:(fun n _ _ -> n + 1)
    with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: corruption accepted" what)

let some_entries =
  List.init 6 (fun i ->
      { Fleet.Shard.name = Printf.sprintf "c%d" i;
        source = Printf.sprintf "contract C%d {}" i })

let shard_rejects_corruption () =
  let check what f =
    Util.Fileio.with_temp_dir ~prefix:"fleet-corrupt" (fun dir ->
        ignore (Fleet.Shard.write_list ~dir ~shards:2 some_entries);
        f dir;
        expect_fold_error ~dir what)
  in
  check "flipped source byte" (fun dir ->
      corrupt_file
        (Filename.concat dir (Fleet.Shard.shard_file 0))
        (fun s ->
          (* flip a character inside a contract body, not the JSON framing *)
          String.map (fun c -> if c = 'C' then 'X' else c) s));
  check "truncated shard" (fun dir ->
      corrupt_file
        (Filename.concat dir (Fleet.Shard.shard_file 0))
        (fun s -> String.sub s 0 (String.length s - 20)));
  check "trailing garbage" (fun dir ->
      corrupt_file
        (Filename.concat dir (Fleet.Shard.shard_file 0))
        (fun s -> s ^ "{\"name\":\"extra\"}\n"));
  check "version skew" (fun dir ->
      corrupt_file
        (Filename.concat dir (Fleet.Shard.shard_file 0))
        (replace_first ~pat:"\"version\":1" ~rep:"\"version\":99"));
  check "manifest count lie" (fun dir ->
      corrupt_file
        (Filename.concat dir Fleet.Shard.manifest_file)
        (replace_first ~pat:"\"total\":6" ~rep:"\"total\":7"))

let shard_balanced_bounds () =
  (* the contiguous split covers [0, total) exactly once *)
  List.iter
    (fun (total, shards) ->
      let covered =
        List.concat
          (List.init shards (fun k ->
               let a, b = Fleet.Shard.bounds ~total ~shards k in
               List.init (b - a) (fun i -> a + i)))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "bounds %d/%d" total shards)
        (List.init total Fun.id) covered)
    [ (0, 1); (1, 3); (7, 3); (50, 8); (16, 16); (5, 7) ]

(* ---------------- summary algebra ---------------- *)

let obs_gen =
  let open QCheck2.Gen in
  let* total = int_range 0 40 in
  let* final = int_range 0 total in
  let* execs = int_range 1 200 in
  let* steps = int_range 0 10_000 in
  let* curve_points = int_range 0 5 in
  let* over_time =
    list_size (return curve_points)
      (pair (int_range 0 200) (int_range 0 total))
  in
  let* classes =
    list_size (int_range 0 3)
      (pair (oneofl [ "BD"; "IO"; "RE"; "TO" ]) (int_range 1 9))
  in
  return
    {
      Fleet.Summary.o_execs = execs;
      o_steps = steps;
      o_total_sides = total;
      o_final_covered = final;
      o_over_time = over_time;
      o_classes =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) classes;
    }

let summary_gen =
  let open QCheck2.Gen in
  let* folds =
    list_size (int_range 0 8)
      (pair (oneofl [ "MuFuzz"; "sFuzz" ]) (pair (oneofl [ "small"; "large" ]) obs_gen))
  in
  let* failures =
    list_size (int_range 0 3)
      (pair
         (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
         (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)))
  in
  return
    (List.fold_left
       (fun acc (name, reason) -> Fleet.Summary.fold_failure acc ~name ~reason)
       (List.fold_left
          (fun acc (tool, (size, obs)) ->
            Fleet.Summary.contract_done
              (Fleet.Summary.fold acc ~tool ~size ~budget:100 obs))
          (Fleet.Summary.empty ~buckets:5)
          folds)
       failures)

let print_summary s = Fleet.Summary.to_string s

let summary_merge_commutes =
  qcheck ~name:"summary: merge is commutative and associative"
    ~print:(fun (a, (b, c)) ->
      print_summary a ^ " | " ^ print_summary b ^ " | " ^ print_summary c)
    QCheck2.Gen.(pair summary_gen (pair summary_gen summary_gen))
    (fun (a, (b, c)) ->
      let open Fleet.Summary in
      to_string (merge a b) = to_string (merge b a)
      && to_string (merge (merge a b) c) = to_string (merge a (merge b c)))

let summary_json_roundtrip =
  qcheck ~name:"summary: JSON round-trip" ~print:print_summary summary_gen
    (fun s ->
      match Fleet.Summary.of_string (Fleet.Summary.to_string s) with
      | Ok s' -> Fleet.Summary.to_string s' = Fleet.Summary.to_string s
      | Error e -> QCheck2.Test.fail_reportf "decode: %s" e)

let summary_upct () =
  Alcotest.(check int) "50%" 50_000_000 (Fleet.Summary.upct ~total:2 ~covered:1);
  Alcotest.(check int) "0 total" 0 (Fleet.Summary.upct ~total:0 ~covered:0);
  Alcotest.(check int) "rounds" 33_333_333
    (Fleet.Summary.upct ~total:3 ~covered:1);
  Alcotest.(check int) "full" 100_000_000
    (Fleet.Summary.upct ~total:7 ~covered:7)

let summary_bucketing () =
  (* curve buckets replicate the bench harness's coverage_at grid *)
  let obs =
    {
      Fleet.Summary.o_execs = 100;
      o_steps = 0;
      o_total_sides = 10;
      o_final_covered = 8;
      o_over_time = [ (10, 2); (50, 5); (100, 8) ];
      o_classes = [];
    }
  in
  let s =
    Fleet.Summary.fold
      (Fleet.Summary.empty ~buckets:5)
      ~tool:"MuFuzz" ~size:"small" ~budget:100 obs
  in
  let cell = List.assoc ("MuFuzz", "small") s.Fleet.Summary.s_cells in
  (* thresholds 20/40/60/80/100 → covered 2/2/5/5/8 of 10 sides *)
  Alcotest.(check (array int))
    "curve"
    [| 20_000_000; 20_000_000; 50_000_000; 50_000_000; 80_000_000 |]
    cell.Fleet.Summary.c_curve

(* ---------------- config ---------------- *)

let config_roundtrip () =
  let c =
    { Fleet.Config.default with seed = -7L; budget_small = 77; buckets = 4 }
  in
  (match Fleet.Config.of_string (Fleet.Config.to_string c) with
  | Ok c' -> Alcotest.(check string) "round trip" (Fleet.Config.to_string c)
               (Fleet.Config.to_string c')
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool)
    "digest differs on budget change" false
    (Fleet.Config.digest c
    = Fleet.Config.digest { c with budget_small = 78 });
  (match
     Fleet.Config.validate_tools { c with tools = [ "NoSuchFuzzer" ] }
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown tool accepted")

(* ---------------- ledger ---------------- *)

let ledger_state_machine () =
  let l = Fleet.Ledger.create ~manifest_hash:"m" ~config_digest:"c" ~shards:3 in
  let l, s0 = Option.get (Fleet.Ledger.acquire l ~worker:0) in
  let l, s1 = Option.get (Fleet.Ledger.acquire l ~worker:1) in
  Alcotest.(check (pair int int)) "lowest pending first" (0, 1) (s0, s1);
  let l = Fleet.Ledger.mark_done l ~shard:s0 ~contracts:5 ~failed:1 in
  (* worker 1 dies: its lease goes back, counted as a reassignment *)
  let l = Fleet.Ledger.mark_pending l ~shard:s1 in
  Alcotest.(check int) "reassignments" 1 l.Fleet.Ledger.lg_reassignments;
  let l, s1' = Option.get (Fleet.Ledger.acquire l ~worker:2) in
  Alcotest.(check int) "reassigned shard re-leases" s1 s1';
  let l, s2 = Option.get (Fleet.Ledger.acquire l ~worker:0) in
  Alcotest.(check int) "last shard" 2 s2;
  Alcotest.(check bool) "exhausted" true (Fleet.Ledger.acquire l ~worker:9 = None);
  (* coordinator crash: all leases reclaimed *)
  let l, n = Fleet.Ledger.reclaim_all l in
  Alcotest.(check int) "reclaimed" 2 n;
  Alcotest.(check int) "done survives reclaim" 1 (Fleet.Ledger.done_count l);
  Util.Fileio.with_temp_dir ~prefix:"fleet-ledger" (fun dir ->
      Fleet.Ledger.save ~dir l;
      match Fleet.Ledger.load ~dir with
      | Ok (Some l') ->
        Alcotest.(check string) "save/load round trip"
          (Telemetry.Json.to_string (Fleet.Ledger.to_json l))
          (Telemetry.Json.to_string (Fleet.Ledger.to_json l'))
      | Ok None -> Alcotest.fail "ledger vanished"
      | Error e -> Alcotest.fail e)

(* ---------------- worker kill-and-resume determinism -------------- *)

let tiny_corpus dir =
  let specs =
    Corpus.Generator.population ~seed:9L ~n:3 Corpus.Generator.Small
      ~bug_rate:0.5
  in
  let entries =
    List.map
      (fun (s : Corpus.Generator.spec) ->
        { Fleet.Shard.name = s.name; source = s.source })
      specs
  in
  ignore (Fleet.Shard.write_list ~dir ~shards:1 entries)

let tiny_config =
  {
    Fleet.Config.tools = [ "MuFuzz"; "sFuzz" ];
    budget_small = 40;
    budget_large = 60;
    seed = 0L;
    checkpoint_every = 10;
    buckets = 5;
  }

let worker_resume_deterministic () =
  Util.Fileio.with_temp_dir ~prefix:"fleet-resume" (fun root ->
      let corpus = Filename.concat root "corpus" in
      tiny_corpus corpus;
      (* reference: one uninterrupted worker run *)
      let reference =
        match
          Fleet.Worker.run_shard ~state:(Filename.concat root "ref") ~corpus
            ~shard:0 ~config:tiny_config ()
        with
        | Ok s -> Fleet.Summary.to_string s
        | Error e -> Alcotest.fail e
      in
      (* killed run: interrupt at a different safe-point count each
         attempt, resuming in the same state dir until it completes —
         like a worker being SIGKILLed over and over *)
      let state = Filename.concat root "killed" in
      let kills = ref 0 in
      let rec attempt budget =
        let calls = ref 0 in
        let interrupt () =
          incr calls;
          !calls > budget
        in
        match
          Fleet.Worker.run_shard ~interrupt ~state ~corpus ~shard:0
            ~config:tiny_config ()
        with
        | Ok s -> Fleet.Summary.to_string s
        | Error e -> Alcotest.fail e
        | exception Fleet.Worker.Interrupted ->
          incr kills;
          (* vary the kill point so successive attempts die mid-campaign,
             between tools, and between contracts *)
          attempt (budget + 3)
      in
      let resumed = attempt 2 in
      Alcotest.(check bool) "was actually interrupted" true (!kills > 0);
      Alcotest.(check string) "same summary after repeated kills" reference
        resumed;
      (* a third run over the finished state is a no-op replay *)
      match
        Fleet.Worker.run_shard ~state ~corpus ~shard:0 ~config:tiny_config ()
      with
      | Ok s ->
        Alcotest.(check string) "idempotent when complete" reference
          (Fleet.Summary.to_string s)
      | Error e -> Alcotest.fail e)

let worker_records_failures () =
  Util.Fileio.with_temp_dir ~prefix:"fleet-fail" (fun root ->
      let corpus = Filename.concat root "corpus" in
      let entries =
        [
          { Fleet.Shard.name = "ok";
            source = "contract Ok { uint x; function f() public { x = 1; } }" };
          { Fleet.Shard.name = "broken"; source = "contract {{{" };
        ]
      in
      ignore (Fleet.Shard.write_list ~dir:corpus ~shards:1 entries);
      let config = { tiny_config with tools = [ "MuFuzz" ] } in
      match
        Fleet.Worker.run_shard ~state:(Filename.concat root "st") ~corpus
          ~shard:0 ~config ()
      with
      | Error e -> Alcotest.fail e
      | Ok s ->
        Alcotest.(check int) "both contracts counted" 2
          s.Fleet.Summary.s_contracts;
        Alcotest.(check int) "one failure" 1
          (List.length s.Fleet.Summary.s_failed);
        Alcotest.(check string) "failure names the contract" "broken"
          (fst (List.hd s.Fleet.Summary.s_failed)))

(* ---------------- end-to-end: driver with in-process math --------- *)

let driver_csvs () =
  (* fold two tools over two sizes and render; spot-check the CSV shape *)
  let s =
    List.fold_left
      (fun acc (tool, size, covered) ->
        Fleet.Summary.fold acc ~tool ~size ~budget:100
          {
            Fleet.Summary.o_execs = 100;
            o_steps = 10;
            o_total_sides = 4;
            o_final_covered = covered;
            o_over_time = [ (100, covered) ];
            o_classes = [ ("TO", 2) ];
          })
      (Fleet.Summary.empty ~buckets:2)
      [ ("MuFuzz", "small", 4); ("MuFuzz", "large", 2); ("sFuzz", "small", 3) ]
  in
  let tools = [ "sFuzz"; "MuFuzz" ] in
  let fig5 = Fleet.Summary.fig5_csv s ~tools ~size:"small" ~budget:100 in
  Alcotest.(check string) "fig5"
    "execs,sFuzz,MuFuzz\n50,0.00,0.00\n100,75.00,100.00\n" fig5;
  let fig6 = Fleet.Summary.fig6_csv s ~tools in
  Alcotest.(check string) "fig6"
    "fuzzer,small,large\nsFuzz,75.00,0.00\nMuFuzz,100.00,50.00\n" fig6;
  let findings = Fleet.Summary.findings_csv s ~tools in
  Alcotest.(check string) "findings"
    "tool,size,class,contracts,occurrences\n\
     sFuzz,small,TO,1,2\n\
     MuFuzz,small,TO,1,2\n\
     MuFuzz,large,TO,1,2\n"
    findings

let suite =
  [
    ( "fleet: shard codec",
      [
        shard_roundtrip;
        Alcotest.test_case "rejects corruption" `Quick shard_rejects_corruption;
        Alcotest.test_case "balanced bounds" `Quick shard_balanced_bounds;
      ] );
    ( "fleet: summary algebra",
      [
        summary_merge_commutes;
        summary_json_roundtrip;
        Alcotest.test_case "upct fixed point" `Quick summary_upct;
        Alcotest.test_case "bucketing matches bench grid" `Quick
          summary_bucketing;
        Alcotest.test_case "csv rendering" `Quick driver_csvs;
      ] );
    ( "fleet: config & ledger",
      [
        Alcotest.test_case "config codec and digest" `Quick config_roundtrip;
        Alcotest.test_case "ledger state machine" `Quick ledger_state_machine;
      ] );
    ( "fleet: worker resume",
      [
        Alcotest.test_case "kill/resume is deterministic" `Slow
          worker_resume_deterministic;
        Alcotest.test_case "failures recorded, shard survives" `Quick
          worker_records_failures;
      ] );
  ]
