(* Unit and property tests for the 256-bit word substrate. *)

module U = Word.U256

let u256 = Alcotest.testable U.pp U.equal

(* QCheck generator: mixes full-width random words with small and
   boundary values, where arithmetic corner cases live. *)
let gen_u256 =
  QCheck2.Gen.(
    oneof
      [
        (let* a = int64 and* b = int64 and* c = int64 and* d = int64 in
         return
           (U.logor
              (U.shift_left (U.of_int64 a) 192)
              (U.logor
                 (U.shift_left (U.of_int64 b) 128)
                 (U.logor (U.shift_left (U.of_int64 c) 64) (U.of_int64 d)))));
        map (fun n -> U.of_int (abs n)) small_int;
        oneofl [ U.zero; U.one; U.max_value; U.sub U.max_value U.one;
                 U.shift_left U.one 255; U.sub (U.shift_left U.one 128) U.one ];
      ])

let print1 = U.to_decimal_string
let print2 (a, b) = U.to_decimal_string a ^ ", " ^ U.to_decimal_string b
let print3 (a, b, c) = String.concat ", " (List.map U.to_decimal_string [ a; b; c ])

let gen2 = QCheck2.Gen.pair gen_u256 gen_u256
let gen3 = QCheck2.Gen.triple gen_u256 gen_u256 gen_u256

let prop1 name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:500 ~print:print1 gen_u256 f)

let prop2 name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:500 ~print:print2 gen2 f)

let prop3 name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:500 ~print:print3 gen3 f)

let unit name f = Alcotest.test_case name `Quick f

let conversions =
  [
    unit "of_int/to_int roundtrip" (fun () ->
        List.iter
          (fun n -> Alcotest.(check (option int)) "n" (Some n) (U.to_int_opt (U.of_int n)))
          [ 0; 1; 42; 1_000_000; max_int ]);
    unit "of_int negative rejected" (fun () ->
        Alcotest.check_raises "negative" (Invalid_argument "U256.of_int: negative")
          (fun () -> ignore (U.of_int (-1))));
    unit "decimal string roundtrip" (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check string) s s (U.to_decimal_string (U.of_decimal_string s)))
          [ "0"; "1"; "1000000000000000000";
            "115792089237316195423570985008687907853269984665640564039457584007913129639935";
            "340282366920938463463374607431768211456" ]);
    unit "hex string roundtrip" (fun () ->
        List.iter
          (fun s -> Alcotest.(check string) s s (U.to_hex_string (U.of_hex_string s)))
          [ "0x1"; "0xdeadbeef"; "0xffffffffffffffffffffffffffffffff" ]);
    unit "max_value is 2^256-1" (fun () ->
        Alcotest.check u256 "max+1=0" U.zero (U.add U.max_value U.one));
    unit "of_bytes_be short strings left-pad" (fun () ->
        Alcotest.check u256 "0xff" (U.of_int 255) (U.of_bytes_be "\xff"));
    unit "to_bytes_be length 32" (fun () ->
        Alcotest.(check int) "len" 32 (String.length (U.to_bytes_be U.one)));
    unit "signed int conversion" (fun () ->
        Alcotest.check u256 "-1" U.max_value (U.of_signed_int (-1));
        Alcotest.check u256 "-2" (U.sub U.max_value U.one) (U.of_signed_int (-2)));
    prop1 "bytes_be roundtrip" (fun a ->
        U.equal a (U.of_bytes_be (U.to_bytes_be a)));
    prop1 "decimal roundtrip" (fun a ->
        U.equal a (U.of_decimal_string (U.to_decimal_string a)));
    prop1 "hex roundtrip" (fun a -> U.equal a (U.of_hex_string (U.to_hex_string a)));
  ]

let ring_laws =
  [
    prop2 "add commutative" (fun (a, b) -> U.equal (U.add a b) (U.add b a));
    prop3 "add associative" (fun (a, b, c) ->
        U.equal (U.add (U.add a b) c) (U.add a (U.add b c)));
    prop2 "mul commutative" (fun (a, b) -> U.equal (U.mul a b) (U.mul b a));
    prop3 "mul associative" (fun (a, b, c) ->
        U.equal (U.mul (U.mul a b) c) (U.mul a (U.mul b c)));
    prop3 "mul distributes over add" (fun (a, b, c) ->
        U.equal (U.mul a (U.add b c)) (U.add (U.mul a b) (U.mul a c)));
    prop2 "sub inverts add" (fun (a, b) -> U.equal (U.sub (U.add a b) b) a);
    prop1 "neg is additive inverse" (fun a -> U.is_zero (U.add a (U.neg a)));
    prop1 "zero is add identity" (fun a -> U.equal (U.add a U.zero) a);
    prop1 "one is mul identity" (fun a -> U.equal (U.mul a U.one) a);
  ]

let division =
  [
    prop2 "divmod identity" (fun (a, b) ->
        if U.is_zero b then true
        else
          let q, r = U.divmod a b in
          U.equal a (U.add (U.mul q b) r) && U.lt r b);
    prop1 "div by zero is zero (EVM)" (fun a -> U.is_zero (U.div a U.zero));
    prop1 "rem by zero is zero (EVM)" (fun a -> U.is_zero (U.rem a U.zero));
    prop1 "div self is one" (fun a ->
        U.is_zero a || U.equal (U.div a a) U.one);
    unit "sdiv truncates toward zero" (fun () ->
        let m7 = U.of_signed_int (-7) and p2 = U.of_int 2 in
        Alcotest.check u256 "-7 sdiv 2 = -3" (U.of_signed_int (-3)) (U.sdiv m7 p2);
        Alcotest.check u256 "7 sdiv -2 = -3" (U.of_signed_int (-3))
          (U.sdiv (U.of_int 7) (U.of_signed_int (-2))));
    unit "sdiv min/-1 wraps to min (EVM)" (fun () ->
        let min_signed = U.shift_left U.one 255 in
        Alcotest.check u256 "min" min_signed (U.sdiv min_signed U.max_value));
    unit "srem takes dividend sign" (fun () ->
        Alcotest.check u256 "-7 smod 2 = -1" (U.of_signed_int (-1))
          (U.srem (U.of_signed_int (-7)) (U.of_int 2));
        Alcotest.check u256 "7 smod -2 = 1" U.one
          (U.srem (U.of_int 7) (U.of_signed_int (-2))));
    prop3 "add_mod matches small ints" (fun (a, b, m) ->
        let a = U.rem a (U.of_int 10000) and b = U.rem b (U.of_int 10000) in
        let m = U.add (U.rem m (U.of_int 9999)) U.one in
        let expect =
          (U.to_int_exn a + U.to_int_exn b) mod U.to_int_exn m
        in
        U.equal (U.add_mod a b m) (U.of_int expect));
    prop3 "mul_mod matches small ints" (fun (a, b, m) ->
        let a = U.rem a (U.of_int 10000) and b = U.rem b (U.of_int 10000) in
        let m = U.add (U.rem m (U.of_int 9999)) U.one in
        let expect =
          U.to_int_exn a * U.to_int_exn b mod U.to_int_exn m
        in
        U.equal (U.mul_mod a b m) (U.of_int expect));
    unit "add_mod handles 257-bit sums" (fun () ->
        (* (2^256-1 + 2^256-1) mod (2^256-1) = 0 *)
        Alcotest.check u256 "wrap" U.zero
          (U.add_mod U.max_value U.max_value U.max_value);
        (* (max + max) mod (max-1): max mod (max-1) = 1 each, sum 2 *)
        Alcotest.check u256 "wrap2" (U.of_int 2)
          (U.add_mod U.max_value U.max_value (U.sub U.max_value U.one)));
    unit "exp small cases" (fun () ->
        Alcotest.check u256 "2^10" (U.of_int 1024) (U.exp (U.of_int 2) (U.of_int 10));
        Alcotest.check u256 "x^0" U.one (U.exp (U.of_int 12345) U.zero);
        Alcotest.check u256 "0^0 = 1 (EVM)" U.one (U.exp U.zero U.zero));
    prop1 "exp matches repeated mul" (fun a ->
        let e = 3 in
        U.equal (U.exp a (U.of_int e)) (U.mul a (U.mul a a)));
  ]

let comparison =
  [
    prop2 "compare total order antisym" (fun (a, b) ->
        U.compare a b = -U.compare b a);
    prop2 "lt iff compare < 0" (fun (a, b) -> U.lt a b = (U.compare a b < 0));
    prop2 "le = lt or eq" (fun (a, b) -> U.le a b = (U.lt a b || U.equal a b));
    prop2 "slt on sign split" (fun (a, b) ->
        match (U.is_neg a, U.is_neg b) with
        | true, false -> U.slt a b
        | false, true -> not (U.slt a b)
        | _ -> U.slt a b = U.lt a b);
    prop2 "abs_difference symmetric" (fun (a, b) ->
        U.equal (U.abs_difference a b) (U.abs_difference b a));
    prop2 "min/max round trip" (fun (a, b) ->
        U.equal (U.add (U.min a b) (U.max a b)) (U.add a b));
  ]

let bitwise =
  [
    prop1 "lognot involutive" (fun a -> U.equal a (U.lognot (U.lognot a)));
    prop1 "and with self" (fun a -> U.equal a (U.logand a a));
    prop1 "xor with self is zero" (fun a -> U.is_zero (U.logxor a a));
    prop2 "de morgan" (fun (a, b) ->
        U.equal (U.lognot (U.logand a b)) (U.logor (U.lognot a) (U.lognot b)));
    prop1 "shift_left is mul by 2^k" (fun a ->
        let k = 7 in
        U.equal (U.shift_left a k) (U.mul a (U.of_int 128)));
    prop1 "shift_right is div by 2^k" (fun a ->
        let k = 13 in
        U.equal (U.shift_right a k) (U.div a (U.shift_left U.one k)));
    prop1 "shift roundtrip low bits" (fun a ->
        let k = 64 in
        U.equal (U.shift_right (U.shift_left a k) k)
          (U.logand a (U.sub (U.shift_left U.one (256 - k)) U.one)));
    unit "shifts >= 256 give zero" (fun () ->
        Alcotest.check u256 "shl" U.zero (U.shift_left U.max_value 256);
        Alcotest.check u256 "shr" U.zero (U.shift_right U.max_value 300));
    unit "sar propagates sign" (fun () ->
        Alcotest.check u256 "neg" U.max_value (U.shift_right_arith U.max_value 10);
        Alcotest.check u256 "neg full" U.max_value
          (U.shift_right_arith (U.shift_left U.one 255) 256);
        Alcotest.check u256 "pos" (U.of_int 1) (U.shift_right_arith (U.of_int 2) 1));
    unit "byte extracts from big end" (fun () ->
        let x = U.of_hex_string "0xaabbcc" in
        Alcotest.check u256 "byte31" (U.of_int 0xcc) (U.byte 31 x);
        Alcotest.check u256 "byte30" (U.of_int 0xbb) (U.byte 30 x);
        Alcotest.check u256 "byte0" U.zero (U.byte 0 x);
        Alcotest.check u256 "byte32" U.zero (U.byte 32 x));
    unit "sign_extend" (fun () ->
        Alcotest.check u256 "0xff k=0 -> -1" U.max_value
          (U.sign_extend 0 (U.of_int 0xff));
        Alcotest.check u256 "0x7f k=0 -> 0x7f" (U.of_int 0x7f)
          (U.sign_extend 0 (U.of_int 0x7f));
        Alcotest.check u256 "k>=31 identity" (U.of_int 0xff)
          (U.sign_extend 31 (U.of_int 0xff)));
    prop1 "bit_length bounds" (fun a ->
        let n = U.bit_length a in
        if U.is_zero a then n = 0
        else
          n >= 1 && n <= 256
          && (n = 256 || U.lt a (U.shift_left U.one n))
          && U.ge a (U.shift_left U.one (n - 1)));
  ]

(* ---------------- reference model ----------------

   An independent schoolbook bignum over 16 limbs of 16 bits (so every
   intermediate product and carry fits a native int with room to
   spare). Words cross into the model only through [to_bytes_be], so a
   bug in U256's add/sub/mul/compare cannot hide inside the model. *)
module Model = struct
  let limbs = 16
  let base = 1 lsl 16

  (* limb 0 = least significant 16 bits *)
  let of_u256 u =
    let b = U.to_bytes_be u in
    Array.init limbs (fun i ->
        let off = 32 - (2 * (i + 1)) in
        (Char.code b.[off] lsl 8) lor Char.code b.[off + 1])

  let to_u256 m =
    let b = Bytes.create 32 in
    for i = 0 to limbs - 1 do
      let off = 32 - (2 * (i + 1)) in
      Bytes.set b off (Char.chr ((m.(i) lsr 8) land 0xff));
      Bytes.set b (off + 1) (Char.chr (m.(i) land 0xff))
    done;
    U.of_bytes_be (Bytes.to_string b)

  let add a b =
    let r = Array.make limbs 0 in
    let carry = ref 0 in
    for i = 0 to limbs - 1 do
      let s = a.(i) + b.(i) + !carry in
      r.(i) <- s mod base;
      carry := s / base
    done;
    (* mod 2^256: the final carry is dropped *)
    r

  let sub a b =
    let r = Array.make limbs 0 in
    let borrow = ref 0 in
    for i = 0 to limbs - 1 do
      let d = a.(i) - b.(i) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    r

  let mul a b =
    let wide = Array.make (2 * limbs) 0 in
    for i = 0 to limbs - 1 do
      let carry = ref 0 in
      for j = 0 to limbs - 1 do
        let t = wide.(i + j) + (a.(i) * b.(j)) + !carry in
        wide.(i + j) <- t mod base;
        carry := t / base
      done;
      wide.(i + limbs) <- wide.(i + limbs) + !carry
    done;
    (* mod 2^256: keep the low 16 limbs *)
    Array.sub wide 0 limbs

  let compare a b =
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (limbs - 1)
end

let model =
  let binop name model_op u_op =
    prop2 (name ^ " matches the limb model") (fun (a, b) ->
        U.equal (u_op a b)
          (Model.to_u256 (model_op (Model.of_u256 a) (Model.of_u256 b))))
  in
  [
    binop "add" Model.add U.add;
    binop "sub" Model.sub U.sub;
    binop "mul" Model.mul U.mul;
    prop2 "compare matches the limb model" (fun (a, b) ->
        U.compare a b = Model.compare (Model.of_u256 a) (Model.of_u256 b));
    prop1 "neg matches model 0 - a" (fun a ->
        U.equal (U.neg a)
          (Model.to_u256 (Model.sub (Model.of_u256 U.zero) (Model.of_u256 a))));
    prop1 "limb model round-trips" (fun a ->
        U.equal a (Model.to_u256 (Model.of_u256 a)));
    (* signed division against the (model-validated) ring ops: for b<>0,
       a = b * sdiv(a,b) + srem(a,b) mod 2^256, the remainder takes the
       dividend's sign, and |r| < |b|. Covers min_int / -1 too, where
       r = 0 and the identity still holds because b*q wraps back. *)
    prop2 "sdiv/srem division identity" (fun (a, b) ->
        U.is_zero b
        || U.equal a (U.add (U.mul b (U.sdiv a b)) (U.srem a b)));
    prop2 "srem sign and magnitude" (fun (a, b) ->
        if U.is_zero b then true
        else
          let r = U.srem a b in
          let abs x = if U.is_neg x then U.neg x else x in
          (U.is_zero r || U.is_neg r = U.is_neg a) && U.lt (abs r) (abs b));
    prop2 "unsigned divmod identity (model mul)" (fun (a, b) ->
        U.is_zero b
        ||
        let q, r = U.divmod a b in
        U.equal a
          (Model.to_u256
             (Model.add
                (Model.mul (Model.of_u256 q) (Model.of_u256 b))
                (Model.of_u256 r)))
        && U.lt r b);
  ]

let misc =
  [
    prop2 "to_float monotone-ish" (fun (a, b) ->
        if U.lt a b then U.to_float a <= U.to_float b else true);
    unit "to_float exact small" (fun () ->
        Alcotest.(check (float 0.0)) "42" 42.0 (U.to_float (U.of_int 42)));
    prop1 "hash equal on equal" (fun a ->
        U.hash a = U.hash (U.of_bytes_be (U.to_bytes_be a)));
  ]

let suite =
  [
    ("u256: conversions", conversions);
    ("u256: ring laws", ring_laws);
    ("u256: division", division);
    ("u256: comparison", comparison);
    ("u256: bitwise", bitwise);
    ("u256: model", model);
    ("u256: misc", misc);
  ]
