(** The daemon's socket front-end: a single-threaded [Unix.select]
    loop over a Unix-domain listener and/or a loopback TCP listener,
    speaking the line-delimited JSON protocol of {!Protocol} and
    interleaving client requests with {!Engine.step} time slices.

    Single-threaded by construction: requests are handled between
    slices, so every protocol operation observes the engine at a safe
    point and no locking exists anywhere in the service. *)

val run : ?socket:string -> ?port:int -> Engine.t -> unit
(** Serve until a ["shutdown"] request or SIGINT/SIGTERM arrives, then
    close every connection, remove the socket file, flush campaign
    metadata and stop the worker pool. At least one of [socket] and
    [port] is required ([Invalid_argument] otherwise); [port] binds
    127.0.0.1 only.

    @raise Failure if [socket] names a live server's socket (a stale
    file left by a crashed daemon is silently replaced). *)
