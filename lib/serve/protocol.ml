(* The service wire protocol: one JSON object per line, both ways.

   Requests are tagged by an "op" field; responses by "ok". The codec
   is deliberately forgiving about unknown fields (ignored) and strict
   about types — a malformed payload becomes a structured error line,
   never an exception escaping to the session loop. *)

module J = Telemetry.Json

let version = 1

let server_name = "mufuzz-serve"

type error_code =
  | Bad_request
  | Unknown_op
  | Unknown_id
  | Bad_state
  | Internal

let code_string = function
  | Bad_request -> "bad-request"
  | Unknown_op -> "unknown-op"
  | Unknown_id -> "unknown-id"
  | Bad_state -> "bad-state"
  | Internal -> "internal"

type submit = {
  sub_source : [ `Inline of string | `File of string ];
  sub_budget : int option;
  sub_seed : int64 option;
  sub_tool : string option;
  sub_jobs : int option;
  sub_priority : int;
}

type request =
  | Hello of int option  (** client-announced protocol version *)
  | Submit of submit
  | Status of string
  | Report of string
  | Cancel of string
  | Artifacts of string
  | List_campaigns
  | Metrics
  | Ping
  | Shutdown

(* ---------------- request parsing ---------------- *)

let field name j = J.member name j

let opt_int name j =
  match field name j with
  | None | Some J.Null -> Ok None
  | Some v -> (
    match J.to_int v with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let opt_string name j =
  match field name j with
  | None | Some J.Null -> Ok None
  | Some v -> (
    match J.string_value v with
    | Some s -> Ok (Some s)
    | None -> Error (Printf.sprintf "field %S must be a string" name))

(* RNG seeds are int64; accept a JSON integer or a decimal string
   (JSON numbers lose precision past 2^53 in sloppy clients). *)
let opt_seed name j =
  match field name j with
  | None | Some J.Null -> Ok None
  | Some (J.Int n) -> Ok (Some (Int64.of_int n))
  | Some (J.String s) -> (
    match Int64.of_string_opt s with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "field %S is not a decimal int64" name))
  | Some _ -> Error (Printf.sprintf "field %S must be an integer or string" name)

let req_id j =
  match opt_string "id" j with
  | Ok (Some id) -> Ok id
  | Ok None -> Error "missing field \"id\""
  | Error e -> Error e

let ( let* ) r f = Result.bind r f

let parse_submit j =
  let* source = opt_string "source" j in
  let* file = opt_string "file" j in
  let* sub_source =
    match (source, file) with
    | Some s, None -> Ok (`Inline s)
    | None, Some f -> Ok (`File f)
    | Some _, Some _ -> Error "give either \"source\" or \"file\", not both"
    | None, None -> Error "submit needs a \"source\" or \"file\" field"
  in
  let* sub_budget = opt_int "budget" j in
  let* sub_seed = opt_seed "seed" j in
  let* sub_tool = opt_string "tool" j in
  let* sub_jobs = opt_int "jobs" j in
  let* priority = opt_int "priority" j in
  Ok
    (Submit
       {
         sub_source;
         sub_budget;
         sub_seed;
         sub_tool;
         sub_jobs;
         sub_priority = Option.value priority ~default:0;
       })

let parse_request line =
  match J.of_string line with
  | Error e -> Error (Bad_request, Printf.sprintf "not a JSON object: %s" e)
  | Ok j -> (
    match field "op" j with
    | None -> Error (Bad_request, "missing field \"op\"")
    | Some op -> (
      match J.string_value op with
      | None -> Error (Bad_request, "field \"op\" must be a string")
      | Some op ->
        let with_id k =
          match req_id j with
          | Ok id -> Ok (k id)
          | Error e -> Error (Bad_request, e)
        in
        (match op with
        | "hello" -> (
          match opt_int "protocol" j with
          | Ok v -> Ok (Hello v)
          | Error e -> Error (Bad_request, e))
        | "submit" -> (
          match parse_submit j with
          | Ok r -> Ok r
          | Error e -> Error (Bad_request, e))
        | "status" -> with_id (fun id -> Status id)
        | "report" -> with_id (fun id -> Report id)
        | "cancel" -> with_id (fun id -> Cancel id)
        | "artifacts" -> with_id (fun id -> Artifacts id)
        | "list" -> Ok List_campaigns
        | "metrics" -> Ok Metrics
        | "ping" -> Ok Ping
        | "shutdown" -> Ok Shutdown
        | op -> Error (Unknown_op, Printf.sprintf "unknown op %S" op))))

(* ---------------- response rendering ---------------- *)

let ok fields = J.to_string (J.Obj (("ok", J.Bool true) :: fields))

let error ~code msg =
  J.to_string
    (J.Obj
       [
         ("ok", J.Bool false);
         ("code", J.String (code_string code));
         ("error", J.String msg);
       ])

let greeting =
  ok
    [
      ("server", J.String server_name);
      ("protocol", J.Int version);
    ]
