(* The campaign engine: registry + priority scheduler + time-slicing.

   Single-threaded and cooperative. A campaign runs in slices of
   [slice_execs] executions: the engine installs an [on_safe_point]
   hook that, once the slice budget is spent, forces the snapshot
   thunk, writes it as a [Persist] checkpoint into the campaign's
   namespaced store and raises [Mufuzz.Campaign.Preempt]; the campaign
   returns a partial report with [stop_reason = Preempted] and the
   engine parks the snapshot as the resume point. Because the
   snapshot/resume machinery is exact at [jobs = 1], a campaign sliced
   N ways produces the same final report as an uninterrupted run —
   preemption is invisible in the results, only in the wall clock.

   Everything the engine knows is also on disk under
   [state_dir/<id>/]: the submitted source ([contract.sol]), scheduler
   metadata ([meta.json]), the per-campaign event trace
   ([events.jsonl], appended across slices), rotated checkpoints, the
   final report ([report.json]) and shrunk repro artifacts
   ([artifacts/]). A restarted engine rescans the directory and picks
   up unfinished campaigns from their last checkpoint. *)

module J = Telemetry.Json

let log_src = Logs.Src.create "mufuzz.serve" ~doc:"fuzzing service engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type phase = Queued | Running | Completed | Failed of string | Cancelled

let phase_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Completed -> "completed"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"

type campaign = {
  id : string;
  seq : int;  (* submission order, FIFO tie-break *)
  priority : int;
  contract : Minisol.Contract.t;
  profile : Baselines.Fuzzers.profile;
  config : Mufuzz.Config.t;  (* effective (profile-applied) *)
  dir : string;
  store : Persist.Store.t;
  mutable phase : phase;
  mutable resume : (string * Mufuzz.Campaign.snapshot) option;
  mutable execs : int;
  mutable covered : int;
  mutable total_sides : int;
  mutable findings : int;
  mutable stop_reason : string option;
  mutable slices : int;
  mutable busy_seconds : float;
  mutable last_ran : int;  (* scheduler tick of the last slice *)
  mutable artifact_count : int;
  mutable report_cache : J.t option;
}

type t = {
  state_dir : string;
  slice_execs : int;
  checkpoint_keep : int;
  metrics : Telemetry.Metrics.t;
  pool : Mufuzz.Pool.t option;
  campaigns : (string, campaign) Hashtbl.t;
  mutable next_seq : int;
  mutable tick : int;
  c_submitted : Telemetry.Metrics.counter;
  c_slices : Telemetry.Metrics.counter;
  g_queued : Telemetry.Metrics.gauge;
  g_active : Telemetry.Metrics.gauge;
  g_completed : Telemetry.Metrics.gauge;
  g_failed : Telemetry.Metrics.gauge;
}

let state_dir t = t.state_dir

let metrics t = t.metrics

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

(* ---------------- service gauges ---------------- *)

let refresh_gauges t =
  let q = ref 0 and a = ref 0 and c = ref 0 and f = ref 0 in
  Hashtbl.iter
    (fun _ camp ->
      match camp.phase with
      | Queued -> incr q
      | Running -> incr a
      | Completed -> incr c
      | Failed _ -> incr f
      | Cancelled -> ())
    t.campaigns;
  Telemetry.Metrics.set t.g_queued (float_of_int !q);
  Telemetry.Metrics.set t.g_active (float_of_int !a);
  Telemetry.Metrics.set t.g_completed (float_of_int !c);
  Telemetry.Metrics.set t.g_failed (float_of_int !f)

let campaign_rate_gauge t c =
  Telemetry.Metrics.gauge t.metrics
    ~help:"executions per second of busy time, per campaign"
    (Telemetry.Metrics.labeled "mufuzz_campaign_execs_per_sec"
       [ ("id", c.id) ])

let campaign_execs_gauge t c =
  Telemetry.Metrics.gauge t.metrics
    ~help:"executions performed so far, per campaign"
    (Telemetry.Metrics.labeled "mufuzz_campaign_execs" [ ("id", c.id) ])

let note_progress t c =
  Telemetry.Metrics.set (campaign_execs_gauge t c) (float_of_int c.execs);
  if c.busy_seconds > 0.0 then
    Telemetry.Metrics.set (campaign_rate_gauge t c)
      (float_of_int c.execs /. c.busy_seconds)

(* ---------------- on-disk metadata ---------------- *)

let meta_path c = Filename.concat c.dir "meta.json"

let source_path c = Filename.concat c.dir "contract.sol"

let report_path c = Filename.concat c.dir "report.json"

let events_path c = Filename.concat c.dir "events.jsonl"

let artifacts_dir c = Filename.concat c.dir "artifacts"

let meta_json c =
  let opt_str = function None -> J.Null | Some s -> J.String s in
  J.Obj
    [
      ("id", J.String c.id);
      ("contract", J.String c.contract.Minisol.Contract.name);
      ("tool", J.String c.profile.name);
      ("priority", J.Int c.priority);
      ("budget", J.Int c.config.max_executions);
      ("seed", J.String (Int64.to_string c.config.rng_seed));
      ("jobs", J.Int c.config.jobs);
      ("status", J.String (phase_string c.phase));
      ("execs", J.Int c.execs);
      ("covered", J.Int c.covered);
      ("total_sides", J.Int c.total_sides);
      ("findings", J.Int c.findings);
      ("slices", J.Int c.slices);
      ("artifact_count", J.Int c.artifact_count);
      ("stop_reason", opt_str c.stop_reason);
      ( "error",
        match c.phase with Failed e -> J.String e | _ -> J.Null );
    ]

let write_meta c =
  try Util.Fileio.write_atomic (meta_path c) (J.to_string (meta_json c) ^ "\n")
  with Sys_error msg -> Log.warn (fun m -> m "%s: meta write failed: %s" c.id msg)

(* ---------------- construction ---------------- *)

let effective_config ?(budget = 5000) ?(seed = 42L) ?(jobs = 1)
    (profile : Baselines.Fuzzers.profile) =
  profile.configure
    {
      Mufuzz.Config.default with
      max_executions = Stdlib.max 1 budget;
      rng_seed = seed;
      jobs = Stdlib.max 1 jobs;
    }

let compile_source source =
  match Minisol.Contract.compile source with
  | c -> Ok c
  | exception Minisol.Lexer.Lex_error (msg, line, col) ->
    Error (Printf.sprintf "%d:%d: lexical error: %s" line col msg)
  | exception Minisol.Parser.Parse_error (msg, line, col) ->
    Error (Printf.sprintf "%d:%d: parse error: %s" line col msg)
  | exception Minisol.Typecheck.Type_error msg ->
    Error (Printf.sprintf "type error: %s" msg)

let add_campaign t ~id ~priority ~contract ~profile ~config =
  let store =
    Persist.Store.namespaced ~dir:t.state_dir ~id ~keep:t.checkpoint_keep
  in
  let c =
    {
      id;
      seq = t.next_seq;
      priority;
      contract;
      profile;
      config;
      dir = Persist.Store.dir store;
      store;
      phase = Queued;
      resume = None;
      execs = 0;
      covered = 0;
      total_sides = 0;
      findings = 0;
      stop_reason = None;
      slices = 0;
      busy_seconds = 0.0;
      last_ran = 0;
      artifact_count = 0;
      report_cache = None;
    }
  in
  t.next_seq <- t.next_seq + 1;
  Hashtbl.replace t.campaigns id c;
  c

let id_of_num n = Printf.sprintf "c%04d" n

let num_of_id id =
  if String.length id > 1 && id.[0] = 'c' then
    int_of_string_opt (String.sub id 1 (String.length id - 1))
  else None

let fresh_id t =
  let used = Hashtbl.fold (fun id _ acc -> id :: acc) t.campaigns [] in
  let top =
    List.fold_left
      (fun acc id -> match num_of_id id with Some n -> Stdlib.max acc n | None -> acc)
      0 used
  in
  id_of_num (top + 1)

(* ---------------- restart scan ---------------- *)

let meta_int name j = Option.bind (J.member name j) J.to_int

let meta_str name j = Option.bind (J.member name j) J.string_value

let restore_campaign t id =
  let dir = Filename.concat t.state_dir id in
  let meta_file = Filename.concat dir "meta.json" in
  if not (Sys.file_exists meta_file) then ()
  else
    match J.of_string (Util.Fileio.read_file meta_file) with
    | Error e -> Log.warn (fun m -> m "%s: unreadable meta.json: %s" id e)
    | Ok meta -> (
      let status = Option.value (meta_str "status" meta) ~default:"queued" in
      let priority = Option.value (meta_int "priority" meta) ~default:0 in
      let budget = Option.value (meta_int "budget" meta) ~default:5000 in
      let seed =
        Option.value
          (Option.bind (meta_str "seed" meta) Int64.of_string_opt)
          ~default:42L
      in
      let jobs = Option.value (meta_int "jobs" meta) ~default:1 in
      let tool = Option.value (meta_str "tool" meta) ~default:"MuFuzz" in
      match Baselines.Fuzzers.find tool with
      | None -> Log.warn (fun m -> m "%s: unknown tool %S in meta.json" id tool)
      | Some profile -> (
        let from_checkpoint () =
          match Persist.Store.load_latest dir with
          | Ok (path, ckpt) ->
            let c =
              add_campaign t ~id ~priority ~contract:ckpt.contract ~profile
                ~config:ckpt.config
            in
            c.phase <- Running;
            c.resume <- Some (path, ckpt.snapshot);
            c.execs <- ckpt.snapshot.Mufuzz.Campaign.sn_execs;
            c.slices <- Stdlib.max 1 (Option.value (meta_int "slices" meta) ~default:1);
            Some c
          | Error e ->
            Log.warn (fun m -> m "%s: checkpoint unreadable: %s" id e);
            None
        in
        let from_source () =
          match compile_source (Util.Fileio.read_file (Filename.concat dir "contract.sol")) with
          | Ok contract ->
            Some
              (add_campaign t ~id ~priority ~contract ~profile
                 ~config:(effective_config ~budget ~seed ~jobs profile))
          | Error e | (exception Sys_error e) ->
            Log.warn (fun m -> m "%s: cannot restore source: %s" id e);
            None
        in
        match status with
        | "running" -> (
          (* resume from the last checkpoint; a campaign killed before
             its first slice finished restarts from scratch *)
          match from_checkpoint () with
          | Some _ -> ()
          | None -> (
            match from_source () with
            | Some _ -> ()
            | None -> ()))
        | "queued" -> ignore (from_source ())
        | ("completed" | "failed" | "cancelled") as st -> (
          match from_source () with
          | None -> ()
          | Some c ->
            c.phase <-
              (match st with
              | "completed" -> Completed
              | "failed" ->
                Failed (Option.value (meta_str "error" meta) ~default:"unknown")
              | _ -> Cancelled);
            c.execs <- Option.value (meta_int "execs" meta) ~default:0;
            c.covered <- Option.value (meta_int "covered" meta) ~default:0;
            c.total_sides <- Option.value (meta_int "total_sides" meta) ~default:0;
            c.findings <- Option.value (meta_int "findings" meta) ~default:0;
            c.slices <- Option.value (meta_int "slices" meta) ~default:0;
            c.artifact_count <-
              Option.value (meta_int "artifact_count" meta) ~default:0;
            c.stop_reason <- meta_str "stop_reason" meta)
        | other -> Log.warn (fun m -> m "%s: unknown status %S" id other)))

let scan t =
  match Sys.readdir t.state_dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.to_list names
    |> List.filter (fun n ->
           Persist.Store.valid_namespace n
           && Sys.is_directory (Filename.concat t.state_dir n))
    |> List.sort compare
    |> List.iter (restore_campaign t)

let create ?(slice_execs = 500) ?(checkpoint_keep = 3) ?(jobs = 1) ~state_dir
    ~metrics () =
  mkdirs state_dir;
  let t =
    {
      state_dir;
      slice_execs = Stdlib.max 1 slice_execs;
      checkpoint_keep = Stdlib.max 1 checkpoint_keep;
      metrics;
      pool =
        (if jobs > 1 then Some (Mufuzz.Pool.create ~metrics ~jobs ())
         else None);
      campaigns = Hashtbl.create 16;
      next_seq = 0;
      tick = 0;
      c_submitted =
        Telemetry.Metrics.counter metrics ~help:"campaign submissions accepted"
          "mufuzz_campaigns_submitted_total";
      c_slices =
        Telemetry.Metrics.counter metrics
          ~help:"scheduler time slices executed" "mufuzz_campaign_slices_total";
      g_queued =
        Telemetry.Metrics.gauge metrics ~help:"campaigns waiting to run"
          "mufuzz_campaigns_queued";
      g_active =
        Telemetry.Metrics.gauge metrics ~help:"campaigns mid-run"
          "mufuzz_campaigns_active";
      g_completed =
        Telemetry.Metrics.gauge metrics ~help:"campaigns finished"
          "mufuzz_campaigns_completed";
      g_failed =
        Telemetry.Metrics.gauge metrics ~help:"campaigns that died on an error"
          "mufuzz_campaigns_failed";
    }
  in
  scan t;
  refresh_gauges t;
  t

let shutdown t =
  Hashtbl.iter (fun _ c -> write_meta c) t.campaigns;
  Option.iter Mufuzz.Pool.shutdown t.pool

(* ---------------- scheduling ---------------- *)

(* Highest priority first; within a priority, the least-recently-run
   campaign (round-robin across slices), then submission order. *)
let sched_order a b =
  match compare b.priority a.priority with
  | 0 -> (
    match compare a.last_ran b.last_ran with
    | 0 -> compare a.seq b.seq
    | n -> n)
  | n -> n

let runnable t =
  Hashtbl.fold
    (fun _ c acc ->
      match c.phase with Queued | Running -> c :: acc | _ -> acc)
    t.campaigns []
  |> List.sort sched_order

let has_runnable t = runnable t <> []

(* ---------------- the slice ---------------- *)

let complete t c (report : Mufuzz.Report.t) =
  c.stop_reason <-
    Some (Mufuzz.Report.stop_reason_to_string report.stop_reason);
  c.resume <- None;
  let rj = Mufuzz.Report.to_json report in
  c.report_cache <- Some rj;
  (try Util.Fileio.write_atomic (report_path c) (J.to_string rj ^ "\n")
   with Sys_error msg ->
     Log.warn (fun m -> m "%s: report write failed: %s" c.id msg));
  (* shrink each finding's witness into a self-contained repro artifact *)
  if report.witness_seeds <> [] then begin
    mkdirs (artifacts_dir c);
    let target = Triage.Shrink.target_of_config c.config c.contract in
    List.iter
      (fun ((f : Oracles.Oracle.finding), seed) ->
        try
          let r = Triage.Shrink.shrink ~target f seed in
          match Triage.Shrink.reraise ~target f r.seed with
          | None ->
            Log.warn (fun m ->
                m "%s: finding [%s] pc=%d did not reproduce; no artifact"
                  c.id (Oracles.Oracle.class_to_string f.cls) f.pc)
          | Some finding ->
            let a =
              Triage.Artifact.make ~contract:c.contract
                ~gas_per_tx:c.config.gas_per_tx ~n_senders:c.config.n_senders
                ~attacker:c.config.attacker_enabled ~finding ~seed:r.seed
            in
            Triage.Artifact.save
              (Filename.concat (artifacts_dir c) (Triage.Artifact.file_name a))
              a;
            c.artifact_count <- c.artifact_count + 1
        with e ->
          Log.warn (fun m ->
              m "%s: artifact generation failed: %s" c.id (Printexc.to_string e)))
      report.witness_seeds
  end;
  c.phase <- Completed;
  Log.info (fun m ->
      m "%s: completed (%d execs, %d findings, %s)" c.id c.execs c.findings
        (Option.value c.stop_reason ~default:"?"));
  write_meta c;
  refresh_gauges t

let fail t c msg =
  c.phase <- Failed msg;
  c.resume <- None;
  Log.warn (fun m -> m "%s: failed: %s" c.id msg);
  write_meta c;
  refresh_gauges t

let run_slice t c =
  t.tick <- t.tick + 1;
  c.last_ran <- t.tick;
  if c.phase = Queued then begin
    c.phase <- Running;
    refresh_gauges t
  end;
  Telemetry.Metrics.incr t.c_slices;
  let slice_end = c.execs + t.slice_execs in
  let grabbed = ref None in
  let hook ~final ~bus ~execs thunk =
    if (not final) && execs >= slice_end then begin
      let snapshot = thunk () in
      let ckpt =
        {
          Persist.Checkpoint.tool = c.profile.name;
          config = c.config;
          contract = c.contract;
          snapshot;
        }
      in
      let path =
        try
          let path = Persist.Store.save c.store ckpt in
          Telemetry.Bus.emit bus
            (Telemetry.Event.Checkpoint_written { execs; path });
          path
        with Sys_error msg ->
          (* resume in memory even when the disk is full; only the
             crash-safety of this campaign degrades *)
          Log.warn (fun m -> m "%s: checkpoint write failed: %s" c.id msg);
          Filename.concat c.dir "(unsaved)"
      in
      grabbed := Some (path, snapshot);
      raise Mufuzz.Campaign.Preempt
    end
  in
  let sinks =
    try [ Telemetry.Sink.jsonl ~append:(c.slices > 0) (events_path c) ]
    with Sys_error _ -> []
  in
  c.slices <- c.slices + 1;
  let t0 = Unix.gettimeofday () in
  match
    Baselines.Fuzzers.run c.profile ~config:c.config ~sinks ~metrics:t.metrics
      ?pool:(if c.config.jobs > 1 then t.pool else None)
      ?resume:c.resume ~on_safe_point:hook c.contract
  with
  | report ->
    c.busy_seconds <- c.busy_seconds +. (Unix.gettimeofday () -. t0);
    c.execs <- report.executions;
    c.covered <- report.covered_branches;
    c.total_sides <- report.total_branch_sides;
    c.findings <- List.length report.findings;
    note_progress t c;
    (match report.stop_reason with
    | Mufuzz.Report.Preempted ->
      (match !grabbed with
      | Some r -> c.resume <- Some r
      | None -> fail t c "preempted without a snapshot");
      write_meta c
    | _ -> complete t c report)
  | exception e ->
    c.busy_seconds <- c.busy_seconds +. (Unix.gettimeofday () -. t0);
    fail t c (Printexc.to_string e)

let step t =
  match runnable t with
  | [] -> None
  | c :: _ ->
    run_slice t c;
    Some c.id

let rec run_to_completion t =
  match step t with None -> () | Some _ -> run_to_completion t

(* ---------------- the protocol surface ---------------- *)

let err code fmt = Printf.ksprintf (fun s -> Error (code, s)) fmt

let find t id =
  match Hashtbl.find_opt t.campaigns id with
  | Some c -> Ok c
  | None -> err Protocol.Unknown_id "no campaign %s" id

let position t c =
  match c.phase with
  | Queued | Running ->
    let rec index i = function
      | [] -> None
      | x :: _ when x.id = c.id -> Some i
      | _ :: rest -> index (i + 1) rest
    in
    index 0 (runnable t)
  | _ -> None

let status_fields t c =
  let opt_str = function None -> J.Null | Some s -> J.String s in
  let coverage_pct =
    if c.total_sides = 0 then 0.0
    else 100.0 *. float_of_int c.covered /. float_of_int c.total_sides
  in
  [
    ("id", J.String c.id);
    ("contract", J.String c.contract.Minisol.Contract.name);
    ("tool", J.String c.profile.name);
    ("state", J.String (phase_string c.phase));
    ( "position",
      match position t c with None -> J.Null | Some i -> J.Int i );
    ("priority", J.Int c.priority);
    ("execs", J.Int c.execs);
    ("budget", J.Int c.config.max_executions);
    ("covered_branches", J.Int c.covered);
    ("total_branch_sides", J.Int c.total_sides);
    ("coverage_pct", J.Float coverage_pct);
    ("findings", J.Int c.findings);
    ("slices", J.Int c.slices);
    ( "execs_per_sec",
      J.Float
        (if c.busy_seconds > 0.0 then
           float_of_int c.execs /. c.busy_seconds
         else 0.0) );
    ("artifact_count", J.Int c.artifact_count);
    ("stop_reason", opt_str c.stop_reason);
    ("error", match c.phase with Failed e -> J.String e | _ -> J.Null);
  ]

let submit t (s : Protocol.submit) =
  let ( let* ) = Result.bind in
  let* source =
    match s.sub_source with
    | `Inline src -> Ok src
    | `File path -> (
      try Ok (Util.Fileio.read_file path)
      with Sys_error msg -> err Protocol.Bad_request "cannot read %s" msg)
  in
  let* contract =
    match compile_source source with
    | Ok c -> Ok c
    | Error e -> err Protocol.Bad_request "source does not compile: %s" e
  in
  let* profile =
    let tool = Option.value s.sub_tool ~default:"MuFuzz" in
    match Baselines.Fuzzers.find tool with
    | Some p -> Ok p
    | None -> err Protocol.Bad_request "unknown tool %S" tool
  in
  let* jobs =
    match s.sub_jobs with
    | Some j when j > 1 && t.pool = None ->
      err Protocol.Bad_request
        "jobs %d requested but the daemon runs without a worker pool (start \
         it with --jobs)" j
    | Some j -> Ok (Stdlib.max 1 j)
    | None -> Ok 1
  in
  let config =
    effective_config ?budget:s.sub_budget ?seed:s.sub_seed ~jobs profile
  in
  let id = fresh_id t in
  let c =
    add_campaign t ~id ~priority:s.sub_priority ~contract ~profile ~config
  in
  (try Util.Fileio.write_atomic (source_path c) source
   with Sys_error msg ->
     Log.warn (fun m -> m "%s: source write failed: %s" id msg));
  write_meta c;
  Telemetry.Metrics.incr t.c_submitted;
  refresh_gauges t;
  Log.info (fun m ->
      m "%s: submitted %s (%s, budget %d, priority %d)" id
        contract.Minisol.Contract.name c.profile.name config.max_executions
        c.priority);
  Ok (status_fields t c)

let status t id =
  let ( let* ) = Result.bind in
  let* c = find t id in
  Ok (status_fields t c)

let list_campaigns t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.campaigns []
  |> List.sort (fun a b -> compare a.seq b.seq)
  |> List.map (fun c -> J.Obj (status_fields t c))

let cancel t id =
  let ( let* ) = Result.bind in
  let* c = find t id in
  match c.phase with
  | Queued | Running ->
    c.phase <- Cancelled;
    c.resume <- None;
    write_meta c;
    refresh_gauges t;
    Log.info (fun m -> m "%s: cancelled" id);
    Ok (status_fields t c)
  | p -> err Protocol.Bad_state "campaign %s is already %s" id (phase_string p)

let report t id =
  let ( let* ) = Result.bind in
  let* c = find t id in
  match c.phase with
  | Completed -> (
    match c.report_cache with
    | Some rj -> Ok rj
    | None -> (
      match J.of_string (Util.Fileio.read_file (report_path c)) with
      | Ok rj ->
        c.report_cache <- Some rj;
        Ok rj
      | Error e -> err Protocol.Internal "stored report unreadable: %s" e
      | exception Sys_error e -> err Protocol.Internal "stored report unreadable: %s" e))
  | p ->
    err Protocol.Bad_state "campaign %s is %s, not completed" id
      (phase_string p)

let artifacts t id =
  let ( let* ) = Result.bind in
  let* c = find t id in
  match c.phase with
  | Completed ->
    let dir = artifacts_dir c in
    let files =
      match Sys.readdir dir with
      | exception Sys_error _ -> []
      | names ->
        Array.to_list names
        |> List.filter (fun n -> Filename.check_suffix n ".json")
        |> List.sort compare
        |> List.map (Filename.concat dir)
    in
    Ok
      (List.filter_map
         (fun path ->
           match J.of_string (Util.Fileio.read_file path) with
           | Ok j -> Some (path, j)
           | Error e ->
             Log.warn (fun m -> m "%s: unreadable artifact %s: %s" id path e);
             None
           | exception Sys_error e ->
             Log.warn (fun m -> m "%s: unreadable artifact: %s" id e);
             None)
         files)
  | p ->
    err Protocol.Bad_state "campaign %s is %s, not completed" id
      (phase_string p)
