(* The daemon's session loop: a single-threaded [select] multiplexer
   over the listening sockets and the live client connections,
   interleaved with engine time slices.

   The loop alternates two duties: drain whatever request lines the
   clients have sent (each answered with exactly one response line, in
   order), then run one scheduler slice if any campaign is runnable.
   While a slice runs, requests queue in the kernel socket buffers —
   latency is bounded by the slice budget, and no locking or threading
   is needed anywhere. *)

let log_src = Logs.Src.create "mufuzz.serve.net" ~doc:"fuzzing service daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type conn = {
  fd : Unix.file_descr;
  peer : string;
  buf : Buffer.t;  (* bytes received but not yet terminated by '\n' *)
}

type t = {
  engine : Engine.t;
  listeners : Unix.file_descr list;
  socket_path : string option;
  mutable conns : conn list;
  mutable stopping : bool;
}

let max_line = 8 * 1024 * 1024
(* an inline contract source comfortably fits; anything bigger is a
   protocol violation, not a submission *)

(* ---------------- plumbing ---------------- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send_line conn line =
  let payload = line ^ "\n" in
  let len = String.length payload in
  let rec loop off =
    if off < len then
      let n = Unix.write_substring conn.fd payload off (len - off) in
      loop (off + n)
  in
  try
    loop 0;
    true
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

let drop t conn =
  t.conns <- List.filter (fun c -> c.fd != conn.fd) t.conns;
  close_quietly conn.fd;
  Log.debug (fun m -> m "disconnect %s" conn.peer)

(* ---------------- request dispatch ---------------- *)

let respond (result : ((string * Telemetry.Json.t) list, Protocol.error_code * string) result) =
  match result with
  | Ok fields -> Protocol.ok fields
  | Error (code, msg) -> Protocol.error ~code msg

let handle_request t line =
  let module J = Telemetry.Json in
  match Protocol.parse_request line with
  | Error (code, msg) -> Protocol.error ~code msg
  | Ok req -> (
    match req with
    | Protocol.Hello v -> (
      match v with
      | Some v when v <> Protocol.version ->
        Protocol.error ~code:Protocol.Bad_request
          (Printf.sprintf "protocol %d requested, server speaks %d" v
             Protocol.version)
      | _ -> Protocol.greeting)
    | Protocol.Ping -> Protocol.ok [ ("pong", J.Bool true) ]
    | Protocol.Submit s -> respond (Engine.submit t.engine s)
    | Protocol.Status id -> respond (Engine.status t.engine id)
    | Protocol.Cancel id -> respond (Engine.cancel t.engine id)
    | Protocol.List_campaigns ->
      Protocol.ok [ ("campaigns", J.List (Engine.list_campaigns t.engine)) ]
    | Protocol.Report id -> (
      match Engine.report t.engine id with
      | Ok report -> Protocol.ok [ ("report", report) ]
      | Error (code, msg) -> Protocol.error ~code msg)
    | Protocol.Artifacts id -> (
      match Engine.artifacts t.engine id with
      | Ok items ->
        Protocol.ok
          [
            ( "artifacts",
              J.List
                (List.map
                   (fun (path, artifact) ->
                     J.Obj
                       [ ("path", J.String path); ("artifact", artifact) ])
                   items) );
          ]
      | Error (code, msg) -> Protocol.error ~code msg)
    | Protocol.Metrics ->
      Protocol.ok
        [ ("metrics", J.String (Telemetry.Metrics.dump (Engine.metrics t.engine))) ]
    | Protocol.Shutdown ->
      t.stopping <- true;
      Protocol.ok [ ("stopping", J.Bool true) ])

(* Consume complete lines from the connection buffer; each produces
   one response. Returns [false] if the peer went away mid-reply. *)
let drain_lines t conn =
  let rec next () =
    let data = Buffer.contents conn.buf in
    match String.index_opt data '\n' with
    | None ->
      if Buffer.length conn.buf > max_line then begin
        ignore
          (send_line conn
             (Protocol.error ~code:Protocol.Bad_request "request line too long"));
        false
      end
      else true
    | Some i ->
      let line = String.sub data 0 i in
      Buffer.clear conn.buf;
      Buffer.add_substring conn.buf data (i + 1) (String.length data - i - 1);
      let line =
        (* tolerate CRLF clients *)
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      if String.trim line = "" then next ()
      else if send_line conn (handle_request t line) then next ()
      else false
  in
  next ()

let handle_readable t conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop t conn
  | n ->
    Buffer.add_subbytes conn.buf chunk 0 n;
    if not (drain_lines t conn) then drop t conn
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    drop t conn
  | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()

let accept_conn t listener =
  match Unix.accept ~cloexec:true listener with
  | fd, addr ->
    let peer =
      match addr with
      | Unix.ADDR_UNIX _ -> "unix"
      | Unix.ADDR_INET (host, port) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port
    in
    let conn = { fd; peer; buf = Buffer.create 256 } in
    t.conns <- conn :: t.conns;
    Log.debug (fun m -> m "connect %s" peer);
    if not (send_line conn Protocol.greeting) then drop t conn
  | exception Unix.Unix_error _ -> ()

(* ---------------- listeners ---------------- *)

let listen_unix path =
  (* a stale socket file from a crashed daemon would make [bind] fail;
     refuse only if something is actually listening there *)
  (match (Unix.stat path).Unix.st_kind with
  | Unix.S_SOCK ->
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    close_quietly probe;
    if live then failwith (Printf.sprintf "socket %s is already served" path)
    else Unix.unlink path
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  fd

(* ---------------- the loop ---------------- *)

let run ?socket ?port engine =
  let listeners =
    (match socket with None -> [] | Some p -> [ listen_unix p ])
    @ (match port with None -> [] | Some p -> [ listen_tcp p ])
  in
  if listeners = [] then invalid_arg "Server.run: no socket and no port";
  let t =
    { engine; listeners; socket_path = socket; conns = []; stopping = false }
  in
  let prev_handlers = ref [] in
  let trap signal =
    match
      Sys.signal signal
        (Sys.Signal_handle
           (fun _ ->
             Log.info (fun m -> m "signal: shutting down");
             t.stopping <- true))
    with
    | prev -> prev_handlers := (signal, prev) :: !prev_handlers
    | exception (Invalid_argument _ | Sys_error _) -> ()
  in
  trap Sys.sigint;
  trap Sys.sigterm;
  (try prev_handlers := (Sys.sigpipe, Sys.signal Sys.sigpipe Sys.Signal_ignore)
                        :: !prev_handlers
   with Invalid_argument _ | Sys_error _ -> ());
  (match socket with
  | Some p -> Log.app (fun m -> m "listening on %s" p)
  | None -> ());
  (match port with
  | Some p -> Log.app (fun m -> m "listening on 127.0.0.1:%d" p)
  | None -> ());
  let finished () = t.stopping in
  while not (finished ()) do
    let watched = t.listeners @ List.map (fun c -> c.fd) t.conns in
    let timeout = if Engine.has_runnable t.engine then 0.0 else 0.2 in
    let ready =
      match Unix.select watched [] [] timeout with
      | ready, _, _ -> ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter
      (fun fd ->
        if t.stopping then ()
        else if List.memq fd t.listeners then accept_conn t fd
        else
          match List.find_opt (fun c -> c.fd == fd) t.conns with
          | Some conn -> handle_readable t conn
          | None -> ())
      ready;
    if not t.stopping then ignore (Engine.step t.engine)
  done;
  List.iter (fun c -> close_quietly c.fd) t.conns;
  t.conns <- [];
  List.iter close_quietly t.listeners;
  (match t.socket_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter (fun (s, h) -> try Sys.set_signal s h with _ -> ()) !prev_handlers;
  Engine.shutdown engine;
  Log.app (fun m -> m "shut down cleanly")
