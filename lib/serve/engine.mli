(** The campaign engine behind [mufuzz serve]: a registry of submitted
    campaigns plus a priority scheduler that runs them in cooperative
    time slices over one shared executor (and, optionally, one shared
    worker-domain pool).

    {b Slicing.} [step] picks the runnable campaign with the highest
    priority (ties: least-recently-run, then submission order — FIFO
    for fresh work, round-robin among peers) and runs it for about
    [slice_execs] executions. The slice ends at the campaign's next
    safe point: the engine's [on_safe_point] hook forces the snapshot
    thunk, persists it as a checkpoint in the campaign's namespaced
    {!Persist.Store} and raises {!Mufuzz.Campaign.Preempt}. The next
    slice resumes from that snapshot, so a sliced campaign's final
    report equals an uninterrupted run's at [jobs = 1] (modulo wall
    time).

    {b On disk.} Each campaign owns [state_dir/<id>/] containing
    [contract.sol], [meta.json], [events.jsonl] (the telemetry trace,
    appended across slices), rotated [checkpoint-*.json], and — once
    completed — [report.json] plus shrunk repro artifacts in
    [artifacts/]. [create] rescans [state_dir], so a restarted daemon
    resumes unfinished campaigns from their last checkpoint.

    The engine is single-threaded: callers alternate [step] with
    protocol operations; nothing here spawns threads (the worker pool
    spawns domains, but only inside a slice). *)

type t

val create :
  ?slice_execs:int ->
  ?checkpoint_keep:int ->
  ?jobs:int ->
  state_dir:string ->
  metrics:Telemetry.Metrics.t ->
  unit ->
  t
(** [slice_execs] (default 500) is the per-slice execution budget.
    [checkpoint_keep] (default 3) bounds retained checkpoints per
    campaign. [jobs > 1] spawns a shared worker pool that campaigns
    submitted with ["jobs"] > 1 run on. Scans [state_dir] for
    campaigns left by a previous daemon. *)

val state_dir : t -> string
val metrics : t -> Telemetry.Metrics.t

val submit :
  t ->
  Protocol.submit ->
  ((string * Telemetry.Json.t) list, Protocol.error_code * string) result
(** Validate (read the file if file-referenced, compile, resolve the
    tool profile), assign the next campaign id and enqueue. Returns the
    campaign's status fields; the ["id"] member names the campaign. *)

val status :
  t ->
  string ->
  ((string * Telemetry.Json.t) list, Protocol.error_code * string) result

val list_campaigns : t -> Telemetry.Json.t list
(** Status objects of every campaign, in submission order. *)

val cancel :
  t ->
  string ->
  ((string * Telemetry.Json.t) list, Protocol.error_code * string) result
(** Queued or running only; a terminal campaign is a [Bad_state]
    error. A cancelled running campaign keeps its on-disk checkpoints
    (a later [mufuzz resume] can still pick them up) but frees its
    scheduler slot immediately. *)

val report :
  t -> string -> (Telemetry.Json.t, Protocol.error_code * string) result
(** The final campaign report (exactly [mufuzz fuzz --json] shape);
    [Bad_state] until the campaign completes. *)

val artifacts :
  t ->
  string ->
  ((string * Telemetry.Json.t) list, Protocol.error_code * string) result
(** [(path, artifact)] for each shrunk repro artifact of a completed
    campaign; each [artifact] is a {!Triage.Artifact} JSON object that
    [mufuzz repro] accepts. *)

val has_runnable : t -> bool

val step : t -> string option
(** Run one time slice of the best runnable campaign; [None] when all
    campaigns are terminal. *)

val run_to_completion : t -> unit
(** [step] until nothing is runnable (the in-process equivalent of a
    daemon with no clients — used by tests). *)

val shutdown : t -> unit
(** Flush every campaign's [meta.json] and stop the worker pool.
    Running campaigns stay resumable via their checkpoints. *)
