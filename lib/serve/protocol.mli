(** The `mufuzz serve` wire protocol: line-delimited JSON.

    Every request and every response is one compact JSON object on one
    line. On connect the server sends {!greeting} — the versioned
    handshake — and then answers each request line with exactly one
    response line, in order. Responses carry ["ok": true] on success;
    failures are structured error objects
    [{"ok": false, "code": ..., "error": ...}], never a closed
    connection or an exception trace. See PROTOCOL.md for the full
    request/response schemas. *)

val version : int
(** Protocol version, [1]. Bumped on any incompatible schema change;
    the server's {!greeting} announces it and a client may verify it
    with a ["hello"] request. *)

val server_name : string

(** Machine-readable failure categories, rendered kebab-case in the
    ["code"] field of error responses. *)
type error_code =
  | Bad_request  (** malformed JSON, missing/ill-typed fields *)
  | Unknown_op
  | Unknown_id  (** no campaign with the given id *)
  | Bad_state  (** valid id, but the campaign is in the wrong phase *)
  | Internal

val code_string : error_code -> string

type submit = {
  sub_source : [ `Inline of string | `File of string ];
      (** contract source text, or a server-side path to read it from *)
  sub_budget : int option;  (** execution budget; default 5000 *)
  sub_seed : int64 option;  (** campaign RNG seed; default 42 *)
  sub_tool : string option;  (** fuzzer profile; default "MuFuzz" *)
  sub_jobs : int option;
      (** worker domains; >1 only honoured when the daemon has a pool *)
  sub_priority : int;  (** higher runs first; default 0 *)
}

type request =
  | Hello of int option
  | Submit of submit
  | Status of string
  | Report of string
  | Cancel of string
  | Artifacts of string
  | List_campaigns
  | Metrics
  | Ping
  | Shutdown

val parse_request : string -> (request, error_code * string) result
(** Parse one request line. Unknown fields are ignored; anything
    missing or ill-typed is an [Error] naming the offence. *)

val ok : (string * Telemetry.Json.t) list -> string
(** Render a success response line: [{"ok": true, ...fields}]. *)

val error : code:error_code -> string -> string
(** Render a structured error response line. *)

val greeting : string
(** The handshake line sent on connect:
    [{"ok":true,"server":"mufuzz-serve","protocol":1}]. *)
