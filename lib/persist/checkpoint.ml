(* The campaign checkpoint document: a versioned, self-describing JSON
   snapshot of everything a running campaign would lose on SIGKILL.

   Follows the repro-artifact precedent: the document embeds the full
   Minisol source plus its Keccak-256, which [of_json] re-verifies and
   recompiles — a checkpoint directory is self-contained, resumable on
   a machine that has never seen the original contract file. *)

module J = Telemetry.Json

let format_tag = "mufuzz-checkpoint"

(* v2 added the input-prediction flip-attempt counts ("attempts"); v1
   documents decode with an empty table, so prediction simply restarts
   its counting after resume. v3 added the round-batch auto-tune
   controller state ("round_batch", "rb_votes") and the prediction
   proposal counter ("predict_proposals"); v2 documents decode with
   zeros — the controller re-seeds its width from the config and the
   proposal total restarts, exactly the pre-v3 behaviour *)
let current_version = 3

type t = {
  tool : string;
  config : Mufuzz.Config.t;
  contract : Minisol.Contract.t;
  snapshot : Mufuzz.Campaign.snapshot;
}

let source_hash (c : Minisol.Contract.t) = Crypto.Keccak.hash_hex c.source

(* ---------------- encoding ---------------- *)

let branch_json (pc, taken) =
  J.Obj [ ("pc", J.Int pc); ("taken", J.Bool taken) ]

let branches_json l = J.List (List.map branch_json l)

let dist_json ((pc, taken), d) =
  J.Obj [ ("pc", J.Int pc); ("taken", J.Bool taken); ("d", J.Float d) ]

let entry_json (se : Mufuzz.Campaign.snapshot_entry) =
  J.Obj
    [
      ("seed", Mufuzz.Seed.to_json se.sn_seed);
      ("path", branches_json se.sn_path);
      ("nested", branches_json se.sn_nested);
      ("fdists", J.List (List.map dist_json se.sn_fdists));
      ( "masks",
        J.List
          (List.map
             (fun (i, m) ->
               J.Obj [ ("tx", J.Int i); ("mask", Mufuzz.Mask.to_json m) ])
             se.sn_masks) );
    ]

let finding_json ((f : Oracles.Oracle.finding), seed) =
  J.Obj
    [
      ("class", J.String (Oracles.Oracle.class_to_string f.cls));
      ("pc", J.Int f.pc);
      ("tx_index", J.Int f.tx_index);
      ("detail", J.String f.detail);
      ("seed", Mufuzz.Seed.to_json seed);
    ]

let occ_json ((k : Oracles.Oracle.key), n) =
  J.Obj
    [
      ("class", J.String (Oracles.Oracle.class_to_string k.k_cls));
      ("pc", J.Int k.k_pc);
      ("path_hash", J.String k.k_path);
      ("count", J.Int n);
    ]

let snapshot_json (s : Mufuzz.Campaign.snapshot) =
  J.Obj
    [
      ("execs", J.Int s.sn_execs);
      ("steps", J.Int s.sn_steps);
      ("mask_probes", J.Int s.sn_mask_probes);
      ("cursor", J.Int s.sn_cursor);
      (* int64 RNG state exceeds the 63-bit [J.Int] range *)
      ("rng", J.String (Int64.to_string s.sn_rng));
      ("rng_counter", J.Int s.sn_rng_counter);
      ("elapsed", J.Float s.sn_elapsed);
      ("entries", J.List (Array.to_list (Array.map entry_json s.sn_entries)));
      ("queue", J.List (List.map (fun i -> J.Int i) s.sn_queue));
      ( "best",
        J.List
          (List.map
             (fun ((pc, taken), d, i) ->
               J.Obj
                 [
                   ("pc", J.Int pc);
                   ("taken", J.Bool taken);
                   ("d", J.Float d);
                   ("entry", J.Int i);
                 ])
             s.sn_best) );
      ("coverage", Mufuzz.Coverage.to_json s.sn_coverage);
      ( "weights",
        match s.sn_weights with
        | None -> J.Null
        | Some ws -> J.List (List.map dist_json ws) );
      ("findings", J.List (List.map finding_json s.sn_findings));
      ("occ", J.List (List.map occ_json s.sn_occ));
      ( "over_time",
        J.List
          (List.map
             (fun (cp : Mufuzz.Report.checkpoint) ->
               J.Obj [ ("execs", J.Int cp.execs); ("covered", J.Int cp.covered) ])
             s.sn_over_time) );
      ( "attempts",
        J.List
          (List.map
             (fun ((pc, taken), n) ->
               J.Obj
                 [ ("pc", J.Int pc); ("taken", J.Bool taken); ("n", J.Int n) ])
             s.sn_attempts) );
      ("round_batch", J.Int s.sn_round_batch);
      ("rb_votes", J.Int s.sn_rb_votes);
      ("predict_proposals", J.Int s.sn_predict_proposals);
    ]

(* Field order is fixed; [J.to_string] preserves it, so equal
   checkpoints render byte-identically. The (large) source string goes
   last to keep the head of the file human-greppable. *)
let to_json t =
  J.Obj
    [
      ("format", J.String format_tag);
      ("version", J.Int current_version);
      ("tool", J.String t.tool);
      ("contract", J.String t.contract.name);
      ("source_hash", J.String (source_hash t.contract));
      ("config", Mufuzz.Config.to_json t.config);
      ("snapshot", snapshot_json t.snapshot);
      ("source", J.String t.contract.source);
    ]

let to_string t = J.to_string (to_json t)

(* ---------------- decoding ---------------- *)

let ( let* ) = Result.bind

let field name conv json =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let map_result f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let branch_of_json j =
  let* pc = field "pc" J.to_int j in
  let* taken = field "taken" J.to_bool j in
  Ok (pc, taken)

let dist_of_json j =
  let* br = branch_of_json j in
  let* d = field "d" J.to_float j in
  Ok (br, d)

let entry_of_json ~abi j : (Mufuzz.Campaign.snapshot_entry, string) result =
  let* seed = Result.bind (field "seed" Option.some j) (Mufuzz.Seed.of_json ~abi) in
  let* path = Result.bind (field "path" J.to_list j) (map_result branch_of_json) in
  let* nested =
    Result.bind (field "nested" J.to_list j) (map_result branch_of_json)
  in
  let* fdists =
    Result.bind (field "fdists" J.to_list j) (map_result dist_of_json)
  in
  let* masks =
    Result.bind
      (field "masks" J.to_list j)
      (map_result (fun mj ->
           let* tx = field "tx" J.to_int mj in
           let* m =
             Result.bind (field "mask" Option.some mj) Mufuzz.Mask.of_json
           in
           Ok (tx, m)))
  in
  Ok
    {
      Mufuzz.Campaign.sn_seed = seed;
      sn_path = path;
      sn_nested = nested;
      sn_fdists = fdists;
      sn_masks = masks;
    }

let class_of_json j =
  let* s = field "class" J.string_value j in
  match Oracles.Oracle.class_of_string s with
  | Some c -> Ok c
  | None -> Error (Printf.sprintf "unknown oracle class %S" s)

let finding_of_json ~abi j =
  let* cls = class_of_json j in
  let* pc = field "pc" J.to_int j in
  let* tx_index = field "tx_index" J.to_int j in
  let* detail = field "detail" J.string_value j in
  let* seed = Result.bind (field "seed" Option.some j) (Mufuzz.Seed.of_json ~abi) in
  Ok ({ Oracles.Oracle.cls; pc; tx_index; detail }, seed)

let occ_of_json j =
  let* k_cls = class_of_json j in
  let* k_pc = field "pc" J.to_int j in
  let* k_path = field "path_hash" J.string_value j in
  let* count = field "count" J.to_int j in
  Ok ({ Oracles.Oracle.k_cls; k_pc; k_path }, count)

let snapshot_of_json ~abi j : (Mufuzz.Campaign.snapshot, string) result =
  let* sn_execs = field "execs" J.to_int j in
  let* sn_steps = field "steps" J.to_int j in
  let* sn_mask_probes = field "mask_probes" J.to_int j in
  let* sn_cursor = field "cursor" J.to_int j in
  let* sn_rng =
    let* s = field "rng" J.string_value j in
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error "rng state is not a 64-bit decimal"
  in
  let* sn_rng_counter = field "rng_counter" J.to_int j in
  let* sn_elapsed = field "elapsed" J.to_float j in
  let* entries =
    Result.bind (field "entries" J.to_list j) (map_result (entry_of_json ~abi))
  in
  let sn_entries = Array.of_list entries in
  let n = Array.length sn_entries in
  let valid_id i = i >= 0 && i < n in
  let* sn_queue =
    Result.bind
      (field "queue" J.to_list j)
      (map_result (fun ij ->
           match J.to_int ij with
           | Some i when valid_id i -> Ok i
           | Some i -> Error (Printf.sprintf "queue entry index %d out of range" i)
           | None -> Error "ill-typed queue entry"))
  in
  let* sn_best =
    Result.bind
      (field "best" J.to_list j)
      (map_result (fun bj ->
           let* br = branch_of_json bj in
           let* d = field "d" J.to_float bj in
           let* i = field "entry" J.to_int bj in
           if valid_id i then Ok (br, d, i)
           else Error (Printf.sprintf "best entry index %d out of range" i)))
  in
  let* sn_coverage =
    Result.bind (field "coverage" Option.some j) Mufuzz.Coverage.of_json
  in
  let* sn_weights =
    match J.member "weights" j with
    | Some J.Null -> Ok None
    | Some (J.List ws) -> Result.map Option.some (map_result dist_of_json ws)
    | Some _ -> Error "ill-typed field \"weights\""
    | None -> Error "missing field \"weights\""
  in
  let* sn_findings =
    Result.bind (field "findings" J.to_list j) (map_result (finding_of_json ~abi))
  in
  let* sn_occ = Result.bind (field "occ" J.to_list j) (map_result occ_of_json) in
  let* sn_over_time =
    Result.bind
      (field "over_time" J.to_list j)
      (map_result (fun cj ->
           let* execs = field "execs" J.to_int cj in
           let* covered = field "covered" J.to_int cj in
           Ok { Mufuzz.Report.execs; covered }))
  in
  (* absent before v2 *)
  let* sn_attempts =
    match J.member "attempts" j with
    | None -> Ok []
    | Some (J.List l) ->
      map_result
        (fun aj ->
          let* br = branch_of_json aj in
          let* n = field "n" J.to_int aj in
          Ok (br, n))
        l
    | Some _ -> Error "ill-typed field \"attempts\""
  in
  (* absent before v3 *)
  let opt_int name dflt =
    match J.member name j with
    | None -> Ok dflt
    | Some v -> (
      match J.to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "ill-typed field %S" name))
  in
  let* sn_round_batch = opt_int "round_batch" 0 in
  let* sn_rb_votes = opt_int "rb_votes" 0 in
  let* sn_predict_proposals = opt_int "predict_proposals" 0 in
  Ok
    {
      Mufuzz.Campaign.sn_execs;
      sn_steps;
      sn_mask_probes;
      sn_cursor;
      sn_rng;
      sn_rng_counter;
      sn_elapsed;
      sn_entries;
      sn_queue;
      sn_best;
      sn_coverage;
      sn_weights;
      sn_findings;
      sn_occ;
      sn_over_time;
      sn_attempts;
      sn_round_batch;
      sn_rb_votes;
      sn_predict_proposals;
    }

let of_json json =
  let* fmt = field "format" J.string_value json in
  let* () =
    if fmt = format_tag then Ok ()
    else Error (Printf.sprintf "not a %s document (format=%S)" format_tag fmt)
  in
  let* version = field "version" J.to_int json in
  let* () =
    if version >= 1 && version <= current_version then Ok ()
    else
      Error
        (Printf.sprintf "checkpoint version %d not supported (max %d)" version
           current_version)
  in
  let* tool = field "tool" J.string_value json in
  let* name = field "contract" J.string_value json in
  let* src_hash = field "source_hash" J.string_value json in
  let* source = field "source" J.string_value json in
  let* () =
    let actual = Crypto.Keccak.hash_hex source in
    if actual = src_hash then Ok ()
    else
      Error
        (Printf.sprintf
           "embedded source hash mismatch: recorded %s, actual %s (source \
            edited after the checkpoint was written?)"
           src_hash actual)
  in
  let* contract =
    match Minisol.Contract.compile source with
    | c -> Ok c
    | exception _ -> Error "embedded source does not compile"
  in
  let* () =
    if contract.name = name then Ok ()
    else
      Error
        (Printf.sprintf
           "contract name mismatch: checkpoint says %S, source declares %S"
           name contract.name)
  in
  let* config =
    Result.bind (field "config" Option.some json)
      (Mufuzz.Config.of_json ~abi:contract.abi)
  in
  let* snapshot =
    Result.bind (field "snapshot" Option.some json)
      (snapshot_of_json ~abi:contract.abi)
  in
  Ok { tool; config; contract; snapshot }

let of_string s =
  let* json =
    match J.of_string s with
    | Ok j -> Ok j
    | Error e -> Error (Printf.sprintf "corrupt checkpoint: %s" e)
  in
  of_json json

let save path t = Util.Fileio.write_atomic path (to_string t ^ "\n")

let load path =
  match Util.Fileio.read_file path with
  | exception Sys_error m -> Error m
  | content -> of_string (String.trim content)
