(** Rotated on-disk checkpoint store.

    One campaign ↦ one directory. Files are named
    [checkpoint-<execs, zero-padded>.json] so lexicographic order is
    campaign order; each write is atomic (temp + rename) and the store
    keeps only the newest [keep] files.

    Many campaigns can share one state directory through
    {!namespaced}: campaign [id]'s files live under [<dir>/<id>/], so
    keep-K pruning — which only ever scans a store's own directory —
    cannot eat a sibling campaign's checkpoints. Flat single-campaign
    directories (the [mufuzz fuzz --checkpoint] layout) keep working
    unchanged; namespacing is opt-in and needs no migration. *)

type t

val file_name : int -> string
(** [file_name execs] — ["checkpoint-%012d.json"]. *)

val is_checkpoint_file : string -> bool
(** Whether a basename matches the store's naming scheme. *)

val create : dir:string -> keep:int -> t
(** Creates [dir] (and parents) if missing. [keep] is clamped to
    ≥ 1. *)

val valid_namespace : string -> bool
(** Whether a string is usable as a campaign id / store namespace:
    nonempty, chars in [[A-Za-z0-9._-]], no leading dot. *)

val namespaced : dir:string -> id:string -> keep:int -> t
(** The store rooted at [<dir>/<id>] — one campaign's slice of a shared
    state directory. Raises [Invalid_argument] when [id] fails
    {!valid_namespace}. *)

val namespaced_path : dir:string -> path:string list -> keep:int -> t
(** Nested namespacing, one {!valid_namespace} segment per level: the
    fleet layout [<fleet>/<shard>/<campaign>] is
    [namespaced_path ~dir:fleet ~path:[shard; campaign]]. Raises
    [Invalid_argument] on an empty path or any invalid segment. *)

val dir : t -> string
(** The store's directory (after any namespacing). *)

val namespaces : string -> string list
(** Campaign ids under a shared state directory: subdirectories of
    [dir] that hold at least one checkpoint file, sorted. A flat
    (un-namespaced) store yields [[]]. *)

val list : t -> string list
(** Absolute paths of the store's checkpoint files, oldest first. *)

val save : t -> Checkpoint.t -> string
(** Writes the checkpoint atomically, prunes down to [keep] files, and
    returns the written path. May raise [Sys_error]. *)

val load_latest : string -> (string * Checkpoint.t, string) result
(** Loads the newest readable checkpoint in [dir], falling back to
    older files when the newest is corrupt; returns its path too.
    [Error] when the directory holds no loadable checkpoint. *)
