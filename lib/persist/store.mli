(** Rotated on-disk checkpoint store.

    One campaign ↦ one directory. Files are named
    [checkpoint-<execs, zero-padded>.json] so lexicographic order is
    campaign order; each write is atomic (temp + rename) and the store
    keeps only the newest [keep] files. *)

type t

val file_name : int -> string
(** [file_name execs] — ["checkpoint-%012d.json"]. *)

val is_checkpoint_file : string -> bool
(** Whether a basename matches the store's naming scheme. *)

val create : dir:string -> keep:int -> t
(** Creates [dir] (and parents) if missing. [keep] is clamped to
    ≥ 1. *)

val list : t -> string list
(** Absolute paths of the store's checkpoint files, oldest first. *)

val save : t -> Checkpoint.t -> string
(** Writes the checkpoint atomically, prunes down to [keep] files, and
    returns the written path. May raise [Sys_error]. *)

val load_latest : string -> (string * Checkpoint.t, string) result
(** Loads the newest readable checkpoint in [dir], falling back to
    older files when the newest is corrupt; returns its path too.
    [Error] when the directory holds no loadable checkpoint. *)
