(** Versioned, self-describing campaign checkpoint documents.

    A checkpoint is a single JSON file capturing everything a running
    campaign would lose on SIGKILL: the seed queue with per-seed
    metadata (paths, nested-branch sets, frontier distances, cached
    masks), the coverage table and distance frontier, learned energy
    weights, deduplicated findings with occurrence counts, the
    exec/step counters, the coverage-over-time curve, and the exact RNG
    stream position. Loading one reconstructs a
    {!Mufuzz.Campaign.snapshot} that {!Mufuzz.Campaign.run} resumes
    from deterministically.

    The document embeds the full Minisol source together with its
    Keccak-256; {!of_json} re-verifies the hash and recompiles, so a
    checkpoint directory is self-contained and survives the original
    contract file moving or changing. *)

type t = {
  tool : string;
      (** which fuzzer profile wrote the checkpoint ("mufuzz" or a
          baseline name); resume re-applies the profile's config and
          findings filter *)
  config : Mufuzz.Config.t;  (** the effective (profile-applied) config *)
  contract : Minisol.Contract.t;  (** recompiled from the embedded source *)
  snapshot : Mufuzz.Campaign.snapshot;
}

val format_tag : string
(** ["mufuzz-checkpoint"] — the ["format"] field of every document. *)

val current_version : int

val source_hash : Minisol.Contract.t -> string
(** Keccak-256 of the contract source, hex. *)

val to_json : t -> Telemetry.Json.t

val of_json : Telemetry.Json.t -> (t, string) result
(** Rejects wrong format tags, unsupported versions, source-hash
    mismatches, non-compiling sources, contract-name mismatches, and
    any missing or ill-typed field; entry indices in the queue and
    frontier are bounds-checked. *)

val to_string : t -> string

val of_string : string -> (t, string) result

val save : string -> t -> unit
(** Atomic: writes a temp file in the destination directory and
    renames over [path], so a crash mid-write never leaves a torn
    checkpoint. May raise [Sys_error]. *)

val load : string -> (t, string) result
(** [Error] covers unreadable files as well as every {!of_string}
    rejection. *)
