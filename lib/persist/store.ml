(* A checkpoint directory: atomically written, rotated files named by
   execution count so lexicographic order equals campaign order. *)

type t = { dir : string; keep : int }

let file_name execs = Printf.sprintf "checkpoint-%012d.json" execs

let prefix = "checkpoint-"

let suffix = ".json"

let is_checkpoint_file name =
  let lp = String.length prefix and ls = String.length suffix in
  String.length name > lp + ls
  && String.sub name 0 lp = prefix
  && String.sub name (String.length name - ls) ls = suffix
  && String.for_all
       (fun c -> c >= '0' && c <= '9')
       (String.sub name lp (String.length name - lp - ls))

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let create ~dir ~keep =
  mkdirs dir;
  { dir; keep = max 1 keep }

(* Campaign ids double as directory names, so the alphabet is locked
   down: no separators, no dot-files, nothing the shell or a URL would
   reinterpret. *)
let valid_namespace id =
  id <> "" && id.[0] <> '.'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       id

let namespaced ~dir ~id ~keep =
  if not (valid_namespace id) then
    invalid_arg (Printf.sprintf "Store.namespaced: invalid campaign id %S" id);
  create ~dir:(Filename.concat dir id) ~keep

(* Fleet layout: <fleet>/<shard>/<campaign>. Every segment is
   validated, so a hostile shard or campaign id can never escape the
   root directory. *)
let namespaced_path ~dir ~path ~keep =
  if path = [] then invalid_arg "Store.namespaced_path: empty path";
  let dir =
    List.fold_left
      (fun dir id ->
        if not (valid_namespace id) then
          invalid_arg
            (Printf.sprintf "Store.namespaced_path: invalid segment %S" id);
        Filename.concat dir id)
      dir path
  in
  create ~dir ~keep

let dir t = t.dir

let namespaces dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun id ->
           valid_namespace id
           && Sys.is_directory (Filename.concat dir id)
           && Array.exists is_checkpoint_file
                (try Sys.readdir (Filename.concat dir id)
                 with Sys_error _ -> [||]))
    |> List.sort compare

(* Checkpoint files, oldest first. Names embed a zero-padded exec
   count, so string sort is chronological sort. *)
let list t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter is_checkpoint_file
    |> List.sort compare
    |> List.map (Filename.concat t.dir)

let rotate t =
  let files = list t in
  let excess = List.length files - t.keep in
  if excess > 0 then
    List.iteri
      (fun i path -> if i < excess then try Sys.remove path with Sys_error _ -> ())
      files

let save t (ckpt : Checkpoint.t) =
  let path = Filename.concat t.dir (file_name ckpt.snapshot.sn_execs) in
  Checkpoint.save path ckpt;
  rotate t;
  path

let load_latest dir =
  let store = { dir; keep = max_int } in
  match List.rev (list store) with
  | [] -> Error (Printf.sprintf "no checkpoint files in %s" dir)
  | newest_first ->
    (* Fall back through older checkpoints if the newest is damaged —
       e.g. a partially copied directory. *)
    let rec try_load last_err = function
      | [] -> Error last_err
      | path :: rest -> (
        match Checkpoint.load path with
        | Ok ckpt -> Ok (path, ckpt)
        | Error e ->
          try_load (Printf.sprintf "%s: %s" (Filename.basename path) e) rest)
    in
    try_load "unreachable" newest_first
