(** The checkpoint cadence driver.

    Bridges a campaign's safe points (see
    [Mufuzz.Campaign.run ~on_safe_point]) to the rotated {!Store}: at
    each safe point it decides whether a write is due — final safe
    point, ≥ [checkpoint_every_execs] executions, or ≥
    [checkpoint_every_seconds] seconds since the last write — and only
    then forces the snapshot thunk and persists. Successful writes emit
    [Checkpoint_written] on the campaign bus and bump
    [mufuzz_checkpoint_written_total]; write failures are logged and
    swallowed, never killing the campaign they were protecting. *)

type t

val create :
  ?metrics:Telemetry.Metrics.t ->
  ?start_execs:int ->
  tool:string ->
  contract:Minisol.Contract.t ->
  dir:string ->
  Mufuzz.Config.t ->
  t
(** Cadence and rotation come from the config's [checkpoint_*] fields.
    [start_execs] (default 0) is the execution count already persisted
    — pass the snapshot's count when resuming so the first safe point
    does not rewrite the checkpoint just loaded. *)

val of_config :
  ?metrics:Telemetry.Metrics.t ->
  ?start_execs:int ->
  tool:string ->
  contract:Minisol.Contract.t ->
  Mufuzz.Config.t ->
  t option
(** [None] when [config.checkpoint_dir] is unset (persistence off). *)

val on_safe_point :
  t ->
  final:bool ->
  bus:Telemetry.Bus.t ->
  execs:int ->
  (unit -> Mufuzz.Campaign.snapshot) ->
  unit

val hook :
  t ->
  final:bool ->
  bus:Telemetry.Bus.t ->
  execs:int ->
  (unit -> Mufuzz.Campaign.snapshot) ->
  unit
(** [hook t] partially applied is exactly the shape
    [Campaign.run ~on_safe_point] expects. *)
