(* Cadence state machine connecting a campaign's safe points to the
   checkpoint store. Plugged in as [Campaign.run ~on_safe_point]; the
   snapshot thunk is only forced when a write is actually due, so an
   idle cadence costs nothing per safe point. *)

let log_src = Logs.Src.create "mufuzz.persist" ~doc:"campaign persistence"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  store : Store.t;
  every_execs : int;
  every_seconds : float;
  tool : string;
  config : Mufuzz.Config.t;
  contract : Minisol.Contract.t;
  m_written : Telemetry.Metrics.counter option;
  mutable last_execs : int;
  mutable last_time : float;
}

let m_written_counter metrics =
  Telemetry.Metrics.counter metrics "mufuzz_checkpoint_written_total"
    ~help:"campaign checkpoints written"

let create ?metrics ?(start_execs = 0) ~tool ~contract ~dir
    (config : Mufuzz.Config.t) =
  {
    store = Store.create ~dir ~keep:config.checkpoint_keep;
    every_execs = config.checkpoint_every_execs;
    every_seconds = config.checkpoint_every_seconds;
    tool;
    config;
    contract;
    m_written = Option.map m_written_counter metrics;
    last_execs = start_execs;
    last_time = Unix.gettimeofday ();
  }

let of_config ?metrics ?start_execs ~tool ~contract (config : Mufuzz.Config.t) =
  match config.checkpoint_dir with
  | None -> None
  | Some dir -> Some (create ?metrics ?start_execs ~tool ~contract ~dir config)

let on_safe_point t ~final ~bus ~execs snapshot =
  let now = Unix.gettimeofday () in
  let due =
    (* never rewrite the state we just loaded or already persisted *)
    execs > t.last_execs
    && (final
       || (t.every_execs > 0 && execs - t.last_execs >= t.every_execs)
       || (t.every_seconds > 0.0 && now -. t.last_time >= t.every_seconds))
  in
  if due then
    match
      Store.save t.store
        {
          Checkpoint.tool = t.tool;
          config = t.config;
          contract = t.contract;
          snapshot = snapshot ();
        }
    with
    | path ->
      t.last_execs <- execs;
      t.last_time <- now;
      Option.iter Telemetry.Metrics.incr t.m_written;
      Telemetry.Bus.emit bus
        (Telemetry.Event.Checkpoint_written { execs; path })
    | exception Sys_error msg ->
      (* a full disk must not kill the campaign it was protecting *)
      Log.warn (fun m -> m "checkpoint write failed: %s" msg)

let hook t = on_safe_point t
