module U = Word.U256

type ty = Uint256 | Uint8 | Address | Bool

let ty_to_string = function
  | Uint256 -> "uint256"
  | Uint8 -> "uint8"
  | Address -> "address"
  | Bool -> "bool"

let word_size = 32

type value = VUint of U.t | VAddress of U.t | VBool of bool

let value_to_string = function
  | VUint v -> U.to_decimal_string v
  | VAddress a -> U.to_hex_string a
  | VBool b -> string_of_bool b

type func = {
  name : string;
  inputs : ty list;
  payable : bool;
  is_constructor : bool;
}

let signature f =
  Printf.sprintf "%s(%s)" f.name
    (String.concat "," (List.map ty_to_string f.inputs))

(* Selectors are requested for every transaction the executor encodes,
   so memoize per domain (lock-free under the parallel campaign
   runner). Keyed by the signature string, which fully determines the
   selector. *)
let selector_memo : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let selector f =
  let sg = signature f in
  let memo = Domain.DLS.get selector_memo in
  match Hashtbl.find_opt memo sg with
  | Some s -> s
  | None ->
    let s = Crypto.Keccak.selector sg in
    Hashtbl.add memo sg s;
    s

let address_mask =
  U.sub (U.shift_left U.one 160) U.one

let canonicalize_word ty w =
  match ty with
  | Uint256 -> w
  | Uint8 -> U.logand w (U.of_int 0xff)
  | Address -> U.logand w address_mask
  | Bool -> if U.is_zero w then U.zero else U.one

let word_of_value ty v =
  let w =
    match v with
    | VUint w -> w
    | VAddress w -> w
    | VBool b -> if b then U.one else U.zero
  in
  canonicalize_word ty w

let encode_value ty v = U.to_bytes_be (word_of_value ty v)

let encode_call f values =
  if List.length values <> List.length f.inputs then
    invalid_arg "Abi.encode_call: arity mismatch";
  let buf = Buffer.create (4 + (word_size * List.length values)) in
  Buffer.add_string buf (selector f);
  List.iter2 (fun ty v -> Buffer.add_string buf (encode_value ty v)) f.inputs values;
  Buffer.contents buf

let args_byte_length f = word_size * List.length f.inputs

let encode_args_raw f raw =
  let buf = Buffer.create (4 + args_byte_length f) in
  Buffer.add_string buf (selector f);
  List.iteri
    (fun i ty ->
      let word =
        String.init word_size (fun j ->
            let k = (i * word_size) + j in
            if k < String.length raw then raw.[k] else '\000')
      in
      Buffer.add_string buf (U.to_bytes_be (canonicalize_word ty (U.of_bytes_be word))))
    f.inputs;
  Buffer.contents buf

let decode_args f data =
  List.mapi
    (fun i ty ->
      let word =
        String.init word_size (fun j ->
            let k = (i * word_size) + j in
            if k < String.length data then data.[k] else '\000')
      in
      let w = canonicalize_word ty (U.of_bytes_be word) in
      match ty with
      | Uint256 | Uint8 -> VUint w
      | Address -> VAddress w
      | Bool -> VBool (not (U.is_zero w)))
    f.inputs
