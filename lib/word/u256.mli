(** 256-bit unsigned machine words with EVM semantics.

    All arithmetic wraps modulo [2^256], matching the Ethereum Virtual
    Machine. Values are immutable. Signed operations ([sdiv], [srem],
    [slt], [sgt], [shift_right_arith], [sign_extend]) interpret the word
    as two's complement, again as the EVM does. *)

type t

val zero : t
val one : t
val max_value : t
(** [2^256 - 1]. *)

(** {1 Conversions} *)

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val of_signed_int : int -> t
(** Negative inputs map to their two's-complement representation. *)

val of_int64 : int64 -> t
(** The int64 is treated as unsigned. *)

val to_int_opt : t -> int option
(** [Some n] iff the value fits in a non-negative OCaml [int]. *)

val to_int_exn : t -> int
(** @raise Invalid_argument if the value does not fit. *)

val to_float : t -> float
(** Nearest float; large values lose precision but preserve ordering
    approximately. Used for branch-distance feedback. *)

val of_decimal_string : string -> t
(** Parses a decimal literal, wrapping modulo [2^256].
    @raise Invalid_argument on empty or non-numeric input. *)

val of_hex_string : string -> t
(** Parses a hex literal with optional ["0x"] prefix, at most 64 digits. *)

val to_decimal_string : t -> string
val to_hex_string : t -> string
(** Minimal-length lowercase hex with ["0x"] prefix. *)

val of_bytes_be : string -> t
(** Big-endian bytes, at most 32; shorter strings are left-padded with
    zeros (i.e. interpreted as the low-order bytes). *)

val to_bytes_be : t -> string
(** Exactly 32 big-endian bytes. *)

val blit_be : t -> Bytes.t -> int -> unit
(** [blit_be x buf off] writes the 32 big-endian bytes of [x] into [buf]
    at [off] without allocating. [buf] must have at least [off + 32]
    bytes. *)

val read_be : Bytes.t -> int -> t
(** [read_be buf off] reads 32 big-endian bytes from [buf] at [off]
    without intermediate allocation. Inverse of {!blit_be}. *)

val read_be_string : string -> int -> t
(** As {!read_be} but from a string. The caller must guarantee
    [off + 32 <= String.length s]. *)

(** {1 Arithmetic (wrapping mod 2^256)} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Unsigned division; [div x zero = zero] (EVM convention). *)

val rem : t -> t -> t
(** Unsigned remainder; [rem x zero = zero]. *)

val divmod : t -> t -> t * t

val sdiv : t -> t -> t
(** Signed division truncating toward zero, EVM [SDIV]. *)

val srem : t -> t -> t
(** Signed remainder with sign of the dividend, EVM [SMOD]. *)

val add_mod : t -> t -> t -> t
(** [add_mod a b m] is [(a + b) mod m] over unbounded integers,
    EVM [ADDMOD]; zero when [m] is zero. *)

val mul_mod : t -> t -> t -> t
(** [mul_mod a b m] is [(a * b) mod m], EVM [MULMOD]; zero when [m] is
    zero. *)

val exp : t -> t -> t
(** [exp base e] by square-and-multiply, wrapping. *)

val neg : t -> t
(** Two's-complement negation. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool
val lt : t -> t -> bool
val gt : t -> t -> bool
val le : t -> t -> bool
val ge : t -> t -> bool
val slt : t -> t -> bool
val sgt : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Bitwise} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
(** Zero for shifts [>= 256]. *)

val shift_right : t -> int -> t
(** Logical; zero for shifts [>= 256]. *)

val shift_right_arith : t -> int -> t
(** Arithmetic (sign-propagating), EVM [SAR]. *)

val byte : int -> t -> t
(** [byte i x] is the [i]-th byte of [x] counting from the big end
    (EVM [BYTE]); zero when [i >= 32]. *)

val sign_extend : int -> t -> t
(** [sign_extend k x] sign-extends from byte position [k] (little-endian
    byte index as in EVM [SIGNEXTEND]); identity when [k >= 31]. *)

val is_neg : t -> bool
(** True iff the top bit is set (negative as two's complement). *)

val bit_length : t -> int
(** Position of the highest set bit plus one; 0 for zero. *)

(** {1 Misc} *)

val hash : t -> int
val abs_difference : t -> t -> t
(** [abs_difference a b] is [max a b - min a b] (unsigned). *)

val pp : Format.formatter -> t -> unit
(** Prints the decimal rendering. *)
