(* 256-bit words as four 64-bit limbs, least significant first. All
   arithmetic wraps modulo 2^256 per EVM semantics. *)

type t = { l0 : int64; l1 : int64; l2 : int64; l3 : int64 }

let make l0 l1 l2 l3 = { l0; l1; l2; l3 }

let zero = make 0L 0L 0L 0L
let one = make 1L 0L 0L 0L
let max_value = make (-1L) (-1L) (-1L) (-1L)

let equal a b =
  Int64.equal a.l0 b.l0 && Int64.equal a.l1 b.l1 && Int64.equal a.l2 b.l2
  && Int64.equal a.l3 b.l3

let is_zero a = equal a zero

let compare a b =
  let c = Int64.unsigned_compare a.l3 b.l3 in
  if c <> 0 then c
  else
    let c = Int64.unsigned_compare a.l2 b.l2 in
    if c <> 0 then c
    else
      let c = Int64.unsigned_compare a.l1 b.l1 in
      if c <> 0 then c else Int64.unsigned_compare a.l0 b.l0

let lt a b = compare a b < 0
let gt a b = compare a b > 0
let le a b = compare a b <= 0
let ge a b = compare a b >= 0
let min a b = if le a b then a else b
let max a b = if ge a b then a else b

let limb a i =
  match i with
  | 0 -> a.l0
  | 1 -> a.l1
  | 2 -> a.l2
  | 3 -> a.l3
  | _ -> invalid_arg "U256.limb"

(* Add with carry-in; carry out is 0 or 1. *)
let add64c a b c =
  let s1 = Int64.add a b in
  let c1 = if Int64.unsigned_compare s1 a < 0 then 1L else 0L in
  let s2 = Int64.add s1 c in
  let c2 = if Int64.unsigned_compare s2 s1 < 0 then 1L else 0L in
  (s2, Int64.add c1 c2)

let sub64b a b brw =
  let d1 = Int64.sub a b in
  let b1 = if Int64.unsigned_compare a b < 0 then 1L else 0L in
  let d2 = Int64.sub d1 brw in
  let b2 = if Int64.unsigned_compare d1 brw < 0 then 1L else 0L in
  (d2, Int64.add b1 b2)

let add a b =
  let l0, c = add64c a.l0 b.l0 0L in
  let l1, c = add64c a.l1 b.l1 c in
  let l2, c = add64c a.l2 b.l2 c in
  let l3, _ = add64c a.l3 b.l3 c in
  make l0 l1 l2 l3

let sub a b =
  let l0, brw = sub64b a.l0 b.l0 0L in
  let l1, brw = sub64b a.l1 b.l1 brw in
  let l2, brw = sub64b a.l2 b.l2 brw in
  let l3, _ = sub64b a.l3 b.l3 brw in
  make l0 l1 l2 l3

let neg a = sub zero a

(* 64x64 -> 128 multiplication via 32-bit halves. *)
let mul64_wide a b =
  let mask = 0xFFFFFFFFL in
  let al = Int64.logand a mask and ah = Int64.shift_right_logical a 32 in
  let bl = Int64.logand b mask and bh = Int64.shift_right_logical b 32 in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let mid = Int64.add (Int64.shift_right_logical ll 32) (Int64.logand lh mask) in
  let mid = Int64.add mid (Int64.logand hl mask) in
  let lo = Int64.logor (Int64.logand ll mask) (Int64.shift_left mid 32) in
  let hi =
    Int64.add
      (Int64.add hh (Int64.shift_right_logical mid 32))
      (Int64.add (Int64.shift_right_logical lh 32) (Int64.shift_right_logical hl 32))
  in
  (lo, hi)

let mul a b =
  (* Schoolbook product, keeping only the low 256 bits. *)
  let acc = Array.make 4 0L in
  let carry_into idx v =
    let i = ref idx and v = ref v in
    while !i < 4 && not (Int64.equal !v 0L) do
      let s, c = add64c acc.(!i) !v 0L in
      acc.(!i) <- s;
      v := c;
      incr i
    done
  in
  for i = 0 to 3 do
    for j = 0 to 3 - i do
      let lo, hi = mul64_wide (limb a i) (limb b j) in
      carry_into (i + j) lo;
      if i + j + 1 < 4 then carry_into (i + j + 1) hi
    done
  done;
  make acc.(0) acc.(1) acc.(2) acc.(3)

let get_bit a i =
  let l = limb a (i / 64) in
  Int64.logand (Int64.shift_right_logical l (i mod 64)) 1L = 1L

let set_bit a i =
  let mask = Int64.shift_left 1L (i mod 64) in
  match i / 64 with
  | 0 -> { a with l0 = Int64.logor a.l0 mask }
  | 1 -> { a with l1 = Int64.logor a.l1 mask }
  | 2 -> { a with l2 = Int64.logor a.l2 mask }
  | 3 -> { a with l3 = Int64.logor a.l3 mask }
  | _ -> invalid_arg "U256.set_bit"

let bit_length a =
  let limb_bits l = if Int64.equal l 0L then 0 else 64 - Int64_util.count_leading_zeros l in
  if not (Int64.equal a.l3 0L) then 192 + limb_bits a.l3
  else if not (Int64.equal a.l2 0L) then 128 + limb_bits a.l2
  else if not (Int64.equal a.l1 0L) then 64 + limb_bits a.l1
  else limb_bits a.l0

let shift_left a n =
  if n <= 0 then if n = 0 then a else invalid_arg "U256.shift_left"
  else if n >= 256 then zero
  else
    let words = n / 64 and bits = n mod 64 in
    let get i = if i < 0 then 0L else limb a i in
    let part i =
      if bits = 0 then get (i - words)
      else
        Int64.logor
          (Int64.shift_left (get (i - words)) bits)
          (Int64.shift_right_logical (get (i - words - 1)) (64 - bits))
    in
    make (part 0) (part 1) (part 2) (part 3)

let shift_right a n =
  if n <= 0 then if n = 0 then a else invalid_arg "U256.shift_right"
  else if n >= 256 then zero
  else
    let words = n / 64 and bits = n mod 64 in
    let get i = if i > 3 then 0L else limb a i in
    let part i =
      if bits = 0 then get (i + words)
      else
        Int64.logor
          (Int64.shift_right_logical (get (i + words)) bits)
          (Int64.shift_left (get (i + words + 1)) (64 - bits))
    in
    make (part 0) (part 1) (part 2) (part 3)

let is_neg a = Int64.logand a.l3 Int64.min_int <> 0L

let logand a b = make (Int64.logand a.l0 b.l0) (Int64.logand a.l1 b.l1)
    (Int64.logand a.l2 b.l2) (Int64.logand a.l3 b.l3)

let logor a b = make (Int64.logor a.l0 b.l0) (Int64.logor a.l1 b.l1)
    (Int64.logor a.l2 b.l2) (Int64.logor a.l3 b.l3)

let logxor a b = make (Int64.logxor a.l0 b.l0) (Int64.logxor a.l1 b.l1)
    (Int64.logxor a.l2 b.l2) (Int64.logxor a.l3 b.l3)

let lognot a = make (Int64.lognot a.l0) (Int64.lognot a.l1)
    (Int64.lognot a.l2) (Int64.lognot a.l3)

let shift_right_arith a n =
  if n >= 256 then if is_neg a then max_value else zero
  else
    let shifted = shift_right a n in
    if is_neg a && n > 0 then
      (* Fill the vacated top bits with ones. *)
      logor shifted (shift_left max_value (256 - n))
    else shifted

(* Shift-subtract long division; quadratic in bit length but division is
   rare on EVM hot paths. *)
let divmod a b =
  if is_zero b then (zero, zero)
  else if lt a b then (zero, a)
  else begin
    let quot = ref zero and rem = ref zero in
    for i = bit_length a - 1 downto 0 do
      rem := shift_left !rem 1;
      if get_bit a i then rem := logor !rem one;
      if ge !rem b then begin
        rem := sub !rem b;
        quot := set_bit !quot i
      end
    done;
    (!quot, !rem)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let slt a b =
  match (is_neg a, is_neg b) with
  | true, false -> true
  | false, true -> false
  | _ -> lt a b

let sgt a b = slt b a

let abs_signed a = if is_neg a then neg a else a

let sdiv a b =
  if is_zero b then zero
  else
    let q = div (abs_signed a) (abs_signed b) in
    if is_neg a <> is_neg b then neg q else q

let srem a b =
  if is_zero b then zero
  else
    let r = rem (abs_signed a) (abs_signed b) in
    if is_neg a then neg r else r

let add_mod a b m =
  if is_zero m then zero
  else begin
    let a = rem a m and b = rem b m in
    let s = add a b in
    (* Detect the 257th carry bit: the wrapped sum is smaller than an
       addend exactly when overflow happened. *)
    if lt s a then sub s m else if ge s m then sub s m else s
  end

let mul_mod a b m =
  if is_zero m then zero
  else begin
    (* Russian-peasant multiplication under the modulus. *)
    let result = ref zero in
    let a = ref (rem a m) and b = ref b in
    while not (is_zero !b) do
      if get_bit !b 0 then result := add_mod !result !a m;
      a := add_mod !a !a m;
      b := shift_right !b 1
    done;
    !result
  end

let exp base e =
  let result = ref one and base = ref base and e = ref e in
  while not (is_zero !e) do
    if get_bit !e 0 then result := mul !result !base;
    base := mul !base !base;
    e := shift_right !e 1
  done;
  !result

let of_int n =
  if n < 0 then invalid_arg "U256.of_int: negative"
  else make (Int64.of_int n) 0L 0L 0L

let of_signed_int n =
  if n >= 0 then of_int n else neg (of_int (-n))

let of_int64 n = make n 0L 0L 0L

let to_int_opt a =
  if Int64.equal a.l1 0L && Int64.equal a.l2 0L && Int64.equal a.l3 0L
     && Int64.unsigned_compare a.l0 (Int64.of_int Stdlib.max_int) <= 0
  then Some (Int64.to_int a.l0)
  else None

let to_int_exn a =
  match to_int_opt a with
  | Some n -> n
  | None -> invalid_arg "U256.to_int_exn: out of range"

let u64_to_float v =
  if Int64.compare v 0L >= 0 then Int64.to_float v
  else Int64.to_float v +. 18446744073709551616.0

let to_float a =
  let two64 = 18446744073709551616.0 in
  ((u64_to_float a.l3 *. two64 +. u64_to_float a.l2) *. two64 +. u64_to_float a.l1)
  *. two64
  +. u64_to_float a.l0

(* Divide by a small positive divisor (< 2^31), processing 32-bit chunks
   so every intermediate fits in a signed 63-bit value. *)
let divmod_small a d =
  assert (d > 0 && d < 0x40000000);
  let d64 = Int64.of_int d in
  let out = Array.make 4 0L in
  let r = ref 0L in
  for i = 3 downto 0 do
    let l = limb a i in
    let hi32 = Int64.shift_right_logical l 32 in
    let lo32 = Int64.logand l 0xFFFFFFFFL in
    let acc_hi = Int64.add (Int64.shift_left !r 32) hi32 in
    let q_hi = Int64.div acc_hi d64 and r_hi = Int64.rem acc_hi d64 in
    let acc_lo = Int64.add (Int64.shift_left r_hi 32) lo32 in
    let q_lo = Int64.div acc_lo d64 and r_lo = Int64.rem acc_lo d64 in
    out.(i) <- Int64.logor (Int64.shift_left q_hi 32) q_lo;
    r := r_lo
  done;
  (make out.(0) out.(1) out.(2) out.(3), Int64.to_int !r)

let to_decimal_string a =
  if is_zero a then "0"
  else begin
    (* Peel base-10^9 chunks from the low end, then join most-significant
       first; interior chunks keep their leading zeros. *)
    let chunks = ref [] in
    let v = ref a in
    while not (is_zero !v) do
      let q, r = divmod_small !v 1_000_000_000 in
      chunks := r :: !chunks;
      v := q
    done;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
      let b = Buffer.create 80 in
      Buffer.add_string b (string_of_int first);
      List.iter (fun c -> Buffer.add_string b (Printf.sprintf "%09d" c)) rest;
      Buffer.contents b
  end

let of_decimal_string s =
  if String.length s = 0 then invalid_arg "U256.of_decimal_string: empty";
  let ten = of_int 10 in
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
        acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "U256.of_decimal_string: non-digit")
    s;
  !acc

let of_hex_string s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      String.sub s 2 (String.length s - 2)
    else s
  in
  if String.length s = 0 || String.length s > 64 then
    invalid_arg "U256.of_hex_string: bad length";
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "U256.of_hex_string: non-hex"
  in
  let acc = ref zero in
  String.iter (fun c -> acc := logor (shift_left !acc 4) (of_int (nibble c))) s;
  !acc

let to_hex_string a =
  if is_zero a then "0x0"
  else begin
    let buf = Buffer.create 66 in
    Buffer.add_string buf "0x";
    let started = ref false in
    for i = 63 downto 0 do
      let nib =
        Int64.to_int
          (Int64.logand (Int64.shift_right_logical (limb a (i / 16)) ((i mod 16) * 4)) 0xFL)
      in
      if nib <> 0 then started := true;
      if !started then Buffer.add_char buf "0123456789abcdef".[nib]
    done;
    Buffer.contents buf
  end

let of_bytes_be s =
  let n = String.length s in
  if n > 32 then invalid_arg "U256.of_bytes_be: more than 32 bytes";
  let acc = ref zero in
  String.iter (fun c -> acc := logor (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be a =
  String.init 32 (fun i ->
      let bit = (31 - i) * 8 in
      Char.chr
        (Int64.to_int
           (Int64.logand (Int64.shift_right_logical (limb a (bit / 64)) (bit mod 64)) 0xFFL)))

(* Allocation-free big-endian word I/O: four 64-bit limb moves instead of
   a 32-byte intermediate string. These are the EVM interpreter's MSTORE /
   MLOAD primitives. *)

let blit_be a buf off =
  Bytes.set_int64_be buf off a.l3;
  Bytes.set_int64_be buf (off + 8) a.l2;
  Bytes.set_int64_be buf (off + 16) a.l1;
  Bytes.set_int64_be buf (off + 24) a.l0

let read_be buf off =
  make
    (Bytes.get_int64_be buf (off + 24))
    (Bytes.get_int64_be buf (off + 16))
    (Bytes.get_int64_be buf (off + 8))
    (Bytes.get_int64_be buf off)

let read_be_string s off =
  make
    (String.get_int64_be s (off + 24))
    (String.get_int64_be s (off + 16))
    (String.get_int64_be s (off + 8))
    (String.get_int64_be s off)

(* Fast path for the common exact-width case (hash outputs, memory and
   calldata words); the byte-at-a-time fold above handles the rest. *)
let of_bytes_be s = if String.length s = 32 then read_be_string s 0 else of_bytes_be s

let byte i x =
  if i >= 32 || i < 0 then zero
  else logand (shift_right x ((31 - i) * 8)) (of_int 0xff)

let sign_extend k x =
  if k >= 31 || k < 0 then x
  else
    let sign_bit = (8 * (k + 1)) - 1 in
    let mask = sub (shift_left one (sign_bit + 1)) one in
    if get_bit x sign_bit then logor x (lognot mask) else logand x mask

let hash a =
  let mix h l = (h * 31) + (Int64.to_int l land 0x3FFFFFFF) in
  mix (mix (mix (mix 17 a.l0) a.l1) a.l2) a.l3

let abs_difference a b = if ge a b then sub a b else sub b a

let pp fmt a = Format.pp_print_string fmt (to_decimal_string a)
