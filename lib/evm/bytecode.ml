type t = Opcode.t array

let length = Array.length

let push_width v =
  let bits = Word.U256.bit_length v in
  Stdlib.max 1 ((bits + 7) / 8)

let byte_size code =
  Array.fold_left
    (fun acc op ->
      match op with Opcode.PUSH v -> acc + 1 + push_width v | _ -> acc + 1)
    0 code

let jumpdests code =
  let tbl = Hashtbl.create 64 in
  Array.iteri (fun i op -> if op = Opcode.JUMPDEST then Hashtbl.replace tbl i ()) code;
  tbl

let pp fmt code =
  Array.iteri
    (fun i op -> Format.fprintf fmt "%4d  %s@." i (Opcode.to_string op))
    code

let to_listing code = Format.asprintf "%a" pp code

(* Pre-decoded code artifact: everything the interpreter's hot loop needs
   that is a pure function of the bytecode, computed once per program
   instead of once per frame. [jumpdests] above builds a hash table on
   every call — in the original interpreter this happened on every
   [exec_frame], i.e. on every transaction AND every subcall. The
   artifact replaces the table with a [bool array] (branch-free indexed
   load) and caches [byte_size] and the push-constant dictionary. *)

type artifact = {
  a_code : t;
  a_jumpdest : bool array;  (* a_jumpdest.(pc) = pc is a valid JUMPDEST *)
  a_byte_size : int;
  a_push_constants : Word.U256.t array;
}

let is_jumpdest art pc = pc >= 0 && pc < Array.length art.a_jumpdest && art.a_jumpdest.(pc)

(* Per-domain memo keyed by physical equality. A fuzzing campaign
   interprets a handful of distinct programs (the contract under test
   plus its constructor) millions of times; the deployed code array is
   shared physically through the state, so [==] is both the cheapest and
   the correct key (structural equality would conflate distinct programs
   never, but costs O(n) per lookup). A tiny MRU list suffices: the
   working set is 1-2 programs per domain. Domain-local storage keeps
   the memo lock-free under the parallel campaign runner. *)

let memo_capacity = 8

let memo_key : (int ref * artifact option array) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref 0, Array.make memo_capacity None))

let push_constants code =
  let dests = jumpdests code in
  let is_jump_target v =
    match Word.U256.to_int_opt v with
    | Some i -> Hashtbl.mem dests i
    | None -> false
  in
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun op ->
      match op with
      | Opcode.PUSH v when not (is_jump_target v) ->
        if not (Hashtbl.mem tbl v) then Hashtbl.replace tbl v ()
      | _ -> ())
    code;
  Hashtbl.fold (fun v () acc -> v :: acc) tbl []
  |> List.sort Word.U256.compare

let decode code =
  let n = Array.length code in
  let jd = Array.make n false in
  Array.iteri (fun i op -> if op = Opcode.JUMPDEST then jd.(i) <- true) code;
  {
    a_code = code;
    a_jumpdest = jd;
    a_byte_size = byte_size code;
    a_push_constants = Array.of_list (push_constants code);
  }

let artifact code =
  let next, slots = Domain.DLS.get memo_key in
  let rec find i =
    if i >= memo_capacity then None
    else
      match slots.(i) with
      | Some art when art.a_code == code -> Some art
      | _ -> find (i + 1)
  in
  match find 0 with
  | Some art -> art
  | None ->
    let art = decode code in
    slots.(!next) <- Some art;
    next := (!next + 1) mod memo_capacity;
    art
