module Taint = struct
  type t = int

  let none = 0
  let block = 1
  let balance = 2
  let caller = 4
  let origin = 8
  let calldata = 16
  let callvalue = 32
  let callresult = 64
  let storage = 128

  let union = ( lor )
  let has t flag = t land flag <> 0
end

type call_kind = Call | Delegatecall | Staticcall

let call_kind_to_string = function
  | Call -> "CALL"
  | Delegatecall -> "DELEGATECALL"
  | Staticcall -> "STATICCALL"

type cmp_op = Ceq | Clt | Cgt | Cslt | Csgt | Ciszero

let cmp_op_to_string = function
  | Ceq -> "EQ"
  | Clt -> "LT"
  | Cgt -> "GT"
  | Cslt -> "SLT"
  | Csgt -> "SGT"
  | Ciszero -> "ISZERO"

type comparison = {
  cmp_pc : int;
  cmp_op : cmp_op;
  lhs : Word.U256.t;
  rhs : Word.U256.t;
  lhs_taint : Taint.t;
  rhs_taint : Taint.t;
  negated : bool;
}

type event =
  | Branch of { pc : int; taken : bool; dist_to_flip : float;
                cond_taint : Taint.t; cmp : comparison option }
  | Storage_write of { slot : Word.U256.t; value : Word.U256.t; pc : int;
                       after_external_call : bool }
  | Storage_read of { slot : Word.U256.t; pc : int }
  | External_call of {
      id : int;
      pc : int;
      kind : call_kind;
      target : Word.U256.t;
      target_taint : Taint.t;
      value : Word.U256.t;
      gas : int;
      success : bool;
      caller_guard_before : bool;
    }
  | Call_result_checked of { call_id : int }
  | Arith_overflow of { pc : int; op : string; taint : Taint.t }
  | Block_state_use of { pc : int; sink : string }
  | Balance_compare of { pc : int; strict_eq : bool }
  | Origin_use of { pc : int; sink : string }
  | Selfdestruct of { pc : int; caller_guard_before : bool;
                      beneficiary_taint : Taint.t }
  | Value_transfer_out of { pc : int; amount : Word.U256.t }
  | Invalid_reached of { pc : int }
  | Revert_reached of { pc : int }
  | Reentrant_call of { pc : int }
  | Log of { pc : int; topics : Word.U256.t list }

let pp_event fmt = function
  | Branch { pc; taken; dist_to_flip; _ } ->
    Format.fprintf fmt "Branch(pc=%d, taken=%b, flip=%g)" pc taken dist_to_flip
  | Storage_write { slot; value; pc; after_external_call } ->
    Format.fprintf fmt "SSTORE(pc=%d, slot=%s, value=%s%s)" pc
      (Word.U256.to_hex_string slot)
      (Word.U256.to_decimal_string value)
      (if after_external_call then ", after-call" else "")
  | Storage_read { slot; pc } ->
    Format.fprintf fmt "SLOAD(pc=%d, slot=%s)" pc (Word.U256.to_hex_string slot)
  | External_call { id; pc; kind; target; value; gas; success; _ } ->
    Format.fprintf fmt "%s(id=%d, pc=%d, to=%s, value=%s, gas=%d, ok=%b)"
      (call_kind_to_string kind) id pc
      (Word.U256.to_hex_string target)
      (Word.U256.to_decimal_string value)
      gas success
  | Call_result_checked { call_id } ->
    Format.fprintf fmt "CallResultChecked(id=%d)" call_id
  | Arith_overflow { pc; op; _ } -> Format.fprintf fmt "Overflow(pc=%d, %s)" pc op
  | Block_state_use { pc; sink } -> Format.fprintf fmt "BlockStateUse(pc=%d, %s)" pc sink
  | Balance_compare { pc; strict_eq } ->
    Format.fprintf fmt "BalanceCompare(pc=%d, eq=%b)" pc strict_eq
  | Origin_use { pc; sink } -> Format.fprintf fmt "OriginUse(pc=%d, %s)" pc sink
  | Selfdestruct { pc; caller_guard_before; _ } ->
    Format.fprintf fmt "Selfdestruct(pc=%d, guarded=%b)" pc caller_guard_before
  | Value_transfer_out { pc; amount } ->
    Format.fprintf fmt "ValueOut(pc=%d, %s)" pc (Word.U256.to_decimal_string amount)
  | Invalid_reached { pc } -> Format.fprintf fmt "Invalid(pc=%d)" pc
  | Revert_reached { pc } -> Format.fprintf fmt "Revert(pc=%d)" pc
  | Reentrant_call { pc } -> Format.fprintf fmt "Reentry(pc=%d)" pc
  | Log { pc; topics } ->
    Format.fprintf fmt "Log(pc=%d, %s)" pc
      (String.concat ", " (List.map Word.U256.to_decimal_string topics))

type status =
  | Success
  | Reverted
  | Invalid_opcode
  | Out_of_gas
  | Stack_error
  | Bad_jump
  | Call_depth_exceeded

let status_to_string = function
  | Success -> "success"
  | Reverted -> "reverted"
  | Invalid_opcode -> "invalid-opcode"
  | Out_of_gas -> "out-of-gas"
  | Stack_error -> "stack-error"
  | Bad_jump -> "bad-jump"
  | Call_depth_exceeded -> "call-depth-exceeded"

type t = {
  status : status;
  events : event list;
  return_data : string;
  gas_used : int;
  steps : int;
}

let succeeded t = t.status = Success

let branches t =
  List.filter_map
    (function Branch { pc; taken; _ } -> Some (pc, taken) | _ -> None)
    t.events

let branch_events t =
  List.filter (function Branch _ -> true | _ -> false) t.events
