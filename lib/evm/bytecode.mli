(** Contract bytecode as an instruction array.

    Program counters are instruction indices (not byte offsets): [JUMP] and
    [JUMPI] target the index of a [JUMPDEST] instruction. [byte_size]
    reports the size the program would occupy in the canonical EVM byte
    encoding — the paper's D1 small/large split ([<= 3632] vs [> 3632]
    encoded instructions) is measured against this. *)

type t = Opcode.t array

val length : t -> int
(** Number of instructions. *)

val byte_size : t -> int
(** Size of the canonical byte encoding ([PUSH] widths are minimal). *)

val jumpdests : t -> (int, unit) Hashtbl.t
(** Indices of valid [JUMPDEST] instructions. *)

val push_constants : t -> Word.U256.t list
(** Distinct [PUSH] operand values that are not jump targets — the
    contract's "magic numbers", used to seed the fuzzer's mutation
    dictionary (the standard Echidna/ConFuzzius trick for strict
    equality conditions). Sorted ascending. *)

(** {1 Pre-decoded artifacts}

    Everything the interpreter's hot loop needs that is a pure function
    of the bytecode, computed once per program instead of once per
    frame: the jumpdest table as a [bool array], the canonical byte
    size, and the push-constant dictionary. *)

type artifact = private {
  a_code : t;
  a_jumpdest : bool array;
  a_byte_size : int;
  a_push_constants : Word.U256.t array;
}

val decode : t -> artifact
(** Pure: computes the artifact from scratch. [a_jumpdest.(pc)] agrees
    with [jumpdests] membership, [a_byte_size] with [byte_size], and
    [a_push_constants] with [push_constants] (same order). *)

val artifact : t -> artifact
(** Memoized [decode], keyed by physical equality on the code array and
    cached per domain (lock-free under the parallel campaign runner).
    Equal results to [decode] whenever the code array is not mutated —
    bytecode arrays are never mutated after construction. *)

val is_jumpdest : artifact -> int -> bool
(** [is_jumpdest art pc]: O(1), false for out-of-range [pc]. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing, one instruction per line with its index. *)

val to_listing : t -> string
