module U = Word.U256
module T = Trace.Taint

type block_env = {
  timestamp : U.t;
  number : U.t;
  coinbase : U.t;
  difficulty : U.t;
  gaslimit : U.t;
}

let default_block =
  {
    timestamp = U.of_int 1_600_000_000;
    number = U.of_int 10_000_000;
    coinbase = U.of_hex_string "0xc0ffee";
    difficulty = U.of_int 2_000_000;
    gaslimit = U.of_int 30_000_000;
  }

let advance_block b =
  {
    b with
    timestamp = U.add b.timestamp (U.of_int 13);
    number = U.add b.number U.one;
  }

type msg = {
  caller : State.address;
  origin : State.address;
  callee : State.address;
  value : U.t;
  data : string;
  gas : int;
}

type config = {
  max_call_depth : int;
  attacker : State.address option;
  max_reentries : int;
}

let attacker_address = U.of_hex_string "0xa77ac4e5"

let default_config =
  { max_call_depth = 8; attacker = Some attacker_address; max_reentries = 1 }

(* A stack cell: the word plus taint, the id of the external call whose
   status it is (if any), branch-distance information inherited from the
   comparison that produced it, and the comparison site itself (operator,
   concrete operands, per-side taint) so JUMPI can hand the input
   predictor the raw material to flip the branch. *)
type cell = {
  v : U.t;
  taint : T.t;
  call_site : int option;
  dist : (float * float) option;  (* (to make true, to make false) *)
  cmp : Trace.comparison option;
}

let pure v = { v; taint = T.none; call_site = None; dist = None; cmp = None }
let with_taint taint v = { v; taint; call_site = None; dist = None; cmp = None }
let dummy_cell = pure U.zero

(* Operand-stack pool, one 1024-slot array per call depth, reused across
   transactions. Frames nest strictly (a frame at depth [d] only runs
   subframes at [d + 1] and is suspended meanwhile), so indexing by depth
   never aliases two live stacks; domain-local storage keeps the pool
   safe under the parallel campaign runner. Typical frames run a few
   dozen instructions, so allocating the array per frame would cost more
   than the frame itself. *)
let stack_pool : cell array array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let stack_for_depth depth =
  let pool = Domain.DLS.get stack_pool in
  if depth >= Array.length !pool then begin
    let np = Array.make (depth + 8) [||] in
    Array.blit !pool 0 np 0 (Array.length !pool);
    pool := np
  end;
  if Array.length !pool.(depth) = 0 then !pool.(depth) <- Array.make 1024 dummy_cell;
  !pool.(depth)

type halt =
  | H_return of string
  | H_stop
  | H_revert of string
  | H_invalid
  | H_oog
  | H_badjump
  | H_stackerr


exception Halted of halt

(* Per-transaction context shared by all frames. *)
type ctx = {
  cfg : config;
  block : block_env;
  mutable events_rev : Trace.event list;
  mutable gas : int;
  gas_limit : int;
  mutable call_counter : int;
  mutable reentry_budget : int;
  mutable steps : int;
}

let emit ctx e = ctx.events_rev <- e :: ctx.events_rev

let signed_float x = if U.is_neg x then -.U.to_float (U.neg x) else U.to_float x

(* sFuzz-style distances: (cost to make the comparison true, cost to make
   it false); 0 on the side that currently holds. *)
let cmp_dist (op : Opcode.t) a b =
  match op with
  | EQ ->
    let d = U.to_float (U.abs_difference a b) in
    if d = 0.0 then (0.0, 1.0) else (d, 0.0)
  | LT ->
    if U.lt a b then (0.0, U.to_float (U.sub b a))
    else (U.to_float (U.sub a b) +. 1.0, 0.0)
  | GT ->
    if U.gt a b then (0.0, U.to_float (U.sub a b))
    else (U.to_float (U.sub b a) +. 1.0, 0.0)
  | SLT ->
    let sa = signed_float a and sb = signed_float b in
    if sa < sb then (0.0, sb -. sa) else (sa -. sb +. 1.0, 0.0)
  | SGT ->
    let sa = signed_float a and sb = signed_float b in
    if sa > sb then (0.0, sa -. sb) else (sb -. sa +. 1.0, 0.0)
  | _ -> invalid_arg "cmp_dist"

(* Growable byte memory. Word stores remember their taint so that
   parameter values parked in memory slots (the compiler's calling
   convention) keep their provenance when reloaded. *)
module Mem = struct
  type t = {
    mutable buf : Bytes.t;
    mutable size : int;
    taints : (int, Trace.Taint.t) Hashtbl.t;
  }

  let create () = { buf = Bytes.make 256 '\000'; size = 0; taints = Hashtbl.create 16 }

  (* Reset for reuse: zero the dirty prefix and drop the taints. A
     reset instance is indistinguishable from a fresh [create ()]. *)
  let reset m =
    if m.size > 0 then Bytes.fill m.buf 0 m.size '\000';
    m.size <- 0;
    if Hashtbl.length m.taints > 0 then Hashtbl.reset m.taints

  let ensure m n =
    if n > Bytes.length m.buf then begin
      let cap = ref (Bytes.length m.buf) in
      while n > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.make !cap '\000' in
      Bytes.blit m.buf 0 nb 0 m.size;
      m.buf <- nb
    end;
    if n > m.size then m.size <- n

  let store_word ?(taint = Trace.Taint.none) m off w =
    ensure m (off + 32);
    U.blit_be w m.buf off;
    if taint = Trace.Taint.none then Hashtbl.remove m.taints off
    else Hashtbl.replace m.taints off taint

  let taint_at m off =
    match Hashtbl.find_opt m.taints off with
    | Some t -> t
    | None -> Trace.Taint.none

  let range_taint m off len =
    Hashtbl.fold
      (fun o t acc -> if o + 32 > off && o < off + len then Trace.Taint.union acc t else acc)
      m.taints Trace.Taint.none

  let store_byte m off b =
    ensure m (off + 1);
    Bytes.set m.buf off (Char.chr (b land 0xff))

  let load_word m off =
    ensure m (off + 32);
    U.read_be m.buf off

  let read m off len =
    if len = 0 then ""
    else begin
      ensure m (off + len);
      Bytes.sub_string m.buf off len
    end

  let write m off s =
    if String.length s > 0 then begin
      ensure m (off + String.length s);
      Bytes.blit_string s 0 m.buf off (String.length s)
    end
end

(* Frame memories are pooled like the stacks: acquired zeroed at frame
   entry, so exception exits (every halt) leaving them dirty is fine. *)
let mem_pool : Mem.t option array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [||])

let mem_for_depth depth =
  let pool = Domain.DLS.get mem_pool in
  if depth >= Array.length !pool then begin
    let np = Array.make (depth + 8) None in
    Array.blit !pool 0 np 0 (Array.length !pool);
    pool := np
  end;
  match !pool.(depth) with
  | Some m ->
    Mem.reset m;
    m
  | None ->
    let m = Mem.create () in
    !pool.(depth) <- Some m;
    m

(* Pre-fault the per-domain frame pools. The first few transactions a
   fresh domain executes otherwise each pay a pool-growth allocation
   (1024-cell stack + memory arena per call depth); batch executors call
   this once at context setup so the steady-state loop never grows a
   pool. Purely an allocation-timing change — execution results are
   untouched. *)
let preheat ?(depth = 8) () =
  for d = 0 to depth - 1 do
    ignore (stack_for_depth d);
    ignore (mem_for_depth d)
  done

(* SHA3 memo. Fuzzing re-executes the same storage-key hashes (mapping
   slots for a small sender pool) millions of times; Keccak is pure, so
   memoizing is observationally invisible. Only short inputs are cached
   (mapping keys are 64 bytes) and the table is dropped wholesale when
   full — it is a pure-function memo, so eviction only costs a
   recompute, unlike the prefix-state cache which keeps real state. *)
let sha3_memo : (string, U.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let sha3_memo_cap = 8192

let keccak_word data =
  if String.length data > 128 then Crypto.Keccak.hash_word data
  else begin
    let memo = Domain.DLS.get sha3_memo in
    match Hashtbl.find_opt memo data with
    | Some w -> w
    | None ->
      let w = Crypto.Keccak.hash_word data in
      if Hashtbl.length memo >= sha3_memo_cap then Hashtbl.reset memo;
      Hashtbl.add memo data w;
      w
  end

let to_offset cell =
  (* Memory offsets / lengths must be small; clamp to protect the host. *)
  match U.to_int_opt cell.v with
  | Some n when n <= 0x100000 -> n
  | _ -> raise (Halted H_oog)

(* One call frame. [code_addr] supplies the bytecode, [storage_addr] the
   storage context (they differ under DELEGATECALL). Returns the frame's
   result and the resulting state; on failure the input state is the one
   to keep. *)
let rec exec_frame ctx (state : State.t) ~depth ~code_addr ~storage_addr
    (msg : msg) : State.t * (string, halt) result =
  let code = State.code state code_addr in
  let art = Bytecode.artifact code in
  let state_ref = ref state in
  (* Operand stack: fixed 1024-slot array plus a depth counter. EVM caps
     the stack at 1024, so overflow is [sp >= 1024] checked before the
     write (the 1025th push halts). Slot [sp - 1] is the top; DUP and
     SWAP become O(1) indexed loads instead of list walks. Popped slots
     keep their old cell until overwritten, which is harmless. *)
  let stack : cell array = stack_for_depth depth in
  let sp = ref 0 in
  let mem = mem_for_depth depth in
  let pc = ref 0 in
  let caller_checked = ref false in
  let did_external_call = ref false in
  let push c =
    if !sp >= 1024 then raise (Halted H_stackerr);
    stack.(!sp) <- c;
    incr sp
  in
  let pop () =
    if !sp = 0 then raise (Halted H_stackerr);
    decr sp;
    stack.(!sp)
  in
  let charge op =
    ctx.gas <- ctx.gas - Opcode.base_gas op;
    if ctx.gas < 0 then raise (Halted H_oog)
  in
  let note_compare_taints pc_ op a b =
    let t = T.union a.taint b.taint in
    if T.has t T.block then emit ctx (Block_state_use { pc = pc_; sink = "compare" });
    if T.has t T.origin then emit ctx (Origin_use { pc = pc_; sink = "compare" });
    if T.has t T.caller then caller_checked := true;
    if T.has t T.balance then
      emit ctx (Balance_compare { pc = pc_; strict_eq = op = Opcode.EQ })
  in
  let binop f a b =
    { v = f a.v b.v; taint = T.union a.taint b.taint; call_site = None;
      dist = None; cmp = None }
  in
  let run_subcall ~kind ~gas_req ~target ~value ~indata ~sub_storage_addr
      ~sub_code_addr cur_pc target_taint =
    (* EIP-150 style forwarding: at most 63/64 of remaining gas. *)
    let forwarded = Stdlib.min gas_req (ctx.gas * 63 / 64) in
    let id = ctx.call_counter in
    ctx.call_counter <- ctx.call_counter + 1;
    let record success =
      emit ctx
        (External_call
           {
             id;
             pc = cur_pc;
             kind;
             target;
             target_taint;
             value;
             gas = forwarded;
             success;
             caller_guard_before = !caller_checked;
           })
    in
    if depth + 1 > ctx.cfg.max_call_depth then begin
      record false;
      (id, false, "")
    end
    else begin
      let value_transfer st =
        if U.is_zero value then Some st
        else State.transfer st ~from:storage_addr ~to_:target value
      in
      match value_transfer !state_ref with
      | None ->
        record false;
        (id, false, "")
      | Some st_credited -> begin
        if (not (U.is_zero value)) && kind = Trace.Call then
          emit ctx (Value_transfer_out { pc = cur_pc; amount = value });
        let is_attacker =
          match ctx.cfg.attacker with
          | Some a -> U.equal a target && kind = Trace.Call
          | None -> false
        in
        if is_attacker && ctx.reentry_budget > 0 && (not (U.is_zero value))
           && forwarded > 2300 then begin
          (* The simulated attacker re-enters the calling contract with the
             same calldata, the classic reentrancy pattern. *)
          ctx.reentry_budget <- ctx.reentry_budget - 1;
          emit ctx (Reentrant_call { pc = cur_pc });
          let reentry_msg =
            { caller = target; origin = msg.origin; callee = storage_addr;
              value = U.zero; data = msg.data; gas = forwarded }
          in
          let st', res =
            exec_frame ctx st_credited ~depth:(depth + 1) ~code_addr:storage_addr
              ~storage_addr reentry_msg
          in
          match res with
          | Ok _ ->
            state_ref := st';
            record true;
            (id, true, "")
          | Error _ ->
            state_ref := st_credited;
            record true;
            (id, true, "")
        end
        else begin
          let callee_code = State.code st_credited sub_code_addr in
          if Array.length callee_code = 0 then begin
            (* EOA or code-less account: the transfer itself succeeds. *)
            state_ref := st_credited;
            record true;
            (id, true, "")
          end
          else begin
            let sub_msg =
              { caller = storage_addr; origin = msg.origin; callee = target;
                value; data = indata; gas = forwarded }
            in
            let st', res =
              exec_frame ctx st_credited ~depth:(depth + 1)
                ~code_addr:sub_code_addr ~storage_addr:sub_storage_addr sub_msg
            in
            match res with
            | Ok ret ->
              state_ref := st';
              record true;
              (id, true, ret)
            | Error _ ->
              record false;
              (id, false, "")
          end
        end
      end
    end
  in
  let step () =
    if !pc < 0 || !pc >= Array.length code then raise (Halted H_stop);
    let cur_pc = !pc in
    let op = code.(cur_pc) in
    charge op;
    ctx.steps <- ctx.steps + 1;
    incr pc;
    match op with
    | STOP -> raise (Halted H_stop)
    | ADD ->
      let a = pop () and b = pop () in
      let r = U.add a.v b.v in
      if U.lt r a.v then
        emit ctx (Arith_overflow { pc = cur_pc; op = "ADD"; taint = T.union a.taint b.taint });
      push (binop (fun _ _ -> r) a b)
    | MUL ->
      let a = pop () and b = pop () in
      let r = U.mul a.v b.v in
      if (not (U.is_zero a.v)) && not (U.equal (U.div r a.v) b.v) then
        emit ctx (Arith_overflow { pc = cur_pc; op = "MUL"; taint = T.union a.taint b.taint });
      push (binop (fun _ _ -> r) a b)
    | SUB ->
      let a = pop () and b = pop () in
      if U.lt a.v b.v then
        emit ctx (Arith_overflow { pc = cur_pc; op = "SUB"; taint = T.union a.taint b.taint });
      push (binop U.sub a b)
    | DIV -> let a = pop () and b = pop () in push (binop U.div a b)
    | SDIV -> let a = pop () and b = pop () in push (binop U.sdiv a b)
    | MOD -> let a = pop () and b = pop () in push (binop U.rem a b)
    | SMOD -> let a = pop () and b = pop () in push (binop U.srem a b)
    | ADDMOD ->
      let a = pop () and b = pop () and m = pop () in
      push { (binop (fun x y -> U.add_mod x y m.v) a b) with taint = T.union (T.union a.taint b.taint) m.taint }
    | MULMOD ->
      let a = pop () and b = pop () and m = pop () in
      push { (binop (fun x y -> U.mul_mod x y m.v) a b) with taint = T.union (T.union a.taint b.taint) m.taint }
    | EXP -> let a = pop () and b = pop () in push (binop U.exp a b)
    | SIGNEXTEND ->
      let k = pop () and x = pop () in
      let kk = match U.to_int_opt k.v with Some n -> n | None -> 31 in
      push { (binop (fun _ x -> U.sign_extend kk x) k x) with taint = x.taint }
    | (LT | GT | SLT | SGT | EQ) as cmp ->
      let a = pop () and b = pop () in
      note_compare_taints cur_pc cmp a b;
      let f =
        match cmp with
        | LT -> U.lt | GT -> U.gt | SLT -> U.slt | SGT -> U.sgt | EQ -> U.equal
        | _ -> assert false
      in
      let r = if f a.v b.v then U.one else U.zero in
      let cmp_op : Trace.cmp_op =
        match cmp with
        | LT -> Clt | GT -> Cgt | SLT -> Cslt | SGT -> Csgt | EQ -> Ceq
        | _ -> assert false
      in
      push
        {
          v = r;
          taint = T.union a.taint b.taint;
          call_site = (match (a.call_site, b.call_site) with Some i, _ -> Some i | _, s -> s);
          dist = Some (cmp_dist cmp a.v b.v);
          cmp =
            Some
              { Trace.cmp_pc = cur_pc; cmp_op; lhs = a.v; rhs = b.v;
                lhs_taint = a.taint; rhs_taint = b.taint; negated = false };
        }
    | ISZERO ->
      let a = pop () in
      let dist =
        match a.dist with
        | Some (dt, df) -> Some (df, dt)
        | None ->
          let d = U.to_float a.v in
          Some ((if d = 0.0 then 0.0 else d), if d = 0.0 then 1.0 else 0.0)
      in
      let cmp =
        match a.cmp with
        | Some c -> Some { c with Trace.negated = not c.Trace.negated }
        | None ->
          (* a zero test on a non-comparison value: its own comparison
             site (pushed value = [lhs == 0]) *)
          Some
            { Trace.cmp_pc = cur_pc; cmp_op = Ciszero; lhs = a.v; rhs = U.zero;
              lhs_taint = a.taint; rhs_taint = T.none; negated = false }
      in
      push { v = (if U.is_zero a.v then U.one else U.zero); taint = a.taint;
             call_site = a.call_site; dist; cmp }
    | AND ->
      let a = pop () and b = pop () in
      let dist =
        match (a.dist, b.dist) with
        | Some (t1, f1), Some (t2, f2) -> Some (t1 +. t2, Stdlib.min f1 f2)
        | Some d, None | None, Some d -> Some d
        | None, None -> None
      in
      (* a single surviving comparison site stays attached as a flipping
         hint; two sites are ambiguous, so neither survives *)
      let cmp =
        match (a.cmp, b.cmp) with
        | Some c, None | None, Some c -> Some c
        | _ -> None
      in
      push { (binop U.logand a b) with dist; cmp;
             call_site = (match (a.call_site, b.call_site) with Some i, _ -> Some i | _, s -> s) }
    | OR ->
      let a = pop () and b = pop () in
      let dist =
        match (a.dist, b.dist) with
        | Some (t1, f1), Some (t2, f2) -> Some (Stdlib.min t1 t2, f1 +. f2)
        | Some d, None | None, Some d -> Some d
        | None, None -> None
      in
      let cmp =
        match (a.cmp, b.cmp) with
        | Some c, None | None, Some c -> Some c
        | _ -> None
      in
      push { (binop U.logor a b) with dist; cmp }
    | XOR -> let a = pop () and b = pop () in push (binop U.logxor a b)
    | NOT -> let a = pop () in push { a with v = U.lognot a.v; dist = None; cmp = None }
    | BYTE ->
      let i = pop () and x = pop () in
      let idx = match U.to_int_opt i.v with Some n -> n | None -> 32 in
      push { (binop (fun _ x -> U.byte idx x) i x) with taint = x.taint }
    | SHL ->
      let n = pop () and x = pop () in
      let sh = match U.to_int_opt n.v with Some s -> s | None -> 256 in
      push { x with v = U.shift_left x.v sh; dist = None; cmp = None }
    | SHR ->
      let n = pop () and x = pop () in
      let sh = match U.to_int_opt n.v with Some s -> s | None -> 256 in
      push { x with v = U.shift_right x.v sh; dist = None; cmp = None }
    | SAR ->
      let n = pop () and x = pop () in
      let sh = match U.to_int_opt n.v with Some s -> s | None -> 256 in
      push { x with v = U.shift_right_arith x.v sh; dist = None; cmp = None }
    | SHA3 ->
      let off = pop () and len = pop () in
      let o = to_offset off and l = to_offset len in
      let data = Mem.read mem o l in
      push (with_taint (Mem.range_taint mem o l) (keccak_word data))
    | ADDRESS -> push (pure storage_addr)
    | BALANCE ->
      let a = pop () in
      push (with_taint T.balance (State.balance !state_ref a.v))
    | ORIGIN -> push (with_taint T.origin msg.origin)
    | CALLER -> push (with_taint T.caller msg.caller)
    | CALLVALUE -> push (with_taint T.callvalue msg.value)
    | CALLDATALOAD ->
      let off = pop () in
      let o = match U.to_int_opt off.v with Some n when n <= 0x100000 -> n | _ -> 0x100000 in
      let w =
        if o + 32 <= String.length msg.data then U.read_be_string msg.data o
        else
          U.of_bytes_be
            (String.init 32 (fun i ->
                 if o + i < String.length msg.data then msg.data.[o + i]
                 else '\000'))
      in
      push (with_taint T.calldata w)
    | CALLDATASIZE -> push (pure (U.of_int (String.length msg.data)))
    | CALLDATACOPY ->
      let dst = pop () and src = pop () and len = pop () in
      let d = to_offset dst and s0 = to_offset src and l = to_offset len in
      let chunk =
        String.init l (fun i ->
            if s0 + i < String.length msg.data then msg.data.[s0 + i] else '\000')
      in
      Mem.write mem d chunk;
      let i = ref 0 in
      while !i < l do
        Hashtbl.replace mem.Mem.taints (d + !i) Trace.Taint.calldata;
        i := !i + 32
      done
    | CODESIZE -> push (pure (U.of_int art.Bytecode.a_byte_size))
    | BLOCKHASH ->
      let n = pop () in
      push (with_taint T.block
              (Crypto.Keccak.hash_word ("blockhash:" ^ U.to_decimal_string n.v)))
    | COINBASE -> push (with_taint T.block ctx.block.coinbase)
    | TIMESTAMP -> push (with_taint T.block ctx.block.timestamp)
    | NUMBER -> push (with_taint T.block ctx.block.number)
    | DIFFICULTY -> push (with_taint T.block ctx.block.difficulty)
    | GASLIMIT -> push (with_taint T.block ctx.block.gaslimit)
    | SELFBALANCE -> push (with_taint T.balance (State.balance !state_ref storage_addr))
    | POP -> ignore (pop ())
    | MLOAD ->
      let off = pop () in
      let o = to_offset off in
      push (with_taint (Mem.taint_at mem o) (Mem.load_word mem o))
    | MSTORE ->
      let off = pop () and v = pop () in
      Mem.store_word ~taint:v.taint mem (to_offset off) v.v
    | MSTORE8 ->
      let off = pop () and v = pop () in
      Mem.store_byte mem (to_offset off)
        (match U.to_int_opt (U.logand v.v (U.of_int 0xff)) with Some b -> b | None -> 0)
    | SLOAD ->
      let slot = pop () in
      emit ctx (Storage_read { slot = slot.v; pc = cur_pc });
      push (with_taint T.storage (State.storage_get !state_ref storage_addr slot.v))
    | SSTORE ->
      let slot = pop () and v = pop () in
      emit ctx
        (Storage_write
           { slot = slot.v; value = v.v; pc = cur_pc;
             after_external_call = !did_external_call });
      state_ref := State.storage_set !state_ref storage_addr slot.v v.v
    | JUMP ->
      let dest = pop () in
      let d = match U.to_int_opt dest.v with Some n -> n | None -> -1 in
      if Bytecode.is_jumpdest art d then pc := d else raise (Halted H_badjump)
    | JUMPI ->
      let dest = pop () and cond = pop () in
      let taken = not (U.is_zero cond.v) in
      let dist_to_flip =
        match cond.dist with
        | Some (dt, df) -> if taken then df else dt
        | None -> 1.0
      in
      emit ctx
        (Branch
           { pc = cur_pc; taken; dist_to_flip; cond_taint = cond.taint;
             cmp = cond.cmp });
      if T.has cond.taint T.block then
        emit ctx (Block_state_use { pc = cur_pc; sink = "jumpi" });
      if T.has cond.taint T.origin then
        emit ctx (Origin_use { pc = cur_pc; sink = "jumpi" });
      if T.has cond.taint T.caller then caller_checked := true;
      (match cond.call_site with
      | Some id -> emit ctx (Call_result_checked { call_id = id })
      | None -> ());
      if taken then begin
        let d = match U.to_int_opt dest.v with Some n -> n | None -> -1 in
        if Bytecode.is_jumpdest art d then pc := d else raise (Halted H_badjump)
      end
    | PC -> push (pure (U.of_int cur_pc))
    | MSIZE -> push (pure (U.of_int mem.Mem.size))
    | GAS -> push (pure (U.of_int (Stdlib.max ctx.gas 0)))
    | JUMPDEST -> ()
    | PUSH v -> push (pure v)
    | DUP n ->
      if !sp < n then raise (Halted H_stackerr);
      push stack.(!sp - n)
    | SWAP n ->
      (* Swap the top with the element n below it (EVM SWAPn). *)
      if !sp < n + 1 then raise (Halted H_stackerr);
      let i = !sp - 1 and j = !sp - 1 - n in
      let t = stack.(i) in
      stack.(i) <- stack.(j);
      stack.(j) <- t
    | LOG n ->
      let _off = pop () and _len = pop () in
      let topics = ref [] in
      for _ = 1 to n do
        topics := (pop ()).v :: !topics
      done;
      emit ctx (Log { pc = cur_pc; topics = List.rev !topics })
    | CALL ->
      let gas = pop () and target = pop () and value = pop () in
      let in_off = pop () and in_len = pop () in
      let _out_off = pop () and _out_len = pop () in
      if T.has value.taint T.block || T.has target.taint T.block then
        emit ctx (Block_state_use { pc = cur_pc; sink = "call" });
      let indata = Mem.read mem (to_offset in_off) (to_offset in_len) in
      let gas_req = match U.to_int_opt gas.v with Some g -> g | None -> ctx.gas in
      let id, ok, ret =
        run_subcall ~kind:Trace.Call ~gas_req ~target:target.v ~value:value.v
          ~indata ~sub_storage_addr:target.v ~sub_code_addr:target.v cur_pc
          target.taint
      in
      did_external_call := true;
      Mem.write mem (to_offset _out_off)
        (String.sub ret 0 (Stdlib.min (String.length ret) (to_offset _out_len)));
      push { v = (if ok then U.one else U.zero); taint = T.callresult;
             call_site = Some id; dist = None; cmp = None }
    | DELEGATECALL ->
      let gas = pop () and target = pop () in
      let in_off = pop () and in_len = pop () in
      let _out_off = pop () and _out_len = pop () in
      let indata = Mem.read mem (to_offset in_off) (to_offset in_len) in
      let gas_req = match U.to_int_opt gas.v with Some g -> g | None -> ctx.gas in
      let id, ok, ret =
        run_subcall ~kind:Trace.Delegatecall ~gas_req ~target:target.v
          ~value:U.zero ~indata ~sub_storage_addr:storage_addr
          ~sub_code_addr:target.v cur_pc target.taint
      in
      did_external_call := true;
      Mem.write mem (to_offset _out_off)
        (String.sub ret 0 (Stdlib.min (String.length ret) (to_offset _out_len)));
      push { v = (if ok then U.one else U.zero); taint = T.callresult;
             call_site = Some id; dist = None; cmp = None }
    | STATICCALL ->
      let gas = pop () and target = pop () in
      let in_off = pop () and in_len = pop () in
      let _out_off = pop () and _out_len = pop () in
      let indata = Mem.read mem (to_offset in_off) (to_offset in_len) in
      let gas_req = match U.to_int_opt gas.v with Some g -> g | None -> ctx.gas in
      let id, ok, ret =
        run_subcall ~kind:Trace.Staticcall ~gas_req ~target:target.v
          ~value:U.zero ~indata ~sub_storage_addr:target.v
          ~sub_code_addr:target.v cur_pc target.taint
      in
      did_external_call := true;
      Mem.write mem (to_offset _out_off)
        (String.sub ret 0 (Stdlib.min (String.length ret) (to_offset _out_len)));
      push { v = (if ok then U.one else U.zero); taint = T.callresult;
             call_site = Some id; dist = None; cmp = None }
    | RETURN ->
      let off = pop () and len = pop () in
      raise (Halted (H_return (Mem.read mem (to_offset off) (to_offset len))))
    | REVERT ->
      let off = pop () and len = pop () in
      emit ctx (Revert_reached { pc = cur_pc });
      raise (Halted (H_revert (Mem.read mem (to_offset off) (to_offset len))))
    | INVALID ->
      emit ctx (Invalid_reached { pc = cur_pc });
      raise (Halted H_invalid)
    | SELFDESTRUCT ->
      let beneficiary = pop () in
      emit ctx
        (Selfdestruct
           { pc = cur_pc; caller_guard_before = !caller_checked;
             beneficiary_taint = beneficiary.taint });
      let bal = State.balance !state_ref storage_addr in
      if not (U.is_zero bal) then
        emit ctx (Value_transfer_out { pc = cur_pc; amount = bal });
      state_ref :=
        State.delete_account !state_ref storage_addr ~beneficiary:beneficiary.v;
      raise (Halted H_stop)
  in
  match
    let rec loop () =
      step ();
      loop ()
    in
    loop ()
  with
  | () -> assert false
  | exception Halted h -> begin
    match h with
    | H_return ret -> (!state_ref, Ok ret)
    | H_stop -> (!state_ref, Ok "")
    | H_revert _ | H_invalid | H_oog | H_badjump | H_stackerr ->
      (state, Error h)
  end

let execute ?(config = default_config) ~block ~state (msg : msg) =
  let ctx =
    {
      cfg = config;
      block;
      events_rev = [];
      gas = msg.gas;
      gas_limit = msg.gas;
      call_counter = 0;
      reentry_budget = config.max_reentries;
      steps = 0;
    }
  in
  (* Credit the call value before executing the callee frame. *)
  let funded =
    if U.is_zero msg.value then Some state
    else State.transfer state ~from:msg.caller ~to_:msg.callee msg.value
  in
  let final_state, status, return_data =
    match funded with
    | None -> (state, Trace.Reverted, "")
    | Some st -> begin
      match
        exec_frame ctx st ~depth:0 ~code_addr:msg.callee
          ~storage_addr:msg.callee msg
      with
      | st', Ok ret -> (st', Trace.Success, ret)
      | _, Error h ->
        let status =
          match h with
          | H_revert _ -> Trace.Reverted
          | H_invalid -> Trace.Invalid_opcode
          | H_oog -> Trace.Out_of_gas
          | H_badjump -> Trace.Bad_jump
          | H_stackerr -> Trace.Stack_error
          | H_return _ | H_stop -> assert false
        in
        (state, status, "")
    end
  in
  let trace =
    {
      Trace.status;
      events = List.rev ctx.events_rev;
      return_data;
      gas_used = ctx.gas_limit - ctx.gas;
      steps = ctx.steps;
    }
  in
  (final_state, trace)
