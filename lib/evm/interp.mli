(** The EVM interpreter.

    Executes one transaction (an external message call) against a world
    state and returns the new state plus a structured {!Trace.t}. The
    interpreter is instrumented exactly as the paper requires:

    - every [JUMPI] emits a branch event carrying the sFuzz-style branch
      distance of the side not taken (§IV-B, branch distance feedback);
    - stack values carry taint flags so the §IV-D bug oracles can see
      block state, balances, [msg.sender], [tx.origin], calldata and call
      results flowing into sinks;
    - an optional simulated attacker account re-enters the contract when
      it receives value, so reentrancy is actually exercised rather than
      merely pattern-matched. *)

type block_env = {
  timestamp : Word.U256.t;
  number : Word.U256.t;
  coinbase : Word.U256.t;
  difficulty : Word.U256.t;
  gaslimit : Word.U256.t;
}

val default_block : block_env

val advance_block : block_env -> block_env
(** Bump number by one and timestamp by 13 (seconds). *)

type msg = {
  caller : State.address;
  origin : State.address;
  callee : State.address;
  value : Word.U256.t;
  data : string;  (** full calldata: 4-byte selector + ABI-encoded args *)
  gas : int;
}

type config = {
  max_call_depth : int;
  attacker : State.address option;
      (** account that re-enters its caller when paid *)
  max_reentries : int;  (** attacker reentry budget per transaction *)
}

val default_config : config

val attacker_address : State.address
(** Conventional address installed for the simulated attacker. *)

val preheat : ?depth:int -> unit -> unit
(** Pre-fault this domain's pooled frame stacks and memories for call
    depths [0 .. depth - 1] (default 8), so a batch executor's first
    transactions don't pay pool-growth allocations. Results of
    subsequent {!execute} calls are unchanged. *)

val execute :
  ?config:config ->
  block:block_env ->
  state:State.t ->
  msg ->
  State.t * Trace.t
(** [execute ~block ~state msg] runs the transaction. If the outcome is
    not [Success], the returned state is the input state (the whole
    transaction reverts), but the trace still describes the execution up
    to the failure point — the fuzzer uses those branch events. *)
