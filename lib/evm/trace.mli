(** Structured execution traces.

    The interpreter does not log raw opcode streams; it emits exactly the
    events that the coverage instrumentation (branch identity + branch
    distance, §IV-B of the paper), the energy scheduler (path-prefix
    nesting and vulnerable-instruction reachability, Algorithm 3) and the
    nine bug oracles (§IV-D) consume. *)

(** Taint flags carried by every stack value; unioned through arithmetic
    and comparisons. *)
module Taint : sig
  type t = int

  val none : t

  (** Sources, in order: TIMESTAMP/NUMBER/BLOCKHASH/COINBASE/DIFFICULTY;
      BALANCE/SELFBALANCE; CALLER; ORIGIN; CALLDATALOAD; CALLVALUE; the
      status word of an external CALL; values loaded from persistent
      storage. *)

  val block : t

  val balance : t
  val caller : t
  val origin : t
  val calldata : t
  val callvalue : t
  val callresult : t
  val storage : t

  val union : t -> t -> t
  val has : t -> t -> bool
end

type call_kind = Call | Delegatecall | Staticcall

val call_kind_to_string : call_kind -> string

(** Operator of the comparison a JUMPI condition derives from.
    [Ciszero] is a bare ISZERO on a non-comparison value (a zero test);
    ISZEROs {e applied to} a comparison toggle {!comparison.negated}
    instead. *)
type cmp_op = Ceq | Clt | Cgt | Cslt | Csgt | Ciszero

val cmp_op_to_string : cmp_op -> string

(** The comparison site a branch condition was computed from, with the
    concrete operands observed at run time — the raw material for
    Harvey-style input prediction. For [Ciszero], [rhs] is zero and only
    [lhs] is meaningful. The branch condition equals
    [eval cmp_op lhs rhs] XOR [negated], except when the comparison
    reached the JUMPI through AND/OR (then it is one conjunct's site,
    kept as a flipping hint). *)
type comparison = {
  cmp_pc : int;  (** instruction index of the comparison opcode *)
  cmp_op : cmp_op;
  lhs : Word.U256.t;
  rhs : Word.U256.t;
  lhs_taint : Taint.t;
  rhs_taint : Taint.t;
  negated : bool;  (** odd number of ISZEROs between comparison and JUMPI *)
}

type event =
  | Branch of {
      pc : int;  (** instruction index of the JUMPI *)
      taken : bool;
      dist_to_flip : float;
          (** sFuzz-style branch distance to the side {e not} taken;
              [1.0] when the condition carried no comparison info. *)
      cond_taint : Taint.t;
      cmp : comparison option;
          (** comparison site the condition derives from, if any *)
    }
  | Storage_write of { slot : Word.U256.t; value : Word.U256.t; pc : int;
                       after_external_call : bool }
  | Storage_read of { slot : Word.U256.t; pc : int }
  | External_call of {
      id : int;  (** unique per transaction, for result-check pairing *)
      pc : int;
      kind : call_kind;
      target : Word.U256.t;
      target_taint : Taint.t;
      value : Word.U256.t;
      gas : int;
      success : bool;
      caller_guard_before : bool;
          (** a msg.sender comparison happened earlier in this frame *)
    }
  | Call_result_checked of { call_id : int }
      (** the status word of call [call_id] reached a JUMPI *)
  | Arith_overflow of { pc : int; op : string; taint : Taint.t }
      (** an ADD/SUB/MUL result was truncated mod 2^256 *)
  | Block_state_use of { pc : int; sink : string }
      (** block-tainted value consumed by "jumpi" | "call" | "compare" *)
  | Balance_compare of { pc : int; strict_eq : bool }
  | Origin_use of { pc : int; sink : string }
  | Selfdestruct of { pc : int; caller_guard_before : bool;
                      beneficiary_taint : Taint.t }
  | Value_transfer_out of { pc : int; amount : Word.U256.t }
  | Invalid_reached of { pc : int }
  | Revert_reached of { pc : int }
  | Reentrant_call of { pc : int }
      (** the simulated attacker re-entered the contract *)
  | Log of { pc : int; topics : Word.U256.t list }
      (** an event emission (LOGn) *)

val pp_event : Format.formatter -> event -> unit

type status =
  | Success
  | Reverted
  | Invalid_opcode
  | Out_of_gas
  | Stack_error
  | Bad_jump
  | Call_depth_exceeded

val status_to_string : status -> string

(** A completed transaction execution. *)
type t = {
  status : status;
  events : event list;  (** in execution order *)
  return_data : string;
  gas_used : int;
  steps : int;  (** opcodes dispatched, across all frames of the call *)
}

val succeeded : t -> bool

val branches : t -> (int * bool) list
(** Branch identities [(pc, taken)] in order — the paper's basic-block
    transition coverage unit. *)

val branch_events : t -> event list
