(** The paper's example contracts, verbatim in Minisol.

    [crowdsale] is Fig. 1 (the motivating example whose bug needs the
    sequence [invest -> refund -> invest -> withdraw]); [guess_number]
    is Fig. 4 (the 88-finney strict-equality game with the nested
    overflow). The rest are classic single-bug teaching contracts used
    throughout the smart-contract-fuzzing literature. *)

val crowdsale : string
(** Fig. 1. The withdraw branch guarded by [phase == 1] hides an
    over-transfer bug: it sends the recorded [invested] total, which the
    refund path no longer backs 1:1 with real balance. *)

val guess_number : string
(** Fig. 4: [msg.value == 88 finney] gate, nested branch, and an
    attacker-influenceable multiplication overflow. *)

val simple_dao : string
(** The classic DAO-style reentrancy. *)

val timed_vault : string
(** Block-timestamp-gated payout (BD). *)

val proxy_wallet : string
(** Unprotected delegatecall forwarder (UD). *)

val piggy_bank : string
(** Accepts deposits, only the constructor-less owner pattern and no
    send path: ether freezing (EF). *)

val suicidal : string
(** Unprotected selfdestruct (US). *)

val origin_auth : string
(** tx.origin authorization (TO). *)

val lottery : string
(** Strict balance equality + unchecked send (SE + UE). *)

val token_overflow : string
(** ERC20-style token with an unchecked transfer arithmetic (IO). *)

val auction : string
(** Open auction with refunds, a time-gated close and a two-phase state
    machine — coverage requires ordered bid/close/withdraw sequences. *)

val vesting : string
(** Linear vesting wallet: time arithmetic and owner-gated funding. *)

val casino : string
(** Chip-based casino: block-hash randomness (BD), an unchecked cash-out
    send (UE) and wager arithmetic. *)

val wallet : string
(** Two-owner wallet whose payout needs both approvals — a deep
    multi-transaction, multi-sender state machine. *)

val strict_guard : string
(** Magic-value gate the random mutator cannot pass: the unlock code is
    the runtime product of two pushed constants, so neither the
    dictionary nor havoc sees the full 32-bit value — only comparison
    tracing plus the prediction solver covers the guarded side. The
    fixture for the [--predict] differential tests. *)

val guarded_token : string
(** ERC20-style token where mint demands an exact large literal and
    transfer carries the classic unchecked subtraction (IO). The
    literal sits whole in the bytecode's push constants, so the
    per-contract mutation dictionary alone solves the mint guard — the
    complement fixture to [strict_guard] in the dictionary regression
    tests. *)

val all : (string * string) list
(** [(name, source)] for every example above. *)
