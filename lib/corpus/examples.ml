(* Paper figures and classic bug-pattern contracts, in Minisol. *)

let crowdsale =
  {|
contract Crowdsale {
  uint256 phase = 0;
  uint256 goal;
  uint256 invested;
  address owner;
  mapping(address => uint256) invests;

  constructor() public {
    goal = 100 ether;
    invested = 0;
    owner = msg.sender;
  }

  function invest(uint256 donations) public payable {
    if (invested < goal) {
      invested += donations;
      invests[msg.sender] += donations;
      phase = 0;
    } else {
      phase = 1;
    }
  }

  function refund() public {
    if (phase == 0) {
      msg.sender.transfer(invests[msg.sender]);
      invests[msg.sender] = 0;
    }
  }

  function withdraw() public {
    if (phase == 1) {
      owner.transfer(invested);
    }
  }
}
|}

let guess_number =
  {|
contract Game {
  mapping(address => uint256) balance;

  function guessNum(uint256 number) public payable {
    uint256 random = uint256(keccak256(block.timestamp, now)) % 200;
    require(msg.value == 88 finney);
    if (number < random) {
      uint256 luckyNum = number % 2;
      if (luckyNum == 0) {
        balance[msg.sender] += msg.value * 10;
      } else {
        balance[msg.sender] += msg.value * 5;
      }
    }
  }
}
|}

let simple_dao =
  {|
contract SimpleDAO {
  mapping(address => uint256) credit;

  function donate(address to) public payable {
    credit[to] += msg.value;
  }

  function withdraw(uint256 amount) public {
    if (credit[msg.sender] >= amount) {
      bool ok = msg.sender.call.value(amount)();
      credit[msg.sender] -= amount;
    }
  }

  function queryCredit(address to) public returns (uint256) {
    return credit[to];
  }
}
|}

let timed_vault =
  {|
contract TimedVault {
  address owner;
  uint256 unlockAt;
  uint256 bonusWindow;

  constructor() public {
    owner = msg.sender;
    unlockAt = block.timestamp + 7 days;
    bonusWindow = 0;
  }

  function deposit() public payable {
    if (block.timestamp % 2 == 0) {
      bonusWindow = bonusWindow + 1;
    }
  }

  function release() public {
    require(block.timestamp >= unlockAt);
    owner.transfer(this.balance);
  }
}
|}

let proxy_wallet =
  {|
contract ProxyWallet {
  address owner;
  uint256 nonce;

  constructor() public {
    owner = msg.sender;
    nonce = 0;
  }

  function forward(address callee, uint256 data) public {
    nonce += 1;
    bool ok = callee.delegatecall(data);
  }
}
|}

let piggy_bank =
  {|
contract PiggyBank {
  mapping(address => uint256) savings;
  uint256 total;

  function save() public payable {
    savings[msg.sender] += msg.value;
    total += msg.value;
  }

  function myBalance() public returns (uint256) {
    return savings[msg.sender];
  }
}
|}

let suicidal =
  {|
contract Suicidal {
  uint256 counter;

  function tick() public payable {
    counter += 1;
  }

  function destroy(address heir) public {
    selfdestruct(heir);
  }
}
|}

let origin_auth =
  {|
contract OriginAuth {
  address owner;
  uint256 funds;

  constructor() public {
    owner = msg.sender;
    funds = 0;
  }

  function deposit() public payable {
    funds += msg.value;
  }

  function sweep() public {
    require(tx.origin == owner);
    msg.sender.transfer(this.balance);
  }
}
|}

let lottery =
  {|
contract Lottery {
  address lastWinner;
  uint256 round;

  function play() public payable {
    require(msg.value == 1 ether);
    if (this.balance == 10 ether) {
      lastWinner = msg.sender;
      round += 1;
      bool sent = msg.sender.send(10 ether);
    }
  }
}
|}

let token_overflow =
  {|
contract Token {
  mapping(address => uint256) balances;
  uint256 totalSupply;
  address owner;

  constructor() public {
    owner = msg.sender;
    totalSupply = 1000000;
    balances[msg.sender] = 1000000;
  }

  function transfer(address to, uint256 value) public {
    balances[msg.sender] -= value;
    balances[to] += value;
  }

  function batchMint(address to, uint256 count, uint256 each) public {
    require(msg.sender == owner);
    uint256 amount = count * each;
    totalSupply += amount;
    balances[to] += amount;
  }
}
|}

let auction =
  {|
contract Auction {
  address highestBidder;
  uint256 highestBid;
  address beneficiary;
  uint256 closeAt;
  uint256 closed;
  mapping(address => uint256) pendingReturns;

  constructor() public {
    beneficiary = msg.sender;
    closeAt = block.timestamp + 3 days;
    closed = 0;
  }

  function bid() public payable {
    require(block.timestamp < closeAt);
    require(msg.value > highestBid);
    if (highestBid != 0) {
      pendingReturns[highestBidder] += highestBid;
    }
    highestBidder = msg.sender;
    highestBid = msg.value;
  }

  function withdrawRefund() public {
    uint256 amount = pendingReturns[msg.sender];
    if (amount > 0) {
      pendingReturns[msg.sender] = 0;
      msg.sender.transfer(amount);
    }
  }

  function close() public {
    require(block.timestamp >= closeAt);
    require(closed == 0);
    closed = 1;
    beneficiary.transfer(highestBid);
  }
}
|}

let vesting =
  {|
contract Vesting {
  address owner;
  address payee;
  uint256 start;
  uint256 duration;
  uint256 released;
  uint256 total;

  constructor() public {
    owner = msg.sender;
    start = block.timestamp;
    duration = 100 days;
    released = 0;
  }

  function fund(address who) public payable {
    require(msg.sender == owner);
    payee = who;
    total += msg.value;
  }

  function release() public {
    require(block.timestamp >= start);
    uint256 elapsed = block.timestamp - start;
    uint256 vested = total * elapsed / duration;
    if (vested > total) {
      vested = total;
    }
    require(vested > released);
    uint256 amount = vested - released;
    released += amount;
    payee.transfer(amount);
  }
}
|}

let casino =
  {|
contract Casino {
  mapping(address => uint256) chips;
  uint256 houseEdge;
  address house;

  constructor() public {
    house = msg.sender;
    houseEdge = 2;
  }

  function buyChips() public payable {
    require(msg.value >= 1 finney);
    chips[msg.sender] += msg.value / 1 finney;
  }

  function spin(uint256 wager) public {
    require(chips[msg.sender] >= wager);
    chips[msg.sender] -= wager;
    uint256 roll = uint256(keccak256(block.timestamp, block.number)) % 100;
    if (roll < 48) {
      chips[msg.sender] += wager * 2;
    }
  }

  function cashOut(uint256 amount) public {
    require(chips[msg.sender] >= amount);
    chips[msg.sender] -= amount;
    bool ok = msg.sender.send(amount * 1 finney);
  }
}
|}

let wallet =
  {|
contract SharedWallet {
  address ownerA;
  address ownerB;
  uint256 approvalsA;
  uint256 approvalsB;
  uint256 pendingAmount;
  address pendingTo;

  constructor() public {
    ownerA = msg.sender;
    approvalsA = 0;
    approvalsB = 0;
  }

  function enroll(address b) public {
    require(msg.sender == ownerA);
    require(ownerB == address(0));
    ownerB = b;
  }

  function deposit() public payable {
  }

  function propose(address to, uint256 amount) public {
    require(msg.sender == ownerA || msg.sender == ownerB);
    pendingTo = to;
    pendingAmount = amount;
    approvalsA = 0;
    approvalsB = 0;
  }

  function approve() public {
    if (msg.sender == ownerA) {
      approvalsA = 1;
    }
    if (msg.sender == ownerB) {
      approvalsB = 1;
    }
    if (approvalsA == 1 && approvalsB == 1) {
      approvalsA = 0;
      approvalsB = 0;
      pendingTo.transfer(pendingAmount);
    }
  }
}
|}

let strict_guard =
  {|
contract StrictGuard {
  uint256 unlocked;

  function open(uint256 code) public {
    require(code == 48271 * 65537);
    unlocked = unlocked + 1;
  }

  function poke(uint256 x) public {
    if (x > 1000) { unlocked = unlocked; }
  }
}
|}

let guarded_token =
  {|
contract GuardedToken {
  mapping(address => uint256) balances;
  uint256 total;

  function mint(uint256 amount) public {
    require(amount == 1000000000);
    balances[msg.sender] = balances[msg.sender] + amount;
    total = total + amount;
  }

  function transfer(address to, uint256 amount) public {
    balances[msg.sender] = balances[msg.sender] - amount;
    balances[to] = balances[to] + amount;
  }
}
|}

let all =
  [
    ("Crowdsale", crowdsale);
    ("Game", guess_number);
    ("SimpleDAO", simple_dao);
    ("TimedVault", timed_vault);
    ("ProxyWallet", proxy_wallet);
    ("PiggyBank", piggy_bank);
    ("Suicidal", suicidal);
    ("OriginAuth", origin_auth);
    ("Lottery", lottery);
    ("Token", token_overflow);
    ("Auction", auction);
    ("Vesting", vesting);
    ("Casino", casino);
    ("SharedWallet", wallet);
    ("StrictGuard", strict_guard);
    ("GuardedToken", guarded_token);
  ]
