module J = Telemetry.Json

let src = Logs.Src.create "fleet.worker" ~doc:"fleet shard worker"

module Log = (val Logs.src_log src : Logs.LOG)

exception Interrupted

let progress_format = "mufuzz-fleet-progress"

let progress_version = 1

let shard_dir_name k = Printf.sprintf "shard-%04d" k

let progress_file = "progress.json"

let summary_file = "summary.json"

let heartbeat_file = "heartbeat"

let campaign_namespace ~index ~tool = Printf.sprintf "c%04d-%s" index tool

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

(* Progress is written only at contract granularity: [p_done] contracts
   are fully folded into [p_summary]. Campaigns inside the current
   contract checkpoint separately (under [c<idx>-<tool>/]), so a replay
   re-runs at most one contract, resuming each of its campaigns from
   its last checkpoint — and refolds them from scratch, keeping the
   summary arithmetic independent of where the kill landed. *)
let progress_json ~shard ~done_ ~summary =
  J.Obj
    [
      ("format", J.String progress_format);
      ("version", J.Int progress_version);
      ("shard", J.Int shard);
      ("done", J.Int done_);
      ("summary", Summary.to_json summary);
    ]

let load_progress ~dir ~shard ~buckets =
  let path = Filename.concat dir progress_file in
  if not (Sys.file_exists path) then Ok (0, Summary.empty ~buckets)
  else
    let ( let* ) = Result.bind in
    let fail fmt = Printf.ksprintf (fun s -> Error (path ^ ": " ^ s)) fmt in
    let* json =
      Result.map_error (Printf.sprintf "%s: %s" path)
        (J.of_string (String.trim (Util.Fileio.read_file path)))
    in
    let field name conv =
      match Option.bind (J.member name json) conv with
      | Some v -> Ok v
      | None -> fail "missing or ill-typed field %S" name
    in
    let* format = field "format" J.string_value in
    if format <> progress_format then fail "format is %S" format
    else
      let* version = field "version" J.to_int in
      if version <> progress_version then fail "unsupported version %d" version
      else
        let* k = field "shard" J.to_int in
        if k <> shard then fail "progress is for shard %d, expected %d" k shard
        else
          let* done_ = field "done" J.to_int in
          let* summary =
            match J.member "summary" json with
            | None -> fail "missing field \"summary\""
            | Some sj ->
              Result.map_error (Printf.sprintf "%s: %s" path)
                (Summary.of_json sj)
          in
          if summary.Summary.s_buckets <> buckets then
            fail "progress buckets %d, config says %d"
              summary.Summary.s_buckets buckets
          else Ok (done_, summary)

let touch path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Unix.close fd;
  try Unix.utimes path 0.0 0.0 (* 0.0 0.0 = set both times to now *)
  with Unix.Unix_error _ -> ()

(* One campaign: build the per-(contract, tool) config, resume from the
   newest checkpoint if one survived a previous lease, run, and hand
   back the report. *)
let run_campaign ?metrics ~config ~(entry : Shard.entry) ~index ~contract
    ~(profile : Baselines.Fuzzers.profile) ~shard_dir ~heartbeat ~interrupt ()
    =
  let cdir =
    Filename.concat shard_dir
      (campaign_namespace ~index ~tool:profile.Baselines.Fuzzers.name)
  in
  let fresh () =
    let base =
      {
        Mufuzz.Config.default with
        rng_seed = Config.seed_for config entry.Shard.name;
        max_executions =
          Config.budget_for config ~size:(Config.size_of_contract contract);
        checkpoint_dir = Some cdir;
        checkpoint_every_execs = config.Config.checkpoint_every;
        checkpoint_keep = 2;
      }
    in
    (profile.configure base, None, 0)
  in
  let effective, resume, start_execs =
    if Sys.file_exists cdir then
      match Persist.Store.load_latest cdir with
      | Ok (path, ckpt) ->
        ( ckpt.Persist.Checkpoint.config,
          Some (path, ckpt.snapshot),
          ckpt.snapshot.Mufuzz.Campaign.sn_execs )
      | Error e ->
        Log.warn (fun m ->
            m "%s/%s: stale checkpoint unreadable (%s); restarting campaign"
              entry.Shard.name profile.name e);
        fresh ()
    else fresh ()
  in
  let driver =
    Persist.Driver.of_config ?metrics ~start_execs ~tool:profile.name
      ~contract effective
  in
  let on_safe_point ~final ~bus ~execs snapshot =
    Option.iter
      (fun d -> Persist.Driver.hook d ~final ~bus ~execs snapshot)
      driver;
    heartbeat ();
    if (not final) && interrupt () then raise Interrupted
  in
  let report =
    Baselines.Fuzzers.run profile ~config:effective ?metrics ?resume
      ~on_safe_point contract
  in
  (report, cdir)

let local_runner ?metrics ~config ~shard_dir ~heartbeat ~interrupt ~entry
    ~index ~contract ~profile () =
  let report, _cdir =
    run_campaign ?metrics ~config ~entry ~index ~contract ~profile ~shard_dir
      ~heartbeat ~interrupt ()
  in
  Summary.obs_of_report report

let run_shard ?metrics ?(heartbeat = fun () -> ()) ?(interrupt = fun () -> false)
    ?run_tool ~state ~corpus ~shard ~(config : Config.t) () =
  let ( let* ) = Result.bind in
  let* manifest = Shard.load_manifest corpus in
  let* () = Config.validate_tools config in
  let shard_dir = Filename.concat state (shard_dir_name shard) in
  mkdirs shard_dir;
  let hb_path = Filename.concat shard_dir heartbeat_file in
  let beat () =
    heartbeat ();
    try touch hb_path with Unix.Unix_error _ -> ()
  in
  let* done_before, initial =
    load_progress ~dir:shard_dir ~shard ~buckets:config.buckets
  in
  if done_before > 0 then
    Log.info (fun m ->
        m "shard %d: resuming past %d completed contracts" shard done_before);
  let tools =
    List.filter_map Baselines.Fuzzers.find config.Config.tools
  in
  let run_tool =
    match run_tool with
    | Some f -> f
    | None ->
      fun ~entry ~index ~contract ~profile ->
        local_runner ?metrics ~config ~shard_dir ~heartbeat:beat ~interrupt
          ~entry ~index ~contract ~profile ()
  in
  beat ();
  let* summary =
    Shard.fold ~dir:corpus ~shard ~manifest ~init:initial
      ~f:(fun acc index entry ->
        if index < done_before then acc
        else begin
          if interrupt () then raise Interrupted;
          let acc =
            match Minisol.Contract.compile entry.Shard.source with
            | exception e ->
              Log.warn (fun m ->
                  m "shard %d: %s does not compile: %s" shard entry.Shard.name
                    (Printexc.to_string e));
              Summary.fold_failure acc ~name:entry.Shard.name
                ~reason:(Printf.sprintf "compile: %s" (Printexc.to_string e))
            | contract ->
              let size = Config.size_of_contract contract in
              let budget = Config.budget_for config ~size in
              let acc =
                List.fold_left
                  (fun acc profile ->
                    match run_tool ~entry ~index ~contract ~profile with
                    | obs ->
                      Summary.fold acc ~tool:profile.Baselines.Fuzzers.name
                        ~size ~budget obs
                    | exception ((Interrupted | Mufuzz.Campaign.Preempt) as e)
                      ->
                      raise e
                    | exception e ->
                      Log.warn (fun m ->
                          m "shard %d: %s/%s campaign failed: %s" shard
                            entry.Shard.name profile.Baselines.Fuzzers.name
                            (Printexc.to_string e));
                      Summary.fold_failure acc
                        ~name:
                          (entry.Shard.name ^ "/"
                         ^ profile.Baselines.Fuzzers.name)
                        ~reason:(Printexc.to_string e))
                  acc tools
              in
              (* campaign checkpoints are only needed while the contract
                 is in flight; drop them once it is folded *)
              List.iter
                (fun (p : Baselines.Fuzzers.profile) ->
                  Util.Fileio.remove_tree
                    (Filename.concat shard_dir
                       (campaign_namespace ~index ~tool:p.name)))
                tools;
              acc
          in
          let acc = Summary.contract_done acc in
          Util.Fileio.write_atomic
            (Filename.concat shard_dir progress_file)
            (J.to_string (progress_json ~shard ~done_:(index + 1) ~summary:acc)
            ^ "\n");
          beat ();
          acc
        end)
  in
  Util.Fileio.write_atomic
    (Filename.concat shard_dir summary_file)
    (Summary.to_string summary ^ "\n");
  beat ();
  Ok summary

let load_summary ~state ~shard ~buckets =
  let path =
    Filename.concat (Filename.concat state (shard_dir_name shard)) summary_file
  in
  let ( let* ) = Result.bind in
  let* content =
    try Ok (Util.Fileio.read_file path)
    with Sys_error e -> Error (Printf.sprintf "%s: %s" path e)
  in
  let* summary =
    Result.map_error (Printf.sprintf "%s: %s" path)
      (Summary.of_string (String.trim content))
  in
  if summary.Summary.s_buckets <> buckets then
    Error
      (Printf.sprintf "%s: summary buckets %d, config says %d" path
         summary.Summary.s_buckets buckets)
  else Ok summary
