(** Bounded-memory, merge-commutative campaign aggregation.

    Workers fold each finished campaign report into a per-shard
    summary ({!fold}); the coordinator {!merge}s shard summaries into
    the fleet aggregate. A summary's size is O(tools x sizes x
    buckets + bug classes + failures) — independent of how many
    contracts flowed through it — so fleet memory is bounded by shard
    count, not corpus size.

    All arithmetic is integer fixed-point (coverage as micro-percent,
    100% = [100_000_000]): merging is exactly commutative and
    associative, which makes the aggregate CSVs bit-identical across
    any shard completion order and across SIGKILL-and-resume. *)

type cell = {
  c_n : int;
  c_final_upct : int;
  c_curve : int array;
  c_classes : (string * (int * int)) list;
      (** class -> (contracts, occurrences), sorted *)
}

type t = {
  s_buckets : int;
  s_contracts : int;
  s_execs : int;
  s_steps : int;
  s_failed : (string * string) list;  (** sorted (name, reason) pairs *)
  s_cells : ((string * string) * cell) list;  (** (tool, size) -> cell, sorted *)
}

(** One campaign's contribution, extracted from a report. Wall-clock
    fields are deliberately absent: only deterministic quantities may
    reach the aggregate, or resumed runs would diverge. *)
type obs = {
  o_execs : int;
  o_steps : int;
  o_total_sides : int;
  o_final_covered : int;
  o_over_time : (int * int) list;
  o_classes : (string * int) list;
}

val upct : total:int -> covered:int -> int
(** Rounded micro-percent; [0] when [total <= 0]. *)

val empty : buckets:int -> t

val obs_of_report : Mufuzz.Report.t -> obs

val obs_of_report_json : Telemetry.Json.t -> (obs, string) result
(** The same observation decoded from a daemon's JSON report. *)

val fold : t -> tool:string -> size:string -> budget:int -> obs -> t
(** Add one campaign. The coverage curve is bucketed on the execution
    grid [(b+1) * budget / buckets], matching the bench harness's
    Fig. 5 checkpoints. *)

val contract_done : t -> t

val fold_failure : t -> name:string -> reason:string -> t

val merge : t -> t -> t
(** Commutative, associative; raises [Invalid_argument] on bucket
    mismatch. *)

val to_json : t -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

val fig5_csv : t -> tools:string list -> size:string -> budget:int -> string
(** Fig. 5 CSV (coverage over executions, one column per tool) for one
    population size, on the same grid and format the bench harness
    emits. *)

val fig6_csv : t -> tools:string list -> string
(** Fig. 6 CSV: mean final coverage per tool, small and large columns. *)

val findings_csv : t -> tools:string list -> string
(** Table-III-style CSV: per (tool, size, class), how many contracts
    raised the class and the total alarm occurrences. *)
