module J = Telemetry.Json

(* the paper's D1 small/large split: encoded instruction count *)
let small_threshold = 3632

type t = {
  tools : string list;
  budget_small : int;
  budget_large : int;
  seed : int64;
  checkpoint_every : int;
  buckets : int;
}

let default =
  {
    tools =
      List.map
        (fun (p : Baselines.Fuzzers.profile) -> p.name)
        Baselines.Fuzzers.all;
    budget_small = 1200;
    budget_large = 2000;
    seed = 0L;
    checkpoint_every = 500;
    buckets = 10;
  }

(* Per-contract campaign seed: the same multiplicative-hash formula the
   bench harness uses (so a fleet run at base seed 0 reproduces the
   bench populations' draws), xor-folded with the fleet base seed. *)
let seed_for t name =
  let h = Hashtbl.hash name in
  Int64.logxor t.seed (Int64.of_int (h * 2654435761 land 0x3FFFFFFFFFFF))

let size_of_contract (c : Minisol.Contract.t) =
  if Minisol.Contract.instruction_count c <= small_threshold then "small"
  else "large"

let budget_for t ~size = if size = "large" then t.budget_large else t.budget_small

let to_json t =
  J.Obj
    [
      ("tools", J.List (List.map (fun s -> J.String s) t.tools));
      ("budget_small", J.Int t.budget_small);
      ("budget_large", J.Int t.budget_large);
      ("seed", J.String (Int64.to_string t.seed));
      ("checkpoint_every", J.Int t.checkpoint_every);
      ("buckets", J.Int t.buckets);
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (J.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "fleet config: missing or ill-typed %S" name)
  in
  let* tools =
    field "tools" (fun j ->
        Option.bind (J.to_list j) (fun l ->
            let names = List.filter_map J.string_value l in
            if List.length names = List.length l then Some names else None))
  in
  let* budget_small = field "budget_small" J.to_int in
  let* budget_large = field "budget_large" J.to_int in
  let* seed =
    field "seed" (fun j -> Option.bind (J.string_value j) Int64.of_string_opt)
  in
  let* checkpoint_every = field "checkpoint_every" J.to_int in
  let* buckets = field "buckets" J.to_int in
  if buckets < 1 then Error "fleet config: buckets must be >= 1"
  else if budget_small < 1 || budget_large < 1 then
    Error "fleet config: budgets must be >= 1"
  else
    Ok { tools; budget_small; budget_large; seed; checkpoint_every; buckets }

let to_string t = J.to_string (to_json t)

let of_string s = Result.bind (J.of_string s) of_json

let digest t = Crypto.Keccak.hash_hex (to_string t)

let validate_tools t =
  match
    List.filter (fun name -> Baselines.Fuzzers.find name = None) t.tools
  with
  | [] -> if t.tools = [] then Error "fleet config: no tools" else Ok ()
  | unknown ->
    Error
      (Printf.sprintf "fleet config: unknown tool(s): %s"
         (String.concat ", " unknown))
