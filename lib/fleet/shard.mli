(** Versioned, self-describing corpus shards.

    A fleet corpus directory holds [fleet-shard-<k>.jsonl] files plus a
    [fleet-manifest.json]. Each shard file starts with a header line
    naming the format, version, shard index and entry count, followed
    by one JSON object per contract ([name], [source],
    [source_hash] = Keccak-256 of the source). The manifest records the
    per-shard counts and a per-shard digest over the entry hashes, so
    both truncation and silent substitution are detected before any
    campaign runs.

    The reader is streaming: {!fold} holds exactly one decoded entry at
    a time, so workers never materialise a shard, let alone the corpus. *)

val current_version : int
val manifest_file : string
val shard_file : int -> string

type entry = { name : string; source : string }

type shard_info = {
  si_file : string;
  si_count : int;
  si_hash : string;  (** Keccak over the concatenated entry source hashes *)
}

type manifest = { m_total : int; m_shards : shard_info list }

val shards : manifest -> int

val bounds : total:int -> shards:int -> int -> int * int
(** [bounds ~total ~shards k] is the half-open entry-index range shard
    [k] covers under the balanced contiguous split. *)

val write :
  dir:string -> shards:int -> total:int -> entry Seq.t -> manifest
(** Slice [total] entries drawn lazily from the sequence into [shards]
    contiguous shard files under [dir] (created if missing), each
    written atomically, then write the manifest. Raises [Invalid_argument]
    if the sequence runs dry before [total] entries. *)

val write_list : dir:string -> shards:int -> entry list -> manifest

val load_manifest : string -> (manifest, string) result
(** Read and validate [dir]'s manifest: format tag, version, and the
    shard counts summing to the recorded total. *)

val manifest_digest : string -> (string, string) result
(** Keccak-256 of the manifest file bytes — the corpus identity pinned
    into the fleet ledger. *)

val fold :
  dir:string ->
  shard:int ->
  manifest:manifest ->
  init:'a ->
  f:('a -> int -> entry -> 'a) ->
  ('a, string) result
(** Stream shard [shard], calling [f acc index entry] per contract.
    Every entry's hash is verified as it streams past and the shard's
    aggregate hash is checked against the manifest at the end; header
    mismatches, version skew, truncation, trailing data and hash
    mismatches all surface as [Error]. Exceptions raised by [f]
    propagate (the channel is closed either way). *)
