(** Shard worker: stream one corpus shard, run every configured fuzzer
    campaign per contract, fold the reports into a {!Summary.t}.

    Crash safety is layered:
    - campaigns checkpoint through [Persist] under
      [<state>/shard-<k>/c<idx>-<tool>/] at the config's cadence;
    - after each fully-finished contract the worker atomically rewrites
      [progress.json] ([done] count + folded summary) and deletes the
      contract's campaign checkpoints;
    - the finished shard is published as [summary.json].

    A worker re-leased a half-done shard therefore skips the [done]
    contracts, resumes the in-flight contract's campaigns from their
    last checkpoints, and refolds that contract from scratch — the
    summary it ends with is bit-identical to an uninterrupted run's. *)

exception Interrupted
(** Raised out of {!run_shard} when the [interrupt] callback answers
    [true] at a campaign safe point — the in-process stand-in for
    SIGKILL in resume tests. State on disk is exactly what a kill at
    that moment would leave. *)

val shard_dir_name : int -> string
(** ["shard-%04d"] under the fleet state directory. *)

val progress_file : string
val summary_file : string

val heartbeat_file : string
(** Touched at every safe point and contract boundary; the driver
    treats a stale mtime as a dead worker. *)

val run_shard :
  ?metrics:Telemetry.Metrics.t ->
  ?heartbeat:(unit -> unit) ->
  ?interrupt:(unit -> bool) ->
  ?run_tool:
    (entry:Shard.entry ->
    index:int ->
    contract:Minisol.Contract.t ->
    profile:Baselines.Fuzzers.profile ->
    Summary.obs) ->
  state:string ->
  corpus:string ->
  shard:int ->
  config:Config.t ->
  unit ->
  (Summary.t, string) result
(** Process shard [shard] of the corpus at [corpus], writing progress
    under [state]. Per-campaign failures (compile errors, oracle
    crashes) are recorded as summary failures, never aborting the
    shard; {!Interrupted} and [Campaign.Preempt] always propagate.

    [run_tool] swaps out how a single campaign runs — the default runs
    it in-process with [Persist] checkpointing; the fleet driver's
    daemon mode substitutes a [serve]-protocol submission. Either way
    the progress/resume bookkeeping here is shared. *)

val load_summary :
  state:string -> shard:int -> buckets:int -> (Summary.t, string) result
(** Read a completed shard's published [summary.json]. *)
