(** Minimal blocking client for the [mufuzz serve] line-delimited JSON
    protocol — what the fleet driver uses in [--daemon] dispatch mode
    to farm campaigns out to running daemons instead of forking local
    workers. *)

type addr = Unix_socket of string | Tcp of int

val addr_to_string : addr -> string

type t

val connect : addr -> (t, string) result
(** Open a connection and consume/verify the server greeting. *)

val request : t -> Telemetry.Json.t -> (Telemetry.Json.t, string) result
(** Send one request object, read one response line. [Ok] responses are
    the parsed object; [{"ok": false}] responses surface as [Error]
    with the server's message. *)

val close : t -> unit
