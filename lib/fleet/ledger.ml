module J = Telemetry.Json

let format_tag = "mufuzz-fleet-ledger"

let current_version = 1

let file = "fleet-ledger.json"

type state =
  | Pending
  | Leased of { l_worker : int }
  | Done of { d_contracts : int; d_failed : int }

type t = {
  lg_manifest_hash : string;
  lg_config_digest : string;
  lg_states : state array;
  lg_reassignments : int;
}

let create ~manifest_hash ~config_digest ~shards =
  if shards < 1 then invalid_arg "Ledger.create: shards must be >= 1";
  {
    lg_manifest_hash = manifest_hash;
    lg_config_digest = config_digest;
    lg_states = Array.make shards Pending;
    lg_reassignments = 0;
  }

let shards t = Array.length t.lg_states

let state t k = t.lg_states.(k)

let set t k s =
  let states = Array.copy t.lg_states in
  states.(k) <- s;
  { t with lg_states = states }

let done_count t =
  Array.fold_left
    (fun n -> function Done _ -> n + 1 | _ -> n)
    0 t.lg_states

let all_done t = done_count t = shards t

(* Startup after a crash: every lease belongs to a process that no
   longer exists (the driver owns all workers), so put them back. *)
let reclaim_all t =
  let reclaimed = ref 0 in
  let states =
    Array.map
      (function
        | Leased _ ->
          incr reclaimed;
          Pending
        | s -> s)
      t.lg_states
  in
  ( { t with
      lg_states = states;
      lg_reassignments = t.lg_reassignments + !reclaimed;
    },
    !reclaimed )

let acquire t ~worker =
  let rec find k =
    if k >= shards t then None
    else
      match t.lg_states.(k) with
      | Pending -> Some (set t k (Leased { l_worker = worker }), k)
      | _ -> find (k + 1)
  in
  find 0

let mark_done t ~shard ~contracts ~failed =
  set t shard (Done { d_contracts = contracts; d_failed = failed })

(* A worker died mid-shard: its lease returns to the pool and the next
   acquire replays the shard (from the worker's progress checkpoint). *)
let mark_pending t ~shard =
  { (set t shard Pending) with lg_reassignments = t.lg_reassignments + 1 }

let state_json = function
  | Pending -> J.Obj [ ("state", J.String "pending") ]
  | Leased { l_worker } ->
    J.Obj [ ("state", J.String "leased"); ("worker", J.Int l_worker) ]
  | Done { d_contracts; d_failed } ->
    J.Obj
      [
        ("state", J.String "done");
        ("contracts", J.Int d_contracts);
        ("failed", J.Int d_failed);
      ]

let to_json t =
  J.Obj
    [
      ("format", J.String format_tag);
      ("version", J.Int current_version);
      ("manifest_hash", J.String t.lg_manifest_hash);
      ("config_digest", J.String t.lg_config_digest);
      ("reassignments", J.Int t.lg_reassignments);
      ("shards", J.List (Array.to_list (Array.map state_json t.lg_states)));
    ]

let field json name conv =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let state_of_json json =
  let ( let* ) = Result.bind in
  let* tag = field json "state" J.string_value in
  match tag with
  | "pending" -> Ok Pending
  | "leased" ->
    let* l_worker = field json "worker" J.to_int in
    Ok (Leased { l_worker })
  | "done" ->
    let* d_contracts = field json "contracts" J.to_int in
    let* d_failed = field json "failed" J.to_int in
    Ok (Done { d_contracts; d_failed })
  | other -> Error (Printf.sprintf "unknown shard state %S" other)

let of_json json =
  let ( let* ) = Result.bind in
  let* format = field json "format" J.string_value in
  if format <> format_tag then
    Error (Printf.sprintf "ledger format is %S, want %S" format format_tag)
  else
    let* version = field json "version" J.to_int in
    if version <> current_version then
      Error (Printf.sprintf "unsupported ledger version %d" version)
    else
      let* lg_manifest_hash = field json "manifest_hash" J.string_value in
      let* lg_config_digest = field json "config_digest" J.string_value in
      let* lg_reassignments = field json "reassignments" J.to_int in
      let* shard_list = field json "shards" J.to_list in
      let* states =
        List.fold_left
          (fun acc j ->
            let* acc = acc in
            let* s = state_of_json j in
            Ok (s :: acc))
          (Ok []) shard_list
        |> Result.map List.rev
      in
      if states = [] then Error "ledger: empty shard list"
      else
        Ok
          {
            lg_manifest_hash;
            lg_config_digest;
            lg_states = Array.of_list states;
            lg_reassignments;
          }

let save ~dir t =
  Util.Fileio.write_atomic (Filename.concat dir file)
    (J.to_string (to_json t) ^ "\n")

let load ~dir =
  let path = Filename.concat dir file in
  if not (Sys.file_exists path) then Ok None
  else
    match J.of_string (String.trim (Util.Fileio.read_file path)) with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok json -> (
      match of_json json with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok t -> Ok (Some t))
