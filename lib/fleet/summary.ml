module J = Telemetry.Json

let format_tag = "mufuzz-fleet-summary"

let current_version = 1

(* All aggregation arithmetic is integer fixed-point: coverage ratios
   become micro-percent ([upct], 100% = 100_000_000) at fold time and
   only turn into floats when a CSV cell is printed. Integer addition is
   associative and commutative, so merging shard summaries in any order
   — or replaying half a shard after a SIGKILL — yields bit-identical
   aggregates, which the resume guarantee depends on. *)
let upct ~total ~covered =
  if total <= 0 then 0 else ((100_000_000 * covered) + (total / 2)) / total

type cell = {
  c_n : int;  (** campaigns folded into this (tool, size) cell *)
  c_final_upct : int;  (** sum of final coverage micro-percent *)
  c_curve : int array;  (** per-bucket sums of coverage micro-percent *)
  c_classes : (string * (int * int)) list;
      (** bug class -> (contracts flagging it, total occurrences);
          sorted by class *)
}

type t = {
  s_buckets : int;
  s_contracts : int;
  s_execs : int;
  s_steps : int;
  s_failed : (string * string) list;  (** sorted (name, reason) *)
  s_cells : ((string * string) * cell) list;  (** sorted by (tool, size) *)
}

type obs = {
  o_execs : int;
  o_steps : int;
  o_total_sides : int;
  o_final_covered : int;
  o_over_time : (int * int) list;  (** (execs, covered), execution order *)
  o_classes : (string * int) list;  (** class -> occurrences, sorted *)
}

let empty ~buckets =
  if buckets < 1 then invalid_arg "Summary.empty: buckets must be >= 1";
  {
    s_buckets = buckets;
    s_contracts = 0;
    s_execs = 0;
    s_steps = 0;
    s_failed = [];
    s_cells = [];
  }

(* union of two sorted assoc lists, combining payloads on key collision *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ta, (kb, vb) :: tb ->
    let c = compare ka kb in
    if c < 0 then (ka, va) :: merge_assoc combine ta b
    else if c > 0 then (kb, vb) :: merge_assoc combine a tb
    else (ka, combine va vb) :: merge_assoc combine ta tb

let empty_cell buckets =
  { c_n = 0; c_final_upct = 0; c_curve = Array.make buckets 0; c_classes = [] }

let merge_cell ~buckets a b =
  if Array.length a.c_curve <> buckets || Array.length b.c_curve <> buckets then
    invalid_arg "Summary.merge: curve length disagrees with buckets";
  {
    c_n = a.c_n + b.c_n;
    c_final_upct = a.c_final_upct + b.c_final_upct;
    c_curve = Array.init buckets (fun i -> a.c_curve.(i) + b.c_curve.(i));
    c_classes =
      merge_assoc
        (fun (n1, o1) (n2, o2) -> (n1 + n2, o1 + o2))
        a.c_classes b.c_classes;
  }

(* [coverage_at] from the bench harness, in integers: best covered count
   among checkpoints at or before [execs]. *)
let covered_at over_time execs =
  List.fold_left
    (fun acc (e, covered) -> if e <= execs then Stdlib.max acc covered else acc)
    0 over_time

let fold t ~tool ~size ~budget obs =
  let buckets = t.s_buckets in
  let contrib =
    {
      c_n = 1;
      c_final_upct = upct ~total:obs.o_total_sides ~covered:obs.o_final_covered;
      c_curve =
        Array.init buckets (fun b ->
            let thr = (b + 1) * budget / buckets in
            upct ~total:obs.o_total_sides
              ~covered:(covered_at obs.o_over_time thr));
      c_classes = List.map (fun (cls, occ) -> (cls, (1, occ))) obs.o_classes;
    }
  in
  {
    t with
    s_execs = t.s_execs + obs.o_execs;
    s_steps = t.s_steps + obs.o_steps;
    s_cells =
      merge_assoc (merge_cell ~buckets) t.s_cells [ ((tool, size), contrib) ];
  }

let contract_done t = { t with s_contracts = t.s_contracts + 1 }

let fold_failure t ~name ~reason =
  { t with s_failed = List.sort compare ((name, reason) :: t.s_failed) }

let merge a b =
  if a.s_buckets <> b.s_buckets then
    invalid_arg "Summary.merge: bucket counts differ";
  {
    s_buckets = a.s_buckets;
    s_contracts = a.s_contracts + b.s_contracts;
    s_execs = a.s_execs + b.s_execs;
    s_steps = a.s_steps + b.s_steps;
    s_failed = List.sort compare (a.s_failed @ b.s_failed);
    s_cells = merge_assoc (merge_cell ~buckets:a.s_buckets) a.s_cells b.s_cells;
  }

(* ---------------- building observations ---------------- *)

let group_classes pairs =
  let tbl = Hashtbl.create 7 in
  List.iter
    (fun (cls, occ) ->
      Hashtbl.replace tbl cls (occ + Option.value ~default:0 (Hashtbl.find_opt tbl cls)))
    pairs;
  Hashtbl.fold (fun cls occ acc -> (cls, occ) :: acc) tbl []
  |> List.sort compare

let obs_of_report (r : Mufuzz.Report.t) =
  {
    o_execs = r.executions;
    o_steps = r.steps;
    o_total_sides = r.total_branch_sides;
    o_final_covered = r.covered_branches;
    o_over_time =
      List.map
        (fun (cp : Mufuzz.Report.checkpoint) -> (cp.execs, cp.covered))
        r.over_time;
    o_classes =
      group_classes
        (List.map
           (fun ((k : Oracles.Oracle.key), count) ->
             (Oracles.Oracle.class_to_string k.k_cls, count))
           r.occurrences);
  }

let json_field json name conv =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

(* Same observation, but from the JSON report a serve daemon returns
   (the daemon-dispatch path never has the in-memory [Report.t]). *)
let obs_of_report_json json =
  let ( let* ) = Result.bind in
  let* o_execs = json_field json "executions" J.to_int in
  let* o_steps = json_field json "steps" J.to_int in
  let* o_total_sides = json_field json "total_branch_sides" J.to_int in
  let* o_final_covered = json_field json "covered_branches" J.to_int in
  let* over_time = json_field json "over_time" J.to_list in
  let* o_over_time =
    List.fold_left
      (fun acc cp ->
        let* acc = acc in
        let* e = json_field cp "execs" J.to_int in
        let* c = json_field cp "covered" J.to_int in
        Ok ((e, c) :: acc))
      (Ok []) over_time
    |> Result.map List.rev
  in
  let* uniq = json_field json "unique_findings" J.to_list in
  let* pairs =
    List.fold_left
      (fun acc u ->
        let* acc = acc in
        let* cls = json_field u "class" J.string_value in
        let* count = json_field u "count" J.to_int in
        Ok ((cls, count) :: acc))
      (Ok []) uniq
  in
  Ok
    {
      o_execs;
      o_steps;
      o_total_sides;
      o_final_covered;
      o_over_time;
      o_classes = group_classes pairs;
    }

(* ---------------- serialization ---------------- *)

let to_json t =
  J.Obj
    [
      ("format", J.String format_tag);
      ("version", J.Int current_version);
      ("buckets", J.Int t.s_buckets);
      ("contracts", J.Int t.s_contracts);
      ("execs", J.Int t.s_execs);
      ("steps", J.Int t.s_steps);
      ( "failed",
        J.List
          (List.map
             (fun (name, reason) ->
               J.Obj [ ("name", J.String name); ("reason", J.String reason) ])
             t.s_failed) );
      ( "cells",
        J.List
          (List.map
             (fun ((tool, size), c) ->
               J.Obj
                 [
                   ("tool", J.String tool);
                   ("size", J.String size);
                   ("n", J.Int c.c_n);
                   ("final_upct", J.Int c.c_final_upct);
                   ( "curve",
                     J.List
                       (Array.to_list (Array.map (fun v -> J.Int v) c.c_curve))
                   );
                   ( "classes",
                     J.List
                       (List.map
                          (fun (cls, (n, occ)) ->
                            J.Obj
                              [
                                ("class", J.String cls);
                                ("contracts", J.Int n);
                                ("occurrences", J.Int occ);
                              ])
                          c.c_classes) );
                 ])
             t.s_cells) );
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let* format = json_field json "format" J.string_value in
  if format <> format_tag then
    Error (Printf.sprintf "summary format is %S, want %S" format format_tag)
  else
    let* version = json_field json "version" J.to_int in
    if version <> current_version then
      Error (Printf.sprintf "unsupported summary version %d" version)
    else
      let* s_buckets = json_field json "buckets" J.to_int in
      if s_buckets < 1 then Error "summary: buckets must be >= 1"
      else
        let* s_contracts = json_field json "contracts" J.to_int in
        let* s_execs = json_field json "execs" J.to_int in
        let* s_steps = json_field json "steps" J.to_int in
        let* failed = json_field json "failed" J.to_list in
        let* s_failed =
          List.fold_left
            (fun acc f ->
              let* acc = acc in
              let* name = json_field f "name" J.string_value in
              let* reason = json_field f "reason" J.string_value in
              Ok ((name, reason) :: acc))
            (Ok []) failed
          |> Result.map (List.sort compare)
        in
        let* cells = json_field json "cells" J.to_list in
        let* s_cells =
          List.fold_left
            (fun acc cj ->
              let* acc = acc in
              let* tool = json_field cj "tool" J.string_value in
              let* size = json_field cj "size" J.string_value in
              let* c_n = json_field cj "n" J.to_int in
              let* c_final_upct = json_field cj "final_upct" J.to_int in
              let* curve = json_field cj "curve" J.to_list in
              let* curve =
                List.fold_left
                  (fun acc v ->
                    let* acc = acc in
                    match J.to_int v with
                    | Some n -> Ok (n :: acc)
                    | None -> Error "summary: non-integer curve point")
                  (Ok []) curve
                |> Result.map List.rev
              in
              if List.length curve <> s_buckets then
                Error
                  (Printf.sprintf
                     "summary: cell (%s, %s) curve has %d points, buckets=%d"
                     tool size (List.length curve) s_buckets)
              else
                let* classes = json_field cj "classes" J.to_list in
                let* c_classes =
                  List.fold_left
                    (fun acc kj ->
                      let* acc = acc in
                      let* cls = json_field kj "class" J.string_value in
                      let* n = json_field kj "contracts" J.to_int in
                      let* occ = json_field kj "occurrences" J.to_int in
                      Ok ((cls, (n, occ)) :: acc))
                    (Ok []) classes
                  |> Result.map (List.sort compare)
                in
                Ok
                  (( (tool, size),
                     {
                       c_n;
                       c_final_upct;
                       c_curve = Array.of_list curve;
                       c_classes;
                     } )
                  :: acc))
            (Ok []) cells
          |> Result.map (List.sort (fun (a, _) (b, _) -> compare a b))
        in
        Ok { s_buckets; s_contracts; s_execs; s_steps; s_failed; s_cells }

let to_string t = J.to_string (to_json t)

let of_string s = Result.bind (J.of_string s) of_json

(* ---------------- CSV rendering ---------------- *)

let cell t ~tool ~size =
  Option.value ~default:(empty_cell t.s_buckets)
    (List.assoc_opt (tool, size) t.s_cells)

let mean_pct sum_upct n =
  if n = 0 then 0.0 else float_of_int sum_upct /. float_of_int n /. 1e6

let fig5_csv t ~tools ~size ~budget =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (String.concat "," ("execs" :: tools));
  Buffer.add_char buf '\n';
  for b = 0 to t.s_buckets - 1 do
    let execs = (b + 1) * budget / t.s_buckets in
    Buffer.add_string buf (string_of_int execs);
    List.iter
      (fun tool ->
        let c = cell t ~tool ~size in
        Buffer.add_string buf
          (Printf.sprintf ",%.2f" (mean_pct c.c_curve.(b) c.c_n)))
      tools;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let fig6_csv t ~tools =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "fuzzer,small,large\n";
  List.iter
    (fun tool ->
      let final size =
        let c = cell t ~tool ~size in
        mean_pct c.c_final_upct c.c_n
      in
      Buffer.add_string buf
        (Printf.sprintf "%s,%.2f,%.2f\n" tool (final "small") (final "large")))
    tools;
  Buffer.contents buf

let findings_csv t ~tools =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "tool,size,class,contracts,occurrences\n";
  List.iter
    (fun tool ->
      List.iter
        (fun size ->
          let c = cell t ~tool ~size in
          List.iter
            (fun (cls, (n, occ)) ->
              Buffer.add_string buf
                (Printf.sprintf "%s,%s,%s,%d,%d\n" tool size cls n occ))
            c.c_classes)
        [ "small"; "large" ])
    tools;
  Buffer.contents buf
