(** Fleet-wide run parameters, persisted as [fleet.json] in the fleet
    state directory. A resumed fleet must present a byte-identical
    config ({!digest}) — the campaign seeds, budgets and curve buckets
    all derive from it, and the resume guarantee (aggregate CSVs equal
    an uninterrupted run's) only holds when they match. *)

val small_threshold : int
(** 3632 encoded instructions — the paper's D1 small/large split. *)

type t = {
  tools : string list;  (** fuzzer profiles every contract runs under *)
  budget_small : int;  (** executions per campaign, small contracts *)
  budget_large : int;
  seed : int64;  (** fleet base seed, xor-folded into per-contract seeds *)
  checkpoint_every : int;
      (** campaign checkpoint cadence (executions) inside workers — the
          granularity at which an in-flight shard replays after a kill *)
  buckets : int;  (** fixed coverage-over-time curve resolution *)
}

val default : t
(** The bench-harness policy: the paper's five fuzzers, budgets
    1200/2000, seed 0, checkpoint every 500, 10 buckets. *)

val seed_for : t -> string -> int64
(** Deterministic per-contract campaign seed from the contract name
    (the bench harness formula, xor the fleet base seed). *)

val size_of_contract : Minisol.Contract.t -> string
(** ["small"] or ["large"] by {!small_threshold}. *)

val budget_for : t -> size:string -> int

val to_json : t -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

val digest : t -> string
(** Keccak-256 of the canonical rendering; stored in the fleet ledger
    so a resume with different parameters is rejected instead of
    silently producing a mixed aggregate. *)

val validate_tools : t -> (unit, string) result
(** Every [tools] entry must name a known fuzzer profile. *)
