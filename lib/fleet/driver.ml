module J = Telemetry.Json

let src = Logs.Src.create "fleet.driver" ~doc:"fleet coordinator"

module Log = (val Logs.src_log src : Logs.LOG)

let config_file = "fleet.json"

let summary_out = "fleet-summary.json"

type dispatch = Processes of int | Daemons of Client.addr list

type options = {
  state : string;
  corpus : string;
  config : Config.t;
  dispatch : dispatch;
  heartbeat_timeout : float;
  poll_interval : float;
  status_interval : float;  (** 0 disables the stderr status line *)
  worker_argv : (shard:int -> string array) option;
      (** override the spawned worker command (tests); default re-execs
          [Sys.executable_name fleet worker ...] *)
}

let default_options ~state ~corpus ~config ~dispatch =
  {
    state;
    corpus;
    config;
    dispatch;
    heartbeat_timeout = 60.0;
    poll_interval = 0.05;
    status_interval = 0.0;
    worker_argv = None;
  }

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

type counters = {
  m_shards_done : Telemetry.Metrics.counter;
  m_contracts_done : Telemetry.Metrics.counter;
  m_contracts_failed : Telemetry.Metrics.counter;
  m_reassignments : Telemetry.Metrics.counter;
  m_workers_alive : Telemetry.Metrics.gauge;
}

let make_counters metrics =
  {
    m_shards_done =
      Telemetry.Metrics.counter metrics
        ~help:"fleet shards completed and recorded in the ledger"
        "mufuzz_fleet_shards_done_total";
    m_contracts_done =
      Telemetry.Metrics.counter metrics
        ~help:"contracts fully fuzzed across the fleet"
        "mufuzz_fleet_contracts_done_total";
    m_contracts_failed =
      Telemetry.Metrics.counter metrics
        ~help:"per-campaign failures recorded in shard summaries"
        "mufuzz_fleet_contracts_failed_total";
    m_reassignments =
      Telemetry.Metrics.counter metrics
        ~help:"shard leases reclaimed from dead or stale workers"
        "mufuzz_fleet_lease_reassignments_total";
    m_workers_alive =
      Telemetry.Metrics.gauge metrics ~help:"worker processes currently alive"
        "mufuzz_fleet_workers_alive";
  }

(* ---------------- state-directory setup ---------------- *)

(* Pin the run parameters: a fresh state dir records them; a resumed
   one must present the same config digest (the per-contract seeds and
   budgets derive from it — mixing would corrupt the aggregate). *)
let check_config ~state ~(config : Config.t) =
  let path = Filename.concat state config_file in
  if Sys.file_exists path then
    match Config.of_string (String.trim (Util.Fileio.read_file path)) with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok existing ->
      if Config.digest existing <> Config.digest config then
        Error
          (Printf.sprintf
             "%s: state directory was created with a different fleet config \
              (digest %s, this run %s); use a fresh --state or the original \
              parameters"
             path (Config.digest existing) (Config.digest config))
      else Ok ()
  else begin
    Util.Fileio.write_atomic path (Config.to_string config ^ "\n");
    Ok ()
  end

let load_or_create_ledger ~state ~manifest_hash ~config_digest ~shards =
  let ( let* ) = Result.bind in
  let* existing = Ledger.load ~dir:state in
  match existing with
  | None ->
    Ok (Ledger.create ~manifest_hash ~config_digest ~shards)
  | Some l ->
    if l.Ledger.lg_manifest_hash <> manifest_hash then
      Error
        "fleet ledger was written against a different corpus manifest; \
         refusing to resume"
    else if l.Ledger.lg_config_digest <> config_digest then
      Error
        "fleet ledger was written under a different fleet config; refusing \
         to resume"
    else if Ledger.shards l <> shards then
      Error
        (Printf.sprintf
           "fleet ledger tracks %d shards but the manifest has %d"
           (Ledger.shards l) shards)
    else Ok l

(* ---------------- worker process management ---------------- *)

type slot = { pid : int; slot_shard : int; started : float }

let default_worker_argv ~options ~shard =
  [|
    Sys.executable_name;
    "fleet";
    "worker";
    "--state";
    options.state;
    "--corpus";
    options.corpus;
    "--shard";
    string_of_int shard;
  |]

let spawn_worker options ~shard =
  let argv =
    match options.worker_argv with
    | Some f -> f ~shard
    | None -> default_worker_argv ~options ~shard
  in
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
  in
  { pid; slot_shard = shard; started = Unix.gettimeofday () }

let heartbeat_age ~state ~shard ~now =
  let path =
    Filename.concat
      (Filename.concat state (Worker.shard_dir_name shard))
      Worker.heartbeat_file
  in
  match Unix.stat path with
  | { Unix.st_mtime; _ } -> Some (now -. st_mtime)
  | exception Unix.Unix_error _ -> None

(* ---------------- shared completion bookkeeping ---------------- *)

let record_done ~state ~counters ~bus ledger ~shard ~(summary : Summary.t) =
  let failed = List.length summary.Summary.s_failed in
  let ledger =
    Ledger.mark_done ledger ~shard ~contracts:summary.Summary.s_contracts
      ~failed
  in
  Ledger.save ~dir:state ledger;
  Telemetry.Metrics.incr counters.m_shards_done;
  Telemetry.Metrics.add counters.m_contracts_done summary.Summary.s_contracts;
  Telemetry.Metrics.add counters.m_contracts_failed failed;
  Telemetry.Bus.emit bus
    (Telemetry.Event.Fleet_shard_done
       { shard; contracts = summary.Summary.s_contracts; failed });
  ledger

let record_reassignment ~state ~counters ~bus ledger ~shard ~worker =
  let ledger = Ledger.mark_pending ledger ~shard in
  Ledger.save ~dir:state ledger;
  Telemetry.Metrics.incr counters.m_reassignments;
  Telemetry.Bus.emit bus
    (Telemetry.Event.Fleet_lease_reassigned { shard; worker });
  ledger

let merge_all ~state ~(config : Config.t) ledger =
  let ( let* ) = Result.bind in
  let rec loop acc k =
    if k >= Ledger.shards ledger then Ok acc
    else
      let* s = Worker.load_summary ~state ~shard:k ~buckets:config.buckets in
      loop (Summary.merge acc s) (k + 1)
  in
  let* merged = loop (Summary.empty ~buckets:config.buckets) 0 in
  Util.Fileio.write_atomic
    (Filename.concat state summary_out)
    (Summary.to_string merged ^ "\n");
  Ok merged

let status_line ledger ~alive =
  Printf.sprintf "fleet: %d/%d shards done, %d workers alive, %d reassignments"
    (Ledger.done_count ledger) (Ledger.shards ledger) alive
    ledger.Ledger.lg_reassignments

(* ---------------- process-mode main loop ---------------- *)

let run_processes ~counters ~bus ~options ~jobs ledger0 =
  let state = options.state in
  let slots : slot option array = Array.make (Stdlib.max 1 jobs) None in
  let alive () =
    Array.fold_left
      (fun n -> function Some _ -> n + 1 | None -> n)
      0 slots
  in
  let ledger = ref ledger0 in
  let last_status = ref 0.0 in
  let failure = ref None in
  let note_failure msg = if !failure = None then failure := Some msg in
  let reap slot_idx =
    Array.iteri
      (fun i -> function
        | Some s when i = slot_idx -> (
          (* worker gone: either it published a summary (done) or it
             died mid-shard (lease returns to the pool) *)
          slots.(i) <- None;
          match
            Worker.load_summary ~state ~shard:s.slot_shard
              ~buckets:options.config.Config.buckets
          with
          | Ok summary ->
            ledger :=
              record_done ~state ~counters ~bus !ledger ~shard:s.slot_shard
                ~summary
          | Error e ->
            Log.warn (fun m ->
                m "worker %d (shard %d) left no summary: %s" i s.slot_shard e);
            ledger :=
              record_reassignment ~state ~counters ~bus !ledger
                ~shard:s.slot_shard ~worker:i)
        | _ -> ())
      slots
  in
  while (not (Ledger.all_done !ledger)) && !failure = None do
    (* fill free slots while shards are pending *)
    Array.iteri
      (fun i -> function
        | Some _ -> ()
        | None -> (
          match Ledger.acquire !ledger ~worker:i with
          | None -> ()
          | Some (l, shard) -> (
            match spawn_worker options ~shard with
            | slot ->
              ledger := l;
              Ledger.save ~dir:state l;
              slots.(i) <- Some slot;
              Telemetry.Bus.emit bus
                (Telemetry.Event.Fleet_shard_leased { shard; worker = i });
              Log.info (fun m ->
                  m "shard %d leased to worker %d (pid %d)" shard i slot.pid)
            | exception Unix.Unix_error (e, _, _) ->
              note_failure
                (Printf.sprintf "cannot spawn worker: %s"
                   (Unix.error_message e)))))
      slots;
    Telemetry.Metrics.set counters.m_workers_alive (float_of_int (alive ()));
    if alive () = 0 && not (Ledger.all_done !ledger) then
      (* nothing running and nothing spawnable — only reachable when
         spawn failed, which already set [failure] *)
      note_failure "no workers running and shards still pending"
    else begin
      (try ignore (Unix.select [] [] [] options.poll_interval)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      let now = Unix.gettimeofday () in
      Array.iteri
        (fun i -> function
          | None -> ()
          | Some s -> (
            match Unix.waitpid [ Unix.WNOHANG ] s.pid with
            | 0, _ ->
              (* alive; a silent heartbeat past the timeout means a hung
                 worker — kill it and put the shard back *)
              let age =
                match heartbeat_age ~state ~shard:s.slot_shard ~now with
                | Some age -> age
                | None -> now -. s.started
              in
              if
                options.heartbeat_timeout > 0.0
                && age > options.heartbeat_timeout
              then begin
                Log.warn (fun m ->
                    m "worker %d (shard %d): heartbeat silent %.0fs; killing"
                      i s.slot_shard age);
                (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] s.pid)
                 with Unix.Unix_error _ -> ());
                slots.(i) <- None;
                ledger :=
                  record_reassignment ~state ~counters ~bus !ledger
                    ~shard:s.slot_shard ~worker:i
              end
            | _, Unix.WEXITED 0 -> reap i
            | _, (Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
              slots.(i) <- None;
              Log.warn (fun m ->
                  m "worker %d (shard %d) died; reassigning" i s.slot_shard);
              ledger :=
                record_reassignment ~state ~counters ~bus !ledger
                  ~shard:s.slot_shard ~worker:i
            | exception Unix.Unix_error (Unix.ECHILD, _, _) -> reap i))
        slots;
      Telemetry.Metrics.set counters.m_workers_alive (float_of_int (alive ()));
      if
        options.status_interval > 0.0
        && now -. !last_status >= options.status_interval
      then begin
        last_status := now;
        prerr_endline (status_line !ledger ~alive:(alive ()))
      end
    end
  done;
  (* a failure above leaves workers running; stop them before returning *)
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some s ->
        (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] s.pid) with Unix.Unix_error _ -> ());
        slots.(i) <- None)
    slots;
  Telemetry.Metrics.set counters.m_workers_alive 0.0;
  match !failure with Some msg -> Error msg | None -> Ok !ledger

(* ---------------- daemon-mode dispatch ---------------- *)

(* One campaign as a serve-protocol round trip: submit, poll status,
   fetch the JSON report, distil the observation. *)
let daemon_run_tool ~clients ~rr ~(config : Config.t) ~poll_interval
    ~entry ~index ~contract ~(profile : Baselines.Fuzzers.profile) =
  ignore index;
  let client = clients.(!rr mod Array.length clients) in
  incr rr;
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        failwith
          (Printf.sprintf "daemon %s: %s" (Client.addr_to_string (fst client))
             s))
      fmt
  in
  let conn = snd client in
  let request json =
    match Client.request conn json with
    | Ok resp -> resp
    | Error e -> fail "%s" e
  in
  let budget =
    Config.budget_for config ~size:(Config.size_of_contract contract)
  in
  let submit =
    request
      (J.Obj
         [
           ("op", J.String "submit");
           ("source", J.String entry.Shard.source);
           ("budget", J.Int budget);
           ( "seed",
             J.String (Int64.to_string (Config.seed_for config entry.Shard.name))
           );
           ("tool", J.String profile.name);
         ])
  in
  let id =
    match Option.bind (J.member "id" submit) J.string_value with
    | Some id -> id
    | None -> fail "submit response carries no id"
  in
  let rec wait () =
    let status =
      request (J.Obj [ ("op", J.String "status"); ("id", J.String id) ])
    in
    match Option.bind (J.member "state" status) J.string_value with
    | Some "completed" -> ()
    | Some ("failed" | "cancelled") ->
      fail "campaign %s did not complete" id
    | Some _ | None ->
      (try ignore (Unix.select [] [] [] poll_interval)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      wait ()
  in
  wait ();
  let report =
    request (J.Obj [ ("op", J.String "report"); ("id", J.String id) ])
  in
  match J.member "report" report with
  | None -> fail "report response carries no report"
  | Some rj -> (
    match Summary.obs_of_report_json rj with
    | Ok obs -> obs
    | Error e -> fail "report: %s" e)

let run_daemons ~counters ~bus ~options ~addrs ledger0 =
  let ( let* ) = Result.bind in
  let* clients =
    List.fold_left
      (fun acc addr ->
        let* acc = acc in
        let* c = Client.connect addr in
        Ok ((addr, c) :: acc))
      (Ok []) addrs
    |> Result.map (fun l -> Array.of_list (List.rev l))
  in
  if Array.length clients = 0 then Error "daemon dispatch needs at least one daemon"
  else begin
    let rr = ref 0 in
    let finally () = Array.iter (fun (_, c) -> Client.close c) clients in
    Fun.protect ~finally (fun () ->
        Telemetry.Metrics.set counters.m_workers_alive
          (float_of_int (Array.length clients));
        let run_tool ~entry ~index ~contract ~profile =
          daemon_run_tool ~clients ~rr ~config:options.config
            ~poll_interval:options.poll_interval ~entry ~index ~contract
            ~profile
        in
        let rec loop ledger =
          match Ledger.acquire ledger ~worker:0 with
          | None -> Ok ledger
          | Some (ledger, shard) ->
            Ledger.save ~dir:options.state ledger;
            Telemetry.Bus.emit bus
              (Telemetry.Event.Fleet_shard_leased { shard; worker = 0 });
            let* summary =
              Worker.run_shard ~run_tool ~state:options.state
                ~corpus:options.corpus ~shard ~config:options.config ()
            in
            let ledger =
              record_done ~state:options.state ~counters ~bus ledger ~shard
                ~summary
            in
            if
              options.status_interval > 0.0
            then prerr_endline (status_line ledger ~alive:(Array.length clients));
            loop ledger
        in
        let* ledger = loop ledger0 in
        Telemetry.Metrics.set counters.m_workers_alive 0.0;
        Ok ledger)
  end

(* ---------------- entry point ---------------- *)

(* One coordinator per state dir: two drivers leasing from the same
   ledger would double-assign shards. [lockf] releases on process death,
   so a SIGKILLed coordinator never wedges the directory. *)
let acquire_lock ~state =
  let path = Filename.concat state "fleet.lock" in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  match Unix.lockf fd Unix.F_TLOCK 0 with
  | () -> Ok fd
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
    Unix.close fd;
    Error
      (Printf.sprintf
         "%s: another fleet coordinator is already driving this state \
          directory"
         path)
  | exception e ->
    Unix.close fd;
    raise e

let run ?(metrics = Telemetry.Metrics.create ()) ?(bus = Telemetry.Bus.null)
    options =
  let ( let* ) = Result.bind in
  let config = options.config in
  let* () = Config.validate_tools config in
  let* manifest = Shard.load_manifest options.corpus in
  let* manifest_hash = Shard.manifest_digest options.corpus in
  mkdirs options.state;
  let* lock_fd = acquire_lock ~state:options.state in
  Fun.protect ~finally:(fun () -> try Unix.close lock_fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let* () = check_config ~state:options.state ~config in
  let* ledger =
    load_or_create_ledger ~state:options.state ~manifest_hash
      ~config_digest:(Config.digest config) ~shards:(Shard.shards manifest)
  in
  let counters = make_counters metrics in
  (* counters reflect ledger state across restarts: seed them from what
     previous coordinator incarnations already recorded *)
  Array.iter
    (function
      | Ledger.Done { d_contracts; d_failed } ->
        Telemetry.Metrics.incr counters.m_shards_done;
        Telemetry.Metrics.add counters.m_contracts_done d_contracts;
        Telemetry.Metrics.add counters.m_contracts_failed d_failed
      | _ -> ())
    ledger.Ledger.lg_states;
  Telemetry.Metrics.add counters.m_reassignments
    ledger.Ledger.lg_reassignments;
  (* leases held by a previous (dead) coordinator's workers *)
  let ledger, reclaimed = Ledger.reclaim_all ledger in
  if reclaimed > 0 then begin
    Log.info (fun m -> m "reclaimed %d stale leases" reclaimed);
    Telemetry.Metrics.add counters.m_reassignments reclaimed
  end;
  Ledger.save ~dir:options.state ledger;
  let* ledger =
    match options.dispatch with
    | Processes jobs -> run_processes ~counters ~bus ~options ~jobs ledger
    | Daemons addrs -> run_daemons ~counters ~bus ~options ~addrs ledger
  in
  merge_all ~state:options.state ~config ledger

let write_csvs ~dir ~(config : Config.t) summary =
  mkdirs dir;
  let tools = config.Config.tools in
  let put name content =
    Util.Fileio.write_atomic (Filename.concat dir name) content
  in
  put "fig5_small.csv"
    (Summary.fig5_csv summary ~tools ~size:"small"
       ~budget:config.Config.budget_small);
  put "fig5_large.csv"
    (Summary.fig5_csv summary ~tools ~size:"large"
       ~budget:config.Config.budget_large);
  put "fig6.csv" (Summary.fig6_csv summary ~tools);
  put "findings.csv" (Summary.findings_csv summary ~tools)
