(** The fleet coordinator.

    Leases shards from the {!Ledger} to workers — forked local worker
    processes ({!Processes}) or running [mufuzz serve] daemons
    ({!Daemons}) — supervises them by heartbeat, reassigns the leases
    of dead or hung workers, and merges the published shard summaries
    into the fleet aggregate.

    Everything the coordinator holds is O(shards): the ledger, the
    slot table and, at the end, one running {!Summary.t} merge.
    Contract-level state lives only inside workers, one contract at a
    time.

    Crash contract: the coordinator can be SIGKILLed at any moment and
    re-run with the same arguments; completed shards are skipped,
    leased shards are reclaimed and replayed from their workers'
    progress files, and the final aggregate is bit-identical to an
    uninterrupted run's. *)

val config_file : string
(** ["fleet.json"], the pinned run parameters in the state dir. *)

val summary_out : string
(** ["fleet-summary.json"], the merged aggregate. *)

type dispatch =
  | Processes of int  (** fork N local [fleet worker] processes *)
  | Daemons of Client.addr list
      (** farm campaigns to running serve daemons, round-robin *)

type options = {
  state : string;
  corpus : string;
  config : Config.t;
  dispatch : dispatch;
  heartbeat_timeout : float;
      (** seconds of heartbeat silence before a worker is declared hung,
          SIGKILLed and its lease reassigned; [<= 0] disables *)
  poll_interval : float;
  status_interval : float;  (** stderr status-line cadence; [0] = off *)
  worker_argv : (shard:int -> string array) option;
}

val default_options :
  state:string ->
  corpus:string ->
  config:Config.t ->
  dispatch:dispatch ->
  options
(** 60 s heartbeat timeout, 50 ms poll, no status line, default argv. *)

val run :
  ?metrics:Telemetry.Metrics.t ->
  ?bus:Telemetry.Bus.t ->
  options ->
  (Summary.t, string) result
(** Drive the fleet to completion and return the merged summary (also
    written to [state/fleet-summary.json]). Safe to call on a state
    directory a previous run left behind — that is the resume path.
    A [lockf] lock on [state/fleet.lock] (auto-released on process
    death, even SIGKILL) rejects a second concurrent coordinator.
    [metrics] gains the [mufuzz_fleet_*] series; [bus] receives
    [Fleet_shard_leased] / [Fleet_shard_done] /
    [Fleet_lease_reassigned] events. *)

val write_csvs : dir:string -> config:Config.t -> Summary.t -> unit
(** Emit [fig5_small.csv], [fig5_large.csv], [fig6.csv] and
    [findings.csv] under [dir] in the bench harness's formats. *)
