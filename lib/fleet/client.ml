module J = Telemetry.Json

type addr = Unix_socket of string | Tcp of int

let addr_to_string = function
  | Unix_socket p -> p
  | Tcp port -> Printf.sprintf "127.0.0.1:%d" port

type t = { ic : in_channel; oc : out_channel; fd : Unix.file_descr }

let connect addr =
  let domain, sockaddr =
    match addr with
    | Unix_socket p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
    | Tcp port ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  match
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd sockaddr
     with e ->
       Unix.close fd;
       raise e);
    fd
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "%s: cannot connect: %s" (addr_to_string addr)
         (Unix.error_message e))
  | fd -> (
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (* the handshake line; verify it really is a mufuzz-serve daemon *)
    match input_line ic with
    | exception End_of_file ->
      close_in_noerr ic;
      Error
        (Printf.sprintf "%s: server closed the connection before greeting"
           (addr_to_string addr))
    | greeting -> (
      match J.of_string greeting with
      | Error e ->
        close_in_noerr ic;
        Error (Printf.sprintf "%s: bad greeting: %s" (addr_to_string addr) e)
      | Ok g ->
        if Option.bind (J.member "ok" g) J.to_bool = Some true then
          Ok { ic; oc; fd }
        else begin
          close_in_noerr ic;
          Error
            (Printf.sprintf "%s: greeting not ok: %s" (addr_to_string addr)
               greeting)
        end))

let close t = try close_in_noerr t.ic with _ -> ()

let request t json =
  match
    output_string t.oc (J.to_string json);
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | exception End_of_file -> Error "server closed the connection"
  | exception Sys_error e -> Error e
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | line -> (
    match J.of_string line with
    | Error e -> Error (Printf.sprintf "bad response: %s" e)
    | Ok resp ->
      if Option.bind (J.member "ok" resp) J.to_bool = Some true then Ok resp
      else
        let detail =
          Option.value ~default:line
            (Option.bind (J.member "error" resp) J.string_value)
        in
        Error detail)
