module J = Telemetry.Json

let format_tag = "mufuzz-fleet-shard"

let manifest_tag = "mufuzz-fleet-manifest"

let current_version = 1

let manifest_file = "fleet-manifest.json"

let shard_file k = Printf.sprintf "fleet-shard-%04d.jsonl" k

type entry = { name : string; source : string }

type shard_info = { si_file : string; si_count : int; si_hash : string }

type manifest = { m_total : int; m_shards : shard_info list }

let shards m = List.length m.m_shards

let source_hash source = Crypto.Keccak.hash_hex source

(* The shard's identity: Keccak over the concatenated per-entry source
   hashes, in order. O(count) bytes of hex, never the sources
   themselves. *)
let entries_hash hashes =
  let buf = Buffer.create (64 * List.length hashes) in
  List.iter (Buffer.add_string buf) (List.rev hashes);
  Crypto.Keccak.hash_hex (Buffer.contents buf)

let header_json ~shard ~count =
  J.Obj
    [
      ("format", J.String format_tag);
      ("version", J.Int current_version);
      ("shard", J.Int shard);
      ("count", J.Int count);
    ]

let entry_json e =
  J.Obj
    [
      ("name", J.String e.name);
      ("source", J.String e.source);
      ("source_hash", J.String (source_hash e.source));
    ]

let manifest_json m =
  J.Obj
    [
      ("format", J.String manifest_tag);
      ("version", J.Int current_version);
      ("total", J.Int m.m_total);
      ( "shards",
        J.List
          (List.map
             (fun s ->
               J.Obj
                 [
                   ("file", J.String s.si_file);
                   ("count", J.Int s.si_count);
                   ("entries_hash", J.String s.si_hash);
                 ])
             m.m_shards) );
    ]

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

(* Balanced contiguous slicing: shard k holds entry indices
   [k*total/K, (k+1)*total/K) — deterministic, so a re-sharded corpus
   with the same (total, K) reproduces the same assignment. *)
let bounds ~total ~shards k = (k * total / shards, (k + 1) * total / shards)

let write ~dir ~shards ~total seq =
  if shards < 1 then invalid_arg "Shard.write: shards must be >= 1";
  if total < 0 then invalid_arg "Shard.write: negative total";
  mkdirs dir;
  let rest = ref seq in
  let next () =
    match !rest () with
    | Seq.Nil -> invalid_arg "Shard.write: sequence shorter than total"
    | Seq.Cons (e, tail) ->
      rest := tail;
      e
  in
  let infos =
    List.init shards (fun k ->
        let start, stop = bounds ~total ~shards k in
        let count = stop - start in
        let file = shard_file k in
        let hashes = ref [] in
        Util.Fileio.with_atomic_out (Filename.concat dir file) (fun oc ->
            output_string oc (J.to_string (header_json ~shard:k ~count));
            output_char oc '\n';
            for _ = 1 to count do
              let e = next () in
              hashes := source_hash e.source :: !hashes;
              output_string oc (J.to_string (entry_json e));
              output_char oc '\n'
            done);
        { si_file = file; si_count = count; si_hash = entries_hash !hashes })
  in
  let m = { m_total = total; m_shards = infos } in
  Util.Fileio.write_atomic
    (Filename.concat dir manifest_file)
    (J.to_string (manifest_json m) ^ "\n");
  m

let write_list ~dir ~shards entries =
  write ~dir ~shards ~total:(List.length entries) (List.to_seq entries)

(* ---------------- reading ---------------- *)

let field json name conv =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let check_format json ~tag =
  let ( let* ) = Result.bind in
  let* format = field json "format" J.string_value in
  if format <> tag then Error (Printf.sprintf "format is %S, want %S" format tag)
  else
    let* version = field json "version" J.to_int in
    if version <> current_version then
      Error
        (Printf.sprintf "unsupported version %d (this build reads %d)" version
           current_version)
    else Ok ()

let load_manifest dir =
  let path = Filename.concat dir manifest_file in
  let ( let* ) = Result.bind in
  let* content =
    try Ok (Util.Fileio.read_file path)
    with Sys_error e -> Error (Printf.sprintf "%s: %s" path e)
  in
  let with_path r = Result.map_error (Printf.sprintf "%s: %s" path) r in
  let* json = with_path (J.of_string (String.trim content)) in
  let* () = with_path (check_format json ~tag:manifest_tag) in
  let* total = with_path (field json "total" J.to_int) in
  let* shard_list = with_path (field json "shards" J.to_list) in
  let* infos =
    with_path
      (List.fold_left
         (fun acc j ->
           let* acc = acc in
           let* si_file = field j "file" J.string_value in
           let* si_count = field j "count" J.to_int in
           let* si_hash = field j "entries_hash" J.string_value in
           Ok ({ si_file; si_count; si_hash } :: acc))
         (Ok []) shard_list)
  in
  let infos = List.rev infos in
  let counted = List.fold_left (fun n s -> n + s.si_count) 0 infos in
  if counted <> total then
    Error
      (Printf.sprintf "%s: shard counts sum to %d, manifest total says %d" path
         counted total)
  else Ok { m_total = total; m_shards = infos }

let manifest_digest dir =
  let path = Filename.concat dir manifest_file in
  try Ok (Crypto.Keccak.hash_hex (Util.Fileio.read_file path))
  with Sys_error e -> Error (Printf.sprintf "%s: %s" path e)

let parse_entry json =
  let ( let* ) = Result.bind in
  let* name = field json "name" J.string_value in
  let* source = field json "source" J.string_value in
  let* expected = field json "source_hash" J.string_value in
  let actual = source_hash source in
  if actual <> expected then
    Error
      (Printf.sprintf "entry %S: source hash mismatch (want %s, got %s)" name
         expected actual)
  else Ok ({ name; source }, actual)

(* Streaming fold: exactly one entry is live at a time — the reader
   materialises a line, hands the decoded entry to [f], and drops it.
   Caller exceptions propagate (the worker's interrupt hook relies on
   that); codec violations come back as [Error]. *)
let fold ~dir ~shard ~manifest ~init ~f =
  match List.nth_opt manifest.m_shards shard with
  | None ->
    Error
      (Printf.sprintf "shard %d out of range (manifest has %d)" shard
         (shards manifest))
  | Some info -> (
    let path = Filename.concat dir info.si_file in
    let fail fmt = Printf.ksprintf (fun s -> Error (path ^ ": " ^ s)) fmt in
    match open_in_bin path with
    | exception Sys_error e -> Error e
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let ( let* ) = Result.bind in
          let read_line what =
            match input_line ic with
            | line -> Ok line
            | exception End_of_file -> fail "truncated: missing %s" what
          in
          let* header_line = read_line "header line" in
          let* header =
            Result.map_error (Printf.sprintf "%s: header: %s" path)
              (J.of_string header_line)
          in
          let* () =
            Result.map_error (Printf.sprintf "%s: header: %s" path)
              (check_format header ~tag:format_tag)
          in
          let* k =
            Result.map_error (Printf.sprintf "%s: header: %s" path)
              (field header "shard" J.to_int)
          in
          let* count =
            Result.map_error (Printf.sprintf "%s: header: %s" path)
              (field header "count" J.to_int)
          in
          if k <> shard then fail "header names shard %d, expected %d" k shard
          else if count <> info.si_count then
            fail "header count %d disagrees with manifest count %d" count
              info.si_count
          else begin
            let hashes = ref [] in
            let rec loop acc i =
              if i >= count then Ok acc
              else
                let* line = read_line (Printf.sprintf "entry %d of %d" i count) in
                let* entry, hash =
                  Result.map_error
                    (Printf.sprintf "%s: line %d: %s" path (i + 2))
                    (Result.bind (J.of_string line) parse_entry)
                in
                hashes := hash :: !hashes;
                loop (f acc i entry) (i + 1)
            in
            let* acc = loop init 0 in
            let computed = entries_hash !hashes in
            if computed <> info.si_hash then
              fail "entries hash mismatch (manifest %s, file %s)" info.si_hash
                computed
            else
              match input_line ic with
              | _ -> fail "trailing data after %d entries" count
              | exception End_of_file -> Ok acc
          end))
