(** The fleet ledger: which shard is pending, leased to a worker, or
    done. One atomically-rewritten JSON file in the fleet state
    directory — the single source of truth a resumed fleet reads to
    skip completed shards and replay in-flight ones.

    The ledger pins the corpus ({!t.lg_manifest_hash}) and the run
    parameters ({!t.lg_config_digest}); a resume against a different
    corpus or config is rejected rather than silently mixing results. *)

val file : string

type state =
  | Pending
  | Leased of { l_worker : int }
  | Done of { d_contracts : int; d_failed : int }

type t = {
  lg_manifest_hash : string;
  lg_config_digest : string;
  lg_states : state array;
  lg_reassignments : int;  (** lifetime lease-reassignment count *)
}

val create : manifest_hash:string -> config_digest:string -> shards:int -> t

val shards : t -> int
val state : t -> int -> state
val done_count : t -> int
val all_done : t -> bool

val reclaim_all : t -> t * int
(** Return every leased shard to pending (counting each as a
    reassignment) — the startup move after a coordinator crash, when no
    leaseholder can still be alive. Returns the reclaim count. *)

val acquire : t -> worker:int -> (t * int) option
(** Lease the lowest-indexed pending shard to [worker]; [None] when
    nothing is pending. *)

val mark_done : t -> shard:int -> contracts:int -> failed:int -> t

val mark_pending : t -> shard:int -> t
(** Reassignment after a worker death: the lease returns to the pool
    and {!t.lg_reassignments} increments. *)

val to_json : t -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> (t, string) result

val save : dir:string -> t -> unit
(** Atomic rewrite of [dir/fleet-ledger.json]. *)

val load : dir:string -> (t option, string) result
(** [Ok None] when no ledger exists yet (fresh fleet). *)
