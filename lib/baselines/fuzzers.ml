module O = Oracles.Oracle
module C = Mufuzz.Config

type profile = {
  name : string;
  configure : C.t -> C.t;
  supports : O.bug_class list;
}

(* Supported bug classes per tool, from Table I of the paper. *)

let mufuzz =
  {
    name = "MuFuzz";
    configure = (fun c -> c);
    supports = [ O.BD; O.UD; O.EF; O.IO; O.RE; O.US; O.SE; O.TO; O.UE ];
  }

let sfuzz =
  {
    name = "sFuzz";
    configure =
      (fun c ->
        {
          c with
          sequence_mode = C.Seq_random;
          mask_guided = false;
          dynamic_energy = false;
          distance_feedback = true;
          prolongation = false;
          sequence_mutation_prob = 0.15;
        });
    supports = [ O.BD; O.UD; O.EF; O.IO; O.RE; O.UE ];
  }

let confuzzius =
  {
    name = "ConFuzzius";
    configure =
      (fun c ->
        {
          c with
          sequence_mode = C.Seq_dataflow;
          mask_guided = false;
          dynamic_energy = false;
          distance_feedback = true;
          prolongation = false;
          sequence_mutation_prob = 0.15;
        });
    supports = [ O.BD; O.UD; O.EF; O.IO; O.RE; O.US; O.UE ];
  }

let smartian =
  {
    name = "Smartian";
    configure =
      (fun c ->
        {
          c with
          sequence_mode = C.Seq_dataflow;
          mask_guided = false;
          dynamic_energy = false;
          distance_feedback = false;
          prolongation = false;
          sequence_mutation_prob = 0.15;
        });
    supports = [ O.BD; O.UD; O.EF; O.IO; O.RE; O.US; O.TO; O.UE ];
  }

let irfuzz =
  {
    name = "IR-Fuzz";
    configure =
      (fun c ->
        {
          c with
          sequence_mode = C.Seq_dataflow;
          mask_guided = false;
          dynamic_energy = true;
          distance_feedback = true;
          prolongation = true;
          sequence_mutation_prob = 0.15;
        });
    supports = [ O.BD; O.UD; O.EF; O.IO; O.RE; O.SE; O.UE ];
  }

let contractfuzzer =
  {
    name = "ContractFuzzer";
    configure =
      (fun c ->
        {
          c with
          sequence_mode = C.Seq_random;
          mask_guided = false;
          dynamic_energy = false;
          distance_feedback = false;
          prolongation = false;
          sequence_mutation_prob = 0.0;
          blackbox = true;
        });
    supports = [ O.BD; O.UD; O.EF; O.RE; O.UE ];
  }

let echidna =
  {
    name = "Echidna";
    configure =
      (fun c ->
        {
          c with
          sequence_mode = C.Seq_random;
          mask_guided = false;
          dynamic_energy = false;
          distance_feedback = false;
          prolongation = false;
          sequence_mutation_prob = 0.0;
        });
    supports = [ O.UE ];
  }

let all = [ sfuzz; confuzzius; smartian; irfuzz; mufuzz ]

let extended = all @ [ contractfuzzer; echidna ]

let find name = List.find_opt (fun p -> p.name = name) extended

let run profile ?(config = C.default) ?pool ?sinks ?metrics ?resume
    ?on_safe_point contract =
  let report =
    Mufuzz.Campaign.run_parallel ~config:(profile.configure config) ?pool ?sinks
      ?metrics ?resume ?on_safe_point contract
  in
  let keep (f : O.finding) = List.mem f.cls profile.supports in
  {
    report with
    Mufuzz.Report.findings = List.filter keep report.findings;
    occurrences =
      List.filter
        (fun ((k : O.key), _) -> List.mem k.k_cls profile.supports)
        report.occurrences;
    witnesses = List.filter (fun (f, _) -> keep f) report.witnesses;
    witness_seeds = List.filter (fun (f, _) -> keep f) report.witness_seeds;
  }
