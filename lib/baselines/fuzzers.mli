(** The comparison fuzzers of §V, reimplemented as policy profiles over
    the same EVM substrate so that differences measure {e policy}, not
    engineering (the ablation-fair methodology).

    - {b sFuzz}: random transaction ordering, AFL-style unrestricted byte
      mutation, branch-distance seed selection, flat energy.
    - {b ConFuzzius}: data-dependency ordering (no repetition), random
      mutation, distance feedback.
    - {b Smartian}: data-flow feedback ordering (no repetition), no
      branch-distance selection (it uses its own dataflow coverage),
      flat energy.
    - {b IR-Fuzz}: invocation ordering + tail prolongation, distance
      feedback, energy allocation on important branches — everything but
      the RAW repetition rule and the mutation mask.
    - {b MuFuzz}: the full system.

    [supports] lists each tool's detectable bug classes from Table I;
    findings outside a tool's list are filtered from its reports. *)

type profile = {
  name : string;
  configure : Mufuzz.Config.t -> Mufuzz.Config.t;
  supports : Oracles.Oracle.bug_class list;
}

val mufuzz : profile
val sfuzz : profile
val confuzzius : profile
val smartian : profile
val irfuzz : profile

val contractfuzzer : profile
(** Black-box baseline: fresh random seeds every round, no feedback. *)

val echidna : profile
(** Coverage-light property fuzzer stand-in (assertion/UE oriented). *)

val all : profile list
(** In the paper's presentation order: sFuzz, ConFuzzius, Smartian,
    IR-Fuzz, MuFuzz. *)

val extended : profile list
(** [all] plus ContractFuzzer and Echidna (tools the paper's baselines
    had already superseded; kept for completeness). *)

val find : string -> profile option

val run :
  profile ->
  ?config:Mufuzz.Config.t ->
  ?pool:Mufuzz.Pool.t ->
  ?sinks:Telemetry.Sink.t list ->
  ?metrics:Telemetry.Metrics.t ->
  ?resume:string * Mufuzz.Campaign.snapshot ->
  ?on_safe_point:
    (final:bool ->
    bus:Telemetry.Bus.t ->
    execs:int ->
    (unit -> Mufuzz.Campaign.snapshot) ->
    unit) ->
  Minisol.Contract.t ->
  Mufuzz.Report.t
(** Run the tool's campaign; the report's findings are filtered to the
    tool's supported classes. Runs through {!Mufuzz.Campaign.run_parallel},
    so [config.jobs] (or an explicit [pool]) shards the campaign across
    worker domains; the default [jobs = 1] is the sequential loop.
    [sinks]/[metrics] are passed through to the campaign's telemetry;
    [resume]/[on_safe_point] to the campaign's checkpoint machinery
    (note [configure] must already have been applied to the config a
    resumed snapshot was captured under — the checkpoint stores the
    effective config, so this holds when resuming via [mufuzz resume]). *)
