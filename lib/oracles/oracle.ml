module T = Evm.Trace
module Taint = Evm.Trace.Taint
module Op = Evm.Opcode

type bug_class = BD | UD | EF | IO | RE | US | SE | TO | UE

let all_classes = [ BD; UD; EF; IO; RE; US; SE; TO; UE ]

let class_to_string = function
  | BD -> "BD" | UD -> "UD" | EF -> "EF" | IO -> "IO" | RE -> "RE"
  | US -> "US" | SE -> "SE" | TO -> "TO" | UE -> "UE"

let class_of_string s =
  List.find_opt (fun c -> class_to_string c = s) all_classes

let class_description = function
  | BD -> "block dependency (timestamp/number influences a decision)"
  | UD -> "unprotected delegatecall"
  | EF -> "ether freezing (accepts value, cannot send any out)"
  | IO -> "integer over-/under-flow"
  | RE -> "reentrancy"
  | US -> "unprotected selfdestruct"
  | SE -> "strict ether equality"
  | TO -> "tx.origin used for authorization"
  | UE -> "unhandled exception (unchecked failing external call)"

type finding = { cls : bug_class; pc : int; tx_index : int; detail : string }

let pp_finding fmt f =
  Format.fprintf fmt "[%s] pc=%d tx#%d: %s" (class_to_string f.cls) f.pc f.tx_index
    f.detail

type static_info = { has_value_out : bool; payable_functions : string list }

let static_info_of (c : Minisol.Contract.t) =
  let has_value_out =
    Array.exists
      (fun op -> op = Op.CALL || op = Op.SELFDESTRUCT)
      c.Minisol.Contract.bytecode
  in
  let payable_functions =
    List.filter_map
      (fun (f : Abi.func) -> if f.payable && not f.is_constructor then Some f.name else None)
      c.Minisol.Contract.abi
  in
  { has_value_out; payable_functions }

(* Attacker-influenceable taint: calldata, call value, persistent storage
   (which earlier transactions can set), or transaction identity. *)
let influenceable t =
  Taint.has t Taint.calldata || Taint.has t Taint.callvalue
  || Taint.has t Taint.storage || Taint.has t Taint.caller
  || Taint.has t Taint.origin

let inspect_trace ~static ~tx_index ~tx_success (trace : T.t) =
  ignore static;
  let findings = ref [] in
  let add cls pc detail = findings := { cls; pc; tx_index; detail } :: !findings in
  let checked_calls = Hashtbl.create 8 in
  List.iter
    (function
      | T.Call_result_checked { call_id } -> Hashtbl.replace checked_calls call_id ()
      | _ -> ())
    trace.events;
  let saw_reentry = List.exists (function T.Reentrant_call _ -> true | _ -> false)
      trace.events in
  let risky_call_seen = ref None in
  List.iter
    (fun ev ->
      match ev with
      | T.Block_state_use { pc; sink } ->
        (* block state contaminating JUMPI / CALL / compare (§IV-D BD) *)
        add BD pc (Printf.sprintf "block state flows into %s" sink)
      | T.Origin_use { pc; sink } ->
        add TO pc (Printf.sprintf "tx.origin flows into %s" sink)
      | T.Balance_compare { pc; strict_eq } ->
        if strict_eq then add SE pc "balance compared with strict equality"
      | T.Arith_overflow { pc; op; taint } ->
        (* only truncations an attacker can influence, in transactions
           that actually commit their effects *)
        if tx_success && influenceable taint then
          add IO pc (Printf.sprintf "%s result truncated mod 2^256" op)
      | T.Selfdestruct { pc; caller_guard_before; _ } ->
        if not caller_guard_before then
          add US pc "selfdestruct reachable without msg.sender check"
      | T.External_call { id; pc; kind; target_taint; value; gas; success;
                          caller_guard_before = _; _ } -> begin
        (match kind with
        | T.Delegatecall ->
          if Taint.has target_taint Taint.calldata then
            add UD pc "delegatecall target supplied by calldata"
        | T.Call ->
          (* candidate reentrancy point: value-bearing call with enough
             gas for the callee to call back *)
          if gas > 2300 && (not (Word.U256.is_zero value))
             && (influenceable target_taint || saw_reentry)
          then risky_call_seen := Some pc
        | T.Staticcall -> ());
        (* UE: a failing call whose status never reaches a JUMPI, in a
           transaction that still succeeds overall *)
        if (not success) && tx_success && not (Hashtbl.mem checked_calls id) then
          add UE pc "failing external call result is never checked"
      end
      | T.Storage_write { pc; after_external_call; _ } -> begin
        match !risky_call_seen with
        | Some call_pc when after_external_call && tx_success ->
          add RE call_pc
            (Printf.sprintf "state written at pc=%d after reentrant-capable call" pc)
        | _ -> ()
      end
      | T.Branch _ | T.Storage_read _ | T.Call_result_checked _
      | T.Invalid_reached _ | T.Revert_reached _ -> ()
      (* a reentry on its own is not a bug: the RE verdict needs the
         state-write-after-call pattern above, which the reentry merely
         confirms via [saw_reentry] *)
      | T.Reentrant_call _ -> ()
      | T.Log _ -> ()
      | T.Value_transfer_out _ -> ())
    trace.events;
  List.rev !findings

let inspect_campaign ~static ~received_value executions =
  let per_tx =
    List.concat_map
      (fun (tx_index, tx_success, trace) ->
        inspect_trace ~static ~tx_index ~tx_success trace)
      executions
  in
  let ef =
    if received_value && not static.has_value_out then
      [ { cls = EF; pc = -1; tx_index = -1;
          detail = "contract accepts ether but has no instruction that can send it out" } ]
    else []
  in
  per_tx @ ef

(* ---------------- triage dedup keys ----------------

   A campaign raises the same alarm hundreds of times; triage groups
   occurrences under (oracle class, program counter, call-path hash).
   The call path is the function-name sequence of the witnessing
   transaction prefix — two alarms at the same pc reached through
   different call sequences are distinct bugs for triage purposes
   (ConFuzzius-style location dedup, refined by path). *)

type key = { k_cls : bug_class; k_pc : int; k_path : string }

let path_hash call_path =
  String.sub (Crypto.Keccak.hash_hex (String.concat "/" call_path)) 0 16

let key_of ~call_path (f : finding) =
  { k_cls = f.cls; k_pc = f.pc; k_path = path_hash call_path }

let key_to_string k =
  Printf.sprintf "%s@%d/%s" (class_to_string k.k_cls) k.k_pc k.k_path

let compare_key (a : key) (b : key) = compare a b

let dedup findings =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun f ->
      let key = (f.cls, f.pc) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    findings
