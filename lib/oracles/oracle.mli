(** The nine bug oracles of §IV-D, evaluated over execution traces.

    Classes (paper abbreviations): BD block dependency, UD unprotected
    delegatecall, EF ether freezing, IO integer over-/under-flow, RE
    reentrancy, US unprotected selfdestruct, SE strict ether equality,
    TO tx.origin use, UE unhandled exception. *)

type bug_class = BD | UD | EF | IO | RE | US | SE | TO | UE

val all_classes : bug_class list
val class_to_string : bug_class -> string
val class_of_string : string -> bug_class option
val class_description : bug_class -> string

type finding = {
  cls : bug_class;
  pc : int;  (** instruction index of the offending site; -1 for
                 whole-contract findings such as EF *)
  tx_index : int;  (** position in the witnessing transaction sequence *)
  detail : string;
}

val pp_finding : Format.formatter -> finding -> unit

(** Static facts about the target that the oracles consult. *)
type static_info = {
  has_value_out : bool;
      (** the bytecode contains CALL or SELFDESTRUCT (a way to send ether
          out) — EF's static component *)
  payable_functions : string list;
}

val static_info_of : Minisol.Contract.t -> static_info

val inspect_trace :
  static:static_info -> tx_index:int -> tx_success:bool -> Evm.Trace.t ->
  finding list
(** Findings visible in a single transaction's trace. *)

val inspect_campaign :
  static:static_info ->
  received_value:bool ->
  (int * bool * Evm.Trace.t) list ->
  finding list
(** Campaign-level pass over [(tx_index, success, trace)] executions:
    runs {!inspect_trace} on each and adds whole-contract findings (EF
    requires knowing the contract accepted value somewhere). *)

val dedup : finding list -> finding list
(** Keep one finding per (class, pc), preferring the earliest witness. *)

(** {1 Triage dedup keys}

    The identity under which the triage layer groups duplicate alarms:
    oracle class, program counter, and a hash of the call path (the
    function-name sequence of the witnessing transaction prefix). *)

type key = {
  k_cls : bug_class;
  k_pc : int;
  k_path : string;  (** 16 hex chars of the Keccak-256 of the call path *)
}

val path_hash : string list -> string
(** [path_hash names] hashes a ["/"]-joined call path to 16 lowercase
    hex characters. The empty path hashes to a well-defined constant
    (whole-contract findings such as EF use it). *)

val key_of : call_path:string list -> finding -> key

val key_to_string : key -> string
(** ["CLS@pc/pathhash"] — stable, used in artifact file names and
    reports. *)

val compare_key : key -> key -> int
