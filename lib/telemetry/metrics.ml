type counter = { c_value : int Atomic.t }

type gauge = { g_value : float Atomic.t }

type histogram = {
  h_bounds : float array;  (* strictly increasing upper bounds *)
  h_buckets : int Atomic.t array;  (* length = bounds + 1 (the +Inf bucket) *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type entry = { help : string; metric : metric }

type t = {
  mutex : Mutex.t;  (* guards registration only; updates are lock-free *)
  table : (string, entry) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 16 }

let register t name help make describe =
  Mutex.lock t.mutex;
  let metric =
    match Hashtbl.find_opt t.table name with
    | Some { metric; _ } -> metric
    | None ->
      let m = make () in
      Hashtbl.replace t.table name { help; metric = m };
      m
  in
  Mutex.unlock t.mutex;
  match describe metric with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Metrics: %s registered with another kind" name)

let counter t ?(help = "") name =
  register t name help
    (fun () -> Counter { c_value = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

let incr c = ignore (Atomic.fetch_and_add c.c_value 1)

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotone";
  ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value

let gauge t ?(help = "") name =
  register t name help
    (fun () -> Gauge { g_value = Atomic.make 0.0 })
    (function Gauge g -> Some g | _ -> None)

let set g v = Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

let default_buckets = [ 1e1; 1e2; 1e3; 1e4; 1e5; 1e6; 1e7 ]

(* A metric "name" may carry a Prometheus label set, rendered inline:
   [labeled "m" [("id", "c1")]] registers the series [m{id="c1"}]. The
   registry treats the full string as the key (distinct label values
   are distinct series); [dump] groups the HELP/TYPE headers under the
   base name so the exposition stays well-formed. *)

let labeled name labels =
  if labels = [] then name
  else begin
    let escape v =
      let buf = Buffer.create (String.length v) in
      String.iter
        (fun c ->
          match c with
          | '\\' -> Buffer.add_string buf "\\\\"
          | '"' -> Buffer.add_string buf "\\\""
          | '\n' -> Buffer.add_string buf "\\n"
          | c -> Buffer.add_char buf c)
        v;
      Buffer.contents buf
    in
    Printf.sprintf "%s{%s}" name
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) labels))
  end

let base_name name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

let histogram t ?(help = "") ?(buckets = default_buckets) name =
  (* a labeled histogram would need its suffixes inside the braces
     ([m_bucket{id=...,le=...}]) — not worth the machinery until a
     caller exists *)
  if String.contains name '{' then
    invalid_arg "Metrics.histogram: labeled histograms are not supported";
  let bounds = Array.of_list buckets in
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    bounds;
  register t name help
    (fun () ->
      Histogram
        {
          h_bounds = bounds;
          h_buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.0;
        })
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1) in
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket 0) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  (* float sum: CAS loop (no fetch_and_add for floats) *)
  let rec loop () =
    let old = Atomic.get h.h_sum in
    if not (Atomic.compare_and_set h.h_sum old (old +. v)) then loop ()
  in
  loop ()

let histogram_count h = Atomic.get h.h_count
let histogram_sum h = Atomic.get h.h_sum

(* ---------------- domain-local accumulation ---------------- *)

module Local = struct
  type lcounter = { target : counter; mutable pending : int }

  let counter target = { target; pending = 0 }
  let incr l = l.pending <- l.pending + 1

  let add l n =
    if n < 0 then invalid_arg "Metrics.Local.add: counters are monotone";
    l.pending <- l.pending + n

  let pending l = l.pending

  let flush_counter l =
    if l.pending > 0 then begin
      ignore (Atomic.fetch_and_add l.target.c_value l.pending);
      l.pending <- 0
    end

  type lhistogram = {
    h_target : histogram;
    l_buckets : int array;  (* length = bounds + 1, like the target *)
    mutable l_count : int;
    mutable l_sum : float;
  }

  let histogram h_target =
    {
      h_target;
      l_buckets = Array.make (Array.length h_target.h_buckets) 0;
      l_count = 0;
      l_sum = 0.0;
    }

  let observe l v =
    let bounds = l.h_target.h_bounds in
    let n = Array.length bounds in
    let rec bucket i = if i >= n || v <= bounds.(i) then i else bucket (i + 1) in
    let b = bucket 0 in
    l.l_buckets.(b) <- l.l_buckets.(b) + 1;
    l.l_count <- l.l_count + 1;
    l.l_sum <- l.l_sum +. v

  let flush_histogram l =
    if l.l_count > 0 then begin
      let h = l.h_target in
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            ignore (Atomic.fetch_and_add h.h_buckets.(i) n);
            l.l_buckets.(i) <- 0
          end)
        l.l_buckets;
      ignore (Atomic.fetch_and_add h.h_count l.l_count);
      let rec loop () =
        let old = Atomic.get h.h_sum in
        if not (Atomic.compare_and_set h.h_sum old (old +. l.l_sum)) then loop ()
      in
      loop ();
      l.l_count <- 0;
      l.l_sum <- 0.0
    end
end

(* ---------------- Prometheus text dump ---------------- *)

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let dump t =
  Mutex.lock t.mutex;
  let entries =
    Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Mutex.unlock t.mutex;
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* labeled series of one family are adjacent after the sort; emit the
     HELP/TYPE headers once per base name, not once per series *)
  let last_base = ref "" in
  List.iter
    (fun (name, { help; metric }) ->
      let base = base_name name in
      let fresh_family = base <> !last_base in
      last_base := base;
      if fresh_family && help <> "" then pf "# HELP %s %s\n" base help;
      match metric with
      | Counter c ->
        if fresh_family then pf "# TYPE %s counter\n" base;
        pf "%s %d\n" name (value c)
      | Gauge g ->
        if fresh_family then pf "# TYPE %s gauge\n" base;
        pf "%s %s\n" name (float_str (gauge_value g))
      | Histogram h ->
        pf "# TYPE %s histogram\n" name;
        let cumulative = ref 0 in
        Array.iteri
          (fun i bound ->
            cumulative := !cumulative + Atomic.get h.h_buckets.(i);
            pf "%s_bucket{le=\"%s\"} %d\n" name (float_str bound) !cumulative)
          h.h_bounds;
        cumulative :=
          !cumulative + Atomic.get h.h_buckets.(Array.length h.h_bounds);
        pf "%s_bucket{le=\"+Inf\"} %d\n" name !cumulative;
        pf "%s_sum %s\n" name (float_str (histogram_sum h));
        pf "%s_count %d\n" name (histogram_count h))
    entries;
  Buffer.contents buf
