(** Domain-safe metrics registry: counters, gauges and histograms
    backed by [Atomic], so worker domains record without taking any
    lock — the registry mutex guards only name registration, never the
    hot-path updates.

    Handles ([counter], [gauge], [histogram]) are cheap to hold;
    registration is idempotent (asking for an existing name returns
    the existing metric; asking with a different kind is a programmer
    error and raises [Invalid_argument]). [dump] renders the
    Prometheus text exposition format, metrics sorted by name so the
    output is deterministic. *)

type t

val create : unit -> t

type counter
(** Monotone integer, [Atomic.fetch_and_add] underneath. *)

val counter : t -> ?help:string -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] with negative [n] raises [Invalid_argument] — counters
    are monotone by contract. *)

val value : counter -> int

type gauge
(** A float that goes both ways ([Atomic.set]/[Atomic.get]). *)

val gauge : t -> ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

type histogram
(** Cumulative fixed-bucket histogram; observation is a few atomic
    adds (bucket, count) plus one CAS loop (sum). *)

val labeled : string -> (string * string) list -> string
(** [labeled "m" [("id", "c1")]] is the series name [m{id="c1"}] —
    pass it to {!counter} or {!gauge} to register one labeled series
    per distinct label value (the per-campaign gauges of the service
    daemon). Values are escaped per the Prometheus text format;
    {!dump} groups all series of a family under one [# HELP]/[# TYPE]
    header. [labeled name []] is [name]. *)

val base_name : string -> string
(** The family name of a (possibly labeled) series: everything before
    the first ['{']. *)

val histogram : t -> ?help:string -> ?buckets:float list -> string -> histogram
(** [buckets] are upper bounds, strictly increasing; a [+Inf] bucket
    is implicit. Default buckets suit sub-second latencies and
    per-transaction gas: powers of 10 from 1e1 to 1e7. Labeled names
    (see {!labeled}) raise [Invalid_argument] — only counters and
    gauges support labels. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val dump : t -> string
(** Prometheus text format: [# HELP] / [# TYPE] headers, histogram
    [_bucket{le=...}] / [_sum] / [_count] series. *)

(** Domain-local accumulators over registry metrics. Even lock-free
    atomic updates are cross-domain traffic (the cache line carrying
    the counter bounces between cores on every bump); hot loops that
    record per-execution or per-transaction instead accumulate into a
    plain local value and flush the total in one atomic operation at a
    batch boundary. A local handle must only ever be touched from one
    domain at a time — hand-off requires an external happens-before
    edge (the pool's batch barrier provides one). *)
module Local : sig
  type lcounter

  val counter : counter -> lcounter
  (** A fresh local view with no pending increments. *)

  val incr : lcounter -> unit
  val add : lcounter -> int -> unit

  val pending : lcounter -> int
  (** Increments accumulated since the last flush. *)

  val flush_counter : lcounter -> unit
  (** Push the pending total into the registry counter (one atomic
      add) and reset the local count to zero. *)

  type lhistogram

  val histogram : histogram -> lhistogram
  val observe : lhistogram -> float -> unit

  val flush_histogram : lhistogram -> unit
  (** Push pending bucket counts, count and sum into the registry
      histogram and reset the local state. *)
end
