(** Domain-safe metrics registry: counters, gauges and histograms
    backed by [Atomic], so worker domains record without taking any
    lock — the registry mutex guards only name registration, never the
    hot-path updates.

    Handles ([counter], [gauge], [histogram]) are cheap to hold;
    registration is idempotent (asking for an existing name returns
    the existing metric; asking with a different kind is a programmer
    error and raises [Invalid_argument]). [dump] renders the
    Prometheus text exposition format, metrics sorted by name so the
    output is deterministic. *)

type t

val create : unit -> t

type counter
(** Monotone integer, [Atomic.fetch_and_add] underneath. *)

val counter : t -> ?help:string -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] with negative [n] raises [Invalid_argument] — counters
    are monotone by contract. *)

val value : counter -> int

type gauge
(** A float that goes both ways ([Atomic.set]/[Atomic.get]). *)

val gauge : t -> ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

type histogram
(** Cumulative fixed-bucket histogram; observation is a few atomic
    adds (bucket, count) plus one CAS loop (sum). *)

val histogram : t -> ?help:string -> ?buckets:float list -> string -> histogram
(** [buckets] are upper bounds, strictly increasing; a [+Inf] bucket
    is implicit. Default buckets suit sub-second latencies and
    per-transaction gas: powers of 10 from 1e1 to 1e7. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val dump : t -> string
(** Prometheus text format: [# HELP] / [# TYPE] headers, histogram
    [_bucket{le=...}] / [_sum] / [_count] series. *)
