type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | _ ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else
      (* shortest representation that round-trips *)
      let s = Printf.sprintf "%.17g" f in
      let s' = Printf.sprintf "%.15g" f in
      Buffer.add_string buf (if float_of_string s' = f then s' else s)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let c = hex4 () in
          (* encode the code point as UTF-8; surrogate pairs for
             completeness, though the writer never emits them *)
          let c =
            if c >= 0xD800 && c <= 0xDBFF && !pos + 1 < n && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              0x10000 + (((c - 0xD800) lsl 10) lor (lo - 0xDC00))
            end
            else c
          in
          if c < 0x80 then Buffer.add_char buf (Char.chr c)
          else if c < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
          end
          else if c < 0x10000 then begin
            Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xF0 lor (c lsr 18)));
            Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
          end
        | _ -> fail "bad escape");
        loop ()
      end
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let integral =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok)
    in
    if integral then
      match int_of_string_opt tok with
      | Some v -> Int v
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' -> begin
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    end
    | Some '{' -> begin
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
let string_value = function String s -> Some s | _ -> None
