type t = {
  sinks : Sink.t array;
  mutex : Mutex.t;
  mutable finalized : bool;
}

let null = { sinks = [||]; mutex = Mutex.create (); finalized = false }

let create sinks =
  { sinks = Array.of_list sinks; mutex = Mutex.create (); finalized = false }

let enabled t = Array.length t.sinks > 0

let emit t ev =
  if Array.length t.sinks > 0 then begin
    Mutex.lock t.mutex;
    if not t.finalized then
      Array.iter (fun (s : Sink.t) -> s.on_event ev) t.sinks;
    Mutex.unlock t.mutex
  end

let finalize t =
  if Array.length t.sinks > 0 then begin
    Mutex.lock t.mutex;
    if not t.finalized then begin
      t.finalized <- true;
      Array.iter (fun (s : Sink.t) -> s.on_finalize ()) t.sinks
    end;
    Mutex.unlock t.mutex
  end
