(** The campaign event taxonomy.

    Every observable state change of Algorithm 1 and its parallel twin
    maps to exactly one constructor; payloads are primitive (ints,
    bools, strings) so the telemetry layer stays below every fuzzing
    module in the dependency order. Events serialise to single-line
    JSON objects tagged by an ["event"] field — the JSONL trace format
    — and deserialise losslessly ([of_json] is a total inverse of
    [to_json], property-tested). *)

type t =
  | Exec_completed of { worker : int; fresh : bool }
      (** one transaction-sequence execution finished on [worker]
          (0 = the sequential loop / coordinator); [fresh] is the
          new-coverage verdict of the loop that ran it *)
  | New_branch_side of { pc : int; taken : bool; covered : int }
      (** a branch side entered the covered set; [covered] is the
          running covered-side count after this one *)
  | Seed_enqueued of { txs : int; queue_len : int }
      (** a seed joined the selection queue *)
  | Mask_updated of { tx_index : int; probes : int }
      (** Algorithm 2 computed (and cached) a seed mask, spending
          [probes] probe executions *)
  | Energy_reassigned of { energy : int }
      (** Algorithm 3 assigned [energy] mutations to a selected seed *)
  | Finding_raised of { cls : string; pc : int; tx_index : int }
      (** a bug oracle fired on a previously unseen (class, pc) site *)
  | Pool_steal of { thief : int; victim : int }
      (** worker [thief] stole a task from worker [victim]'s deque *)
  | Batch_merge of { round : int; execs : int; covered : int }
      (** the parallel coordinator merged one round of worker results *)
  | Checkpoint_written of { execs : int; path : string }
      (** the persistence driver wrote a campaign checkpoint to [path]
          at execution count [execs] *)
  | Checkpoint_loaded of { execs : int; path : string }
      (** a campaign resumed from the checkpoint at [path], captured at
          execution count [execs] *)
  | Fleet_shard_leased of { shard : int; worker : int }
      (** the fleet coordinator leased corpus shard [shard] to worker
          slot [worker] *)
  | Fleet_shard_done of { shard : int; contracts : int; failed : int }
      (** a worker completed its shard: [contracts] contracts folded
          into the shard summary, [failed] of them recorded as
          structured failures *)
  | Fleet_lease_reassigned of { shard : int; worker : int }
      (** shard [shard]'s lease was reclaimed (worker death, stale
          heartbeat, or a coordinator restart) and will be re-leased *)

val kind : t -> string
(** The ["event"] tag, kebab-case: ["exec-completed"], … *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; [Error] names the missing or ill-typed
    field. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering (the JSON), for test failure messages. *)
