type t = {
  on_event : Event.t -> unit;
  on_finalize : unit -> unit;
}

(* ---------------- JSONL trace writer ---------------- *)

let jsonl ?(append = false) path =
  let oc =
    if append then
      open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
    else open_out path
  in
  let buf = Buffer.create (1 lsl 16) in
  let flush_buf () =
    Buffer.output_buffer oc buf;
    Buffer.clear buf;
    flush oc
  in
  {
    on_event =
      (fun ev ->
        Buffer.add_string buf (Json.to_string (Event.to_json ev));
        Buffer.add_char buf '\n';
        if Buffer.length buf >= 1 lsl 16 then flush_buf ());
    on_finalize =
      (fun () ->
        flush_buf ();
        close_out oc);
  }

(* ---------------- bounded ring buffer ---------------- *)

type ring = {
  capacity : int;
  q : Event.t Queue.t;
  mutable dropped : int;
}

let ring ~capacity = { capacity = Stdlib.max 1 capacity; q = Queue.create (); dropped = 0 }

let ring_sink r =
  {
    on_event =
      (fun ev ->
        Queue.push ev r.q;
        if Queue.length r.q > r.capacity then begin
          ignore (Queue.pop r.q);
          r.dropped <- r.dropped + 1
        end);
    on_finalize = (fun () -> ());
  }

let ring_contents r = List.of_seq (Queue.to_seq r.q)
let ring_dropped r = r.dropped

(* ---------------- live status line ---------------- *)

let status ?(out = stderr) ~interval ~total_sides () =
  let start = Unix.gettimeofday () in
  let last = ref start in
  let execs = ref 0 in
  let covered = ref 0 in
  let findings = ref 0 in
  let line now =
    let pct =
      if total_sides = 0 then 0.0
      else 100.0 *. float_of_int !covered /. float_of_int total_sides
    in
    let elapsed = now -. start in
    let rate = if elapsed > 0.0 then float_of_int !execs /. elapsed else 0.0 in
    Printf.fprintf out
      "[mufuzz] execs %d | coverage %.1f%% (%d/%d) | findings %d | %.1f execs/sec\n%!"
      !execs pct !covered total_sides !findings rate
  in
  {
    on_event =
      (fun ev ->
        match ev with
        | Event.Exec_completed _ ->
          incr execs;
          let now = Unix.gettimeofday () in
          if now -. !last >= interval then begin
            last := now;
            line now
          end
        | Event.New_branch_side { covered = c; _ } ->
          if c > !covered then covered := c
        | Event.Finding_raised _ -> incr findings
        | _ -> ());
    on_finalize = (fun () -> line (Unix.gettimeofday ()));
  }
