(** Event consumers pluggable into a {!Bus}.

    A sink is a pair of callbacks; the bus serialises calls to them
    under its own mutex, so sink implementations need no locking of
    their own even when worker domains emit concurrently. *)

type t = {
  on_event : Event.t -> unit;
  on_finalize : unit -> unit;
      (** called exactly once when the owning bus is finalised; flush
          and release resources here *)
}

val jsonl : ?append:bool -> string -> t
(** [jsonl path] appends one compact JSON object per event to [path]
    (truncating any existing file), buffered in memory and flushed when
    the buffer passes 64 KiB and on finalize. The finalize closes the
    channel. With [~append:true] an existing file is extended instead
    of truncated — the per-campaign sink routing of the service
    daemon, where one campaign's trace spans many time slices, each
    with its own short-lived sink. *)

(** Bounded in-memory event store, for tests and programmatic
    inspection. When full, the oldest event is dropped. *)
type ring

val ring : capacity:int -> ring
val ring_sink : ring -> t
val ring_contents : ring -> Event.t list
(** Oldest first; at most [capacity] events. *)

val ring_dropped : ring -> int
(** Events discarded because the ring was full. *)

val status :
  ?out:out_channel -> interval:float -> total_sides:int -> unit -> t
(** Live progress line: every [interval] seconds of wall time (checked
    on each execution event) prints
    [execs, coverage %, findings, execs/sec] to [out] (default
    [stderr]), plus one final line on finalize. [total_sides] scales
    the coverage percentage; 0 renders as 0%. *)
