type t =
  | Exec_completed of { worker : int; fresh : bool }
  | New_branch_side of { pc : int; taken : bool; covered : int }
  | Seed_enqueued of { txs : int; queue_len : int }
  | Mask_updated of { tx_index : int; probes : int }
  | Energy_reassigned of { energy : int }
  | Finding_raised of { cls : string; pc : int; tx_index : int }
  | Pool_steal of { thief : int; victim : int }
  | Batch_merge of { round : int; execs : int; covered : int }
  | Checkpoint_written of { execs : int; path : string }
  | Checkpoint_loaded of { execs : int; path : string }
  | Fleet_shard_leased of { shard : int; worker : int }
  | Fleet_shard_done of { shard : int; contracts : int; failed : int }
  | Fleet_lease_reassigned of { shard : int; worker : int }

let kind = function
  | Exec_completed _ -> "exec-completed"
  | New_branch_side _ -> "new-branch-side"
  | Seed_enqueued _ -> "seed-enqueued"
  | Mask_updated _ -> "mask-updated"
  | Energy_reassigned _ -> "energy-reassigned"
  | Finding_raised _ -> "finding-raised"
  | Pool_steal _ -> "pool-steal"
  | Batch_merge _ -> "batch-merge"
  | Checkpoint_written _ -> "checkpoint-written"
  | Checkpoint_loaded _ -> "checkpoint-loaded"
  | Fleet_shard_leased _ -> "fleet-shard-leased"
  | Fleet_shard_done _ -> "fleet-shard-done"
  | Fleet_lease_reassigned _ -> "fleet-lease-reassigned"

let to_json ev =
  let tag = ("event", Json.String (kind ev)) in
  match ev with
  | Exec_completed { worker; fresh } ->
    Json.Obj [ tag; ("worker", Int worker); ("fresh", Bool fresh) ]
  | New_branch_side { pc; taken; covered } ->
    Json.Obj [ tag; ("pc", Int pc); ("taken", Bool taken); ("covered", Int covered) ]
  | Seed_enqueued { txs; queue_len } ->
    Json.Obj [ tag; ("txs", Int txs); ("queue_len", Int queue_len) ]
  | Mask_updated { tx_index; probes } ->
    Json.Obj [ tag; ("tx_index", Int tx_index); ("probes", Int probes) ]
  | Energy_reassigned { energy } -> Json.Obj [ tag; ("energy", Int energy) ]
  | Finding_raised { cls; pc; tx_index } ->
    Json.Obj [ tag; ("class", String cls); ("pc", Int pc); ("tx_index", Int tx_index) ]
  | Pool_steal { thief; victim } ->
    Json.Obj [ tag; ("thief", Int thief); ("victim", Int victim) ]
  | Batch_merge { round; execs; covered } ->
    Json.Obj [ tag; ("round", Int round); ("execs", Int execs); ("covered", Int covered) ]
  | Checkpoint_written { execs; path } ->
    Json.Obj [ tag; ("execs", Int execs); ("path", String path) ]
  | Checkpoint_loaded { execs; path } ->
    Json.Obj [ tag; ("execs", Int execs); ("path", String path) ]
  | Fleet_shard_leased { shard; worker } ->
    Json.Obj [ tag; ("shard", Int shard); ("worker", Int worker) ]
  | Fleet_shard_done { shard; contracts; failed } ->
    Json.Obj
      [ tag; ("shard", Int shard); ("contracts", Int contracts);
        ("failed", Int failed) ]
  | Fleet_lease_reassigned { shard; worker } ->
    Json.Obj [ tag; ("shard", Int shard); ("worker", Int worker) ]

let of_json json =
  let field name conv =
    match Json.member name json with
    | None -> Error (Printf.sprintf "missing field %S" name)
    | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "ill-typed field %S" name))
  in
  let ( let* ) = Result.bind in
  let int name = field name Json.to_int in
  let bool name = field name Json.to_bool in
  let str name = field name Json.string_value in
  let* tag = str "event" in
  match tag with
  | "exec-completed" ->
    let* worker = int "worker" in
    let* fresh = bool "fresh" in
    Ok (Exec_completed { worker; fresh })
  | "new-branch-side" ->
    let* pc = int "pc" in
    let* taken = bool "taken" in
    let* covered = int "covered" in
    Ok (New_branch_side { pc; taken; covered })
  | "seed-enqueued" ->
    let* txs = int "txs" in
    let* queue_len = int "queue_len" in
    Ok (Seed_enqueued { txs; queue_len })
  | "mask-updated" ->
    let* tx_index = int "tx_index" in
    let* probes = int "probes" in
    Ok (Mask_updated { tx_index; probes })
  | "energy-reassigned" ->
    let* energy = int "energy" in
    Ok (Energy_reassigned { energy })
  | "finding-raised" ->
    let* cls = str "class" in
    let* pc = int "pc" in
    let* tx_index = int "tx_index" in
    Ok (Finding_raised { cls; pc; tx_index })
  | "pool-steal" ->
    let* thief = int "thief" in
    let* victim = int "victim" in
    Ok (Pool_steal { thief; victim })
  | "batch-merge" ->
    let* round = int "round" in
    let* execs = int "execs" in
    let* covered = int "covered" in
    Ok (Batch_merge { round; execs; covered })
  | "checkpoint-written" ->
    let* execs = int "execs" in
    let* path = str "path" in
    Ok (Checkpoint_written { execs; path })
  | "checkpoint-loaded" ->
    let* execs = int "execs" in
    let* path = str "path" in
    Ok (Checkpoint_loaded { execs; path })
  | "fleet-shard-leased" ->
    let* shard = int "shard" in
    let* worker = int "worker" in
    Ok (Fleet_shard_leased { shard; worker })
  | "fleet-shard-done" ->
    let* shard = int "shard" in
    let* contracts = int "contracts" in
    let* failed = int "failed" in
    Ok (Fleet_shard_done { shard; contracts; failed })
  | "fleet-lease-reassigned" ->
    let* shard = int "shard" in
    let* worker = int "worker" in
    Ok (Fleet_lease_reassigned { shard; worker })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let pp fmt ev = Format.pp_print_string fmt (Json.to_string (to_json ev))
