(** A minimal JSON tree, printer and parser.

    The repository deliberately carries no third-party JSON dependency;
    this module is the single codec behind the JSONL event trace, the
    machine-readable campaign report ([Report.to_json]) and the bench
    harness that consumes both. It covers exactly RFC 8259 minus
    extravagances nobody here emits: numbers parse to [Int] when they
    are integral decimals and to [Float] otherwise. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (the JSONL framing requirement).
    Strings are escaped per RFC 8259; non-finite floats render as
    [null] (JSON has no representation for them). *)

val of_string : string -> (t, string) result
(** Parse one JSON document; trailing garbage is an error. The error
    string names the offending byte offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_list : t -> t list option
val string_value : t -> string option
