(** The event bus: fan-out of campaign {!Event}s to attached
    {!Sink}s.

    The sink set is fixed at creation, which is what makes the no-op
    guarantee safe to check without synchronisation: {!null} (the
    default bus everywhere in the fuzzer) carries no sinks, so
    {!emit} on it is one immutable array-length test — campaigns run
    with no telemetry attached are bit-for-bit identical to builds
    that predate the subsystem.

    With sinks attached, [emit] serialises delivery under a mutex, so
    events may be emitted concurrently from worker domains (the
    parallel campaign does exactly that for [Exec_completed]). *)

type t

val null : t
(** The no-op bus: no sinks, {!emit} returns immediately. *)

val create : Sink.t list -> t
(** A bus delivering to the given sinks in order. An empty list gives
    a fresh no-op bus. *)

val enabled : t -> bool
(** [false] exactly when the bus has no sinks. Guard any emission
    whose payload is costly to construct. *)

val emit : t -> Event.t -> unit

val finalize : t -> unit
(** Run every sink's [on_finalize] once (idempotent; later {!emit}s
    are dropped). Flushes the JSONL trace, prints the last status
    line. *)
