(* Replay verification: execute an artifact's sequence and confirm the
   recorded (oracle, pc) still fires. Everything here is deterministic —
   the EVM substrate has no wall-clock or randomness — so two replays of
   the same artifact produce byte-identical outcomes (the regression
   gate relies on this). *)

type outcome = {
  ok : bool;  (* the artifact's (oracle, pc) fired *)
  raised : Oracles.Oracle.finding list;  (* every alarm the replay raised *)
}

let target_of (a : Artifact.t) =
  {
    Shrink.contract = a.contract;
    gas = a.gas_per_tx;
    n_senders = a.n_senders;
    attacker = a.attacker;
  }

let replay (a : Artifact.t) =
  let raised =
    Mufuzz.Executor.findings ~contract:a.contract ~gas:a.gas_per_tx
      ~n_senders:a.n_senders ~attacker:a.attacker a.seed
  in
  let ok =
    List.exists
      (fun (g : Oracles.Oracle.finding) ->
        g.cls = a.finding.cls && g.pc = a.finding.pc)
      raised
  in
  { ok; raised }

let describe (a : Artifact.t) (o : outcome) =
  if o.ok then
    Printf.sprintf "[%s] pc=%d reproduced on %s (%d txs, %d alarms raised)"
      (Oracles.Oracle.class_to_string a.finding.cls)
      a.finding.pc a.contract.name
      (List.length a.seed.txs) (List.length o.raised)
  else
    Printf.sprintf
      "[%s] pc=%d did NOT reproduce on %s (%d txs; raised instead: %s)"
      (Oracles.Oracle.class_to_string a.finding.cls)
      a.finding.pc a.contract.name
      (List.length a.seed.txs)
      (match o.raised with
      | [] -> "nothing"
      | fs ->
        String.concat ", "
          (List.map
             (fun (g : Oracles.Oracle.finding) ->
               Printf.sprintf "[%s]@%d"
                 (Oracles.Oracle.class_to_string g.cls)
                 g.pc)
             fs))

let shrink ?max_execs (a : Artifact.t) =
  let target = target_of a in
  let r = Shrink.shrink ~target ?max_execs a.finding a.seed in
  if not r.reproduced then Error "artifact does not reproduce its finding"
  else
    match Shrink.reraise ~target a.finding r.seed with
    | None -> Error "shrunk sequence lost the finding (shrinker bug)"
    | Some finding ->
      Ok
        ( Artifact.make ~contract:a.contract ~gas_per_tx:a.gas_per_tx
            ~n_senders:a.n_senders ~attacker:a.attacker ~finding ~seed:r.seed,
          r.execs )
