(* Deterministic repro artifacts: one finding, frozen as a versioned
   JSON document that replays without the campaign that produced it.

   The artifact embeds the full Minisol source (so a checked-in corpus
   is self-contained) plus its Keccak-256, which [of_json] re-verifies —
   an artifact whose source was edited without re-shrinking is rejected
   rather than silently replayed against a different program. *)

module J = Telemetry.Json

let format_tag = "mufuzz-repro"

let current_version = 1

type t = {
  contract : Minisol.Contract.t;
  finding : Oracles.Oracle.finding;
  path_hash : string;
  gas_per_tx : int;
  n_senders : int;
  attacker : bool;
  seed : Mufuzz.Seed.t;
}

let source_hash (c : Minisol.Contract.t) = Crypto.Keccak.hash_hex c.source

let key t =
  {
    Oracles.Oracle.k_cls = t.finding.cls;
    k_pc = t.finding.pc;
    k_path = t.path_hash;
  }

let make ~contract ~gas_per_tx ~n_senders ~attacker
    ~(finding : Oracles.Oracle.finding) ~seed =
  {
    contract;
    finding;
    path_hash =
      Oracles.Oracle.path_hash
        (Mufuzz.Seed.call_path seed ~upto:finding.tx_index);
    gas_per_tx;
    n_senders;
    attacker;
    seed;
  }

let file_name t =
  Printf.sprintf "%s_%s_%d_%s.json" t.contract.name
    (Oracles.Oracle.class_to_string t.finding.cls)
    t.finding.pc t.path_hash

(* Field order is fixed here; [J.to_string] preserves it, so equal
   artifacts render byte-identically (the repro determinism contract). *)
let to_json t =
  J.Obj
    [
      ("format", J.String format_tag);
      ("version", J.Int current_version);
      ("contract", J.String t.contract.name);
      ("source_hash", J.String (source_hash t.contract));
      ("oracle", J.String (Oracles.Oracle.class_to_string t.finding.cls));
      ("pc", J.Int t.finding.pc);
      ("tx_index", J.Int t.finding.tx_index);
      ("detail", J.String t.finding.detail);
      ("path_hash", J.String t.path_hash);
      ("gas_per_tx", J.Int t.gas_per_tx);
      ("n_senders", J.Int t.n_senders);
      ("attacker", J.Bool t.attacker);
      ( "txs",
        J.List
          (List.map
             (fun (tx : Mufuzz.Seed.tx) ->
               J.Obj
                 [
                   ("fn", J.String tx.fn.Abi.name);
                   ("sender", J.Int tx.sender);
                   ("stream", J.String (Util.Hex.encode tx.stream));
                 ])
             t.seed.txs) );
      ("source", J.String t.contract.source);
    ]

let to_string t = J.to_string (to_json t)

let ( let* ) = Result.bind

let field name conv json =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let of_json json =
  let* fmt = field "format" J.string_value json in
  let* () =
    if fmt = format_tag then Ok ()
    else Error (Printf.sprintf "not a %s document (format=%S)" format_tag fmt)
  in
  let* version = field "version" J.to_int json in
  let* () =
    if version >= 1 && version <= current_version then Ok ()
    else
      Error
        (Printf.sprintf "artifact version %d not supported (max %d)" version
           current_version)
  in
  let* name = field "contract" J.string_value json in
  let* src_hash = field "source_hash" J.string_value json in
  let* source = field "source" J.string_value json in
  let* () =
    let actual = Crypto.Keccak.hash_hex source in
    if actual = src_hash then Ok ()
    else
      Error
        (Printf.sprintf
           "embedded source hash mismatch: recorded %s, actual %s (source \
            edited without re-shrinking?)"
           src_hash actual)
  in
  let* contract =
    match Minisol.Contract.compile source with
    | c -> Ok c
    | exception _ -> Error "embedded source does not compile"
  in
  let* () =
    if contract.name = name then Ok ()
    else
      Error
        (Printf.sprintf "contract name mismatch: artifact says %S, source \
                         declares %S" name contract.name)
  in
  let* cls_s = field "oracle" J.string_value json in
  let* cls =
    match Oracles.Oracle.class_of_string cls_s with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "unknown oracle class %S" cls_s)
  in
  let* pc = field "pc" J.to_int json in
  let* tx_index = field "tx_index" J.to_int json in
  let* detail = field "detail" J.string_value json in
  let* path_hash = field "path_hash" J.string_value json in
  let* gas_per_tx = field "gas_per_tx" J.to_int json in
  let* n_senders = field "n_senders" J.to_int json in
  let* attacker = field "attacker" J.to_bool json in
  let* txs_json = field "txs" J.to_list json in
  let* txs =
    List.fold_left
      (fun acc tx_json ->
        let* acc = acc in
        let* fn = field "fn" J.string_value tx_json in
        let* sender = field "sender" J.to_int tx_json in
        let* hex = field "stream" J.string_value tx_json in
        match
          Mufuzz.Replay.tx_of_parts ~abi:contract.abi ~name:fn ~sender ~hex
        with
        | tx -> Ok (tx :: acc)
        | exception Mufuzz.Replay.Corrupt m -> Error ("bad tx: " ^ m))
      (Ok []) txs_json
  in
  let seed = { Mufuzz.Seed.txs = List.rev txs } in
  Ok
    {
      contract;
      finding = { Oracles.Oracle.cls; pc; tx_index; detail };
      path_hash;
      gas_per_tx;
      n_senders;
      attacker;
      seed;
    }

let of_string s =
  let* json = J.of_string s in
  of_json json

let save path t = Util.Fileio.write_atomic path (to_string t ^ "\n")

let load path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    of_string (String.trim content)
