(** Deterministic repro artifacts — a finding frozen as versioned JSON.

    An artifact is self-contained: it embeds the contract source (and
    its Keccak-256, re-verified on load), the full transaction sequence
    (sender / value / calldata as hex streams), the execution parameters
    and the expected (oracle, pc). [mufuzz repro] replays it with no
    other inputs; the checked-in regression corpus is a directory of
    these files. *)

val format_tag : string
(** ["mufuzz-repro"] — the ["format"] field every artifact carries. *)

val current_version : int

type t = {
  contract : Minisol.Contract.t;  (** compiled from the embedded source *)
  finding : Oracles.Oracle.finding;  (** the expected alarm *)
  path_hash : string;  (** triage call-path hash of the witness *)
  gas_per_tx : int;
  n_senders : int;
  attacker : bool;
  seed : Mufuzz.Seed.t;  (** the witnessing transaction sequence *)
}

val make :
  contract:Minisol.Contract.t ->
  gas_per_tx:int ->
  n_senders:int ->
  attacker:bool ->
  finding:Oracles.Oracle.finding ->
  seed:Mufuzz.Seed.t ->
  t
(** Computes [path_hash] from the seed's call path at the finding's
    transaction index. *)

val key : t -> Oracles.Oracle.key
(** The triage dedup key the artifact pins. *)

val source_hash : Minisol.Contract.t -> string

val file_name : t -> string
(** Canonical corpus file name:
    ["<Contract>_<CLS>_<pc>_<pathhash>.json"]. *)

val to_json : t -> Telemetry.Json.t
(** Fixed field order — equal artifacts render byte-identically. *)

val to_string : t -> string

val of_json : Telemetry.Json.t -> (t, string) result
(** Validates the format tag, version window, source hash, contract
    name, oracle class and every transaction (unknown function names
    and bad hex are errors, as in {!Mufuzz.Replay}). *)

val of_string : string -> (t, string) result

val save : string -> t -> unit
(** Writes [to_string] plus a trailing newline. *)

val load : string -> (t, string) result
