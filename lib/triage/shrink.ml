(* Delta-debugging witness shrinker.

   Invariant (oracle preservation): every intermediate sequence the
   shrinker commits to still raises a finding with the same
   (oracle class, pc) as the input finding — candidates that lose the
   alarm are discarded, so the returned seed reproduces iff the input
   did.

   Invariant (fixpoint / idempotence): passes run in a deterministic
   order with no randomness, and the driver loops them until a full
   round changes nothing. Shrinking an already-shrunk seed therefore
   re-executes only the per-pass probes that all fail, commits nothing,
   and returns the input unchanged. *)

type target = {
  contract : Minisol.Contract.t;
  gas : int;
  n_senders : int;
  attacker : bool;
}

let target_of_config (config : Mufuzz.Config.t) contract =
  {
    contract;
    gas = config.gas_per_tx;
    n_senders = config.n_senders;
    attacker = config.attacker_enabled;
  }

type result = {
  seed : Mufuzz.Seed.t;
  execs : int;  (** executions the shrink spent (including the final check) *)
  reproduced : bool;  (** the input seed raised the finding at all *)
}

(* One oracle-preservation check: does [seed] still raise (cls, pc)?
   A state cache is threaded through every check of one shrink call, so
   candidates sharing a transaction prefix (most of them) resume from
   the cached intermediate state instead of re-deploying. *)
let make_check t (f : Oracles.Oracle.finding) =
  let cache = Mufuzz.State_cache.create () in
  fun seed ->
    List.exists
      (fun (g : Oracles.Oracle.finding) -> g.cls = f.cls && g.pc = f.pc)
      (Mufuzz.Executor.findings ~contract:t.contract ~gas:t.gas
         ~n_senders:t.n_senders ~attacker:t.attacker ~cache seed)

(* ---------------- pass 1: ddmin over the transaction list ----------------

   Classic Zeller/Hildebrandt ddmin restricted to complements (chunk
   removal), order-preserving, with the constructor pinned at the head.
   Granularity starts at 2 and doubles whenever no chunk can go. *)

let drop_pass ~check ~budget_left (seed : Mufuzz.Seed.t) =
  match seed.txs with
  | [] | [ _ ] -> (seed, false)
  | ctor :: rest ->
    let changed = ref false in
    let current = ref (Array.of_list rest) in
    let granularity = ref 2 in
    let continue = ref true in
    while !continue && budget_left () do
      let cur = !current in
      let len = Array.length cur in
      if len = 0 || !granularity > len then continue := false
      else begin
        (* chunk boundaries for [granularity] near-equal slices *)
        let bound i = i * len / !granularity in
        let removed = ref (-1) in
        let chunk = ref 0 in
        while !removed < 0 && !chunk < !granularity && budget_left () do
          let lo = bound !chunk and hi = bound (!chunk + 1) in
          if hi > lo then begin
            let complement =
              Array.to_list cur
              |> List.filteri (fun i _ -> i < lo || i >= hi)
            in
            if check { Mufuzz.Seed.txs = ctor :: complement } then
              removed := !chunk
            else incr chunk
          end
          else incr chunk
        done;
        if !removed >= 0 then begin
          let lo = bound !removed and hi = bound (!removed + 1) in
          current :=
            Array.of_list
              (Array.to_list cur |> List.filteri (fun i _ -> i < lo || i >= hi));
          changed := true;
          granularity := Stdlib.max 2 (!granularity - 1)
        end
        else if !granularity >= len then continue := false
        else granularity := Stdlib.min len (2 * !granularity)
      end
    done;
    ({ Mufuzz.Seed.txs = ctor :: Array.to_list !current }, !changed)

(* ---------------- pass 2: per-tx stream byte reduction ----------------

   First whole 32-byte words (arguments and the trailing value word),
   then single bytes — the word sweep clears the common case in one
   execution per word, the byte sweep mops up partial words. Zeroing is
   the canonical reduction: a zero word decodes to 0 / address(0) /
   false, the "simplest" value of every Minisol ABI type. *)

let zero_pass ~check ~budget_left (seed : Mufuzz.Seed.t) =
  let changed = ref false in
  let current = ref seed in
  let n = List.length seed.txs in
  for ti = 0 to n - 1 do
    let try_zero lo len =
      if budget_left () then begin
        let tx = List.nth (!current).Mufuzz.Seed.txs ti in
        let stream = Bytes.of_string tx.stream in
        if lo + len <= Bytes.length stream then begin
          let any_nonzero = ref false in
          for i = lo to lo + len - 1 do
            if Bytes.get stream i <> '\000' then any_nonzero := true
          done;
          if !any_nonzero then begin
            Bytes.fill stream lo len '\000';
            let candidate =
              Mufuzz.Seed.with_tx !current ti
                { tx with stream = Bytes.to_string stream }
            in
            if check candidate then begin
              current := candidate;
              changed := true
            end
          end
        end
      end
    in
    let stream_len =
      String.length (List.nth (!current).Mufuzz.Seed.txs ti).stream
    in
    for w = 0 to (stream_len / 32) - 1 do
      try_zero (w * 32) 32
    done;
    for i = 0 to stream_len - 1 do
      try_zero i 1
    done
  done;
  (!current, !changed)

let shrink ~target:t ?(max_execs = 4000) (finding : Oracles.Oracle.finding)
    seed =
  let execs = ref 0 in
  let budget_left () = !execs < max_execs in
  let check0 = make_check t finding in
  let check s =
    incr execs;
    check0 s
  in
  if not (check seed) then { seed; execs = !execs; reproduced = false }
  else begin
    let current = ref seed in
    let progress = ref true in
    while !progress && budget_left () do
      let after_drop, dropped = drop_pass ~check ~budget_left !current in
      let after_zero, zeroed = zero_pass ~check ~budget_left after_drop in
      current := after_zero;
      progress := dropped || zeroed
    done;
    { seed = !current; execs = !execs; reproduced = true }
  end

(* The finding as re-raised by the shrunk sequence: same (cls, pc), but
   tx_index/detail may have moved when transactions were dropped. *)
let reraise ~target:t (finding : Oracles.Oracle.finding) seed =
  List.find_opt
    (fun (g : Oracles.Oracle.finding) -> g.cls = finding.cls && g.pc = finding.pc)
    (Mufuzz.Executor.findings ~contract:t.contract ~gas:t.gas
       ~n_senders:t.n_senders ~attacker:t.attacker seed)
