(** Delta-debugging witness shrinker (the triage layer's minimiser).

    Two deterministic passes run to a fixpoint: ddmin-style chunk
    removal over the transaction list (order-preserving, constructor
    pinned), then per-transaction stream reduction (32-byte words, then
    single bytes, zeroed). Every committed step re-executes the
    candidate and keeps it only if the same (oracle class, pc) still
    fires — the shrinker is oracle-preserving by construction, and
    idempotent because a second run finds no committable step. *)

type target = {
  contract : Minisol.Contract.t;
  gas : int;
  n_senders : int;
  attacker : bool;
}
(** The execution environment a finding must be reproduced under. *)

val target_of_config : Mufuzz.Config.t -> Minisol.Contract.t -> target

type result = {
  seed : Mufuzz.Seed.t;
  execs : int;  (** executions the shrink spent (including the final check) *)
  reproduced : bool;  (** the input seed raised the finding at all *)
}

val shrink :
  target:target ->
  ?max_execs:int ->
  Oracles.Oracle.finding ->
  Mufuzz.Seed.t ->
  result
(** [shrink ~target finding seed] minimises [seed] while the finding's
    (class, pc) keeps firing. If [seed] does not reproduce the finding
    it is returned unchanged with [reproduced = false]. [max_execs]
    (default 4000) bounds the total re-executions; on exhaustion the
    best sequence so far is returned (still oracle-preserving). *)

val reraise :
  target:target ->
  Oracles.Oracle.finding ->
  Mufuzz.Seed.t ->
  Oracles.Oracle.finding option
(** The finding as actually raised by [seed]: same (class, pc) as the
    input finding, but with the tx_index/detail the (possibly shorter)
    sequence produces — what an artifact should record after
    shrinking. *)
