(** Replay verification for repro artifacts.

    Deterministic: the EVM substrate has no wall-clock or randomness,
    so replaying the same artifact twice yields identical outcomes and
    identical {!describe} strings — the property the self-replaying
    regression corpus is built on. *)

type outcome = {
  ok : bool;  (** the artifact's (oracle, pc) fired *)
  raised : Oracles.Oracle.finding list;
      (** every alarm the replay raised, in trace order *)
}

val target_of : Artifact.t -> Shrink.target

val replay : Artifact.t -> outcome

val describe : Artifact.t -> outcome -> string
(** One deterministic human-readable line per replay (no timings, no
    paths) — what [mufuzz repro] prints. *)

val shrink : ?max_execs:int -> Artifact.t -> (Artifact.t * int, string) result
(** Shrink the artifact's sequence under its own execution parameters
    and rebuild it around the re-raised finding (tx_index, detail and
    path hash are recomputed). Returns the new artifact and the
    executions spent, or an error if the artifact does not reproduce.
    Shrinking an already-shrunk artifact returns it unchanged. *)
