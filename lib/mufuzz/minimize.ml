module U = Word.U256

let reproduces ~contract ~gas ~n_senders ~attacker (f : Oracles.Oracle.finding)
    seed =
  List.exists
    (fun (g : Oracles.Oracle.finding) -> g.cls = f.cls && g.pc = f.pc)
    (Executor.findings ~contract ~gas ~n_senders ~attacker seed)

let minimize ~contract ~gas ~n_senders ~attacker ?(max_steps = 200) finding seed =
  let steps = ref 0 in
  let check s =
    incr steps;
    reproduces ~contract ~gas ~n_senders ~attacker finding s
  in
  if not (check seed) then (seed, !steps)
  else begin
    (* Phase 1: drop transactions, scanning from the tail so later
       redundant calls go first; never drop the constructor. *)
    let current = ref seed in
    let continue = ref true in
    while !continue && !steps < max_steps do
      continue := false;
      let txs = Array.of_list (!current).Seed.txs in
      let n = Array.length txs in
      let i = ref (n - 1) in
      while !i >= 0 && !steps < max_steps do
        if not txs.(!i).Seed.fn.Abi.is_constructor then begin
          let candidate =
            { Seed.txs =
                Array.to_list txs
                |> List.filteri (fun j _ -> j <> !i) }
          in
          if candidate.txs <> [] && check candidate then begin
            current := candidate;
            continue := true;
            i := -1 (* restart the scan on the shorter sequence *)
          end
          else decr i
        end
        else decr i
      done
    done;
    (* Phase 2: zero out 32-byte words of each transaction's stream. *)
    let txs = Array.of_list (!current).Seed.txs in
    Array.iteri
      (fun ti tx ->
        let stream = Bytes.of_string tx.Seed.stream in
        let words = Bytes.length stream / 32 in
        for w = 0 to words - 1 do
          if !steps < max_steps then begin
            let saved = Bytes.sub stream (w * 32) 32 in
            if Bytes.exists (fun c -> c <> '\000') saved then begin
              Bytes.fill stream (w * 32) 32 '\000';
              let candidate =
                Seed.with_tx !current ti
                  { tx with Seed.stream = Bytes.to_string stream }
              in
              if check candidate then current := candidate
              else Bytes.blit saved 0 stream (w * 32) 32
            end
          end
        done;
        (* keep the possibly-zeroed stream for the next word iterations *)
        txs.(ti) <- { tx with Seed.stream = Bytes.to_string stream })
      txs;
    (!current, !steps)
  end
