(** Dynamic-adaptive energy assignment (§IV-C).

    A selected seed's mutation budget scales with the maximum Algorithm-3
    weight of any branch on its execution path, so paths leading toward
    deeply nested or vulnerable-instruction-reaching branches receive more
    fuzzing resources; with the component disabled every seed receives the
    flat sFuzz default. *)

val assign :
  dynamic:bool ->
  base:int ->
  max_energy:int ->
  weights:(int * bool, float) Hashtbl.t option ->
  path:(int * bool) list ->
  int
(** [assign ~dynamic ~base ~max_energy ~weights ~path] returns the number
    of mutations to spend on the seed whose execution covered [path]. *)

val update : int -> new_coverage:bool -> int
(** Algorithm 1's UPDATEENERGY: consume one unit; discovering new
    coverage refunds a small bonus so productive seeds live longer. *)

val weights_to_json : (int * bool, float) Hashtbl.t -> Telemetry.Json.t
(** Checkpoint codec for the Algorithm-3 branch-weight table, in
    canonical sorted order. *)

val weights_of_json :
  Telemetry.Json.t -> ((int * bool, float) Hashtbl.t, string) result
(** Inverse of {!weights_to_json}. *)
