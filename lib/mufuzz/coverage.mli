(** Branch coverage and branch-distance bookkeeping.

    A branch identity is [(pc, taken)] — a basic-block transition out of a
    [JUMPI], the unit the paper's coverage numbers count. For every branch
    side not yet covered, the table remembers the smallest distance any
    execution has come to flipping onto it (the sFuzz feedback of
    §IV-B). *)

type branch = int * bool

type t

val create : unit -> t

val record : t -> Evm.Trace.t -> bool
(** Folds one trace in; returns [true] iff a new branch side was covered. *)

val copy : t -> t
(** Independent snapshot; the copy and the original evolve separately.
    Worker domains fuzz against a copy of the global map and the
    coordinator folds them back with {!merge}. *)

val merge : into:t -> t -> unit
(** [merge ~into:dst src] folds [src]'s coverage into [dst]: the covered
    sets union, best distances take the minimum, and distances toward
    sides that became covered are dropped. Commutative and idempotent
    over the observable state, so per-domain maps may be merged in any
    order at batch boundaries. *)

val is_covered : t -> branch -> bool

val covered_count : t -> int

val covered : t -> branch list

val uncovered_frontier : t -> branch list
(** Branch sides whose opposite side has been executed but which remain
    uncovered — the reachable-but-unexplored frontier that seed selection
    targets. *)

val best_distance : t -> branch -> float option
(** Smallest flip distance ever observed toward this uncovered side. *)

val trace_min_distance : Evm.Trace.t -> branch -> float option
(** Distance of one execution to the given uncovered side: min over the
    trace's visits to that [pc] on the opposite side. *)

val total_sides_known : t -> int
(** Number of distinct (pc, side) identities known = covered + frontier. *)

val to_json : t -> Telemetry.Json.t
(** Checkpoint codec: hit counts and frontier distances in canonical
    sorted order, so equal coverage states render to identical bytes. *)

val of_json : Telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}; enforces the invariant that distances are
    only tracked for uncovered sides. *)
