module U = Word.U256

type tx = { fn : Abi.func; stream : string; sender : int }

type t = { txs : tx list }

let stream_length (fn : Abi.func) = Abi.args_byte_length fn + 32

let args_part tx = String.sub tx.stream 0
    (Stdlib.min (Abi.args_byte_length tx.fn) (String.length tx.stream))

let tx_value tx =
  let alen = Abi.args_byte_length tx.fn in
  let n = String.length tx.stream in
  if n <= alen then U.zero
  else begin
    let avail = Stdlib.min 32 (n - alen) in
    U.of_bytes_be (String.sub tx.stream alen avail)
  end

let tx_calldata tx = Abi.encode_args_raw tx.fn (args_part tx)

let make_tx fn ~sender ~args ~value =
  let alen = Abi.args_byte_length fn in
  let args =
    if String.length args >= alen then String.sub args 0 alen
    else args ^ String.make (alen - String.length args) '\000'
  in
  { fn; stream = args ^ U.to_bytes_be value; sender }

(* Boundary dictionary for initial word generation. *)
let interesting_words =
  lazy
    (let ether n = U.mul (U.of_int n) (U.of_decimal_string "1000000000000000000") in
     let finney n = U.mul (U.of_int n) (U.of_decimal_string "1000000000000000") in
     [| U.zero; U.one; U.of_int 2; U.of_int 10; U.of_int 100; U.of_int 255;
        U.of_int 256; U.of_int 1024; U.of_int 65535;
        ether 1; ether 10; ether 100; finney 1; finney 100;
        U.sub (U.shift_left U.one 128) U.one;
        U.sub (U.shift_left U.one 255) U.one;
        U.max_value;
        U.sub U.max_value U.one |])

let random_word rng =
  let dict = Lazy.force interesting_words in
  match Util.Rng.int rng 4 with
  | 0 -> Util.Rng.choose rng dict
  | 1 -> U.of_int (Util.Rng.int rng 1024)
  | 2 ->
    (* small perturbation of a dictionary word *)
    let base = Util.Rng.choose rng dict in
    let delta = U.of_int (Util.Rng.int rng 8) in
    if Util.Rng.bool rng then U.add base delta else U.sub base delta
  | _ -> U.of_bytes_be (Bytes.to_string (Util.Rng.bytes rng 32))

let random_value rng =
  (* msg.value: keep mostly realistic amounts so transfers fund *)
  match Util.Rng.int rng 5 with
  | 0 -> U.zero
  | 1 -> U.of_int (Util.Rng.int rng 1000)
  | 2 -> U.mul (U.of_int (1 + Util.Rng.int rng 200)) (U.of_decimal_string "1000000000000000")
  | 3 -> U.mul (U.of_int (1 + Util.Rng.int rng 200)) (U.of_decimal_string "1000000000000000000")
  | _ -> Util.Rng.choose rng (Lazy.force interesting_words)

let random_word_for ?(dict = [||]) rng ~n_senders (ty : Abi.ty) =
  match ty with
  | Abi.Address when Util.Rng.int rng 10 < 7 ->
    (* addresses that exist in the campaign's account universe *)
    Util.Rng.choose_list rng (Accounts.address_dictionary n_senders)
  | Abi.Bool -> if Util.Rng.bool rng then U.one else U.zero
  | Abi.Uint8 -> U.of_int (Util.Rng.int rng 256)
  | Abi.Address | Abi.Uint256 ->
    if Array.length dict > 0 && Util.Rng.int rng 4 = 0 then
      Util.Rng.choose rng dict
    else random_word rng

let random_tx ?(dict = [||]) rng ~n_senders (fn : Abi.func) =
  let args =
    String.concat ""
      (List.map
         (fun ty -> U.to_bytes_be (random_word_for ~dict rng ~n_senders ty))
         fn.Abi.inputs)
  in
  let value =
    if not fn.Abi.payable then U.zero
    else if Array.length dict > 0 && Util.Rng.int rng 4 = 0 then
      Util.Rng.choose rng dict
    else random_value rng
  in
  make_tx fn ~sender:(Util.Rng.int rng n_senders) ~args ~value

let of_sequence ?(dict = [||]) rng ~n_senders abi names =
  let find name =
    match List.find_opt (fun (f : Abi.func) -> f.Abi.name = name) abi with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Seed.of_sequence: unknown function %s" name)
  in
  { txs = List.map (fun name -> random_tx ~dict rng ~n_senders (find name)) names }

let with_tx t i tx = { txs = List.mapi (fun j old -> if j = i then tx else old) t.txs }

let call_path t ~upto =
  if upto < 0 then []
  else
    List.filteri (fun i _ -> i <= upto) t.txs
    |> List.map (fun tx -> tx.fn.Abi.name)

let pp fmt t =
  Format.fprintf fmt "[%s]"
    (String.concat " -> "
       (List.map
          (fun tx ->
            let args = Abi.decode_args tx.fn (args_part tx) in
            Printf.sprintf "%s(%s)%s by s%d" tx.fn.Abi.name
              (String.concat ", " (List.map Abi.value_to_string args))
              (let v = tx_value tx in
               if U.is_zero v then "" else " +" ^ U.to_decimal_string v ^ "wei")
              tx.sender)
          t.txs))

let show t = Format.asprintf "%a" pp t

(* ---------------- JSON codec (campaign checkpoints) ---------------- *)

module J = Telemetry.Json

let to_json t =
  J.List
    (List.map
       (fun tx ->
         J.Obj
           [
             ("fn", J.String tx.fn.Abi.name);
             ("sender", J.Int tx.sender);
             ("stream", J.String (Util.Hex.encode tx.stream));
           ])
       t.txs)

let of_json ~abi j =
  let ( let* ) = Result.bind in
  let tx_of_json j =
    match
      ( Option.bind (J.member "fn" j) J.string_value,
        Option.bind (J.member "sender" j) J.to_int,
        Option.bind (J.member "stream" j) J.string_value )
    with
    | Some name, Some sender, Some hex ->
      let* fn =
        match List.find_opt (fun (f : Abi.func) -> f.Abi.name = name) abi with
        | Some fn -> Ok fn
        | None -> Error (Printf.sprintf "seed: unknown function %s" name)
      in
      if sender < 0 then Error (Printf.sprintf "seed: bad sender %d" sender)
      else begin
        match Util.Hex.decode hex with
        | stream -> Ok { fn; sender; stream }
        | exception Invalid_argument m -> Error ("seed: " ^ m)
      end
    | _ -> Error "seed: tx needs fn/sender/stream fields"
  in
  match J.to_list j with
  | None -> Error "seed: expected a list of transactions"
  | Some txs ->
    let* txs =
      List.fold_left
        (fun acc tx ->
          let* acc = acc in
          let* tx = tx_of_json tx in
          Ok (tx :: acc))
        (Ok []) txs
    in
    Ok { txs = List.rev txs }
